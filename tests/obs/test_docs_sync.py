"""docs/OBSERVABILITY.md and the probe registry must agree.

Every probe in ``repro.obs.metrics.REGISTRY`` needs a row (or a shared
row) in the catalog table, and the table may not advertise a probe the
registry no longer ships — the doc is the contract experiment code
reads before attaching instruments, so it is pinned here instead of
drifting. Follows the docs/LINT.md sync pattern
(tests/lint/test_docs_sync.py).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.obs.metrics import REGISTRY

DOC = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"

TABLE_HEADER = "| probe | reads | cost |"
BACKTICKED = re.compile(r"`([a-z_]+)`")


@pytest.fixture(scope="module")
def doc_text() -> str:
    return DOC.read_text()


@pytest.fixture(scope="module")
def table_names(doc_text) -> set[str]:
    """Probe names advertised in the catalog table's first column."""
    lines = doc_text.splitlines()
    start = lines.index(TABLE_HEADER)
    names: set[str] = set()
    for line in lines[start + 2 :]:  # skip the |---| separator
        if not line.startswith("|"):
            break
        first_cell = line.split("|")[1]
        names.update(BACKTICKED.findall(first_cell))
    return names


def test_every_probe_has_a_doc_table_row(table_names) -> None:
    missing = sorted(set(REGISTRY) - table_names)
    assert not missing, f"probes without a docs/OBSERVABILITY.md row: {missing}"


def test_docs_advertise_no_unregistered_probe(table_names) -> None:
    ghosts = sorted(table_names - set(REGISTRY))
    assert not ghosts, f"docs/OBSERVABILITY.md advertises unknown probes: {ghosts}"


def test_net_probes_cover_the_transport_counters() -> None:
    """The ISSUE-10 probe set: one catalog probe per headline counter."""
    expected = {
        "net_sends",
        "net_delivered",
        "net_dropped",
        "net_duplicated",
        "net_delayed",
        "net_retransmits",
        "net_acks",
    }
    assert expected <= set(REGISTRY)
    for name in sorted(expected):
        assert REGISTRY[name].cost == "O(1)", f"{name} must stay O(1)"


def test_net_probes_read_zero_without_transport() -> None:
    from repro.core.scenarios import build_fdp_engine
    from repro.graphs import generators as gen

    edges = gen.random_connected(8, 3, seed=1)
    engine = build_fdp_engine(8, edges, leaving=(0,), seed=1)
    assert REGISTRY["net_sends"].fn(engine) == 0.0
    assert REGISTRY["net_retransmits"].fn(engine) == 0.0


def test_net_probes_track_installed_transport() -> None:
    from repro.core.scenarios import build_fdp_engine
    from repro.graphs import generators as gen
    from repro.net import ReliableTransport, default_net_config

    edges = gen.random_connected(12, 3, seed=3)
    engine = build_fdp_engine(12, edges, leaving=(0, 1), seed=3)
    cfg = default_net_config(3, loss=0.2, dup=0.2, delay=0.2)
    ReliableTransport.from_config(cfg).install(engine)
    engine.run(4000)
    assert REGISTRY["net_sends"].fn(engine) > 0.0
    assert REGISTRY["net_delivered"].fn(engine) > 0.0
    assert REGISTRY["net_dropped"].fn(engine) > 0.0
