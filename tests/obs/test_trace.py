"""JSONL trace export and bit-identical replay from a shipped file."""

import json

import pytest

from repro.core.potential import fdp_legitimate
from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    choose_leaving,
)
from repro.errors import ConfigurationError
from repro.graphs import generators as gen
from repro.obs.trace import (
    TRACE_VERSION,
    JsonlTraceSink,
    read_trace,
    replay_trace,
)
from repro.sim.scheduler import RandomScheduler

from tests.sim.test_replay import fingerprint


def fdp_builder(seed=11):
    n = 10
    edges = gen.random_connected(n, 5, seed=3)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=3)

    def build():
        return build_fdp_engine(
            n,
            edges,
            leaving,
            seed=seed,
            corruption=HEAVY_CORRUPTION,
            scheduler=RandomScheduler(seed),
        )

    return build


def record_run(path, *, metrics_every=0, seed=11):
    build = fdp_builder(seed)
    with JsonlTraceSink(str(path), metrics_every=metrics_every) as sink:
        engine = build()
        engine.tracer = sink
        assert engine.run(300_000, until=fdp_legitimate, check_every=64)
        sink.finalize(engine)
    return engine, build


class TestSink:
    def test_writes_header_steps_final(self, tmp_path):
        path = tmp_path / "run.jsonl"
        engine, _ = record_run(path)
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines[0]["t"] == "h"
        assert lines[0]["v"] == TRACE_VERSION
        assert lines[-1]["t"] == "f"
        assert lines[-1]["steps"] == engine.step_count
        steps = [rec for rec in lines if rec["t"] == "s"]
        assert len(steps) == engine.step_count

    def test_oracle_verdict_deltas_recorded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        engine, _ = record_run(path)
        data = read_trace(str(path))
        oq = [rec["oq"] for rec in data.steps if "oq" in rec]
        assert oq, "fault-injected FDP run must consult the oracle"
        assert oq == sorted(oq)  # cumulative counter, monotone
        assert oq[-1] == engine.stats.oracle_queries
        ot = [rec["ot"] for rec in data.steps if "ot" in rec]
        assert ot[-1] == engine.stats.oracle_true

    def test_lifecycle_transitions_recorded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        engine, _ = record_run(path)
        data = read_trace(str(path))
        gone_steps = [rec for rec in data.steps if rec.get("st") == "g"]
        assert len(gone_steps) == engine.gone_count

    def test_metrics_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        engine, _ = record_run(path, metrics_every=10)
        data = read_trace(str(path))
        assert data.metrics
        for rec in data.metrics:
            assert set(rec) == {"t", "i", "phi", "gone", "edges", "pend"}
        # Φ converges to 0 in a legitimate state
        assert data.final is not None and data.final["phi"] == 0

    def test_bounded_buffer(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlTraceSink(str(path), buffer_lines=4)
        engine = fdp_builder()()
        engine.tracer = sink
        engine.run(100, until=lambda e: False)
        assert len(sink._buf) < 4  # flushed continuously, never grows
        sink.close()
        assert sink.closed
        sink.close()  # idempotent

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceSink(str(tmp_path / "x.jsonl"), metrics_every=-1)
        with pytest.raises(ValueError):
            JsonlTraceSink(str(tmp_path / "y.jsonl"), buffer_lines=0)


class TestReadTrace:
    def test_roundtrips_meta(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTraceSink(str(path), meta={"scenario": "fdp", "n": 10}) as sink:
            engine = fdp_builder()()
            engine.tracer = sink
            engine.run(10, until=lambda e: False)
            sink.finalize(engine)
        data = read_trace(str(path))
        assert data.meta == {"scenario": "fdp", "n": 10}
        assert len(data.events) == 10

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":"s","i":0,"k":"t","p":0}\n')
        with pytest.raises(ConfigurationError, match="no trace header"):
            read_trace(str(path))

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":"h","v":99,"meta":{}}\n')
        with pytest.raises(ConfigurationError, match="unsupported trace version"):
            read_trace(str(path))

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":"h","v":1,"meta":{}}\nnot json\n')
        with pytest.raises(ConfigurationError, match="malformed trace line"):
            read_trace(str(path))

    def test_rejects_malformed_step(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":"h","v":1,"meta":{}}\n{"t":"s","i":0}\n')
        with pytest.raises(ConfigurationError, match="malformed step record"):
            read_trace(str(path))


class TestReplay:
    def test_fault_injected_fdp_trace_replays_bit_identically(self, tmp_path):
        """The ISSUE acceptance criterion: a trace exported from a
        fault-injected FDP run re-ingests through ReplayScheduler and
        reproduces the recorded run bit-identically."""
        path = tmp_path / "run.jsonl"
        original, build = record_run(path)
        assert original.gone_count > 0  # the run actually did something
        replayed = replay_trace(build, str(path))
        assert fingerprint(replayed) == fingerprint(original)

    def test_verify_catches_wrong_initial_state(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record_run(path, seed=11)
        wrong_build = fdp_builder(seed=12)
        # a different seed means different planted garbage: the replay
        # either diverges mid-schedule or fails final verification
        with pytest.raises(ConfigurationError, match="diverged"):
            replay_trace(wrong_build, str(path))

    def test_no_verify_skips_final_check(self, tmp_path):
        path = tmp_path / "run.jsonl"
        original, build = record_run(path)
        replayed = replay_trace(build, str(path), verify=False)
        assert replayed.step_count == original.step_count
