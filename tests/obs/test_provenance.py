"""Message lineage: happens-before chains over posted messages."""

from repro.core.potential import fdp_legitimate
from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.obs.provenance import ProvenanceTracker
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.process import Process
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode


class Chainer(Process):
    """Every delivery posts one follow-up to the carried reference."""

    def on_hop(self, ctx, info, remaining):
        if remaining > 0:
            ctx.send(info.ref, "hop", info, remaining - 1)

    def on_leaf(self, ctx):
        pass


def make(n=3, provenance=None):
    procs = [Chainer(i, Mode.STAYING) for i in range(n)]
    return (
        Engine(
            procs,
            OldestFirstScheduler(),
            capability=Capability.NONE,
            provenance=provenance,
            require_staying_per_component=False,
        ),
        procs,
    )


class TestLineage:
    def test_planted_message_is_root(self):
        prov = ProvenanceTracker()
        eng, procs = make(provenance=prov)
        msg = eng.post(None, procs[0].self_ref, "leaf", ())
        rec = prov.lineage(msg.seq)
        assert rec is not None
        assert rec.parent is None
        assert rec.depth == 0
        assert rec.planted
        assert prov.planted_seqs() == [msg.seq]

    def test_delivery_posts_get_parent_and_depth(self):
        prov = ProvenanceTracker()
        eng, procs = make(provenance=prov)
        info = RefInfo(procs[1].self_ref, Mode.STAYING)
        root = eng.post(None, procs[0].self_ref, "hop", (info, 3))
        eng.run(50, until=lambda e: False)
        # root hop → 3 descendant hops, one per remaining count
        descendants = prov.descendants_of(root.seq)
        assert len(descendants) == 3
        depths = sorted(prov.hops(seq) for seq in descendants)
        assert depths == [1, 2, 3]
        deepest = max(descendants, key=prov.hops)
        chain = prov.chain(deepest)
        assert [rec.seq for rec in chain][-1] == root.seq
        assert prov.root_seq(deepest) == root.seq
        assert not prov.lineage(deepest).planted  # sender is a process

    def test_age_and_delivery_tracking(self):
        prov = ProvenanceTracker()
        eng, procs = make(provenance=prov)
        msg = eng.post(None, procs[0].self_ref, "leaf", ())
        assert prov.age(msg.seq) is None  # still in flight
        eng.run(5, until=lambda e: False)
        rec = prov.lineage(msg.seq)
        assert rec.delivered_step is not None
        assert prov.age(msg.seq) == rec.delivered_step - rec.born_step

    def test_stats_shapes(self):
        prov = ProvenanceTracker()
        eng, procs = make(provenance=prov)
        info = RefInfo(procs[1].self_ref, Mode.STAYING)
        eng.post(None, procs[0].self_ref, "hop", (info, 2))
        eng.run(20, until=lambda e: False)
        hops = prov.hop_stats()
        ages = prov.age_stats()
        assert hops["count"] == len(prov)
        assert hops["max"] == 2
        assert ages["count"] >= 1
        assert ages["min"] >= 1

    def test_unknown_seq_queries_are_safe(self):
        prov = ProvenanceTracker()
        assert prov.lineage(999) is None
        assert prov.chain(999) == []
        assert prov.root_seq(999) == 999
        assert prov.hops(999) == 0
        assert prov.age(999) is None


class TestExitCausality:
    def _run_corrupted_fdp(self):
        n = 12
        edges = gen.random_connected(n, 5, seed=3)
        leaving = choose_leaving(n, edges, fraction=0.4, seed=3)
        prov = ProvenanceTracker()
        engine = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=7,
            corruption=HEAVY_CORRUPTION,
            provenance=prov,
        )
        assert engine.run(300_000, until=fdp_legitimate, check_every=64)
        return engine, prov

    def test_every_exit_has_a_record(self):
        engine, prov = self._run_corrupted_fdp()
        assert engine.gone_count > 0
        assert len(prov.exits) == engine.gone_count
        gone = {rec.pid for rec in prov.exits}
        assert gone == {
            pid
            for pid, p in engine.processes.items()
            if p.state.value == "gone"
        }

    def test_triggered_exits_chain_to_a_root(self):
        _, prov = self._run_corrupted_fdp()
        for rec in prov.exits:
            if rec.trigger_seq is None:
                assert rec.root_seq is None  # exit out of a timeout action
                continue
            assert rec.root_seq is not None
            chain = prov.chain(rec.trigger_seq)
            assert chain[-1].seq == rec.root_seq
            assert chain[-1].parent is None

    def test_exits_from_planted_is_subset(self):
        _, prov = self._run_corrupted_fdp()
        subset = prov.exits_from_planted()
        assert set(id(r) for r in subset) <= set(id(r) for r in prov.exits)
        planted = set(prov.planted_seqs())
        for rec in subset:
            assert rec.root_seq in planted

    def test_scenario_builder_tracks_planted_garbage(self):
        # the builder constructs the engine before scattering garbage, so
        # every planted message must carry a lineage root
        n = 10
        edges = gen.random_connected(n, 5, seed=3)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=3)
        prov = ProvenanceTracker()
        engine = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=5,
            corruption=HEAVY_CORRUPTION,
            provenance=prov,
        )
        pending = sum(len(ch) for ch in engine.channels.values())
        assert pending > 0
        assert len(prov.planted_seqs()) == pending


class TestZeroCostWhenOff:
    def test_engine_without_tracker_has_no_records(self):
        eng, procs = make(provenance=None)
        eng.post(None, procs[0].self_ref, "leaf", ())
        eng.run(5, until=lambda e: False)
        assert eng.provenance is None

    def test_identical_run_with_and_without_tracker(self):
        # provenance must be observation-only: same schedule, same state
        def run_one(prov):
            n = 8
            edges = gen.random_connected(n, 4, seed=2)
            leaving = choose_leaving(n, edges, fraction=0.25, seed=2)
            engine = build_fdp_engine(
                n,
                edges,
                leaving,
                seed=9,
                corruption=HEAVY_CORRUPTION,
                provenance=prov,
            )
            engine.run(5_000, until=fdp_legitimate, check_every=64)
            return engine

        a = run_one(None)
        b = run_one(ProvenanceTracker())
        assert a.step_count == b.step_count
        assert a.stats.as_dict() == b.stats.as_dict()
        assert a.potential() == b.potential()
