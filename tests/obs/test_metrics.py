"""Probe catalog and per-process Φ attribution."""

import pytest

from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.obs.metrics import (
    REGISTRY,
    phi_by_holder,
    phi_by_subject,
    sample_all,
    standard_probe_fns,
    top_phi,
)
from repro.sim.tracing import STANDARD_PROBES


def corrupted_engine(graph_mode=None, seed=7):
    n = 12
    edges = gen.random_connected(n, 5, seed=3)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=3)
    return build_fdp_engine(
        n,
        edges,
        leaving,
        seed=seed,
        corruption=HEAVY_CORRUPTION,
        graph_mode=graph_mode,
    )


class TestRegistry:
    def test_covers_standard_probes(self):
        assert set(STANDARD_PROBES) <= set(REGISTRY)

    def test_every_probe_documented(self):
        for probe in REGISTRY.values():
            assert probe.description
            assert probe.cost.startswith("O(")

    def test_sample_all_returns_floats(self):
        engine = corrupted_engine()
        engine.run(200, until=lambda e: False)
        sample = sample_all(engine)
        assert set(sample) == set(REGISTRY)
        assert all(isinstance(v, float) for v in sample.values())

    def test_standard_probe_fns_subset(self):
        fns = standard_probe_fns(("potential", "gone"))
        assert set(fns) == {"potential", "gone"}
        assert standard_probe_fns().keys() == REGISTRY.keys()

    def test_probe_is_callable(self):
        engine = corrupted_engine()
        assert REGISTRY["potential"](engine) == float(engine.potential())


class TestPhiAttribution:
    @pytest.mark.parametrize("graph_mode", ["incremental", "rebuild"])
    def test_subject_attribution_sums_to_phi(self, graph_mode):
        engine = corrupted_engine(graph_mode=graph_mode)
        engine.run(100, until=lambda e: False)
        table = phi_by_subject(engine)
        assert sum(table.values()) == engine.potential()
        assert all(v > 0 for v in table.values())

    @pytest.mark.parametrize("graph_mode", ["incremental", "rebuild"])
    def test_holder_attribution_sums_to_phi(self, graph_mode):
        engine = corrupted_engine(graph_mode=graph_mode)
        engine.run(100, until=lambda e: False)
        table = phi_by_holder(engine)
        assert sum(table.values()) == engine.potential()
        assert all(v > 0 for v in table.values())

    def test_modes_agree(self):
        # incremental live counters vs rebuild snapshot scan: same answer
        inc = corrupted_engine(graph_mode="incremental")
        reb = corrupted_engine(graph_mode="rebuild")
        assert phi_by_subject(inc) == phi_by_subject(reb)
        assert phi_by_holder(inc) == phi_by_holder(reb)

    def test_top_phi_ranked_and_bounded(self):
        engine = corrupted_engine()
        ranked = top_phi(engine, by="subject", limit=3)
        assert len(ranked) <= 3
        contributions = [c for _, c in ranked]
        assert contributions == sorted(contributions, reverse=True)

    def test_top_phi_rejects_bad_axis(self):
        engine = corrupted_engine()
        with pytest.raises(ValueError):
            top_phi(engine, by="nonsense")
