"""The seeded fault underlay: pure fates, partitions, bursts."""

from __future__ import annotations

import pytest

from repro.net.underlay import BURST_KINDS, Underlay, UnderlayConfig


def make(**overrides) -> Underlay:
    return Underlay(UnderlayConfig(**overrides))


class TestFatePurity:
    def test_same_attempt_same_fate_across_instances(self):
        """A fate is a pure function of (seed, src, dst, key, step) —
        two freshly built underlays agree on every attempt, which is
        what makes faulty runs replayable without a fault log."""
        a = make(seed=5, loss=0.3, dup=0.3, delay=0.3)
        b = make(seed=5, loss=0.3, dup=0.3, delay=0.3)
        for src in range(4):
            for dst in range(4):
                for attempt in range(20):
                    key = f"d:{attempt}:{1}"
                    assert a.fate(src, dst, key, 7) == b.fate(src, dst, key, 7)

    def test_fate_independent_of_query_order(self):
        u = make(seed=9, loss=0.5, dup=0.5, delay=0.5)
        keys = [f"d:{i}:1" for i in range(50)]
        forward = [u.fate(1, 2, k, 0) for k in keys]
        fresh = make(seed=9, loss=0.5, dup=0.5, delay=0.5)
        backward = [fresh.fate(1, 2, k, 0) for k in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_different_seed_differs_somewhere(self):
        a = make(seed=1, loss=0.5)
        b = make(seed=2, loss=0.5)
        fates_a = [a.fate(0, 1, f"d:{i}:1", 0).dropped for i in range(64)]
        fates_b = [b.fate(0, 1, f"d:{i}:1", 0).dropped for i in range(64)]
        assert fates_a != fates_b


class TestFateStatistics:
    def test_loss_rate_is_roughly_honored(self):
        u = make(seed=3, loss=0.3)
        n = 2000
        dropped = sum(
            u.fate(0, 1, f"d:{i}:1", 0).dropped for i in range(n)
        )
        assert 0.25 < dropped / n < 0.35

    def test_zero_rates_mean_clean_immediate_delivery(self):
        u = make(seed=4)
        for i in range(100):
            fate = u.fate(0, 1, f"d:{i}:1", 0)
            assert fate.arrivals == (0,)
            assert not (fate.dropped or fate.duplicated or fate.delayed)

    def test_certain_dup_yields_two_arrivals(self):
        u = make(seed=5, dup=1.0)
        fate = u.fate(0, 1, "d:0:1", 0)
        assert fate.duplicated and len(fate.arrivals) == 2

    def test_certain_delay_offsets_within_bounds(self):
        u = make(seed=6, delay=1.0, delay_min=3, delay_max=9)
        for i in range(100):
            fate = u.fate(0, 1, f"d:{i}:1", 0)
            assert fate.delayed
            assert all(3 <= off <= 9 for off in fate.arrivals)


class TestPartition:
    def test_blocks_only_cross_side_during_window(self):
        u = make(seed=7, partition_at=10, partition_for=5)
        sides = {pid: u.side(pid) for pid in range(16)}
        assert set(sides.values()) == {0, 1}, "both sides populated"
        a = next(p for p, s in sides.items() if s == 0)
        b = next(p for p, s in sides.items() if s == 1)
        c = next(p for p, s in sides.items() if s == 0 and p != a)
        # inside the window: cross-side blocked, same-side open
        assert u.fate(a, b, "d:0:1", 12).blocked
        assert not u.fate(a, c, "d:0:1", 12).blocked
        # outside: everything open again (the partition is transient)
        assert not u.fate(a, b, "d:0:1", 9).blocked
        assert not u.fate(a, b, "d:0:1", 15).blocked

    def test_sides_are_stable_for_the_run(self):
        u = make(seed=8)
        assert [u.side(p) for p in range(32)] == [u.side(p) for p in range(32)]


class TestBursts:
    def test_loss_burst_adds_to_base_rate(self):
        u = make(seed=9, loss=0.0)
        u.add_burst("loss", start=100, duration=50, amount=1.0)
        assert u.fate(0, 1, "d:0:1", 120).dropped  # inside: certain loss
        assert not u.fate(0, 1, "d:0:1", 99).dropped
        assert not u.fate(0, 1, "d:0:1", 150).dropped  # window closed

    def test_rates_clamp_at_one(self):
        u = make(seed=10, loss=0.8)
        u.add_burst("loss", start=0, duration=10, amount=0.8)
        assert u._rate("loss", 0.8, 5) == 1.0

    def test_partition_burst_opens_a_cut(self):
        u = make(seed=11)
        u.add_burst("partition", start=5, duration=10, amount=1.0)
        assert u.partition_active(8)
        assert not u.partition_active(20)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="burst kind"):
            make().add_burst("gamma_rays", start=0, duration=1, amount=0.1)

    def test_burst_kinds_cover_the_campaign_vocabulary(self):
        from repro.chaos.campaigns import NET_CAMPAIGN_KINDS

        assert {k.removeprefix("net_") for k in NET_CAMPAIGN_KINDS} == set(
            BURST_KINDS
        )


class TestConfig:
    def test_round_trip(self):
        cfg = UnderlayConfig(
            seed=12, loss=0.2, dup=0.1, delay=0.3, partition_at=64,
            partition_for=48,
        )
        assert UnderlayConfig.from_dict(cfg.as_dict()) == cfg

    def test_round_trip_without_partition(self):
        cfg = UnderlayConfig(seed=13, partition_at=None)
        assert UnderlayConfig.from_dict(cfg.as_dict()) == cfg
