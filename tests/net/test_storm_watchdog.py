"""RetransmitStormWatchdog: the transport-layer livelock supervisor."""

from __future__ import annotations

import pytest

from repro.chaos.watchdogs import (
    WATCHDOG_KINDS,
    RetransmitStormWatchdog,
    default_watchdogs,
    watchdog_from_config,
)
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import build_fdp_engine, choose_leaving
from repro.errors import WatchdogTrip
from repro.graphs import generators as gen
from repro.net import ReliableTransport, default_net_config

STORM_PARAMS = dict(check_every=8, window=4, min_retransmits=64, ratio=8.0)


def build_engine(seed, *, watchdogs=(), net_cfg=None):
    n = 12
    edges = gen.random_connected(n, 3, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
    engine = build_fdp_engine(
        n, edges, leaving, seed=seed, monitors=tuple(watchdogs)
    )
    if net_cfg is not None:
        ReliableTransport.from_config(net_cfg).install(engine)
    return engine


def pathological_backoff_config(seed=21):
    """The pinned storm scenario: a near-dead link hammered by a
    backoff that never backs off (rto=2, backoff=1.0, max_rto=2)."""
    cfg = default_net_config(
        seed, loss=0.97, dup=0.0, delay=0.0, partition_at=None
    )
    cfg.update({"rto": 2, "backoff": 1.0, "max_rto": 2})
    return cfg


class TestStormDetection:
    def test_pathological_backoff_trips(self):
        """Seeded acceptance scenario: retransmissions outpace frame
        deliveries by far more than 8:1, and the watchdog aborts the run
        within a few hundred steps instead of a burned budget."""
        watchdog = RetransmitStormWatchdog(**STORM_PARAMS)
        engine = build_engine(
            21, watchdogs=[watchdog], net_cfg=pathological_backoff_config()
        )
        with pytest.raises(WatchdogTrip) as excinfo:
            engine.run(50_000, until=fdp_legitimate, check_every=64)
        diagnosis = excinfo.value.diagnosis
        assert diagnosis is not None
        assert diagnosis.kind == "retransmit_storm"
        assert "retransmits" in diagnosis.detail
        assert watchdog.tripped is diagnosis
        stats = engine.net_stats
        assert stats.retransmits > STORM_PARAMS["min_retransmits"]
        assert stats.retransmits > 8.0 * max(1, stats.delivered)

    def test_healthy_lossy_run_does_not_trip(self):
        """At the default 10% fault campaign deliveries keep pace with
        retransmissions — the conjunction keeps the watchdog quiet."""
        watchdog = RetransmitStormWatchdog(**STORM_PARAMS)
        engine = build_engine(
            22, watchdogs=[watchdog], net_cfg=default_net_config(22)
        )
        assert engine.run(1_000_000, until=fdp_legitimate, check_every=64)
        assert watchdog.tripped is None

    def test_no_op_without_transport(self):
        watchdog = RetransmitStormWatchdog(**STORM_PARAMS)
        engine = build_engine(23, watchdogs=[watchdog])
        engine.run(20_000, until=fdp_legitimate, check_every=64)
        assert watchdog.tripped is None
        assert watchdog.checks > 0  # it sampled, it just had nothing to read

    def test_latch_mode_counts_without_raising(self):
        watchdog = RetransmitStormWatchdog(
            raise_on_trip=False, **STORM_PARAMS
        )
        engine = build_engine(
            24, watchdogs=[watchdog], net_cfg=pathological_backoff_config(24)
        )
        # latch mode never aborts: the run proceeds (and, with run_dry
        # fast-forwarding virtual time past the storm, even converges)
        # while the diagnosis stays latched for the soak tally
        engine.run(5_000, until=fdp_legitimate, check_every=64)
        assert watchdog.tripped is not None
        assert watchdog.tripped.kind == "retransmit_storm"
        assert watchdog.tripped.detail.startswith("retransmit storm")


class TestRegistry:
    def test_kind_registered_for_capsule_vocabulary(self):
        assert "retransmit_storm" in WATCHDOG_KINDS

    def test_config_round_trip(self):
        watchdog = RetransmitStormWatchdog(**STORM_PARAMS)
        rebuilt = watchdog_from_config(watchdog.config())
        assert isinstance(rebuilt, RetransmitStormWatchdog)
        assert rebuilt.config() == watchdog.config()

    def test_not_in_default_set(self):
        """The default set's overhead budget (bench_chaos) is measured
        on transport-less runs; the storm watchdog is opt-in (the CLI
        adds it to --net soak cells)."""
        assert not any(
            isinstance(w, RetransmitStormWatchdog) for w in default_watchdogs()
        )
