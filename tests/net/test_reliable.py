"""The reliable transport: ref conservation, dedup, backoff, run_dry,
gone-cancel, determinism, and the engine/core integration contract."""

from __future__ import annotations

import pytest

from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import (
    build_fdp_engine,
    build_fsp_engine,
    build_from_meta,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.net import (
    ReliableTransport,
    default_net_config,
    journal_digest,
)
from repro.sim.states import PState


def build_faulty_fdp(seed=2, n=12, *, net_overrides=None, **cfg_kw):
    edges = gen.random_connected(n, 3, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
    engine = build_fdp_engine(n, edges, leaving, seed=seed)
    cfg = default_net_config(seed, **cfg_kw)
    if net_overrides:
        cfg.update(net_overrides)
    transport = ReliableTransport.from_config(cfg).install(engine)
    return engine, transport


class TestConfig:
    def test_default_config_round_trips(self):
        cfg = default_net_config(4)
        transport = ReliableTransport.from_config(cfg)
        assert transport.config() == cfg

    def test_default_fault_campaign_shape(self):
        cfg = default_net_config(0)
        u = cfg["underlay"]
        assert u["loss"] == u["dup"] == u["delay"] == 0.1
        assert u["partition_at"] is not None and u["partition_for"] > 0
        assert cfg["backoff"] > 1.0  # exponential, not fixed-interval


class TestRefConservation:
    def test_total_loss_never_eats_channel_contents(self):
        """At loss=1.0 no frame ever arrives, so nothing is delivered —
        but every posted paper message still sits in its channel. Faults
        act on announcements, never on the channel set, so Lemma 2 ref
        conservation is untouched by arbitrarily bad underlays."""
        engine, transport = build_faulty_fdp(
            seed=3, loss=1.0, dup=0.0, delay=0.0, partition_at=None
        )
        converged = engine.run(5_000, until=fdp_legitimate, check_every=64)
        assert not converged
        assert transport.stats.delivered == 0
        assert transport.stats.dropped > 0
        # every tracked unannounced flight's message is still in the
        # destination channel, and the pending counter agrees
        tracked = 0
        for (_src, dst), flights in transport._flights.items():
            for flight in flights.values():
                assert not flight.announced
                assert flight.mseq in engine.channels[dst]
                tracked += 1
        assert tracked > 0
        assert engine.pending_count == sum(
            len(ch) for ch in engine.channels.values()
        )

    def test_partition_heals_and_run_converges(self):
        engine, _ = build_faulty_fdp(
            seed=4, loss=0.0, dup=0.0, delay=0.0,
            partition_at=16, partition_for=64,
        )
        assert engine.run(500_000, until=fdp_legitimate, check_every=64)


class TestDedup:
    def test_certain_duplication_delivers_each_message_once(self):
        engine, transport = build_faulty_fdp(
            seed=5, loss=0.0, dup=1.0, delay=0.0, partition_at=None
        )
        assert engine.run(500_000, until=fdp_legitimate, check_every=64)
        assert transport.stats.duplicated > 0
        assert transport.stats.deduped > 0
        # paper-level delivery stayed exactly-once: dedup absorbed every
        # duplicate frame before it could re-announce
        assert transport.stats.deduped <= transport.stats.delivered


class TestRetransmission:
    def test_backoff_grows_exponentially_and_caps(self):
        t = ReliableTransport(rto=10, backoff=2.0, max_rto=100, jitter=0.0)
        rtos = [t._rto_after(0, 1, 0, attempt) for attempt in range(1, 8)]
        assert rtos == [10, 20, 40, 80, 100, 100, 100]

    def test_jitter_stays_within_the_configured_band(self):
        t = ReliableTransport(rto=100, backoff=1.0, max_rto=100, jitter=0.25)
        for attempt in range(1, 50):
            assert 75 <= t._rto_after(0, 1, 0, attempt) <= 125

    def test_lossy_link_retransmits_until_acked(self):
        engine, transport = build_faulty_fdp(
            seed=6, loss=0.5, dup=0.0, delay=0.0, partition_at=None
        )
        assert engine.run(1_000_000, until=fdp_legitimate, check_every=64)
        assert transport.stats.retransmits > 0
        journal_events = {entry["ev"] for entry in transport.journal}
        assert "rtx" in journal_events and "drop" in journal_events


class TestRunDry:
    def test_all_frames_delayed_cannot_falsely_quiesce(self):
        """With every frame delayed by hundreds of virtual steps the
        scheduler starves; run_dry must fast-forward the transport clock
        so the run converges instead of quiescing non-legitimate."""
        engine, transport = build_faulty_fdp(
            seed=7,
            loss=0.0,
            dup=0.0,
            delay=0.0,
            partition_at=None,
            net_overrides=None,
        )
        # rebuild underlay with extreme delay via direct config
        from repro.net.underlay import Underlay, UnderlayConfig

        transport.underlay = Underlay(
            UnderlayConfig(seed=7, delay=1.0, delay_min=200, delay_max=400)
        )
        assert engine.run(1_000_000, until=fdp_legitimate, check_every=64)
        assert transport.stats.delayed > 0

    def test_fsp_converges_under_default_faults(self):
        """The FSP sleep/wake cycle is the run_dry acceptance scenario:
        an all-asleep population waiting on a delayed wake-up frame must
        be woken by transport-clock fast-forward, not a lucky timeout."""
        n, seed = 16, 8
        edges = gen.random_connected(n, 3, seed=seed)
        leaving = choose_leaving(n, edges, fraction=0.25, seed=seed)
        engine = build_fsp_engine(n, edges, leaving, seed=seed)
        ReliableTransport.from_config(default_net_config(seed)).install(engine)
        assert engine.run(1_000_000, until=fsp_legitimate, check_every=64)


class TestGoneTargets:
    def test_flights_to_departed_processes_are_cancelled(self):
        engine, transport = build_faulty_fdp(
            seed=9, loss=0.3, dup=0.1, delay=0.2, partition_at=None
        )
        assert engine.run(1_000_000, until=fdp_legitimate, check_every=64)
        # nothing keeps retransmitting at a gone process
        for (_src, dst), flights in transport._flights.items():
            if flights:
                assert engine.processes[dst].state is not PState.GONE
        journal_events = {entry["ev"] for entry in transport.journal}
        if transport.stats.cancelled_gone:
            assert "cancel" in journal_events


class TestDeterminism:
    def run_once(self, seed=10):
        engine, transport = build_faulty_fdp(seed=seed)
        converged = engine.run(1_000_000, until=fdp_legitimate, check_every=64)
        return (
            converged,
            engine.step_count,
            engine.potential(),
            transport.stats.as_dict(),
            journal_digest(list(transport.journal)),
        )

    def test_identical_runs_are_bit_identical(self):
        assert self.run_once() == self.run_once()

    def test_different_net_seed_changes_the_fault_pattern(self):
        engine_a, ta = build_faulty_fdp(seed=11)
        engine_b, tb = build_faulty_fdp(seed=11, net_overrides=None)
        tb.underlay.config = ta.underlay.config.__class__(
            **{**ta.underlay.config.as_dict(), "seed": 999}
        )
        engine_a.run(200_000, until=fdp_legitimate, check_every=64)
        engine_b.run(200_000, until=fdp_legitimate, check_every=64)
        assert ta.stats.as_dict() != tb.stats.as_dict()


class TestEngineIntegration:
    def test_install_reports_core_unsupported(self):
        n, seed = 10, 12
        edges = gen.random_connected(n, 3, seed=seed)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
        engine = build_fdp_engine(
            n, edges, leaving, seed=seed, engine_mode="verify"
        )
        ReliableTransport.from_config(default_net_config(seed)).install(engine)
        engine.attach()
        status = engine.core_status
        assert not status["active"]
        assert "reliable transport" in (status["reason"] or "")

    def test_soa_mode_falls_back_to_object_loop(self):
        n, seed = 10, 13
        edges = gen.random_connected(n, 3, seed=seed)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
        engine = build_fdp_engine(
            n, edges, leaving, seed=seed, engine_mode="soa"
        )
        ReliableTransport.from_config(default_net_config(seed)).install(engine)
        assert engine.run(1_000_000, until=fdp_legitimate, check_every=64)
        assert not engine.core_status["active"]

    def test_build_from_meta_installs_transport(self):
        meta = {
            "scenario": "fdp",
            "n": 10,
            "topology": "random_connected",
            "leaving": 0.3,
            "seed": 14,
            "corruption": 0.5,
            "net": default_net_config(14),
        }
        engine = build_from_meta(meta)
        assert engine.net is not None
        assert engine.net.config() == meta["net"]

    def test_transportless_engine_has_no_net(self):
        n, seed = 8, 15
        edges = gen.random_connected(n, 3, seed=seed)
        engine = build_fdp_engine(
            n, edges, choose_leaving(n, edges, fraction=0.2, seed=seed),
            seed=seed,
        )
        assert engine.net is None and engine.net_stats is None


class TestJournal:
    def test_journal_is_bounded(self):
        engine, transport = build_faulty_fdp(
            seed=16, net_overrides={"journal_cap": 32}, loss=0.4
        )
        engine.run(50_000, until=fdp_legitimate, check_every=64)
        assert len(transport.journal) <= 32

    def test_digest_is_canonical(self):
        entries = [{"at": 1, "ev": "drop", "src": 0, "dst": 1,
                    "tseq": 0, "attempt": 1}]
        assert journal_digest(entries) == journal_digest(list(entries))
        assert journal_digest(entries) != journal_digest([])


@pytest.mark.parametrize("scenario", ["fdp", "fsp"])
def test_default_fault_campaign_acceptance(scenario):
    """The ISSUE acceptance criterion: under 10% loss + dup + delay and
    one transient partition, both protocols converge with zero safety
    violations (monitors raise on any)."""
    from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor

    n, seed = 16, 17
    edges = gen.random_connected(n, 4, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.25, seed=seed)
    build = build_fdp_engine if scenario == "fdp" else build_fsp_engine
    pred = fdp_legitimate if scenario == "fdp" else fsp_legitimate
    engine = build(
        n, edges, leaving, seed=seed,
        monitors=(
            ConnectivityMonitor(check_every=16),
            PotentialMonitor(check_every=16),
        ),
    )
    ReliableTransport.from_config(default_net_config(seed)).install(engine)
    assert engine.run(2_000_000, until=pred, check_every=64)
