"""Net campaign kinds: underlay bursts on a seeded injection schedule."""

from __future__ import annotations

from repro.chaos.campaigns import (
    ALL_CAMPAIGN_KINDS,
    CAMPAIGN_KINDS,
    NET_CAMPAIGN_KINDS,
    ChaosCampaign,
)
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.net import ReliableTransport, default_net_config


def build(seed, *, net=True, monitors=()):
    n = 12
    edges = gen.random_connected(n, 3, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
    engine = build_fdp_engine(
        n, edges, leaving, seed=seed, monitors=tuple(monitors)
    )
    if net:
        cfg = default_net_config(seed, partition_at=None)
        ReliableTransport.from_config(cfg).install(engine)
    return engine


def test_default_kinds_exclude_net():
    """Opt-in: existing campaigns/capsules keep their injection stream."""
    assert not set(CAMPAIGN_KINDS) & set(NET_CAMPAIGN_KINDS)
    assert set(ALL_CAMPAIGN_KINDS) == set(CAMPAIGN_KINDS) | set(
        NET_CAMPAIGN_KINDS
    )
    assert ChaosCampaign(seed=1).kinds == CAMPAIGN_KINDS


def test_net_kinds_land_as_underlay_bursts():
    campaign = ChaosCampaign(
        seed=31, period=40, max_injections=12, kinds=NET_CAMPAIGN_KINDS
    )
    engine = build(31, monitors=[campaign])
    engine.run(50_000, until=fdp_legitimate, check_every=64)
    kinds = {r.kind for r in campaign.injections}
    assert kinds <= set(NET_CAMPAIGN_KINDS) and kinds
    bursts = engine.net.underlay.bursts
    assert len(bursts) == len(campaign.injections)
    for record, burst in zip(campaign.injections, bursts):
        assert record.kind == f"net_{burst.kind}"
        assert record.component == ()
        assert burst.start == record.step


def test_net_injection_rng_parity_without_transport():
    """The campaign draws burst duration/amount from its RNG *before*
    checking for a transport, so one net injection consumes the same
    RNG draws whether or not a transport is attached — a transport-less
    replay stays on the recorded injection stream (the net injection
    itself is then a recorded no-op)."""
    with_net = ChaosCampaign(seed=32, kinds=("net_loss",))
    engine_a = build(32, monitors=[])
    engine_a.attach()
    with_net._inject(engine_a)

    without_net = ChaosCampaign(seed=32, kinds=("net_loss",))
    engine_b = build(32, net=False, monitors=[])
    engine_b.attach()
    without_net._inject(engine_b)

    # identical RNG state after the injection: no draw was skipped
    assert with_net._rng.getstate() == without_net._rng.getstate()
    (rec_a,), (rec_b,) = with_net.injections, without_net.injections
    assert (rec_a.step, rec_a.kind) == (rec_b.step, rec_b.kind)
    assert rec_a.count == 1 and rec_b.count == 0
    assert engine_a.net.underlay.bursts
    assert engine_b.net is None


def test_fdp_converges_under_full_fault_matrix():
    """State faults and timing faults together: garbage + lies +
    scrambles + loss/dup/delay/partition bursts, one campaign."""
    campaign = ChaosCampaign(
        seed=33, period=60, max_injections=10, kinds=ALL_CAMPAIGN_KINDS
    )
    engine = build(33, monitors=[campaign])
    assert engine.run(2_000_000, until=fdp_legitimate, check_every=64)
    assert campaign.injections
