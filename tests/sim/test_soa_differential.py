"""Differential suite: the SoA core ≡ the object model, bit for bit.

``engine_mode="soa"`` routes execution through
:class:`repro.sim.soa.EngineCore` — int-slotted process columns, packed
channel records, tagged-int refs. The object model stays alive as the
oracle: ``engine_mode="verify"`` runs *both* and cross-checks after
every step, raising :class:`~repro.errors.StateViolation` on the first
divergence. These tests drive all three modes over identical scenarios
and assert the results are indistinguishable — not just Φ and counters
but the full final state: per-process lifecycle and mode, neighbourhood
stores in insertion order, anchors, channel contents message by message,
the whole stats block, trace records and LiveGraph snapshots.

Coverage mandated by the acceptance criteria:

* all four scheduler families (:data:`SCHEDULER_FACTORIES`);
* FDP and FSP under heavy corruption;
* Φ trajectories sampled mid-run, not just endpoints;
* LiveGraph snapshot agreement (edge multisets, node views);
* identical executed schedules (``ScheduleRecorder`` traces);
* fault-injected states (``scramble_beliefs`` mid-run — exercises the
  core-stale rebuild path);
* one chaos capsule replayed on both cores, with replay verification on
  (a counter divergence raises, so passing *is* the bit-identity check).

Comparisons use insertion-order lists, not sorted sets: the cores must
agree on *order* of dict iteration too, because downstream consumers
(schedulers, snapshot builders) iterate these dicts.
"""

from collections import Counter
from random import Random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.capsule import capture_capsule, replay_capsule
from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    SCHEDULER_FACTORIES,
    build_fdp_engine,
    build_from_meta,
    build_fsp_engine,
    choose_leaving,
    scramble_beliefs,
)
from repro.graphs import generators as gen
from repro.sim.refs import pid_of
from repro.sim.replay import ScheduleRecorder
from repro.sim.states import PState

MODES = ("objects", "soa", "verify")
SCHEDULERS = tuple(SCHEDULER_FACTORIES)

HYPOTHESIS_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)


@pytest.fixture(autouse=True)
def _unpin_engine_mode(monkeypatch):
    """Each test names its mode explicitly; neutralize the CI env pin so
    ``engine_mode="objects"`` really is the object model even under the
    ``REPRO_ENGINE_MODE=verify`` CI job."""
    monkeypatch.delenv("REPRO_ENGINE_MODE", raising=False)


# ------------------------------------------------------------ fingerprints


def final_state(engine) -> tuple:
    """The complete observable end state, insertion order preserved."""
    states = {
        pid: (proc.state.value, proc.mode.value)
        for pid, proc in engine.processes.items()
    }
    stores = {}
    anchors = {}
    for pid, proc in engine.processes.items():
        stores[pid] = [
            (pid_of(ref), None if belief is None else belief.value)
            for ref, belief in proc.N.items()
        ]
        anchor = proc.anchor
        anchors[pid] = (
            None if anchor is None else pid_of(anchor),
            None
            if proc.anchor_belief is None
            else proc.anchor_belief.value,
        )
    channels = {
        pid: [
            (
                msg.seq,
                msg.label,
                msg.sender,
                [
                    (pid_of(a.ref), None if a.mode is None else a.mode.value)
                    for a in msg.args
                ],
            )
            for msg in channel
        ]
        for pid, channel in engine.channels.items()
    }
    return (
        states,
        stores,
        anchors,
        channels,
        dict(engine.stats.__dict__),
        engine.step_count,
        engine.potential(),
    )


def edge_multiset(snap) -> Counter:
    return Counter((e.src, e.dst, e.kind, e.belief) for e in snap.edges)


def node_views(snap) -> dict:
    return {
        pid: (
            snap.node(pid).mode,
            snap.node(pid).state,
            snap.node(pid).channel_len,
        )
        for pid in snap.pids
    }


def _build(proto, scheduler, seed, n, *, engine_mode, tracer=None):
    edges = gen.random_connected(n, n // 2, seed=seed + 7)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=seed + 1)
    build = build_fdp_engine if proto == "fdp" else build_fsp_engine
    return build(
        n,
        edges,
        leaving,
        corruption=HEAVY_CORRUPTION,
        scheduler=SCHEDULER_FACTORIES[scheduler](seed),
        seed=seed,
        engine_mode=engine_mode,
        tracer=tracer,
    )


def assert_modes_agree(results: dict):
    """All three modes produced the identical value (pinpoint the pair)."""
    assert results["objects"] == results["soa"], "objects vs soa diverged"
    assert results["objects"] == results["verify"], (
        "objects vs verify diverged"
    )


# ------------------------------------------------------ final-state identity


@given(
    seed=st.integers(0, 10_000),
    steps=st.integers(50, 300),
    scheduler=st.sampled_from(SCHEDULERS),
)
@settings(max_examples=12, **HYPOTHESIS_SETTINGS)
def test_fdp_final_states_identical(seed, steps, scheduler):
    results = {}
    for mode in MODES:
        engine = _build("fdp", scheduler, seed, 12, engine_mode=mode)
        engine.run(steps, check_every=97)
        results[mode] = final_state(engine)
    assert_modes_agree(results)


@given(
    seed=st.integers(0, 10_000),
    steps=st.integers(50, 300),
    scheduler=st.sampled_from(SCHEDULERS),
)
@settings(max_examples=10, **HYPOTHESIS_SETTINGS)
def test_fsp_final_states_identical(seed, steps, scheduler):
    """FSP adds sleep/wake transitions and anchor delegation churn."""
    results = {}
    for mode in MODES:
        engine = _build("fsp", scheduler, seed, 10, engine_mode=mode)
        engine.run(steps, check_every=97)
        results[mode] = final_state(engine)
    assert_modes_agree(results)


# --------------------------------------------- trajectories and observation


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_phi_trajectory_and_livegraph_agree(scheduler):
    """Sample Φ and the materialized LiveGraph *mid-run*, chunk by
    chunk: agreement at every waypoint, not just the endpoint."""
    trajectories = {}
    for mode in MODES:
        engine = _build("fdp", scheduler, 71, 14, engine_mode=mode)
        waypoints = []
        for _ in range(8):
            engine.run(40, check_every=13)
            snap = engine.snapshot()
            waypoints.append(
                (
                    engine.step_count,
                    engine.potential(),
                    engine.pending_count,
                    engine.gone_count,
                    engine.asleep_count,
                    edge_multiset(snap),
                    node_views(snap),
                )
            )
        trajectories[mode] = waypoints
    assert_modes_agree(trajectories)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_trace_records_identical(scheduler):
    """The executed schedules — every (kind, pid, seq) triple in order —
    must match: the cores pick the same action at every step."""
    traces = {}
    finals = {}
    for mode in MODES:
        recorder = ScheduleRecorder()
        engine = _build(
            "fdp", scheduler, 5, 12, engine_mode=mode, tracer=recorder
        )
        engine.run(250, check_every=97)
        traces[mode] = list(recorder.events)
        finals[mode] = final_state(engine)
    assert_modes_agree(traces)
    assert_modes_agree(finals)
    assert traces["objects"], "run recorded no events"


# ------------------------------------------------------- fault injection


@given(seed=st.integers(0, 5_000))
@settings(max_examples=8, **HYPOTHESIS_SETTINGS)
def test_fault_injected_states_identical(seed):
    """Mid-run ``scramble_beliefs`` flags ``_dirty`` → the SoA core is
    marked stale and must rebuild from the mutated object state. Both
    cores then continue from the identical re-poisoned configuration."""
    results = {}
    for mode in MODES:
        engine = _build("fdp", "random", seed, 12, engine_mode=mode)
        rng = Random(seed + 13)
        engine.run(80, check_every=97)
        flipped = scramble_beliefs(engine, rng, lie_prob=0.5)
        engine.run(150, check_every=97)
        results[mode] = (flipped, final_state(engine))
    assert_modes_agree(results)


def test_core_survives_stale_rebuild():
    """After the out-of-band mutation the soa engine must *still* be on
    the fast path — rebuilt, not silently degraded to the object loop."""
    engine = _build("fdp", "random", 3, 12, engine_mode="soa")
    engine.run(60, check_every=97)
    assert engine.core_status["active"], engine.core_status
    scramble_beliefs(engine, Random(3), lie_prob=0.5)
    engine.run(60, check_every=97)
    assert engine.core_status["active"], engine.core_status


def test_verify_survives_monitor_injected_faults():
    """A chaos campaign mutating state from *inside* monitor dispatch is
    out-of-band for the mirror: verify mode must resync at the next
    step, not cross-check the stale mirror and diverge (regression:
    ``_stepping`` stayed True across monitor dispatch, so the campaign's
    posts never marked the core stale)."""
    from repro.chaos.campaigns import ChaosCampaign

    engine = _build("fdp", "random", 33, 12, engine_mode="verify")
    campaign = ChaosCampaign(seed=7, period=40, max_injections=3)
    engine.monitors.append(campaign)
    engine.run(600, check_every=64)
    assert campaign.injections, "campaign never fired"
    assert engine.core_status["active"], engine.core_status
    assert engine.verify_core_state()


# ------------------------------------------------------------ mode plumbing


def test_engine_mode_selects_core():
    for mode, active in (("objects", False), ("soa", True), ("verify", True)):
        engine = _build("fdp", "random", 1, 8, engine_mode=mode)
        engine.attach()
        status = engine.core_status
        assert status["engine_mode"] == mode
        assert status["active"] is active, status


def test_env_default_engine_mode(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_MODE", "soa")
    engine = _build("fdp", "random", 1, 8, engine_mode=None)
    assert engine.core_status["engine_mode"] == "soa"


def test_bad_engine_mode_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        _build("fdp", "random", 1, 8, engine_mode="bogus")


# ------------------------------------------------------------ chaos capsule

#: Campaign-free scenario meta: a campaign would re-attach itself as a
#: monitor on replay, which (correctly) drops the replay to the object
#: loop — only a campaign-free capsule exercises the core's replay driver.
CAPSULE_META = {
    "scenario": "fdp",
    "n": 14,
    "seed": 33,
    "topology": "random_connected",
    "leaving": 0.35,
    "corruption": 1.0,
    "scheduler": "random",
}


def test_capsule_replays_bit_identically_on_both_cores():
    """Capture a run as a capsule, replay it under every engine mode with
    verification on: ``replay_capsule`` raises on any counter divergence,
    and the full final states must match the original byte for byte. The
    soa replay must execute *on the core* (ReplayScheduler is core-
    drivable), not via object fallback."""
    recorder = ScheduleRecorder()
    original = build_from_meta(CAPSULE_META, tracer=recorder)
    original.run(400, check_every=97)
    capsule = capture_capsule(
        original,
        kind="budget",
        scenario=CAPSULE_META,
        recorder=recorder,
    )
    assert len(capsule.schedule) == original.step_count
    want = final_state(original)

    for mode in MODES:
        replayed = replay_capsule(capsule, verify=True, engine_mode=mode)
        assert final_state(replayed) == want, f"replay diverged under {mode}"
        if mode != "objects":
            assert replayed.core_status["active"], replayed.core_status


def test_capsule_roundtrips_through_json_across_cores(tmp_path):
    """Same as above but through the on-disk representation — what a
    triage session actually loads."""
    recorder = ScheduleRecorder()
    original = build_from_meta(CAPSULE_META, tracer=recorder)
    original.run(300, check_every=97)
    capsule = capture_capsule(
        original, kind="budget", scenario=CAPSULE_META, recorder=recorder
    )
    path = str(tmp_path / "capsule.json")
    capsule.save(path)
    from repro.chaos.capsule import Capsule

    loaded = Capsule.load(path)
    finals = {
        mode: final_state(replay_capsule(loaded, verify=True, engine_mode=mode))
        for mode in MODES
    }
    assert_modes_agree(finals)


# ------------------------------------------------------------ long horizon


def test_long_run_to_quiescence_identical():
    """A run long enough for exits, hibernation and channel drain — the
    regimes where incremental counter drift would surface."""
    results = {}
    for mode in MODES:
        engine = _build("fdp", "random", 97, 16, engine_mode=mode)
        engine.run(4_000, check_every=97)
        results[mode] = final_state(engine)
    assert_modes_agree(results)
    gone = sum(
        1
        for state, _ in results["objects"][0].values()
        if state == PState.GONE.value
    )
    assert gone > 0, "scenario too short to exercise departures"
