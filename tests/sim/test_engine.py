"""Unit tests for the engine: dispatch, lifecycle, snapshots, runs."""

import pytest

from repro.errors import ConfigurationError, StateViolation, UnknownActionError
from repro.graphs.snapshot import EdgeKind
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.process import Process
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode, PState


class Recorder(Process):
    def __init__(self, pid, mode=Mode.STAYING):
        super().__init__(pid, mode)
        self.refs: dict[Ref, Mode] = {}
        self.pings = 0

    def stored_refs(self):
        return (RefInfo(r, m) for r, m in self.refs.items())

    def on_ping(self, ctx, *args):
        self.pings += 1

    def on_exit_now(self, ctx):
        ctx.exit()


def make(procs, **kw):
    kw.setdefault("scheduler", OldestFirstScheduler())
    kw.setdefault("capability", Capability.BOTH)
    kw.setdefault("require_staying_per_component", False)
    return Engine(procs, **kw)


class TestConstruction:
    def test_duplicate_pid_rejected(self):
        with pytest.raises(ConfigurationError):
            make([Recorder(1), Recorder(1)])

    def test_channels_created_per_process(self):
        eng = make([Recorder(0), Recorder(1)])
        assert set(eng.channels) == {0, 1}

    def test_ref_lookup(self):
        eng = make([Recorder(0)])
        assert eng.ref(0) == Ref(0)
        with pytest.raises(ConfigurationError):
            eng.ref(99)


class TestPost:
    def test_post_assigns_increasing_seqs(self):
        eng = make([Recorder(0)])
        m1 = eng.post(None, eng.ref(0), "ping", ())
        m2 = eng.post(None, eng.ref(0), "ping", ())
        assert m2.seq > m1.seq

    def test_post_to_unknown_target_rejected(self):
        eng = make([Recorder(0)])
        with pytest.raises(ConfigurationError):
            eng.post(None, Ref(7), "ping", ())

    def test_post_with_unknown_ref_param_rejected(self):
        """No references that do not belong to a process in the system."""
        eng = make([Recorder(0)])
        with pytest.raises(ConfigurationError):
            eng.post(None, eng.ref(0), "ping", (RefInfo(Ref(9)),))

    def test_post_counts_stats(self):
        eng = make([Recorder(0)])
        eng.post(None, eng.ref(0), "ping", ())
        assert eng.stats.messages_posted == 1


class TestDispatch:
    def test_delivery_invokes_handler(self):
        r = Recorder(0)
        eng = make([r])
        eng.post(None, eng.ref(0), "ping", ())
        eng.attach()
        # one timeout may fire first under oldest-first; allow a few steps
        for _ in range(5):
            if r.pings:
                break
            eng.step()
        assert r.pings == 1
        assert eng.stats.deliveries == 1

    def test_unknown_label_strict_raises(self):
        eng = make([Recorder(0)], strict=True)
        eng.post(None, eng.ref(0), "nonsense", ())
        eng.attach()
        with pytest.raises(UnknownActionError):
            for _ in range(5):
                eng.step()

    def test_unknown_label_lenient_drops(self):
        """The model: 'all other messages will be ignored by the processes'."""
        r = Recorder(0)
        eng = make([r], strict=False)
        eng.post(None, eng.ref(0), "nonsense", ())
        eng.attach()
        for _ in range(5):
            eng.step()
        assert eng.stats.dropped_unknown == 1
        assert len(eng.channels[0]) == 0

    def test_exit_removes_future_events(self):
        r = Recorder(0, Mode.LEAVING)
        eng = make([r])
        eng.post(None, eng.ref(0), "exit_now", ())
        eng.post(None, eng.ref(0), "ping", ())
        eng.attach()
        for _ in range(10):
            if eng.step() is None:
                break
        assert r.state is PState.GONE
        # the pending ping was never delivered (it died with the process)
        assert r.pings == 0

    def test_illegal_transition_rejected(self):
        r = Recorder(0)
        eng = make([r])
        eng.attach()
        eng._transition(r, PState.GONE)
        with pytest.raises(StateViolation):
            eng._transition(r, PState.AWAKE)


class TestAttachValidation:
    def test_component_without_staying_rejected(self):
        a = Recorder(0, Mode.LEAVING)
        eng = Engine(
            [a],
            OldestFirstScheduler(),
            capability=Capability.EXIT,
            require_staying_per_component=True,
        )
        with pytest.raises(ConfigurationError, match="staying"):
            eng.attach()

    def test_initial_components_recorded(self):
        a, b, c = Recorder(0), Recorder(1), Recorder(2)
        a.refs[b.self_ref] = Mode.STAYING
        eng = make([a, b, c])
        eng.attach()
        comps = {frozenset(comp) for comp in eng.initial_components}
        assert comps == {frozenset({0, 1}), frozenset({2})}

    def test_initial_components_before_attach_raises(self):
        eng = make([Recorder(0)])
        with pytest.raises(ConfigurationError):
            _ = eng.initial_components


class TestSnapshot:
    def test_explicit_and_implicit_edges(self):
        a, b = Recorder(0), Recorder(1)
        a.refs[b.self_ref] = Mode.STAYING
        eng = make([a, b])
        eng.post(0, eng.ref(1), "ping", (RefInfo(a.self_ref, Mode.STAYING),))
        snap = eng.snapshot()
        kinds = {(e.src, e.dst): e.kind for e in snap.edges}
        assert kinds[(0, 1)] is EdgeKind.EXPLICIT
        assert kinds[(1, 0)] is EdgeKind.IMPLICIT

    def test_gone_processes_excluded(self):
        a, b = Recorder(0, Mode.LEAVING), Recorder(1)
        b.refs[a.self_ref] = Mode.LEAVING
        eng = make([a, b])
        eng.post(None, eng.ref(0), "exit_now", ())
        eng.attach()
        for _ in range(10):
            if a.state is PState.GONE:
                break
            eng.step()
        snap = eng.snapshot()
        assert 0 not in snap
        assert all(e.dst != 0 or e.src != 0 for e in snap.edges) or True
        # b's dangling ref to gone a is not an edge of PG's node set
        assert snap.in_edges(0) == []

    def test_snapshot_cached_until_state_changes(self):
        a = Recorder(0)
        eng = make([a])
        s1 = eng.snapshot()
        s2 = eng.snapshot()
        assert s1 is s2
        eng.post(None, eng.ref(0), "ping", ())
        assert eng.snapshot() is not s1


class TestRun:
    def test_run_until_predicate(self):
        r = Recorder(0)
        eng = make([r])
        for _ in range(3):
            eng.post(None, eng.ref(0), "ping", ())
        ok = eng.run(100, until=lambda e: r.pings == 3)
        assert ok

    def test_run_budget_returns_false(self):
        r = Recorder(0)
        eng = make([r])
        assert eng.run(5, until=lambda e: False) is False

    def test_run_budget_raises_when_requested(self):
        from repro.errors import ConvergenceError

        eng = make([Recorder(0)])
        with pytest.raises(ConvergenceError):
            eng.run(3, until=lambda e: False, raise_on_budget=True)

    def test_budget_error_carries_progress_diagnostics(self):
        from repro.errors import ConvergenceError

        r = Recorder(0)
        eng = make([r])
        for _ in range(10):
            eng.post(None, eng.ref(0), "ping", ())
        with pytest.raises(ConvergenceError) as excinfo:
            eng.run(4, until=lambda e: False, raise_on_budget=True)
        diagnostics = excinfo.value.diagnostics
        assert diagnostics["step"] == 4
        for key in ("phi", "pending", "edges", "gone", "asleep",
                    "last_progress_step"):
            assert key in diagnostics
        assert diagnostics == eng.progress_diagnostics()
        assert excinfo.value.stats == eng.stats.as_dict()

    def test_quiescence_detected(self):
        """A process that sleeps with no pending messages quiesces the run."""

        class Sleeper(Process):
            def timeout(self, ctx):
                ctx.sleep()

        eng = make([Sleeper(0, Mode.LEAVING)])
        result = eng.run(100, until=lambda e: False)
        assert result is False
        assert eng.step_count < 100  # stopped early at quiescence

    def test_until_checked_before_first_step(self):
        eng = make([Recorder(0)])
        assert eng.run(0, until=lambda e: True)

    def test_predicate_evaluated_once_per_interval(self):
        """Regression: when check_every divides max_steps the predicate
        used to be evaluated twice at the budget boundary (once by the
        final loop iteration, once by the post-loop safety check)."""
        eng = make([Recorder(0)])
        calls = 0

        def pred(engine):
            nonlocal calls
            calls += 1
            return False

        assert eng.run(40, until=pred, check_every=8) is False
        assert eng.step_count == 40  # Recorder never quiesces (timeouts)
        assert calls == 1 + 40 // 8  # pre-loop check + one per interval

    def test_final_partial_interval_still_checked(self):
        """When check_every does NOT divide max_steps, the tail steps
        after the last full interval still get one closing check."""
        eng = make([Recorder(0)])
        calls = 0

        def pred(engine):
            nonlocal calls
            calls += 1
            return False

        assert eng.run(10, until=pred, check_every=8) is False
        assert calls == 1 + 10 // 8 + 1

    def test_predicate_satisfied_in_tail_interval(self):
        eng = make([Recorder(0)])
        # Becomes true at step 10; only the post-loop check can see it
        # (the last in-loop check fires at step 8).
        assert eng.run(10, until=lambda e: e.step_count >= 10, check_every=8)


class TestMeasurements:
    def test_potential_counts_invalid_edges(self):
        a, b = Recorder(0), Recorder(1, Mode.LEAVING)
        a.refs[b.self_ref] = Mode.STAYING  # invalid: b is leaving
        eng = make([a, b])
        assert eng.potential() == 1

    def test_potential_zero_for_valid_state(self):
        a, b = Recorder(0), Recorder(1, Mode.LEAVING)
        a.refs[b.self_ref] = Mode.LEAVING
        eng = make([a, b])
        assert eng.potential() == 0

    def test_describe_keys(self):
        eng = make([Recorder(0)])
        desc = eng.describe()
        for key in ("step", "processes", "gone", "edges", "potential", "stats"):
            assert key in desc

    def test_exit_auditor_called_pre_transition(self):
        seen = []

        def auditor(engine, pid):
            seen.append((pid, engine.processes[pid].state))

        r = Recorder(0, Mode.LEAVING)
        eng = make([r])
        eng.exit_auditors.append(auditor)
        eng.post(None, eng.ref(0), "exit_now", ())
        eng.attach()
        for _ in range(10):
            if r.state is PState.GONE:
                break
            eng.step()
        assert seen == [(0, PState.AWAKE)]
