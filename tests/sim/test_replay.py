"""Record-and-replay: any schedule is exactly reproducible by value."""

import pytest

from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    build_fsp_engine,
    choose_leaving,
)
from repro.errors import ConfigurationError
from repro.graphs import generators as gen
from repro.sim.replay import (
    RecordedEvent,
    ReplayScheduler,
    ScheduleRecorder,
    replay_run,
)
from repro.sim.scheduler import RandomScheduler


def fingerprint(engine) -> tuple:
    """A deep state digest: per-process vars, states, channels, stats."""
    return (
        engine.step_count,
        tuple(sorted((pid, p.state.value) for pid, p in engine.processes.items())),
        tuple(
            sorted(
                (pid, tuple(repr(m) for m in ch))
                for pid, ch in engine.channels.items()
            )
        ),
        tuple(
            sorted(
                (pid, repr(sorted(p.describe_vars().items())))
                for pid, p in engine.processes.items()
            )
        ),
        engine.potential(),
    )


def builder(kind="fdp", seed=11):
    n = 10
    edges = gen.random_connected(n, 5, seed=3)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=3)
    factory = build_fdp_engine if kind == "fdp" else build_fsp_engine
    return lambda: factory(
        n,
        edges,
        leaving,
        seed=seed,
        corruption=HEAVY_CORRUPTION,
        scheduler=RandomScheduler(seed),
    )


@pytest.mark.parametrize("kind", ["fdp", "fsp"])
def test_replay_reproduces_random_run_exactly(kind):
    recorder = ScheduleRecorder()
    original = builder(kind)()
    original.tracer = recorder
    until = fdp_legitimate if kind == "fdp" else fsp_legitimate
    assert original.run(300_000, until=until, check_every=64)
    assert len(recorder) == original.step_count

    replayed = replay_run(builder(kind), recorder.events)
    assert fingerprint(replayed) == fingerprint(original)


def test_partial_replay_prefix():
    recorder = ScheduleRecorder()
    original = builder()()
    original.tracer = recorder
    original.run(50, until=lambda e: False)
    replayed = replay_run(builder(), recorder.events[:20])
    assert replayed.step_count == 20


def test_divergence_detected_on_wrong_initial_state():
    recorder = ScheduleRecorder()
    original = builder(seed=11)()
    original.tracer = recorder
    original.run(200, until=lambda e: False)

    def other_build():
        # different run seed ⇒ different corruption ⇒ different channels
        return builder(seed=12)()

    with pytest.raises(ConfigurationError, match="diverged"):
        replay_run(other_build, recorder.events)


def test_replay_scheduler_exhausts_then_quiesces():
    sched = ReplayScheduler([])
    engine = builder()()
    engine.scheduler = sched
    assert engine.run(100, until=lambda e: False) is False
    assert engine.step_count == 0


def test_bad_event_kind_rejected():
    engine = builder()()
    engine.scheduler = ReplayScheduler([RecordedEvent(kind="bogus", pid=0)])
    with pytest.raises(ConfigurationError, match="unknown recorded"):
        engine.run(1, until=lambda e: False)
