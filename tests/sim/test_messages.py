"""Unit tests for messages and piggybacked mode information."""

import pytest

from repro.sim.messages import Message, RefInfo, iter_refinfos, iter_refs
from repro.sim.refs import Ref
from repro.sim.states import Mode


class TestRefInfo:
    def test_carries_ref_and_mode(self):
        info = RefInfo(Ref(1), Mode.LEAVING)
        assert info.ref == Ref(1)
        assert info.mode is Mode.LEAVING

    def test_mode_optional(self):
        assert RefInfo(Ref(1)).mode is None

    def test_believed(self):
        assert RefInfo(Ref(1), Mode.STAYING).believed(Mode.STAYING)
        assert not RefInfo(Ref(1), Mode.STAYING).believed(Mode.LEAVING)
        assert not RefInfo(Ref(1)).believed(Mode.STAYING)

    def test_with_mode_returns_new_info(self):
        a = RefInfo(Ref(1), Mode.STAYING)
        b = a.with_mode(Mode.LEAVING)
        assert a.mode is Mode.STAYING
        assert b.mode is Mode.LEAVING
        assert b.ref == a.ref

    def test_frozen(self):
        with pytest.raises(Exception):
            RefInfo(Ref(1)).mode = Mode.STAYING


class TestMessage:
    def test_refinfos_yields_parameter_refs(self):
        msg = Message("present", (RefInfo(Ref(1), Mode.STAYING), "data"), seq=0)
        assert [i.ref for i in msg.refinfos()] == [Ref(1)]

    def test_refs_shortcut(self):
        msg = Message("x", (RefInfo(Ref(1)), RefInfo(Ref(2))), seq=0)
        assert list(msg.refs()) == [Ref(1), Ref(2)]

    def test_sender_excluded_from_equality(self):
        a = Message("x", (), seq=1, sender=5)
        b = Message("x", (), seq=1, sender=7)
        assert a == b


class TestIterRefinfos:
    def test_nested_containers(self):
        payload = (
            RefInfo(Ref(1)),
            [RefInfo(Ref(2)), ("deep", RefInfo(Ref(3)))],
            {"k": RefInfo(Ref(4))},
            frozenset({RefInfo(Ref(5))}),
            42,
            "str",
        )
        pids = sorted(r._pid for r in iter_refs(payload))
        assert pids == [1, 2, 3, 4, 5]

    def test_empty(self):
        assert list(iter_refinfos(())) == []

    def test_bare_ref_rejected(self):
        """Bare references would lose their mode piggyback — refuse them."""
        with pytest.raises(TypeError, match="bare Ref"):
            list(iter_refinfos((Ref(1),)))

    def test_bare_ref_nested_rejected(self):
        with pytest.raises(TypeError):
            list(iter_refinfos(([Ref(1)],)))
