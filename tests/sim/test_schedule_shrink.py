"""Failure localization: shortest failing schedule prefix."""

import pytest

from repro.core.scenarios import build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.sim.replay import (
    ScheduleRecorder,
    replay_run,
    shortest_failing_prefix,
)
from repro.sim.scheduler import RandomScheduler
from repro.sim.states import PState


def builder():
    n = 8
    edges = gen.ring(n)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=2)
    return build_fdp_engine(
        n, edges, leaving, seed=2, scheduler=RandomScheduler(2)
    )


def record_until(predicate, budget=100_000):
    recorder = ScheduleRecorder()
    engine = builder()
    engine.tracer = recorder
    assert engine.run(budget, until=predicate, check_every=1)
    return recorder.events, engine


class TestShortestFailingPrefix:
    def test_localizes_first_exit(self):
        def some_exit(engine):
            return any(
                p.state is PState.GONE for p in engine.processes.values()
            )

        events, engine = record_until(some_exit)
        k = shortest_failing_prefix(builder, events, some_exit)
        # prefix k exhibits the exit, prefix k-1 does not
        assert some_exit(replay_run(builder, events[:k]))
        assert not some_exit(replay_run(builder, events[: k - 1]))

    def test_zero_when_initial_state_fails(self):
        events, _ = record_until(lambda e: e.step_count >= 5)
        assert shortest_failing_prefix(builder, events, lambda e: True) == 0

    def test_raises_when_never_failing(self):
        events, _ = record_until(lambda e: e.step_count >= 5)
        with pytest.raises(ValueError):
            shortest_failing_prefix(builder, events, lambda e: False)

    def test_localizes_message_count_threshold(self):
        def threshold(engine):
            return engine.stats.messages_posted >= 20

        events, _ = record_until(threshold)
        k = shortest_failing_prefix(builder, events, threshold)
        assert threshold(replay_run(builder, events[:k]))
        if k:
            assert not threshold(replay_run(builder, events[: k - 1]))
