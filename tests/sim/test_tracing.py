"""Tests for the tracer and metric series recorder."""

import pytest

from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode, PState
from repro.sim.tracing import (
    DEFAULT_TRACER_CAPACITY,
    STANDARD_PROBES,
    SeriesRecorder,
    Tracer,
)


class Ping(Process):
    def on_ping(self, ctx):
        pass


def make(procs, tracer=None, monitors=()):
    return Engine(
        procs,
        OldestFirstScheduler(),
        capability=Capability.NONE,
        tracer=tracer,
        monitors=monitors,
        require_staying_per_component=False,
    )


class TestTracer:
    def test_records_executed_steps(self):
        t = Tracer()
        p = Ping(0, Mode.STAYING)
        eng = make([p], tracer=t)
        eng.post(None, p.self_ref, "ping", ())
        eng.run(5, until=lambda e: False)
        assert len(t) == 5
        assert "ping" in t.labels()

    def test_by_pid_filters(self):
        t = Tracer()
        a, b = Ping(0, Mode.STAYING), Ping(1, Mode.STAYING)
        eng = make([a, b], tracer=t)
        eng.run(8, until=lambda e: False)
        assert all(e.pid == 0 for e in t.by_pid(0))
        assert len(t.by_pid(0)) + len(t.by_pid(1)) == len(t)

    def test_bounded_capacity(self):
        t = Tracer(capacity=3)
        eng = make([Ping(0, Mode.STAYING)], tracer=t)
        eng.run(10, until=lambda e: False)
        assert len(t) == 3

    def test_default_capacity_is_bounded(self):
        t = Tracer()
        assert t.capacity == DEFAULT_TRACER_CAPACITY
        assert t.events.maxlen == DEFAULT_TRACER_CAPACITY

    def test_unbounded_is_explicit_opt_in(self):
        t = Tracer(capacity=None)
        assert t.events.maxlen is None

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_capacity_validated(self, capacity):
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            Tracer(capacity=capacity)

    def test_long_run_memory_stays_bounded(self):
        # the PR 3 livelock regime: many steps, small ring — memory is
        # O(capacity), and the ring holds exactly the newest suffix
        t = Tracer(capacity=64)
        eng = make([Ping(0, Mode.STAYING), Ping(1, Mode.STAYING)], tracer=t)
        eng.run(5_000, until=lambda e: False)
        assert eng.step_count == 5_000
        assert len(t) == 64
        indices = [e.index for e in t.events]
        assert indices == list(range(5_000 - 64, 5_000))


class TestSeriesRecorder:
    def test_samples_every_k_steps(self):
        rec = SeriesRecorder(every=2)
        eng = make([Ping(0, Mode.STAYING)], monitors=[rec])
        eng.run(10, until=lambda e: False)
        assert len(rec.steps) == 5
        assert rec.steps == [2, 4, 6, 8, 10]

    def test_standard_probes_present(self):
        rec = SeriesRecorder()
        for name in ("potential", "gone", "pending_messages", "edges"):
            assert name in rec.probes

    def test_custom_probe(self):
        rec = SeriesRecorder(probes={"const": lambda e: 42.0})
        eng = make([Ping(0, Mode.STAYING)], monitors=[rec])
        eng.run(3, until=lambda e: False)
        assert rec.series["const"] == [42.0, 42.0, 42.0]
        assert rec.last("const") == 42.0

    def test_manual_sample(self):
        rec = SeriesRecorder()
        eng = make([Ping(0, Mode.STAYING)])
        rec.sample(eng)
        assert rec.steps == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SeriesRecorder(every=0)

    def test_probe_values_track_state(self):
        rec = SeriesRecorder(every=1)
        p = Ping(0, Mode.STAYING)
        eng = make([p], monitors=[rec])
        eng.post(None, p.self_ref, "ping", ())
        eng.post(None, p.self_ref, "ping", ())
        eng.run(6, until=lambda e: False)
        # pending messages decrease as pings are consumed
        pend = rec.series["pending_messages"]
        assert pend[0] >= pend[-1]

    def test_pre_run_and_final_step_sampling(self):
        rec = SeriesRecorder(every=1)
        p = Ping(0, Mode.STAYING)
        eng = make([p], monitors=[rec])
        eng.post(None, p.self_ref, "ping", ())
        rec.sample(eng)  # pre-run: step 0, message still pending
        eng.run(4, until=lambda e: False)
        rec.sample(eng)  # explicit final-step sample after the run
        assert rec.steps[0] == 0
        assert rec.steps[-1] == eng.step_count == 4
        assert rec.series["pending_messages"][0] == 1.0
        assert rec.last("pending_messages") == 0.0
        # the per-step monitor samples plus the two manual ones
        assert len(rec.steps) == 6

    def test_every_gt_one_aligns_with_step_count(self):
        rec = SeriesRecorder(every=3)
        eng = make([Ping(0, Mode.STAYING), Ping(1, Mode.STAYING)], monitors=[rec])
        eng.run(10, until=lambda e: False)
        assert rec.steps == [3, 6, 9]
        assert all(s % 3 == 0 for s in rec.steps)
        assert all(len(v) == len(rec.steps) for v in rec.series.values())

    def test_custom_probe_dict_is_copied_and_isolated(self):
        probes = {"const": lambda e: 42.0}
        rec = SeriesRecorder(probes=probes)
        probes["late"] = lambda e: 1.0  # mutating the caller's dict
        eng = make([Ping(0, Mode.STAYING)], monitors=[rec])
        eng.run(2, until=lambda e: False)
        assert set(rec.series) == {"const"}  # does not affect the recorder
        assert "potential" not in rec.probes  # custom dict replaces standard


class TestProbesMatchRebuildSnapshot:
    """Regression for the O(n)/O(m) probes bug: the standard probes read
    live O(1) counters; their values must equal what a from-scratch
    rebuild of the state computes."""

    @pytest.mark.parametrize("graph_mode", ["incremental", "rebuild"])
    def test_differential(self, graph_mode):
        n = 12
        edges = gen.random_connected(n, 5, seed=3)
        leaving = choose_leaving(n, edges, fraction=0.4, seed=3)
        engine = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=7,
            corruption=HEAVY_CORRUPTION,
            graph_mode=graph_mode,
        )
        rec = SeriesRecorder(every=7)
        engine.monitors.append(rec)
        for _ in range(30):
            engine.run(7, until=lambda e: False)
            snap = engine.rebuild_snapshot()
            states = [p.state for p in engine.processes.values()]
            expect = {
                "gone": float(sum(1 for s in states if s is PState.GONE)),
                "asleep": float(sum(1 for s in states if s is PState.ASLEEP)),
                "edges": float(len(snap.edges)),
                "pending_messages": float(
                    sum(len(ch) for ch in engine.channels.values())
                ),
                "messages_posted": float(engine.stats.messages_posted),
            }
            for name, want in expect.items():
                assert STANDARD_PROBES[name](engine) == want, (name, graph_mode)
        assert engine.gone_count > 0  # the scenario exercised lifecycle
