"""Tests for the tracer and metric series recorder."""

import pytest

from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode
from repro.sim.tracing import STANDARD_PROBES, SeriesRecorder, Tracer


class Ping(Process):
    def on_ping(self, ctx):
        pass


def make(procs, tracer=None, monitors=()):
    return Engine(
        procs,
        OldestFirstScheduler(),
        capability=Capability.NONE,
        tracer=tracer,
        monitors=monitors,
        require_staying_per_component=False,
    )


class TestTracer:
    def test_records_executed_steps(self):
        t = Tracer()
        p = Ping(0, Mode.STAYING)
        eng = make([p], tracer=t)
        eng.post(None, p.self_ref, "ping", ())
        eng.run(5, until=lambda e: False)
        assert len(t) == 5
        assert "ping" in t.labels()

    def test_by_pid_filters(self):
        t = Tracer()
        a, b = Ping(0, Mode.STAYING), Ping(1, Mode.STAYING)
        eng = make([a, b], tracer=t)
        eng.run(8, until=lambda e: False)
        assert all(e.pid == 0 for e in t.by_pid(0))
        assert len(t.by_pid(0)) + len(t.by_pid(1)) == len(t)

    def test_bounded_capacity(self):
        t = Tracer(capacity=3)
        eng = make([Ping(0, Mode.STAYING)], tracer=t)
        eng.run(10, until=lambda e: False)
        assert len(t) == 3


class TestSeriesRecorder:
    def test_samples_every_k_steps(self):
        rec = SeriesRecorder(every=2)
        eng = make([Ping(0, Mode.STAYING)], monitors=[rec])
        eng.run(10, until=lambda e: False)
        assert len(rec.steps) == 5
        assert rec.steps == [2, 4, 6, 8, 10]

    def test_standard_probes_present(self):
        rec = SeriesRecorder()
        for name in ("potential", "gone", "pending_messages", "edges"):
            assert name in rec.probes

    def test_custom_probe(self):
        rec = SeriesRecorder(probes={"const": lambda e: 42.0})
        eng = make([Ping(0, Mode.STAYING)], monitors=[rec])
        eng.run(3, until=lambda e: False)
        assert rec.series["const"] == [42.0, 42.0, 42.0]
        assert rec.last("const") == 42.0

    def test_manual_sample(self):
        rec = SeriesRecorder()
        eng = make([Ping(0, Mode.STAYING)])
        rec.sample(eng)
        assert rec.steps == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SeriesRecorder(every=0)

    def test_probe_values_track_state(self):
        rec = SeriesRecorder(every=1)
        p = Ping(0, Mode.STAYING)
        eng = make([p], monitors=[rec])
        eng.post(None, p.self_ref, "ping", ())
        eng.post(None, p.self_ref, "ping", ())
        eng.run(6, until=lambda e: False)
        # pending messages decrease as pings are consumed
        pend = rec.series["pending_messages"]
        assert pend[0] >= pend[-1]
