"""Unit tests for the copy-store-send reference model."""

import pytest

from repro.errors import CopyStoreSendViolation
from repro.sim.refs import KeyProvider, Ref, RefFactory, pid_of


class TestRefEquality:
    def test_equal_pids_are_equal(self):
        assert Ref(3) == Ref(3)

    def test_distinct_pids_differ(self):
        assert Ref(3) != Ref(4)

    def test_equality_with_non_ref_is_not_implemented(self):
        assert Ref(1).__eq__(1) is NotImplemented
        assert Ref(1) != 1

    def test_hashable_and_usable_in_sets(self):
        s = {Ref(1), Ref(2), Ref(1)}
        assert len(s) == 2

    def test_hash_consistent_with_equality(self):
        assert hash(Ref(7)) == hash(Ref(7))


class TestForbiddenOperations:
    @pytest.mark.parametrize(
        "op",
        [
            lambda a, b: a < b,
            lambda a, b: a <= b,
            lambda a, b: a > b,
            lambda a, b: a >= b,
            lambda a, b: a + b,
        ],
    )
    def test_ordering_and_arithmetic_raise(self, op):
        with pytest.raises(CopyStoreSendViolation):
            op(Ref(1), Ref(2))

    def test_int_conversion_raises(self):
        with pytest.raises(CopyStoreSendViolation):
            int(Ref(1))

    def test_index_usage_raises(self):
        with pytest.raises(CopyStoreSendViolation):
            [0, 1, 2][Ref(1)]

    def test_sorted_on_refs_raises(self):
        with pytest.raises(CopyStoreSendViolation):
            sorted([Ref(2), Ref(1)])

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Ref(1).x = 2


class TestPidEscapeHatch:
    def test_pid_of_returns_identifier(self):
        assert pid_of(Ref(42)) == 42

    def test_protocol_modules_do_not_use_pid_of(self):
        """The single escape hatch must not appear in protocol logic."""
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).parent
        protocol_files = [
            root / "core" / "fdp.py",
            root / "core" / "fsp.py",
            root / "core" / "framework.py",
            root / "overlays" / "baseline_foreback.py",
            root / "overlays" / "linearization.py",
            root / "overlays" / "ring.py",
            root / "overlays" / "clique.py",
            root / "overlays" / "star.py",
        ]
        for path in protocol_files:
            body = path.read_text()
            # target_reached hooks are measurement code and clearly marked;
            # strip them before checking the protocol body.
            proto = body.split("def target_reached", 1)[0]
            assert "pid_of(" not in proto, f"{path.name} uses pid_of in protocol code"


class TestRefFactory:
    def test_interning(self):
        f = RefFactory()
        assert f.ref(5) is f.ref(5)

    def test_distinct_pids_distinct_objects(self):
        f = RefFactory()
        assert f.ref(1) is not f.ref(2)

    def test_len_and_known_pids(self):
        f = RefFactory()
        f.ref(1)
        f.ref(2)
        f.ref(1)
        assert len(f) == 2
        assert sorted(f.known_pids()) == [1, 2]


class TestKeyProvider:
    def test_default_key_is_pid(self):
        kp = KeyProvider()
        assert kp.key(Ref(9)) == 9.0

    def test_custom_keys(self):
        kp = KeyProvider({1: 10.0, 2: -1.0})
        assert kp.key(Ref(2)) == -1.0

    def test_min_max_sorted(self):
        kp = KeyProvider()
        refs = [Ref(3), Ref(1), Ref(2)]
        assert kp.min(refs) == Ref(1)
        assert kp.max(refs) == Ref(3)
        assert kp.sorted(refs) == [Ref(1), Ref(2), Ref(3)]
