"""Differential property suite: ``LiveGraph ≡ rebuild(state)`` at every step.

The incremental observation path earns its keep only if it is *exactly*
the rebuild-on-read semantics, state for state. These tests run random
FDP and FSP computations — heavy corruption, exits, sleepers, fault
injection — and after **every** step compare, between the live graph and
a from-scratch :meth:`Engine.rebuild_snapshot`:

* the edge multiset ``(src, dst, kind, belief)`` of the materialized
  :class:`ProcessGraph`;
* the potential Φ;
* the weak-connectivity verdict of each initial component's relevant
  members;
* the SINGLE verdict (via ``partner_pids``) for every pid;
* hibernation/relevance, node metadata and the ``describe()`` counters.

Plus the escape hatch: ``REPRO_GRAPH_MODE=rebuild`` must reproduce the
legacy behavior bit-for-bit.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scenarios import (
    CLEAN,
    HEAVY_CORRUPTION,
    build_fdp_engine,
    build_fsp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.faults import scatter_garbage_messages
from repro.sim.states import PState


@pytest.fixture(autouse=True)
def _force_incremental(monkeypatch):
    """The differential compares the live graph against rebuilds; pin
    incremental mode even when the suite runs under
    ``REPRO_GRAPH_MODE=rebuild`` (the escape-hatch test overrides it)."""
    monkeypatch.setenv("REPRO_GRAPH_MODE", "incremental")


def edge_multiset(snap) -> Counter:
    return Counter((e.src, e.dst, e.kind, e.belief) for e in snap.edges)


def node_views(snap) -> dict:
    return {
        pid: (
            snap.node(pid).mode,
            snap.node(pid).state,
            snap.node(pid).channel_len,
        )
        for pid in snap.pids
    }


def assert_equivalent(engine) -> None:
    """The full LiveGraph ≡ rebuild(state) check for one state."""
    live_snap = engine.snapshot()  # materialized from the live counters
    rebuilt = engine.rebuild_snapshot()  # from-scratch oracle

    # 1. edge multiset and node metadata
    assert edge_multiset(live_snap) == edge_multiset(rebuilt)
    assert node_views(live_snap) == node_views(rebuilt)

    # 2. potential Φ
    phi_rebuilt = sum(1 for _ in rebuilt.iter_invalid_edges(engine.actual_mode))
    assert engine.potential() == phi_rebuilt

    # 3. relevance (hibernation fixpoint)
    assert engine.relevant_pids() == rebuilt.relevant()

    # 4. connectivity verdict per initial component
    relevant = rebuilt.relevant()
    for comp in engine.initial_components:
        members = frozenset(comp) & relevant
        if len(members) <= 1:
            continue
        assert engine.members_weakly_connected(members) == rebuilt.is_weakly_connected(
            members
        ), sorted(members)

    # 5. SINGLE verdict (partner set) per pid
    for pid, proc in engine.processes.items():
        fast = engine.partner_pids(pid)
        if proc.state is PState.GONE:
            assert fast == set()
        else:
            assert fast == rebuilt.partners(pid, within=relevant - {pid}), pid

    # 6. describe() reads the live counters
    info = engine.describe()
    assert info["edges"] == len(rebuilt.edges)
    assert info["pending_messages"] == sum(
        len(ch) for ch in engine.channels.values()
    )
    assert info["potential"] == phi_rebuilt


def drive_and_check(engine, steps: int) -> None:
    engine.attach()
    assert_equivalent(engine)
    for _ in range(steps):
        if engine.step() is None:
            break
        assert_equivalent(engine)


@given(
    seed=st.integers(0, 10_000),
    steps=st.integers(1, 60),
    heavy=st.booleans(),
)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
def test_fdp_live_equals_rebuild_every_step(seed, steps, heavy):
    n = 9
    edges = gen.random_connected(n, 5, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
    engine = build_fdp_engine(
        n,
        edges,
        leaving,
        seed=seed,
        corruption=HEAVY_CORRUPTION if heavy else CLEAN,
    )
    drive_and_check(engine, steps)


@given(
    seed=st.integers(0, 10_000),
    steps=st.integers(1, 60),
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
def test_fsp_live_equals_rebuild_every_step(seed, steps):
    """Sleep/wake transitions and hibernation-aware relevance."""
    n = 8
    edges = gen.random_connected(n, 4, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.5, seed=seed)
    engine = build_fsp_engine(
        n, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION
    )
    drive_and_check(engine, steps)


@given(seed=st.integers(0, 2_000), steps=st.integers(1, 50))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
def test_fault_injected_live_equals_rebuild(seed, steps):
    """Mid-run fault injection (stale garbage messages, possibly with
    lying beliefs) mutates channels through engine APIs; the live graph
    must track it delta-for-delta — including the Φ it raises."""
    from random import Random

    n = 8
    edges = gen.random_connected(n, 4, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
    engine = build_fdp_engine(n, edges, leaving, seed=seed)
    rng = Random(seed)
    engine.attach()
    # keep injected references inside one initial component, as the
    # scenario builders do (the adversary cannot create connectivity)
    comp = sorted(max(engine.initial_components, key=len))
    assert_equivalent(engine)
    for i in range(steps):
        if engine.step() is None:
            break
        if i % 5 == 0:
            scatter_garbage_messages(
                engine, rng, 2, targets=comp, subjects=comp
            )
        assert_equivalent(engine)


def test_convergence_end_state_matches(tmp_path):
    """Run one scenario to FDP legitimacy in both modes: identical
    trajectories, identical final observables (E-series results are
    semantically unchanged by the observation path)."""
    from repro.core.potential import fdp_legitimate

    n = 12
    edges = gen.random_connected(n, 6, seed=3)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=3)
    results = {}
    for mode in ("incremental", "rebuild"):
        engine = build_fdp_engine(
            n, edges, leaving, seed=3, corruption=HEAVY_CORRUPTION, graph_mode=mode
        )
        converged = engine.run(50_000, until=fdp_legitimate, check_every=8)
        results[mode] = (
            converged,
            engine.step_count,
            engine.potential(),
            engine.states(),
            edge_multiset(engine.snapshot()),
        )
    assert results["incremental"] == results["rebuild"]


def test_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_GRAPH_MODE", "rebuild")
    engine = build_fdp_engine(4, [(0, 1), (1, 2), (2, 3)], {3}, seed=0)
    assert engine.graph_mode == "rebuild"
    engine.attach()
    # rebuild mode never instantiates a live graph
    assert engine._live is None
    for _ in range(30):
        if engine.step() is None:
            break
    assert engine._live is None


def test_bad_graph_mode_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        build_fdp_engine(3, [(0, 1), (1, 2)], {2}, graph_mode="bogus")


# ---------------------------------------------------------------------------
# dirty-ref tracking ≡ fingerprint diffing
#
# The write-through ref log replaced per-action fingerprint diffing on the
# hot path; ``ref_mode="verify"`` keeps both alive and cross-checks the
# logged net deltas against the fingerprint diff after *every* atomic
# action (raising StateViolation on divergence). Driving the usual
# differential workloads in verify mode therefore tests three things at
# once: the log matches the oracle, and both match the rebuilt graph.


@given(
    seed=st.integers(0, 10_000),
    steps=st.integers(1, 60),
    heavy=st.booleans(),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
def test_fdp_ref_log_equals_fingerprint_diff(monkeypatch, seed, steps, heavy):
    monkeypatch.setenv("REPRO_REF_MODE", "verify")
    n = 9
    edges = gen.random_connected(n, 5, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
    engine = build_fdp_engine(
        n,
        edges,
        leaving,
        seed=seed,
        corruption=HEAVY_CORRUPTION if heavy else CLEAN,
    )
    assert engine.ref_mode == "verify"
    drive_and_check(engine, steps)


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 60))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
def test_fsp_ref_log_equals_fingerprint_diff(monkeypatch, seed, steps):
    """FSP adds the tracked ``parked`` RefMap and the anchor RefCell
    churn of park/delegate cycles — the log must net them correctly."""
    monkeypatch.setenv("REPRO_REF_MODE", "verify")
    n = 8
    edges = gen.random_connected(n, 4, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.5, seed=seed)
    engine = build_fsp_engine(
        n, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION
    )
    drive_and_check(engine, steps)


def test_ref_mode_trajectories_identical(monkeypatch):
    """tracked / fingerprint / verify are observation choices, not
    semantics: one scenario run to legitimacy in all three modes yields
    identical trajectories and final observables."""
    from repro.core.potential import fdp_legitimate

    n = 12
    edges = gen.random_connected(n, 6, seed=5)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=5)
    results = {}
    for mode in ("tracked", "fingerprint", "verify"):
        monkeypatch.setenv("REPRO_REF_MODE", mode)
        engine = build_fdp_engine(
            n, edges, leaving, seed=5, corruption=HEAVY_CORRUPTION
        )
        assert engine.ref_mode == mode
        converged = engine.run(50_000, until=fdp_legitimate, check_every=8)
        results[mode] = (
            converged,
            engine.step_count,
            engine.potential(),
            engine.states(),
            edge_multiset(engine.snapshot()),
        )
    assert results["tracked"] == results["fingerprint"]
    assert results["tracked"] == results["verify"]


def test_fingerprint_mode_disarms_logs(monkeypatch):
    """The fingerprint escape hatch must not pay the logging cost: every
    process's ref log stays disabled after attach."""
    monkeypatch.setenv("REPRO_REF_MODE", "fingerprint")
    engine = build_fdp_engine(4, [(0, 1), (1, 2), (2, 3)], {3}, seed=0)
    engine.attach()
    assert all(not p._ref_log.enabled for p in engine.processes.values())
    for _ in range(30):
        if engine.step() is None:
            break
    assert_equivalent(engine)


def test_bad_ref_mode_rejected(monkeypatch):
    from repro.errors import ConfigurationError

    monkeypatch.setenv("REPRO_REF_MODE", "bogus")
    with pytest.raises(ConfigurationError):
        build_fdp_engine(3, [(0, 1), (1, 2)], {2})
