"""Seeded SoA-core mutations are caught by the differential oracle.

Each mutation here textually seeds a real mirror bug into a copy of
``src/repro/sim/soa.py`` — the core drops a counter flush, posts the
wrong message label, or skips the generation bump on departure — then
runs an engine under ``engine_mode="verify"`` and asserts the
cross-check raises :class:`~repro.errors.StateViolation`.

These are the dynamic twins of the static SOA0xx rules: every mutation
in this file is also flagged by ``repro lint`` (see
tests/lint/test_drift_suite.py), so a mirror-drift bug is caught both
before the code runs and on the first divergent step.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    SCHEDULER_FACTORIES,
    build_fdp_engine,
    choose_leaving,
)
from repro.errors import StateViolation
from repro.graphs import generators as gen

SOA_PATH = Path(__file__).resolve().parents[2] / "src" / "repro" / "sim" / "soa.py"

# (name, original text, replacement text) — identical to the static
# mutation table in tests/lint/test_drift_suite.py
MUTATIONS = [
    (
        "anchor_purge_posts_wrong_label",
        "\n            self._send(u, u, 0, self.anchor_[u], self.abelief_[u])\n",
        "\n            self._send(u, u, 1, self.anchor_[u], self.abelief_[u])\n",
    ),
    (
        "timeout_counter_flush_dropped",
        "        self.timeouts += 1\n",
        "",
    ),
    (
        "generation_bump_skipped",
        "            self.gen_[u] += 1\n",
        "",
    ),
]


def _load_mutated_core(tmp_path: Path, name: str, original: str, replacement: str):
    """Exec a mutated copy of soa.py and return its EngineCore class."""
    source = SOA_PATH.read_text()
    assert source.count(original) == 1, f"mutation target not unique: {original!r}"
    target = tmp_path / f"soa_{name}.py"
    target.write_text(source.replace(original, replacement, 1))
    spec = importlib.util.spec_from_file_location(f"soa_mutated_{name}", target)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.EngineCore


def _build_verify(seed: int):
    n = 12
    edges = gen.random_connected(n, n // 2, seed=seed + 7)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=seed + 1)
    return build_fdp_engine(
        n,
        edges,
        leaving,
        corruption=HEAVY_CORRUPTION,
        scheduler=SCHEDULER_FACTORIES["random"](seed),
        seed=seed,
        engine_mode="verify",
    )


@pytest.mark.parametrize(
    "name,original,replacement", MUTATIONS, ids=[m[0] for m in MUTATIONS]
)
def test_mutation_trips_verify_oracle(
    tmp_path: Path, monkeypatch, name: str, original: str, replacement: str
) -> None:
    monkeypatch.delenv("REPRO_ENGINE_MODE", raising=False)
    mutated = _load_mutated_core(tmp_path, name, original, replacement)
    # the engine resolves EngineCore lazily inside _rebuild_core, so
    # patching the soa module swaps the core under verify mode
    monkeypatch.setattr("repro.sim.soa.EngineCore", mutated)
    for seed in range(8):
        engine = _build_verify(seed)
        try:
            engine.run(3000, check_every=13)
        except StateViolation:
            return  # the oracle caught the seeded bug
    pytest.fail(f"verify mode never caught mutation {name!r}")


def test_unmutated_core_passes_verify(monkeypatch) -> None:
    """Control: the harness itself is violation-free on the real core."""
    monkeypatch.delenv("REPRO_ENGINE_MODE", raising=False)
    engine = _build_verify(0)
    engine.run(3000, check_every=13)
