"""Equivalence of the profiling-driven fast partner computation.

``Engine.partner_pids`` must agree with the definitional (snapshot-based)
partner set in every state — including runs with sleepers, where it must
take the exact hibernation-aware path.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    build_fsp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.states import PState


def _assert_equivalent(engine):
    snap = engine.snapshot()
    relevant = snap.relevant()
    for pid, proc in engine.processes.items():
        fast = engine.partner_pids(pid)
        if proc.state is PState.GONE:
            assert fast == set()
            continue
        slow = snap.partners(pid, within=relevant - {pid})
        assert fast == slow, (pid, fast, slow)


@given(
    seed=st.integers(0, 1000),
    steps=st.integers(0, 150),
    fsp=st.booleans(),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_partner_pids_matches_snapshot_definition(seed, steps, fsp):
    n = 10
    edges = gen.random_connected(n, 5, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
    build = build_fsp_engine if fsp else build_fdp_engine
    engine = build(
        n, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION
    )
    engine.attach()
    for _ in range(steps):
        if engine.step() is None:
            break
    _assert_equivalent(engine)


@given(seed=st.integers(0, 400), steps=st.integers(0, 80))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_limited_scan_agrees_on_the_single_predicate(seed, steps):
    """The early-exit scan must answer 'at most one partner?' exactly as
    the full scan does (the partial set may differ, the verdict may not)."""
    n = 9
    edges = gen.random_connected(n, 4, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
    engine = build_fdp_engine(
        n, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION
    )
    engine.attach()
    for _ in range(steps):
        if engine.step() is None:
            break
    for pid in range(n):
        full = len(engine.partner_pids(pid)) <= 1
        limited = len(engine.partner_pids(pid, limit=1)) <= 1
        assert full == limited, pid


def test_fast_path_with_gone_partner():
    engine = build_fdp_engine(4, gen.clique(4), leaving={1}, seed=0)
    from repro.core.potential import fdp_legitimate

    assert engine.run(50_000, until=fdp_legitimate, check_every=16)
    _assert_equivalent(engine)


def test_sleepers_route_through_exact_path():
    """With asleep processes present, the hibernation-aware path is used
    and still matches the definition (the hypothesis test covers this
    too; this is the deterministic anchor case)."""
    from repro.core.potential import fsp_legitimate

    engine = build_fsp_engine(6, gen.ring(6), leaving={2, 4}, seed=3)
    assert engine.run(100_000, until=fsp_legitimate, check_every=16)
    assert any(
        p.state is PState.ASLEEP for p in engine.processes.values()
    )
    _assert_equivalent(engine)
