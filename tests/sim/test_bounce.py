"""Bounce semantics: protocol sends addressed to *gone* processes.

A message parked in a dead channel silently removes the references it
carries from the process graph — the open-system reference leak. The
engine instead applies the paper's Section 4 postprocess at send time:
third-party references bounce back to the sender as ``forward`` messages
behind one truthful ``present(target, leaving)`` hint, while messages
carrying only the sender's or the target's own reference are dropped and
counted (bouncing those would keep reversal ping-pong alive forever).
"""

from __future__ import annotations

import pytest

from repro.core.fdp import FDPProcess
from repro.core.oracles import SingleOracle
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.process import Process
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode, PState


class Recorder(Process):
    def __init__(self, pid, mode=Mode.STAYING):
        super().__init__(pid, mode)
        self.refs: dict[Ref, Mode] = {}

    def stored_refs(self):
        return (RefInfo(r, m) for r, m in self.refs.items())

    def on_ping(self, ctx, *args):
        pass


def make(procs, **kw):
    kw.setdefault("scheduler", OldestFirstScheduler())
    kw.setdefault("capability", Capability.BOTH)
    kw.setdefault("require_staying_per_component", False)
    eng = Engine(procs, **kw)
    eng.attach()
    return eng


def with_gone(n: int = 3, gone: int = 1) -> Engine:
    eng = make([Recorder(i) for i in range(n)])
    eng._transition(eng.processes[gone], PState.GONE)
    return eng


class TestSilentDrop:
    """Self/target-only payloads die with the edge they would have made."""

    @pytest.mark.parametrize(
        "payload",
        [
            (),  # bare message, no refs at all
            lambda eng: (RefInfo(eng.ref(0), Mode.STAYING),),  # sender's own
            lambda eng: (RefInfo(eng.ref(1), Mode.LEAVING),),  # target's own
        ],
    )
    def test_dropped_and_counted(self, payload):
        eng = with_gone()
        args = payload(eng) if callable(payload) else payload
        assert eng.post(0, eng.ref(1), "reversal", args) is None
        assert eng.stats.dropped_gone == 1
        assert eng.stats.bounced == 0
        # nothing entered any channel — dead or alive
        assert all(len(ch) == 0 for ch in eng.channels.values())

    def test_drop_consumes_no_sequence_number(self):
        eng = with_gone()
        before = eng.post(None, eng.ref(0), "ping", ())
        eng.post(0, eng.ref(1), "reversal", (RefInfo(eng.ref(0)),))
        after = eng.post(None, eng.ref(0), "ping", ())
        assert after.seq == before.seq + 1


class TestBounce:
    def test_third_party_refs_return_to_sender(self):
        eng = with_gone()
        eng.post(
            0, eng.ref(1), "forward", (RefInfo(eng.ref(2), Mode.STAYING),)
        )
        assert eng.stats.bounced == 1
        assert eng.stats.dropped_gone == 0
        assert len(eng.channels[1]) == 0  # nothing in the dead channel
        labels = [(m.label, m.args) for m in eng.channels[0]]
        # one truthful hint first, then the rescued reference
        assert labels == [
            ("present", (RefInfo(eng.ref(1), Mode.LEAVING),)),
            ("forward", (RefInfo(eng.ref(2), Mode.STAYING),)),
        ]

    def test_mixed_payload_rescues_only_third_parties(self):
        eng = with_gone(n=4)
        eng.post(
            0,
            eng.ref(1),
            "delegate",
            (
                RefInfo(eng.ref(0), Mode.STAYING),  # sender's own: not rescued
                RefInfo(eng.ref(2), Mode.STAYING),
                RefInfo(eng.ref(3), Mode.LEAVING),
            ),
        )
        assert eng.stats.bounced == 2
        assert eng.stats.dropped_gone == 0
        forwarded = [
            m.args[0].ref for m in eng.channels[0] if m.label == "forward"
        ]
        assert forwarded == [eng.ref(2), eng.ref(3)]

    def test_bounce_is_out_of_band_for_flow_accounting(self):
        """The undeliverable send never happened: the sender's sent-count
        stays flat; the bounced messages arrive as system posts."""
        eng = with_gone()
        eng.post(0, eng.ref(1), "forward", (RefInfo(eng.ref(2)),))
        assert eng.stats.sent_by.get(0, 0) == 0
        assert eng.stats.received_by.get(0, 0) == 2  # present + forward


class TestOutOfBandPostsUnchanged:
    def test_fault_injection_still_parks_in_dead_channel(self):
        """sender=None keeps the historical semantics so planted initial
        states (chaos injections, test scaffolding) stay expressible."""
        eng = with_gone()
        msg = eng.post(None, eng.ref(1), "ping", ())
        assert msg is not None
        assert len(eng.channels[1]) == 1
        assert eng.stats.dropped_gone == 0
        assert eng.stats.bounced == 0


class TestHintPurgesStaleAnchor:
    def test_bounced_hint_clears_anchor_to_gone_process(self):
        """A leaving FDP process anchored at a since-departed process
        would black-hole every future delegation; the bounce's
        ``present(target, leaving)`` hint triggers the Algorithm 2/3
        lines 1-2 purge on delivery."""
        anchor_holder = FDPProcess(
            0,
            Mode.LEAVING,
            neighbors=[Ref(2)],
            anchor=Ref(1),
            anchor_belief=Mode.STAYING,
        )
        peer = FDPProcess(1, Mode.LEAVING, neighbors=[Ref(0)])
        stayer = FDPProcess(2, Mode.STAYING, neighbors=[Ref(0)])
        eng = make([anchor_holder, peer, stayer], oracle=SingleOracle())
        eng._transition(peer, PState.GONE)
        assert anchor_holder.anchor == Ref(1)
        # the doomed delegation: refs bounce home with the hint in front
        eng.post(0, eng.ref(1), "forward", (RefInfo(eng.ref(2), Mode.STAYING),))
        eng.run(100)
        assert anchor_holder.anchor != Ref(1)
