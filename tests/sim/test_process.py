"""Unit tests for the process base class and the action context."""

import pytest

from repro.errors import StateViolation
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.process import ActionContext, Process
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode, PState


class Echo(Process):
    """Minimal process: records handled messages, optional special command."""

    def __init__(self, pid, mode=Mode.STAYING, on_timeout=None):
        super().__init__(pid, mode)
        self.seen = []
        self._on_timeout = on_timeout

    def timeout(self, ctx):
        if self._on_timeout:
            self._on_timeout(self, ctx)

    def on_ping(self, ctx, payload):
        self.seen.append(payload)


def make_engine(procs, capability=Capability.BOTH, **kw):
    return Engine(
        procs,
        OldestFirstScheduler(),
        capability=capability,
        require_staying_per_component=False,
        **kw,
    )


class TestProcessBasics:
    def test_identity(self):
        p = Echo(5)
        assert p.pid == 5
        assert p.self_ref == p.self_ref
        assert p.is_staying and not p.is_leaving

    def test_mode_read_only_property(self):
        p = Echo(1, Mode.LEAVING)
        assert p.mode is Mode.LEAVING
        with pytest.raises(AttributeError):
            p.mode = Mode.STAYING

    def test_initial_state_awake(self):
        assert Echo(1).state is PState.AWAKE

    def test_handler_lookup(self):
        p = Echo(1)
        assert p.handler("ping") is not None
        assert p.handler("nonexistent") is None

    def test_default_stored_refs_empty(self):
        assert list(Echo(1).stored_refs()) == []

    def test_repr_mentions_mode_and_state(self):
        text = repr(Echo(1, Mode.LEAVING))
        assert "leaving" in text and "awake" in text


class TestActionContext:
    def test_send_posts_message(self):
        a, b = Echo(0), Echo(1)
        eng = make_engine([a, b])
        ctx = ActionContext(eng, a)
        ctx.send(b.self_ref, "ping", "hello")
        assert len(eng.channels[1]) == 1
        msg = next(iter(eng.channels[1]))
        assert msg.label == "ping"
        assert msg.args == ("hello",)
        assert msg.sender == 0

    def test_send_corrects_self_mode_info(self):
        """Information about oneself is always valid, whatever the caller
        attached."""
        a, b = Echo(0, Mode.LEAVING), Echo(1)
        eng = make_engine([a, b])
        ctx = ActionContext(eng, a)
        ctx.send(b.self_ref, "ping", RefInfo(a.self_ref, Mode.STAYING))
        msg = next(iter(eng.channels[1]))
        (info,) = msg.refinfos()
        assert info.mode is Mode.LEAVING

    def test_send_leaves_third_party_info_alone(self):
        a, b, c = Echo(0), Echo(1), Echo(2, Mode.LEAVING)
        eng = make_engine([a, b, c])
        ctx = ActionContext(eng, a)
        ctx.send(b.self_ref, "ping", RefInfo(c.self_ref, Mode.STAYING))
        (info,) = next(iter(eng.channels[1])).refinfos()
        assert info.mode is Mode.STAYING  # the (wrong) belief is the sender's

    def test_context_closed_after_action(self):
        a = Echo(0)
        eng = make_engine([a])
        ctx = ActionContext(eng, a)
        ctx._close()
        with pytest.raises(StateViolation):
            ctx.send(a.self_ref, "ping", "x")

    def test_exit_requires_capability(self):
        a = Echo(0)
        eng = make_engine([a], capability=Capability.SLEEP)
        ctx = ActionContext(eng, a)
        with pytest.raises(StateViolation):
            ctx.exit()

    def test_sleep_requires_capability(self):
        a = Echo(0)
        eng = make_engine([a], capability=Capability.EXIT)
        ctx = ActionContext(eng, a)
        with pytest.raises(StateViolation):
            ctx.sleep()

    def test_exit_applied_after_action_returns(self):
        def do_exit(proc, ctx):
            ctx.exit()
            # still awake inside the action (atomicity)
            assert proc.state is PState.AWAKE

        a = Echo(0, Mode.LEAVING, on_timeout=do_exit)
        eng = make_engine([a])
        eng.attach()
        eng.step()
        assert a.state is PState.GONE

    def test_sleep_then_wake_on_message(self):
        def do_sleep(proc, ctx):
            ctx.sleep()

        a = Echo(0, Mode.LEAVING, on_timeout=do_sleep)
        b = Echo(1)
        eng = make_engine([a, b])
        eng.attach()
        # run until a sleeps
        for _ in range(10):
            if a.state is PState.ASLEEP:
                break
            eng.step()
        assert a.state is PState.ASLEEP
        eng.post(1, a.self_ref, "ping", ("wake-up",))
        for _ in range(20):
            if a.seen:
                break
            eng.step()
        assert a.seen == ["wake-up"]
        assert a.state is PState.AWAKE
        assert eng.stats.wakes >= 1

    def test_oracle_without_configuration_raises(self):
        from repro.errors import ConfigurationError

        a = Echo(0)
        eng = make_engine([a])
        ctx = ActionContext(eng, a)
        with pytest.raises(ConfigurationError):
            ctx.oracle()

    def test_keys_requires_declared_order(self):
        from repro.errors import CopyStoreSendViolation

        a = Echo(0)
        eng = make_engine([a])
        ctx = ActionContext(eng, a)
        with pytest.raises(CopyStoreSendViolation):
            _ = ctx.keys

    def test_keys_granted_when_declared(self):
        class Ordered(Echo):
            requires_order = True

        a = Ordered(0)
        eng = make_engine([a])
        ctx = ActionContext(eng, a)
        assert ctx.keys.key(a.self_ref) == 0.0
