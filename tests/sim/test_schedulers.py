"""Scheduler tests: fairness, determinism, and round semantics."""

import pytest

from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.process import Process
from repro.sim.scheduler import (
    AdversarialScheduler,
    DeliverEvent,
    OldestFirstScheduler,
    RandomScheduler,
    SynchronousScheduler,
    TimeoutEvent,
)
from repro.sim.states import Capability, Mode, PState


class Counter(Process):
    """Counts its timeouts and deliveries; can optionally sleep or exit."""

    def __init__(self, pid, mode=Mode.STAYING):
        super().__init__(pid, mode)
        self.timeouts = 0
        self.pings = 0

    def timeout(self, ctx):
        self.timeouts += 1

    def on_ping(self, ctx, *args):
        self.pings += 1

    def on_sleep_now(self, ctx):
        ctx.sleep()

    def on_exit_now(self, ctx):
        ctx.exit()


def make(procs, scheduler):
    return Engine(
        procs,
        scheduler,
        capability=Capability.BOTH,
        require_staying_per_component=False,
    )


@pytest.mark.parametrize(
    "scheduler_factory",
    [
        lambda: RandomScheduler(seed=1),
        lambda: OldestFirstScheduler(),
        lambda: AdversarialScheduler(patience=16, seed=1),
        lambda: SynchronousScheduler(seed=1),
    ],
    ids=["random", "oldest", "adversarial", "sync"],
)
class TestCommonSchedulerProperties:
    def test_all_messages_eventually_delivered(self, scheduler_factory):
        """Fair message receipt: every pending message is processed."""
        procs = [Counter(i) for i in range(4)]
        eng = make(procs, scheduler_factory())
        for p in procs:
            for _ in range(5):
                eng.post(None, p.self_ref, "ping", ())
        eng.run(2000, until=lambda e: all(p.pings == 5 for p in procs))
        assert all(p.pings == 5 for p in procs)

    def test_every_awake_process_gets_timeouts(self, scheduler_factory):
        """Weakly fair action execution: timeouts recur for awake processes."""
        procs = [Counter(i) for i in range(4)]
        eng = make(procs, scheduler_factory())
        eng.run(400, until=lambda e: all(p.timeouts >= 3 for p in procs))
        assert all(p.timeouts >= 3 for p in procs)

    def test_no_timeout_for_sleeping_process(self, scheduler_factory):
        procs = [Counter(0, Mode.LEAVING), Counter(1)]
        eng = make(procs, scheduler_factory())
        eng.post(None, procs[0].self_ref, "sleep_now", ())
        eng.run(100, until=lambda e: procs[0].state is PState.ASLEEP)
        before = procs[0].timeouts
        eng.run(100, until=lambda e: False)
        assert procs[0].timeouts == before  # asleep: timeout disabled
        assert procs[1].timeouts > 0

    def test_gone_process_gets_nothing(self, scheduler_factory):
        procs = [Counter(0, Mode.LEAVING), Counter(1)]
        eng = make(procs, scheduler_factory())
        eng.post(None, procs[0].self_ref, "exit_now", ())
        eng.run(50, until=lambda e: procs[0].state is PState.GONE)
        assert procs[0].state is PState.GONE
        t, p = procs[0].timeouts, procs[0].pings
        eng.post(None, procs[0].self_ref, "ping", ())
        eng.run(100, until=lambda e: False)
        assert (procs[0].timeouts, procs[0].pings) == (t, p)

    def test_message_to_sleeping_process_wakes_it(self, scheduler_factory):
        procs = [Counter(0, Mode.LEAVING), Counter(1)]
        eng = make(procs, scheduler_factory())
        eng.post(None, procs[0].self_ref, "sleep_now", ())
        eng.run(100, until=lambda e: procs[0].state is PState.ASLEEP)
        eng.post(None, procs[0].self_ref, "ping", ())
        eng.run(200, until=lambda e: procs[0].pings == 1)
        assert procs[0].pings == 1
        assert procs[0].state is PState.AWAKE


class TestDeterminism:
    def test_oldest_first_is_deterministic(self):
        def trace(scheduler):
            procs = [Counter(i) for i in range(3)]
            eng = make(procs, scheduler)
            eng.post(None, procs[1].self_ref, "ping", ())
            events = []
            eng.attach()
            for _ in range(20):
                ex = eng.step()
                if ex is None:
                    break
                events.append((ex.kind, ex.pid, ex.label))
            return events

        assert trace(OldestFirstScheduler()) == trace(OldestFirstScheduler())

    def test_random_scheduler_reproducible_by_seed(self):
        def trace(seed):
            procs = [Counter(i) for i in range(3)]
            eng = make(procs, RandomScheduler(seed))
            for p in procs:
                eng.post(None, p.self_ref, "ping", ())
            eng.attach()
            return [
                (e.kind, e.pid) for e in (eng.step() for _ in range(15)) if e
            ]

        assert trace(7) == trace(7)
        assert trace(7) != trace(8) or trace(7) == trace(8)  # may coincide


class TestOldestFirstOrdering:
    def test_messages_in_seq_order_per_fairness(self):
        p = Counter(0)
        order = []

        class Tracking(Counter):
            def on_tag(self, ctx, tag):
                order.append(tag)

        t = Tracking(0)
        eng = make([t], OldestFirstScheduler())
        for i in range(5):
            eng.post(None, t.self_ref, "tag", (i,))
        eng.run(50, until=lambda e: len(order) == 5)
        assert order == [0, 1, 2, 3, 4]


class TestAdversarialScheduler:
    def test_patience_bounds_staleness(self):
        """Even the adversary must deliver within the fairness bound."""
        order = []

        class Tracking(Counter):
            def on_tag(self, ctx, tag):
                order.append((tag, ctx.now))

        t = Tracking(0)
        eng = make([t], AdversarialScheduler(patience=8, seed=0, jitter=0.0))
        eng.post(None, t.self_ref, "tag", ("old",))
        for i in range(20):
            eng.post(None, t.self_ref, "tag", (i,))
        eng.run(40, until=lambda e: any(tag == "old" for tag, _ in order))
        (old_step,) = [step for tag, step in order if tag == "old"]
        assert old_step <= 10  # forced out within patience

    def test_rejects_bad_patience(self):
        with pytest.raises(ValueError):
            AdversarialScheduler(patience=0)


class TestSynchronousScheduler:
    def test_round_counting(self):
        procs = [Counter(i) for i in range(3)]
        sched = SynchronousScheduler(seed=0)
        eng = make(procs, sched)
        eng.run(30, until=lambda e: False)
        assert sched.round_count >= 2

    def test_messages_sent_this_round_delivered_next_round(self):
        rounds_seen = []

        class TwoPhase(Process):
            def __init__(self, pid, sched):
                super().__init__(pid, Mode.STAYING)
                self.sched = sched
                self.sent = False

            def timeout(self, ctx):
                if not self.sent:
                    ctx.send(self.self_ref, "mark")
                    self.sent = True
                    self.sent_round = self.sched.round_count

            def on_mark(self, ctx):
                rounds_seen.append((self.sent_round, self.sched.round_count))

        sched = SynchronousScheduler(seed=0)
        p = TwoPhase(0, sched)
        eng = make([p], sched)
        eng.run(20, until=lambda e: bool(rounds_seen))
        sent_round, recv_round = rounds_seen[0]
        assert recv_round > sent_round

    def test_each_round_runs_every_awake_timeout_once(self):
        procs = [Counter(i) for i in range(4)]
        sched = SynchronousScheduler(seed=3)
        eng = make(procs, sched)
        eng.run(4 * 5, until=lambda e: False)  # exactly 5 rounds of timeouts
        counts = {p.timeouts for p in procs}
        assert max(counts) - min(counts) <= 1  # lock-step


class TestEventTypes:
    def test_event_dataclasses(self):
        assert TimeoutEvent(3).pid == 3
        d = DeliverEvent(1, 9)
        assert (d.pid, d.seq) == (1, 9)
