"""Per-process accounting: who executed, sent and received how much."""

import pytest

from repro.core.potential import fdp_legitimate
from repro.core.scenarios import build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.sim.engine import EngineStats


class TestPerPidCounters:
    def test_counters_populated_on_real_run(self):
        n = 8
        edges = gen.ring(n)
        leaving = choose_leaving(n, edges, fraction=0.25, seed=1)
        eng = build_fdp_engine(n, edges, leaving, seed=1)
        assert eng.run(100_000, until=fdp_legitimate, check_every=32)
        s = eng.stats
        assert sum(s.timeouts_by.values()) == s.timeouts
        assert sum(s.deliveries_by.values()) == s.deliveries
        assert sum(s.received_by.values()) == s.messages_posted
        # protocol-originated messages all have senders
        assert sum(s.sent_by.values()) == s.messages_posted

    def test_injected_messages_have_no_sender(self):
        eng = build_fdp_engine(4, gen.ring(4), leaving=set(), seed=0)
        eng.post(None, eng.ref(0), "present", ())
        assert eng.stats.sent_by == {}
        assert eng.stats.received_by == {0: 1}

    def test_as_dict_scalars_only(self):
        s = EngineStats()
        s._bump(s.timeouts_by, 3)
        d = s.as_dict()
        assert "timeouts_by" not in d
        assert "steps" in d

    def test_load_imbalance(self):
        s = EngineStats()
        assert s.load_imbalance() == 1.0
        s.deliveries_by = {0: 10, 1: 10}
        assert s.load_imbalance() == 1.0
        s.deliveries_by = {0: 30, 1: 10}
        assert s.load_imbalance() == pytest.approx(1.5)

    def test_gone_processes_stop_accumulating(self):
        n = 6
        edges = gen.clique(n)
        leaving = {2}
        eng = build_fdp_engine(n, edges, leaving, seed=4)
        assert eng.run(100_000, until=fdp_legitimate, check_every=16)
        t2 = eng.stats.timeouts_by.get(2, 0)
        eng.run(500, until=lambda e: False)
        assert eng.stats.timeouts_by.get(2, 0) == t2
