"""Unit semantics of the write-through ref-tracking primitives.

:class:`RefDeltaLog` / :class:`RefMap` / :class:`RefCell` are the
foundation of the dirty-ref observation path — the differential suite
(:mod:`tests.sim.test_livegraph_differential`) proves them equivalent to
fingerprint diffing end to end; these tests pin the local contracts the
equivalence rests on: net-delta accumulation, plain-dict read semantics,
and the disabled-log fast path.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.refs import Ref, RefCell, RefDeltaLog, RefMap
from repro.sim.states import Mode


class TestRefDeltaLog:
    def test_nets_opposite_records_to_nothing(self):
        log = RefDeltaLog()
        log.record(3, Mode.STAYING, 1)
        log.record(3, Mode.STAYING, -1)
        assert log.pending == {}

    def test_accumulates_same_key(self):
        log = RefDeltaLog()
        log.record(3, Mode.STAYING, 1)
        log.record(3, Mode.STAYING, 1)
        assert log.pending == {(3, Mode.STAYING): 2}

    def test_beliefs_are_distinct_keys(self):
        log = RefDeltaLog()
        log.record(3, Mode.STAYING, 1)
        log.record(3, Mode.LEAVING, -1)
        assert log.pending == {
            (3, Mode.STAYING): 1,
            (3, Mode.LEAVING): -1,
        }


class TestRefMap:
    def _fresh(self):
        log = RefDeltaLog()
        return log, RefMap(log)

    def test_reads_behave_like_dict(self):
        log, m = self._fresh()
        a, b = Ref(1), Ref(2)
        m[a] = Mode.STAYING
        m[b] = Mode.LEAVING
        assert m[a] is Mode.STAYING
        assert m.get(Ref(9)) is None
        assert a in m and Ref(9) not in m
        assert set(m) == {a, b}
        assert len(m) == 2 and bool(m)
        assert dict(m.items()) == {a: Mode.STAYING, b: Mode.LEAVING}
        assert m == {a: Mode.STAYING, b: Mode.LEAVING}
        assert m != {a: Mode.STAYING}

    def test_set_logs_plus_one(self):
        log, m = self._fresh()
        m[Ref(4)] = Mode.STAYING
        assert log.pending == {(4, Mode.STAYING): 1}

    def test_overwrite_logs_belief_swap(self):
        log, m = self._fresh()
        m[Ref(4)] = Mode.STAYING
        m[Ref(4)] = Mode.LEAVING
        # +STAYING then -STAYING nets away; only the new belief remains.
        assert log.pending == {(4, Mode.LEAVING): 1}

    def test_same_value_rewrite_is_a_noop(self):
        log, m = self._fresh()
        m[Ref(4)] = Mode.STAYING
        log.pending.clear()
        m[Ref(4)] = Mode.STAYING
        assert log.pending == {}

    def test_delete_and_pop_log_minus_one(self):
        log, m = self._fresh()
        a, b = Ref(1), Ref(2)
        m[a] = Mode.STAYING
        m[b] = Mode.LEAVING
        log.pending.clear()
        del m[a]
        assert m.pop(b) is Mode.LEAVING
        assert log.pending == {
            (1, Mode.STAYING): -1,
            (2, Mode.LEAVING): -1,
        }
        with pytest.raises(KeyError):
            del m[a]
        with pytest.raises(KeyError):
            m.pop(a)
        assert m.pop(a, "fallback") == "fallback"

    def test_add_then_remove_nets_to_zero(self):
        log, m = self._fresh()
        m[Ref(7)] = Mode.LEAVING
        del m[Ref(7)]
        assert log.pending == {}

    def test_clear_logs_every_entry(self):
        log, m = self._fresh()
        m[Ref(1)] = Mode.STAYING
        m[Ref(2)] = Mode.STAYING
        log.pending.clear()
        m.clear()
        assert log.pending == {
            (1, Mode.STAYING): -1,
            (2, Mode.STAYING): -1,
        }
        m.clear()  # empty clear: no-op, no log traffic
        assert len(m) == 0

    def test_disabled_log_records_nothing(self):
        log, m = self._fresh()
        log.enabled = False
        m[Ref(1)] = Mode.STAYING
        m[Ref(1)] = Mode.LEAVING
        del m[Ref(1)]
        assert log.pending == {}

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set", "del", "pop", "clear"]),
                st.integers(0, 4),
                st.sampled_from(list(Mode)),
            ),
            max_size=40,
        )
    )
    def test_pending_always_equals_store_diff(self, ops):
        """Invariant: after any mutation sequence, the pending net deltas
        equal (multiset of current entries) − (multiset at last drain)."""
        log = RefDeltaLog()
        m = RefMap(log)
        for op, pid, belief in ops:
            ref = Ref(pid)
            if op == "set":
                m[ref] = belief
            elif op == "del" and ref in m:
                del m[ref]
            elif op == "pop":
                m.pop(ref, None)
            elif op == "clear":
                m.clear()
        # Started empty and never drained, so the pending net deltas must
        # be exactly the multiset of current entries — with no zeros kept.
        expected: dict = {}
        for ref, belief in m.items():
            key = (ref._pid, belief)
            expected[key] = expected.get(key, 0) + 1
        assert log.pending == expected


class TestRefCell:
    def test_ref_transition_moves_edge(self):
        log = RefDeltaLog()
        c = RefCell(log)
        c.set_belief(Mode.STAYING)
        assert log.pending == {}  # belief without a ref is not an edge
        c.set_ref(Ref(1))
        assert log.pending == {(1, Mode.STAYING): 1}
        c.set_ref(Ref(2))
        # the +1 on pid 1 netted away against the -1 of the move
        assert log.pending == {(2, Mode.STAYING): 1}
        c.set_ref(None)
        assert log.pending == {}

    def test_belief_transition_swaps_edge(self):
        log = RefDeltaLog()
        c = RefCell(log, Ref(3), Mode.STAYING)
        log.pending.clear()
        c.set_belief(Mode.LEAVING)
        assert log.pending == {
            (3, Mode.STAYING): -1,
            (3, Mode.LEAVING): 1,
        }

    def test_identity_rewrites_are_noops(self):
        log = RefDeltaLog()
        c = RefCell(log, Ref(3), Mode.STAYING)
        log.pending.clear()
        c.set_ref(c.ref)
        c.set_belief(c.belief)
        assert log.pending == {}

    def test_disabled_log_untouched(self):
        log = RefDeltaLog()
        log.enabled = False
        c = RefCell(log, Ref(3), Mode.STAYING)
        c.set_ref(Ref(4))
        c.set_belief(Mode.LEAVING)
        assert log.pending == {}
