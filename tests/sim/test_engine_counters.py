"""Regression: lifecycle tallies must not rescan the population per step.

``Engine.gone_count`` / ``Engine.asleep_count`` once recomputed their
values by iterating every process on each read, turning any loop that
polls them (progress diagnostics, monitors, the CLI status line) into
O(n·steps). The counters are now maintained incrementally by
``_transition`` and only recounted lazily — via ``_recount_lifecycle``
— after an out-of-band mutation flags ``_lifecycle_stale``. These tests
pin that contract by counting the recount's process-iteration callbacks.
"""

from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.states import PState


def _build(n=24, seed=3):
    edges = gen.random_connected(n, n // 2, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
    return build_fdp_engine(
        n, edges, leaving, corruption=HEAVY_CORRUPTION, seed=seed
    )


class _CountingRecount:
    """Wraps ``_recount_lifecycle``, tallying calls and rows walked."""

    def __init__(self, engine):
        self.engine = engine
        self.calls = 0
        self.rows = 0
        self._inner = engine._recount_lifecycle

    def __call__(self):
        self.calls += 1
        self.rows += len(self.engine.processes)
        self._inner()

    def install(self):
        self.engine._recount_lifecycle = self
        return self


def test_stepping_never_rescans_population():
    """Reading the tallies every step must trigger zero recounts."""
    engine = _build()
    engine.attach()  # the one sanctioned full scan happens here
    counter = _CountingRecount(engine).install()
    for _ in range(400):
        engine.step()
        # Poll both counters every step, like progress diagnostics do.
        engine.gone_count
        engine.asleep_count
    assert counter.calls == 0, (
        f"lifecycle counters rescanned the population {counter.calls} "
        f"times ({counter.rows} process iterations) during plain stepping"
    )


def test_incremental_tallies_match_ground_truth():
    """The incrementally maintained values equal a full recount."""
    engine = _build(seed=11)
    engine.run(600)
    states = [p.state for p in engine.processes.values()]
    assert engine.gone_count == sum(s is PState.GONE for s in states)
    assert engine.asleep_count == sum(s is PState.ASLEEP for s in states)


def test_out_of_band_mutation_recounts_once_lazily():
    """A dirty flag defers the rescan to the next read — exactly one."""
    engine = _build(seed=7)
    engine.run(200)
    counter = _CountingRecount(engine).install()
    engine._dirty = True  # sanctioned out-of-band signal
    assert counter.calls == 0  # nothing until a counter is read
    engine.gone_count
    engine.asleep_count
    engine.gone_count
    assert counter.calls == 1, (
        f"expected exactly one lazy recount, saw {counter.calls}"
    )
