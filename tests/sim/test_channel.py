"""Unit tests for the unbounded non-FIFO channel."""

import pytest

from repro.sim.channel import Channel
from repro.sim.messages import Message


def msg(seq: int, label: str = "x") -> Message:
    return Message(label, (), seq=seq)


class TestChannelBasics:
    def test_starts_empty(self):
        ch = Channel()
        assert len(ch) == 0
        assert not ch

    def test_add_and_len(self):
        ch = Channel()
        ch.add(msg(1))
        ch.add(msg(2))
        assert len(ch) == 2
        assert ch

    def test_contains_by_seq(self):
        ch = Channel()
        ch.add(msg(7))
        assert 7 in ch
        assert 8 not in ch

    def test_duplicate_seq_rejected(self):
        ch = Channel()
        ch.add(msg(1))
        with pytest.raises(ValueError):
            ch.add(msg(1))

    def test_remove_returns_message(self):
        ch = Channel()
        m = msg(3, "hello")
        ch.add(m)
        assert ch.remove(3) is m
        assert 3 not in ch

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            Channel().remove(1)

    def test_peek_does_not_remove(self):
        ch = Channel()
        ch.add(msg(1))
        assert ch.peek(1).seq == 1
        assert 1 in ch


class TestChannelOrderAndMultiset:
    def test_iteration_oldest_first(self):
        ch = Channel()
        for s in (5, 9, 7):
            ch.add(msg(s))
        assert [m.seq for m in ch] == [5, 9, 7]  # insertion order

    def test_equal_content_messages_coexist(self):
        """Channels are multisets: identical payloads differ only by seq."""
        ch = Channel()
        ch.add(Message("present", ("a",), seq=1))
        ch.add(Message("present", ("a",), seq=2))
        assert len(ch) == 2

    def test_oldest_seq(self):
        ch = Channel()
        assert ch.oldest_seq() is None
        ch.add(msg(4))
        ch.add(msg(6))
        assert ch.oldest_seq() == 4
        ch.remove(4)
        assert ch.oldest_seq() == 6

    def test_clear_drains_in_order(self):
        ch = Channel()
        for s in (1, 2, 3):
            ch.add(msg(s))
        drained = ch.clear()
        assert [m.seq for m in drained] == [1, 2, 3]
        assert len(ch) == 0

    def test_seqs_iteration(self):
        ch = Channel()
        for s in (2, 8):
            ch.add(msg(s))
        assert list(ch.seqs()) == [2, 8]
