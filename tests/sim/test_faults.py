"""Tests for the generic fault injector (admissible corrupted states)."""

from random import Random

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.faults import (
    plant_ref_message,
    plant_unknown_label_messages,
    random_mode_claim,
    scatter_garbage_messages,
)
from repro.sim.process import Process
from repro.sim.refs import pid_of
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode


class Dummy(Process):
    def on_present(self, ctx, info):
        pass

    def on_forward(self, ctx, info):
        pass


def make(n=4, leaving=()):
    procs = [
        Dummy(i, Mode.LEAVING if i in leaving else Mode.STAYING) for i in range(n)
    ]
    return Engine(
        procs,
        OldestFirstScheduler(),
        capability=Capability.NONE,
        strict=False,
        require_staying_per_component=False,
    )


class TestRandomModeClaim:
    def test_zero_lie_prob_truthful(self):
        rng = Random(0)
        assert all(
            random_mode_claim(rng, Mode.STAYING, 0.0) is Mode.STAYING
            for _ in range(50)
        )

    def test_one_lie_prob_always_lies(self):
        rng = Random(0)
        assert all(
            random_mode_claim(rng, Mode.STAYING, 1.0) is Mode.LEAVING
            for _ in range(50)
        )

    def test_invalid_prob_rejected(self):
        with pytest.raises(ValueError):
            random_mode_claim(Random(0), Mode.STAYING, 1.5)


class TestPlanting:
    def test_plant_ref_message(self):
        eng = make()
        plant_ref_message(eng, 0, "present", 2, Mode.LEAVING)
        (msg,) = list(eng.channels[0])
        (info,) = list(msg.refinfos())
        assert pid_of(info.ref) == 2
        assert info.mode is Mode.LEAVING

    def test_plant_validates_pids(self):
        eng = make()
        with pytest.raises(ConfigurationError):
            plant_ref_message(eng, 0, "present", 99, Mode.STAYING)

    def test_scatter_respects_pools(self):
        eng = make(n=6)
        rng = Random(1)
        planted = scatter_garbage_messages(
            eng, rng, 20, targets=[0, 1], subjects=[2, 3]
        )
        assert planted == 20
        for pid in (2, 3, 4, 5):
            assert len(eng.channels[pid]) == 0
        for pid in (0, 1):
            for msg in eng.channels[pid]:
                for info in msg.refinfos():
                    assert pid_of(info.ref) in (2, 3)

    def test_scatter_creates_invalid_information(self):
        eng = make(n=4, leaving={1})
        rng = Random(3)
        scatter_garbage_messages(eng, rng, 30, lie_prob=1.0)
        assert eng.potential() > 0

    def test_scatter_truthful_keeps_phi_zero(self):
        eng = make(n=4)
        rng = Random(3)
        scatter_garbage_messages(eng, rng, 30, lie_prob=0.0)
        assert eng.potential() == 0  # all-staying population, true claims

    def test_scatter_empty_pool(self):
        eng = make()
        assert scatter_garbage_messages(eng, Random(0), 5, targets=[]) == 0

    def test_unknown_label_messages_dropped_by_model(self):
        eng = make()
        plant_unknown_label_messages(eng, Random(0), 4)
        eng.run(50, until=lambda e: False)
        assert eng.stats.dropped_unknown == 4

    def test_unknown_label_returns_planted_count(self):
        eng = make()
        assert plant_unknown_label_messages(eng, Random(0), 7) == 7

    def test_unknown_label_empty_engine_returns_zero(self):
        # regression: used to raise from rng.choice on an empty pool
        eng = Engine(
            [],
            OldestFirstScheduler(),
            capability=Capability.NONE,
            strict=False,
            require_staying_per_component=False,
        )
        assert plant_unknown_label_messages(eng, Random(0), 5) == 0


class TestComponentConfinement:
    def _two_components(self):
        """0-1 and 2-3 connected pairwise (via in-flight refs), no link
        between the pairs — two weak components."""
        eng = make(n=4)
        plant_ref_message(eng, 0, "present", 1, Mode.STAYING)
        plant_ref_message(eng, 2, "present", 3, Mode.STAYING)
        return eng

    def test_within_component_injection_allowed(self):
        eng = self._two_components()
        planted = scatter_garbage_messages(
            eng, Random(0), 5, targets=[0], subjects=[1], confine_component=True
        )
        assert planted == 5

    def test_cross_component_leak_rejected(self):
        eng = self._two_components()
        with pytest.raises(ConfigurationError, match="components"):
            scatter_garbage_messages(
                eng, Random(0), 1, targets=[0], subjects=[2],
                confine_component=True,
            )

    def test_gone_process_reference_rejected(self):
        from repro.core.potential import fdp_legitimate
        from repro.core.scenarios import build_fdp_engine

        eng = build_fdp_engine(
            4, [(0, 1), (1, 2), (2, 3)], frozenset({3}), seed=1
        )
        assert eng.run(100_000, until=fdp_legitimate, check_every=16)
        assert eng.processes[3].state.name == "GONE"
        with pytest.raises(ConfigurationError, match="gone"):
            scatter_garbage_messages(
                eng, Random(0), 1, targets=[0], subjects=[3],
                confine_component=True,
            )

    def test_unconfined_default_trusts_pools(self):
        # back-compat: the same cross-component plant goes through when
        # confinement is off (deliberate whole-population sampling).
        eng = self._two_components()
        assert scatter_garbage_messages(
            eng, Random(0), 1, targets=[0], subjects=[2]
        ) == 1
