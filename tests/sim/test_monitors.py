"""Tests for the invariant monitors — both directions: they stay silent on
correct protocols and they trip on deliberately broken ones."""

import pytest

from repro.core.oracles import AlwaysOracle, SingleOracle
from repro.errors import SafetyViolation
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.monitors import (
    ConnectivityMonitor,
    ExitGuardMonitor,
    PotentialMonitor,
    TransitionMonitor,
)
from repro.sim.process import Process
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode, PState


class EdgeDropper(Process):
    """Deliberately broken protocol: drops its only reference (not a
    primitive — exactly the kind of action Lemma 1 protects against)."""

    def __init__(self, pid, neighbor_ref=None):
        super().__init__(pid, Mode.STAYING)
        self.neighbor = neighbor_ref
        self.dropped = False

    def stored_refs(self):
        if self.neighbor is not None and not self.dropped:
            yield RefInfo(self.neighbor, Mode.STAYING)

    def timeout(self, ctx):
        self.dropped = True


class LiarProcess(Process):
    """Deliberately broken protocol: copies invalid information (keeps its
    wrong belief AND forwards it) — the move Lemma 3's proof forbids."""

    def __init__(self, pid, victim=None, peer=None):
        super().__init__(pid, Mode.STAYING)
        self.victim = victim  # actually leaving, believed staying
        self.peer = peer

    def stored_refs(self):
        if self.victim is not None:
            yield RefInfo(self.victim, Mode.STAYING)

    def timeout(self, ctx):
        if self.victim is not None and self.peer is not None:
            ctx.send(self.peer, "noop", RefInfo(self.victim, Mode.STAYING))


class Noop(Process):
    def on_noop(self, ctx, info):
        pass


def make(procs, monitors=(), oracle=None, capability=Capability.BOTH):
    return Engine(
        procs,
        OldestFirstScheduler(),
        capability=capability,
        oracle=oracle,
        monitors=monitors,
        require_staying_per_component=False,
    )


class TestConnectivityMonitor:
    def test_trips_on_disconnection(self):
        a = EdgeDropper(0)
        b = Noop(1, Mode.STAYING)
        a.neighbor = b.self_ref
        mon = ConnectivityMonitor(check_every=1)
        eng = make([a, b], monitors=[mon])
        with pytest.raises(SafetyViolation, match="Lemma 2"):
            eng.run(20, until=lambda e: False)

    def test_silent_on_connected_run(self):
        from repro.core.scenarios import build_fdp_engine, LIGHT_CORRUPTION
        from repro.core.potential import fdp_legitimate
        from repro.graphs import generators

        mon = ConnectivityMonitor(check_every=1)
        eng = build_fdp_engine(
            8,
            generators.ring(8),
            leaving={2, 5},
            seed=3,
            corruption=LIGHT_CORRUPTION,
            monitors=[mon],
        )
        assert eng.run(100_000, until=fdp_legitimate, check_every=16)
        assert mon.checks > 0

    def test_check_every_validation(self):
        with pytest.raises(ValueError):
            ConnectivityMonitor(check_every=0)


class TestPotentialMonitor:
    def test_trips_on_copied_invalid_information(self):
        victim = Noop(2, Mode.LEAVING)
        peer = Noop(1, Mode.STAYING)
        liar = LiarProcess(0, victim=victim.self_ref, peer=peer.self_ref)
        mon = PotentialMonitor(check_every=1)
        eng = make([liar, peer, victim], monitors=[mon])
        with pytest.raises(SafetyViolation, match="Lemma 3"):
            eng.run(30, until=lambda e: False)

    def test_records_series(self):
        mon = PotentialMonitor(check_every=1)
        eng = make([Noop(0, Mode.STAYING)], monitors=[mon])
        eng.run(5, until=lambda e: False)
        assert len(mon.values) == 5
        assert all(v == 0 for v in mon.values)

    def test_validation(self):
        with pytest.raises(ValueError):
            PotentialMonitor(check_every=-1)


class TestTransitionMonitor:
    def test_observes_sleep_and_wake(self):
        class Sleeper(Process):
            def timeout(self, ctx):
                if self.state is PState.AWAKE:
                    ctx.sleep()

            def on_ping(self, ctx):
                pass

        s = Sleeper(0, Mode.LEAVING)
        mon = TransitionMonitor()
        eng = make([s], monitors=[mon])
        eng.run(10, until=lambda e: s.state is PState.ASLEEP)
        eng.post(None, s.self_ref, "ping", ())
        eng.run(10, until=lambda e: False)
        assert (PState.AWAKE, PState.ASLEEP) in mon.observed
        assert (PState.ASLEEP, PState.AWAKE) in mon.observed

    def test_observes_exit(self):
        class Exiter(Process):
            def timeout(self, ctx):
                ctx.exit()

        mon = TransitionMonitor()
        eng = make([Exiter(0, Mode.LEAVING)], monitors=[mon])
        eng.run(5, until=lambda e: False)
        assert (PState.AWAKE, PState.GONE) in mon.observed


class TestExitGuardMonitor:
    def _unsafe_engine(self, strict):
        """Leaving process exits immediately though two partners exist."""

        class EagerExiter(Process):
            def __init__(self, pid, refs):
                super().__init__(pid, Mode.LEAVING)
                self.refs = refs

            def stored_refs(self):
                return (RefInfo(r, Mode.STAYING) for r in self.refs)

            def timeout(self, ctx):
                if ctx.oracle():
                    ctx.exit()

        b, c = Noop(1, Mode.STAYING), Noop(2, Mode.STAYING)
        b.extra = None
        a = EagerExiter(0, [b.self_ref, c.self_ref])
        guard = ExitGuardMonitor(SingleOracle(), strict=strict)
        eng = make([a, b, c], oracle=AlwaysOracle(), capability=Capability.EXIT)
        eng.exit_auditors.append(guard)
        return eng, guard

    def test_records_unsafe_exit_under_always_oracle(self):
        eng, guard = self._unsafe_engine(strict=False)
        eng.run(10, until=lambda e: False)
        assert guard.unsafe_exits == [0]
        assert guard.audited == 1

    def test_strict_mode_raises(self):
        eng, guard = self._unsafe_engine(strict=True)
        with pytest.raises(SafetyViolation):
            eng.run(10, until=lambda e: False)

    def test_safe_exit_not_flagged(self):
        class SafeExiter(Process):
            def timeout(self, ctx):
                if ctx.oracle():
                    ctx.exit()

        a = SafeExiter(0, Mode.LEAVING)
        guard = ExitGuardMonitor(SingleOracle(), strict=True)
        eng = make([a], oracle=SingleOracle(), capability=Capability.EXIT)
        eng.exit_auditors.append(guard)
        eng.run(10, until=lambda e: False)
        assert guard.unsafe_exits == []
        assert guard.audited == 1
