"""Unit tests for modes, lifecycle states and capabilities (Figure 1)."""

from repro.sim.states import LEGAL_TRANSITIONS, Capability, Mode, PState


class TestMode:
    def test_two_modes(self):
        assert {Mode.STAYING, Mode.LEAVING} == set(Mode)

    def test_opposite(self):
        assert Mode.STAYING.opposite is Mode.LEAVING
        assert Mode.LEAVING.opposite is Mode.STAYING

    def test_opposite_is_involution(self):
        for m in Mode:
            assert m.opposite.opposite is m


class TestStateGraph:
    def test_exactly_three_states(self):
        assert {PState.AWAKE, PState.ASLEEP, PState.GONE} == set(PState)

    def test_figure_1_transitions(self):
        """The legal transition set is exactly the edges drawn in Figure 1."""
        assert LEGAL_TRANSITIONS == {
            (PState.AWAKE, PState.GONE),
            (PState.AWAKE, PState.ASLEEP),
            (PState.ASLEEP, PState.AWAKE),
        }

    def test_gone_is_absorbing(self):
        assert not any(src is PState.GONE for src, _ in LEGAL_TRANSITIONS)

    def test_asleep_cannot_exit_directly(self):
        assert (PState.ASLEEP, PState.GONE) not in LEGAL_TRANSITIONS


class TestCapability:
    def test_fdp_setting(self):
        cap = Capability.EXIT
        assert cap.allows_exit
        assert not cap.allows_sleep

    def test_fsp_setting(self):
        cap = Capability.SLEEP
        assert cap.allows_sleep
        assert not cap.allows_exit

    def test_both(self):
        assert Capability.BOTH.allows_exit
        assert Capability.BOTH.allows_sleep

    def test_none(self):
        assert not Capability.NONE.allows_exit
        assert not Capability.NONE.allows_sleep
