"""Watchdogs: the PR 2 livelock trips them, healthy runs never do."""

from __future__ import annotations

import pytest

from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import (
    SCHEDULER_FACTORIES,
    Corruption,
    build_framework_engine,
    build_from_meta,
)
from repro.errors import ConfigurationError, WatchdogTrip
from repro.chaos.watchdogs import (
    WATCHDOG_KINDS,
    BacklogWatchdog,
    LivelockWatchdog,
    NoProgressWatchdog,
    default_watchdogs,
    watchdog_from_config,
)
from repro.overlays import LOGICS
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode

from tests.chaos.conftest import (
    LIVELOCK_CORRUPTION,
    LIVELOCK_EDGES,
    LIVELOCK_LEAVING,
    TEST_LIVELOCK_WATCHDOG,
)

BUDGET = 40_000

#: per-scheduler-family seeds under which the pinned n=6 scenario
#: livelocks (the adversarial scheduler *masks* the bug at the others'
#: seed — it drains the gone pid's channel — hence its own).
LIVELOCK_SEEDS = {
    "random": 1201,
    "oldest": 1211,
    "adversarial": 1211,
    "sync": 1211,
}


def build_livelock_engine(scheduler_name: str, seed: int, monitors):
    logic = LOGICS["robust_ring"]
    return build_framework_engine(
        6,
        LIVELOCK_EDGES,
        LIVELOCK_LEAVING,
        logic,
        seed=seed,
        corruption=Corruption(**LIVELOCK_CORRUPTION),
        scheduler=SCHEDULER_FACTORIES[scheduler_name](seed),
        monitors=monitors,
    )


def framework_done(logic):
    def done(engine):
        return fdp_legitimate(engine) and logic.target_reached(engine)

    return done


class TestLivelockDetection:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_FACTORIES))
    def test_revived_pr2_livelock_trips_under_every_family(
        self, buggy_postprocess, scheduler
    ):
        """The re-introduced presumed-leaving bug is detected mid-run by
        the livelock watchdog under all four scheduler families — in a
        couple thousand steps instead of a burned multi-million budget."""
        watchdog = LivelockWatchdog(**TEST_LIVELOCK_WATCHDOG)
        eng = build_livelock_engine(
            scheduler, LIVELOCK_SEEDS[scheduler], [watchdog]
        )
        with pytest.raises(WatchdogTrip) as excinfo:
            eng.run(BUDGET, until=framework_done(LOGICS["robust_ring"]))
        diagnosis = excinfo.value.diagnosis
        assert diagnosis is not None
        assert diagnosis.kind == "livelock"
        assert diagnosis.step <= BUDGET
        assert diagnosis.pending > diagnosis.pending_start
        # the signature artifact: a *gone* process's channel is growing.
        assert diagnosis.offending_pids
        assert watchdog.tripped is diagnosis

    def test_latch_mode_counts_without_raising(self, buggy_postprocess):
        watchdog = LivelockWatchdog(
            raise_on_trip=False, **TEST_LIVELOCK_WATCHDOG
        )
        eng = build_livelock_engine("random", LIVELOCK_SEEDS["random"], [watchdog])
        converged = eng.run(6_000, until=framework_done(LOGICS["robust_ring"]))
        assert not converged
        assert watchdog.tripped is not None
        assert "livelock" in watchdog.tripped.summary()
        payload = watchdog.tripped.as_dict()
        assert payload["kind"] == "livelock"
        assert payload["pending"] > payload["pending_start"]

    def test_fixed_protocol_same_scenario_is_silent(self):
        """Identical scenario, stock (fixed) protocol: converges with the
        same tight watchdog attached and silent — the detector keys on
        the bug, not on the scenario."""
        watchdog = LivelockWatchdog(**TEST_LIVELOCK_WATCHDOG)
        eng = build_livelock_engine("random", LIVELOCK_SEEDS["random"], [watchdog])
        assert eng.run(200_000, until=framework_done(LOGICS["robust_ring"]))
        assert watchdog.tripped is None


class TestHealthySilence:
    @pytest.mark.parametrize(
        "meta, until",
        [
            (
                {"scenario": "fdp", "n": 12, "topology": "random_connected",
                 "leaving": 0.3, "seed": 5, "corruption": 0.5},
                fdp_legitimate,
            ),
            (
                {"scenario": "fsp", "n": 12, "topology": "random_connected",
                 "leaving": 0.3, "seed": 5, "corruption": 0.5},
                fsp_legitimate,
            ),
            (
                {"scenario": "framework", "protocol": "ring", "n": 10,
                 "topology": "random_connected", "leaving": 0.3, "seed": 5,
                 "corruption": 0.5},
                framework_done(LOGICS["ring"]),
            ),
        ],
        ids=["fdp", "fsp", "framework-ring"],
    )
    def test_default_watchdogs_silent_to_convergence(self, meta, until):
        watchdogs = default_watchdogs()
        eng = build_from_meta(meta, monitors=list(watchdogs))
        assert eng.run(400_000, until=until, check_every=64)
        assert all(w.tripped is None for w in watchdogs)
        assert all(w.checks > 0 for w in watchdogs)


class PingProcess(Process):
    """Eternal ping-pong: every delivery posts one message back, so the
    observable fingerprint (Φ=0, constant pending, zero lifecycle
    transitions) is frozen forever — the no-progress shape."""

    def __init__(self, pid: int, peer: int) -> None:
        super().__init__(pid, Mode.STAYING)
        self._peer = peer

    def on_ping(self, ctx) -> None:
        ctx.send(Ref(self._peer), "ping")


def make_pingpong(n_messages: int = 4) -> Engine:
    procs = [PingProcess(0, 1), PingProcess(1, 0)]
    eng = Engine(
        procs,
        OldestFirstScheduler(),
        capability=Capability.NONE,
        strict=False,
        require_staying_per_component=False,
    )
    for i in range(n_messages):
        eng.post(None, eng.ref(i % 2), "ping", ())
    return eng


class TestNoProgress:
    def test_frozen_fingerprint_trips(self):
        watchdog = NoProgressWatchdog(check_every=3, window=16)
        eng = make_pingpong()
        eng.monitors.append(watchdog)
        with pytest.raises(WatchdogTrip) as excinfo:
            eng.run(2_000, until=lambda e: False)
        assert excinfo.value.diagnosis.kind == "no_progress"

    def test_rebase_restarts_the_streak(self):
        watchdog = NoProgressWatchdog(check_every=3, window=16)
        eng = make_pingpong()
        eng.monitors.append(watchdog)
        for _ in range(15 * 3):
            eng.step()
        assert watchdog.tripped is None
        watchdog.rebase(eng)
        for _ in range(15 * 3):  # streak must rebuild from scratch
            eng.step()
        assert watchdog.tripped is None
        with pytest.raises(WatchdogTrip):
            eng.run(16 * 3, until=lambda e: False)


class TestBacklog:
    def test_hard_bound_trips(self):
        watchdog = BacklogWatchdog(check_every=1, max_pending=5)
        eng = make_pingpong(n_messages=12)
        eng.monitors.append(watchdog)
        with pytest.raises(WatchdogTrip) as excinfo:
            eng.run(50, until=lambda e: False)
        diagnosis = excinfo.value.diagnosis
        assert diagnosis.kind == "backlog"
        assert diagnosis.pending > 5

    def test_under_bound_silent(self):
        watchdog = BacklogWatchdog(check_every=1, max_pending=1_000)
        eng = make_pingpong()
        eng.monitors.append(watchdog)
        eng.run(100, until=lambda e: False)
        assert watchdog.tripped is None


class TestConfigRoundTrip:
    @pytest.mark.parametrize("kind", sorted(WATCHDOG_KINDS))
    def test_config_reconstructs_equivalent_watchdog(self, kind):
        original = WATCHDOG_KINDS[kind]()
        rebuilt = watchdog_from_config(original.config())
        assert type(rebuilt) is type(original)
        assert rebuilt.config() == original.config()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            watchdog_from_config({"watchdog": "clairvoyant"})

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LivelockWatchdog(window=1),
            lambda: LivelockWatchdog(min_backlog_growth=0),
            lambda: NoProgressWatchdog(window=0),
            lambda: BacklogWatchdog(max_pending=0),
            lambda: BacklogWatchdog(check_every=0),
        ],
    )
    def test_invalid_parameters_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            factory()
