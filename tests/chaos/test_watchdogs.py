"""Watchdogs: the PR 2 livelock trips them, healthy runs never do."""

from __future__ import annotations

import pytest

from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import (
    SCHEDULER_FACTORIES,
    Corruption,
    build_framework_engine,
    build_from_meta,
)
from repro.errors import ConfigurationError, WatchdogTrip
from repro.chaos.watchdogs import (
    WATCHDOG_KINDS,
    BacklogWatchdog,
    LivelockWatchdog,
    NoProgressWatchdog,
    default_watchdogs,
    watchdog_from_config,
)
from repro.overlays import LOGICS
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode

from tests.chaos.conftest import (
    LIVELOCK_CORRUPTION,
    LIVELOCK_EDGES,
    LIVELOCK_LEAVING,
    TEST_LIVELOCK_WATCHDOG,
)

BUDGET = 40_000

#: per-scheduler-family seeds under which the pinned n=6 scenario
#: livelocks (the adversarial scheduler *masks* the bug at the others'
#: seed — it drains the gone pid's channel — hence its own).
LIVELOCK_SEEDS = {
    "random": 1201,
    "oldest": 1211,
    "adversarial": 1211,
    "sync": 1211,
}


def build_livelock_engine(scheduler_name: str, seed: int, monitors):
    logic = LOGICS["robust_ring"]
    return build_framework_engine(
        6,
        LIVELOCK_EDGES,
        LIVELOCK_LEAVING,
        logic,
        seed=seed,
        corruption=Corruption(**LIVELOCK_CORRUPTION),
        scheduler=SCHEDULER_FACTORIES[scheduler_name](seed),
        monitors=monitors,
    )


def framework_done(logic):
    def done(engine):
        return fdp_legitimate(engine) and logic.target_reached(engine)

    return done


class TestLivelockDetection:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_FACTORIES))
    def test_revived_pr2_livelock_trips_under_every_family(
        self, buggy_postprocess, scheduler
    ):
        """The re-introduced presumed-leaving bug is detected mid-run by
        the livelock watchdog under all four scheduler families — in a
        couple thousand steps instead of a burned multi-million budget."""
        watchdog = LivelockWatchdog(**TEST_LIVELOCK_WATCHDOG)
        eng = build_livelock_engine(
            scheduler, LIVELOCK_SEEDS[scheduler], [watchdog]
        )
        with pytest.raises(WatchdogTrip) as excinfo:
            eng.run(BUDGET, until=framework_done(LOGICS["robust_ring"]))
        diagnosis = excinfo.value.diagnosis
        assert diagnosis is not None
        assert diagnosis.kind == "livelock"
        assert diagnosis.step <= BUDGET
        # the signature artifact: undrained flow keeps growing while Φ
        # stalls. Under the open-system bounce semantics the doomed
        # sends surface as dropped_gone instead of piling up inside the
        # gone process's channel, so the flow is the sum of both axes.
        flow = diagnosis.pending + diagnosis.dropped_gone
        flow_start = diagnosis.pending_start + diagnosis.dropped_gone_start
        assert flow > flow_start
        assert diagnosis.dropped_gone > 0
        assert diagnosis.offending_pids
        assert watchdog.tripped is diagnosis

    def test_latch_mode_counts_without_raising(self, buggy_postprocess):
        watchdog = LivelockWatchdog(
            raise_on_trip=False, **TEST_LIVELOCK_WATCHDOG
        )
        eng = build_livelock_engine("random", LIVELOCK_SEEDS["random"], [watchdog])
        converged = eng.run(6_000, until=framework_done(LOGICS["robust_ring"]))
        assert not converged
        assert watchdog.tripped is not None
        assert "livelock" in watchdog.tripped.summary()
        payload = watchdog.tripped.as_dict()
        assert payload["kind"] == "livelock"
        flow = payload["pending"] + payload["dropped_gone"]
        flow_start = payload["pending_start"] + payload["dropped_gone_start"]
        assert flow > flow_start

    def test_fixed_protocol_same_scenario_is_silent(self):
        """Identical scenario, stock (fixed) protocol: converges with the
        same tight watchdog attached and silent — the detector keys on
        the bug, not on the scenario."""
        watchdog = LivelockWatchdog(**TEST_LIVELOCK_WATCHDOG)
        eng = build_livelock_engine("random", LIVELOCK_SEEDS["random"], [watchdog])
        assert eng.run(200_000, until=framework_done(LOGICS["robust_ring"]))
        assert watchdog.tripped is None


class TestOpenSystemSilence:
    def test_livelock_window_rebases_on_churn(self):
        """Under open-system traffic Φ legitimately rises (admissions
        plant beliefs out of band) and dropped_gone grows with every
        send racing a departure — the closed-system reading tripped the
        livelock watchdog on exactly that. A churn op starts a new
        computation, so the window must rebase, like it does after a
        campaign injection."""
        from repro.chaos import ChaosCampaign, run_chaos
        from repro.traffic import ArrivalConfig, RequestConfig, TrafficDriver

        def workload(engine):
            driver = TrafficDriver(
                engine,
                arrivals=ArrivalConfig(join_rate=8.0, session_min=256.0),
                requests=RequestConfig(rate=20.0),
                seed=0,
                chunk=128,
            )
            driver.run(20_000)
            assert engine.stats.dropped_gone > 0, "churn should race departures"
            return driver.stats.searchability_violations == 0

        result = run_chaos(
            {"scenario": "fdp", "n": 10, "topology": "random_connected",
             "leaving": 0.25, "seed": 0, "scheduler": "random",
             "corruption": 0.5},
            campaign=ChaosCampaign(seed=0, period=400, max_injections=3),
            watchdogs=list(default_watchdogs()),
            capture_on_budget=False,
            workload=workload,
        )
        # pre-fix this exact cell tripped: "livelock at step 17632:
        # potential stalled at 30 while undrained flow grew by 11018"
        assert result.outcome == "converged", result.error


class TestHealthySilence:
    @pytest.mark.parametrize(
        "meta, until",
        [
            (
                {"scenario": "fdp", "n": 12, "topology": "random_connected",
                 "leaving": 0.3, "seed": 5, "corruption": 0.5},
                fdp_legitimate,
            ),
            (
                {"scenario": "fsp", "n": 12, "topology": "random_connected",
                 "leaving": 0.3, "seed": 5, "corruption": 0.5},
                fsp_legitimate,
            ),
            (
                {"scenario": "framework", "protocol": "ring", "n": 10,
                 "topology": "random_connected", "leaving": 0.3, "seed": 5,
                 "corruption": 0.5},
                framework_done(LOGICS["ring"]),
            ),
        ],
        ids=["fdp", "fsp", "framework-ring"],
    )
    def test_default_watchdogs_silent_to_convergence(self, meta, until):
        watchdogs = default_watchdogs()
        eng = build_from_meta(meta, monitors=list(watchdogs))
        assert eng.run(400_000, until=until, check_every=64)
        assert all(w.tripped is None for w in watchdogs)
        assert all(w.checks > 0 for w in watchdogs)


class PingProcess(Process):
    """Eternal ping-pong: every delivery posts one message back, so the
    observable fingerprint (Φ=0, constant pending, zero lifecycle
    transitions) is frozen forever — the no-progress shape."""

    def __init__(self, pid: int, peer: int) -> None:
        super().__init__(pid, Mode.STAYING)
        self._peer = peer

    def on_ping(self, ctx) -> None:
        ctx.send(Ref(self._peer), "ping")


def make_pingpong(n_messages: int = 4) -> Engine:
    procs = [PingProcess(0, 1), PingProcess(1, 0)]
    eng = Engine(
        procs,
        OldestFirstScheduler(),
        capability=Capability.NONE,
        strict=False,
        require_staying_per_component=False,
    )
    for i in range(n_messages):
        eng.post(None, eng.ref(i % 2), "ping", ())
    return eng


class TestNoProgress:
    def test_frozen_fingerprint_trips(self):
        watchdog = NoProgressWatchdog(check_every=3, window=16)
        eng = make_pingpong()
        eng.monitors.append(watchdog)
        with pytest.raises(WatchdogTrip) as excinfo:
            eng.run(2_000, until=lambda e: False)
        assert excinfo.value.diagnosis.kind == "no_progress"

    def test_rebase_restarts_the_streak(self):
        watchdog = NoProgressWatchdog(check_every=3, window=16)
        eng = make_pingpong()
        eng.monitors.append(watchdog)
        for _ in range(15 * 3):
            eng.step()
        assert watchdog.tripped is None
        watchdog.rebase(eng)
        for _ in range(15 * 3):  # streak must rebuild from scratch
            eng.step()
        assert watchdog.tripped is None
        with pytest.raises(WatchdogTrip):
            eng.run(16 * 3, until=lambda e: False)


class TestBacklog:
    def test_hard_bound_trips(self):
        watchdog = BacklogWatchdog(check_every=1, max_pending=5)
        eng = make_pingpong(n_messages=12)
        eng.monitors.append(watchdog)
        with pytest.raises(WatchdogTrip) as excinfo:
            eng.run(50, until=lambda e: False)
        diagnosis = excinfo.value.diagnosis
        assert diagnosis.kind == "backlog"
        assert diagnosis.pending > 5

    def test_under_bound_silent(self):
        watchdog = BacklogWatchdog(check_every=1, max_pending=1_000)
        eng = make_pingpong()
        eng.monitors.append(watchdog)
        eng.run(100, until=lambda e: False)
        assert watchdog.tripped is None


class TestConfigRoundTrip:
    @pytest.mark.parametrize("kind", sorted(WATCHDOG_KINDS))
    def test_config_reconstructs_equivalent_watchdog(self, kind):
        original = WATCHDOG_KINDS[kind]()
        rebuilt = watchdog_from_config(original.config())
        assert type(rebuilt) is type(original)
        assert rebuilt.config() == original.config()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            watchdog_from_config({"watchdog": "clairvoyant"})

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LivelockWatchdog(window=1),
            lambda: LivelockWatchdog(min_backlog_growth=0),
            lambda: NoProgressWatchdog(window=0),
            lambda: BacklogWatchdog(max_pending=0),
            lambda: BacklogWatchdog(check_every=0),
        ],
    )
    def test_invalid_parameters_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            factory()
