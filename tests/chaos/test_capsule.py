"""Failure capsules: capture once, replay bit-identically forever."""

from __future__ import annotations

import json

import pytest

from repro.chaos.campaigns import ALL_CAMPAIGN_KINDS, ChaosCampaign
from repro.chaos.capsule import CAPSULE_VERSION, Capsule, replay_capsule, run_chaos
from repro.chaos.watchdogs import LivelockWatchdog, default_watchdogs
from repro.net.reliable import journal_digest
from repro.core.potential import fdp_legitimate
from repro.errors import ConfigurationError

from tests.chaos.conftest import TEST_LIVELOCK_WATCHDOG, livelock_meta

HEALTHY_FDP = {
    "scenario": "fdp",
    "n": 10,
    "topology": "random_connected",
    "leaving": 0.3,
    "seed": 5,
    "corruption": 0.5,
}


class TestTripCapture:
    def test_livelock_captured_and_replayed_bit_identically(
        self, buggy_postprocess, tmp_path
    ):
        """The full acceptance loop minus shrinking: the re-introduced
        PR 2 livelock trips the watchdog mid-campaign, the capsule is
        written, and a from-disk replay — campaign re-injections and all
        — lands on the exact captured counters (replay verification
        raises on any divergence, so passing *is* the bit-identity
        check)."""
        result = run_chaos(
            livelock_meta(),
            campaign=ChaosCampaign(seed=52, period=150, max_injections=3),
            watchdogs=[LivelockWatchdog(**TEST_LIVELOCK_WATCHDOG)],
            max_steps=40_000,
            capsule_dir=str(tmp_path),
        )
        assert result.outcome == "watchdog"
        assert result.failed
        assert result.capsule_path is not None
        capsule = Capsule.load(result.capsule_path)
        assert capsule.kind == "watchdog"
        assert capsule.diagnosis["kind"] == "livelock"
        assert capsule.error.startswith("WatchdogTrip")
        assert capsule.injections, "campaign should have fired before the trip"
        assert len(capsule.schedule) == result.engine.step_count
        replayed = replay_capsule(capsule)  # raises on divergence
        assert replayed.step_count == len(capsule.schedule)
        assert replayed.potential() == capsule.final["phi"]
        assert replayed.pending_count == capsule.final["pending"]

    def test_converged_run_produces_no_capsule(self):
        result = run_chaos(
            HEALTHY_FDP,
            watchdogs=list(default_watchdogs()),
            max_steps=400_000,
            until=fdp_legitimate,
        )
        assert result.outcome == "converged"
        assert not result.failed
        assert result.capsule is None
        assert result.error is None

    def test_budget_exhaustion_captured_with_diagnostics(self, tmp_path):
        result = run_chaos(
            HEALTHY_FDP,
            max_steps=64,
            until=fdp_legitimate,
            check_every=8,
            capsule_dir=str(tmp_path),
        )
        assert result.outcome == "budget"
        capsule = result.capsule
        assert capsule is not None and capsule.kind == "budget"
        assert capsule.diagnosis["step"] == 64
        assert "phi" in capsule.diagnosis
        replayed = replay_capsule(capsule)
        assert replayed.step_count == 64

    def test_budget_capture_can_be_disabled(self):
        result = run_chaos(
            HEALTHY_FDP,
            max_steps=64,
            until=fdp_legitimate,
            capture_on_budget=False,
        )
        assert result.outcome == "budget"
        assert result.capsule is None


class TestSerialization:
    def _capsule(self, tmp_path) -> Capsule:
        result = run_chaos(
            HEALTHY_FDP,
            campaign=ChaosCampaign(seed=1, period=20),
            max_steps=64,
            until=fdp_legitimate,
            capsule_dir=str(tmp_path),
        )
        return result.capsule

    def test_dict_roundtrip_is_lossless(self, tmp_path):
        capsule = self._capsule(tmp_path)
        assert Capsule.from_dict(capsule.as_dict()).as_dict() == capsule.as_dict()

    def test_file_roundtrip_is_lossless(self, tmp_path):
        capsule = self._capsule(tmp_path)
        path = str(tmp_path / "roundtrip.json")
        capsule.save(path)
        assert Capsule.load(path).as_dict() == capsule.as_dict()

    def test_capsule_is_plain_json(self, tmp_path):
        capsule = self._capsule(tmp_path)
        payload = json.loads(json.dumps(capsule.as_dict()))
        assert payload["version"] == CAPSULE_VERSION
        assert payload["scenario"]["scenario"] == "fdp"
        assert all(len(event) == 3 for event in payload["schedule"])

    def test_unknown_version_rejected(self, tmp_path):
        capsule = self._capsule(tmp_path)
        payload = capsule.as_dict()
        payload["version"] = CAPSULE_VERSION + 1
        with pytest.raises(ConfigurationError):
            Capsule.from_dict(payload)


def churn_workload(engine):
    """A small open-system service run; returns False so run_chaos
    captures a budget capsule — the capsule is the artifact under test."""
    from repro.traffic import ArrivalConfig, RequestConfig, TrafficDriver

    driver = TrafficDriver(
        engine,
        arrivals=ArrivalConfig(join_rate=40.0, session_min=150.0),
        requests=RequestConfig(rate=20.0),
        seed=9,
        chunk=64,
    )
    driver.run(2_000)
    return False


class TestChurnCapsules:
    """Schema v2: the open-system churn journal rides in the capsule."""

    def _churn_capsule(self, tmp_path) -> Capsule:
        result = run_chaos(
            HEALTHY_FDP,
            campaign=ChaosCampaign(seed=3, period=200, max_injections=2),
            workload=churn_workload,
            capsule_dir=str(tmp_path),
        )
        assert result.outcome == "budget"
        return Capsule.load(result.capsule_path)

    def test_churn_run_replays_bit_identically(self, tmp_path):
        capsule = self._churn_capsule(tmp_path)
        assert capsule.version == CAPSULE_VERSION == 3
        ops = {op["op"] for op in capsule.churn}
        assert "admit" in ops and "leave" in ops
        assert "population" in capsule.final
        # replay re-applies each journaled op at its recorded step and
        # raises on any final-counter divergence — passing IS the
        # bit-identity check, workload detached and all
        replayed = replay_capsule(capsule)
        assert replayed.step_count == len(capsule.schedule)
        assert len(replayed.processes) == capsule.final["population"]

    def test_churn_capsule_is_core_agnostic(self, tmp_path):
        """A capsule captured on the object model replays bit-identically
        on the struct-of-arrays core — mid-run admissions included."""
        capsule = self._churn_capsule(tmp_path)
        replayed = replay_capsule(capsule, engine_mode="soa")
        assert replayed.step_count == len(capsule.schedule)

    def test_v1_capsule_still_loads(self, tmp_path):
        result = run_chaos(
            HEALTHY_FDP,
            max_steps=64,
            until=fdp_legitimate,
            capsule_dir=str(tmp_path),
        )
        payload = result.capsule.as_dict()
        payload["version"] = 1
        del payload["churn"]  # v1 predates the journal
        del payload["final"]["population"]  # ... and the population counter
        del payload["net"]  # ... and the transport record
        loaded = Capsule.from_dict(payload)
        assert loaded.churn == []
        assert loaded.net is None
        replayed = replay_capsule(loaded)  # population check skipped for v1
        assert replayed.step_count == 64

    def test_v2_capsule_still_loads(self, tmp_path):
        result = run_chaos(
            HEALTHY_FDP,
            max_steps=64,
            until=fdp_legitimate,
            capsule_dir=str(tmp_path),
        )
        payload = result.capsule.as_dict()
        payload["version"] = 2
        del payload["net"]  # v2 predates the transport record
        loaded = Capsule.from_dict(payload)
        assert loaded.net is None
        replayed = replay_capsule(loaded)
        assert replayed.step_count == 64


class TestNetCapsules:
    """Schema v3: the reliable-transport record rides in the capsule."""

    def _net_capsule(self, tmp_path, scenario="fdp") -> Capsule:
        from repro.net import default_net_config

        meta = dict(HEALTHY_FDP, scenario=scenario)
        meta["net"] = default_net_config(7, loss=0.1, dup=0.1, delay=0.1)
        result = run_chaos(
            meta,
            campaign=ChaosCampaign(
                seed=7,
                period=60,
                max_injections=4,
                kinds=ALL_CAMPAIGN_KINDS,
            ),
            max_steps=300,
            capsule_dir=str(tmp_path),
        )
        assert result.outcome == "budget"
        return Capsule.load(result.capsule_path)

    @pytest.mark.parametrize("scenario", ["fdp", "fsp"])
    def test_net_run_replays_bit_identically(self, tmp_path, scenario):
        capsule = self._net_capsule(tmp_path, scenario)
        assert capsule.version == CAPSULE_VERSION
        assert capsule.net is not None
        assert capsule.net["config"]["underlay"]["loss"] == 0.1
        assert capsule.net["stats"]["sends"] > 0
        assert capsule.net["digest"] == journal_digest(capsule.net["journal"])
        # replay rebuilds the transport from net.config and raises on
        # any final-counter divergence — passing IS the bit-identity
        # check, faults re-rolled and all
        replayed = replay_capsule(capsule)
        assert replayed.step_count == len(capsule.schedule)
        assert replayed.net is not None

    def test_transportless_capsule_has_null_net(self, tmp_path):
        result = run_chaos(
            HEALTHY_FDP,
            max_steps=64,
            until=fdp_legitimate,
            capsule_dir=str(tmp_path),
        )
        capsule = Capsule.load(result.capsule_path)
        assert capsule.net is None
        assert capsule.as_dict()["net"] is None

    def test_tampered_journal_rejected_at_load(self, tmp_path):
        capsule = self._net_capsule(tmp_path)
        payload = capsule.as_dict()
        assert payload["net"]["journal"], "journal should have entries"
        payload["net"]["journal"][0]["ev"] = "forged"
        with pytest.raises(ConfigurationError, match="journal"):
            Capsule.from_dict(payload)

    def test_truncated_journal_rejected_at_load(self, tmp_path):
        capsule = self._net_capsule(tmp_path)
        payload = capsule.as_dict()
        payload["net"]["journal"] = payload["net"]["journal"][:-1]
        with pytest.raises(ConfigurationError, match="journal"):
            Capsule.from_dict(payload)


class TestReplayVerification:
    def test_tampered_final_counters_detected(self, tmp_path):
        result = run_chaos(
            HEALTHY_FDP, max_steps=64, until=fdp_legitimate, capsule_dir=str(tmp_path)
        )
        capsule = result.capsule
        capsule.final["phi"] += 1
        with pytest.raises(ConfigurationError, match="diverged"):
            replay_capsule(capsule)

    def test_verification_can_be_skipped(self, tmp_path):
        result = run_chaos(HEALTHY_FDP, max_steps=64, until=fdp_legitimate)
        capsule = result.capsule
        capsule.final["phi"] += 1
        replayed = capsule.replay(verify=False)
        assert replayed.step_count == 64
