"""Shared fixtures for the chaos-subsystem tests.

The load-bearing one is ``buggy_postprocess``: it re-introduces the PR 2
presumed-leaving livelock by stripping the P-eviction from
``FrameworkProcess._postprocess`` — the exact bug the watchdog /
capsule / shrink pipeline exists to detect, freeze and minimize. The
fixture patches the class in-process, so everything driven through it
(including :func:`repro.core.scenarios.build_from_meta` rebuilds and
capsule replays within the same test) sees the buggy protocol.
"""

from __future__ import annotations

import pytest

from repro.core.framework import FrameworkProcess
from repro.sim.messages import RefInfo
from repro.sim.refs import Ref
from repro.sim.states import Mode

#: pinned hypothesis-found livelock scenario from tests/core (n=6,
#: robust ring): with the eviction removed, a staying process keeps a
#: gone pred in P and respawns unanswerable verify cycles forever.
LIVELOCK_EDGES = [(0, 1), (1, 2), (1, 4), (2, 3), (2, 4), (4, 1), (4, 3), (5, 4)]
LIVELOCK_LEAVING = frozenset({2, 3, 4})
LIVELOCK_CORRUPTION = {
    "belief_lie_prob": 0.2047035841490263,
    "anchor_prob": 0.18379276174876072,
    "anchor_lie_prob": 0.2047035841490263,
    "garbage_per_process": 0.3418840602302751,
    "garbage_lie_prob": 0.5,
}

#: tight livelock watchdog for tests: 96 samples x 16 steps = a 1536-step
#: observation window, so the pinned scenarios trip well inside 40k steps.
TEST_LIVELOCK_WATCHDOG = {
    "check_every": 16,
    "window": 96,
    "min_backlog_growth": 48,
}


def livelock_meta(*, n: int = 12, seed: int = 52, scheduler: str = "random") -> dict:
    """A capsule-vocabulary scenario that livelocks under the buggy
    ``_postprocess`` (explicit edges, so the shrinker's ddmin axis runs)."""
    from repro.graphs.generators import GENERATORS

    return {
        "scenario": "framework",
        "protocol": "robust_ring",
        "n": n,
        "edges": [list(e) for e in GENERATORS["random_connected"](n, seed=seed)],
        "leaving": 0.4,
        "seed": seed,
        "corruption": {
            "belief_lie_prob": 0.2,
            "anchor_prob": 0.18,
            "anchor_lie_prob": 0.2,
            "garbage_per_process": 0.34,
            "garbage_lie_prob": 0.5,
        },
        "scheduler": scheduler,
    }


def _postprocess_without_eviction(self, ctx, entry) -> None:
    """``FrameworkProcess._postprocess`` as it stood before the PR 2 fix:
    the presumed-leaving reference is reversed but never evicted from P,
    so a gone pred is re-targeted on every timeout — the livelock."""
    handled: set[Ref] = set()
    for ref in entry.refs():
        if ref == self.self_ref or ref in handled:
            continue
        handled.add(ref)
        mode = entry.modes.get(ref, Mode.STAYING)
        if mode is Mode.STAYING:
            self._integrate(ctx, ref)
        else:
            ctx.send(ref, "present", RefInfo(self.self_ref, self.mode))
    payload = tuple(a for a in entry.args if not isinstance(a, Ref))
    if payload:
        self.logic.postprocess_extra(ctx, payload)


@pytest.fixture
def buggy_postprocess(monkeypatch):
    """Re-introduce the PR 2 presumed-leaving livelock for this test."""
    monkeypatch.setattr(
        FrameworkProcess, "_postprocess", _postprocess_without_eviction
    )
