"""Capsule shrinking: a 12-process livelock becomes a ≤8-process repro."""

from __future__ import annotations

import pytest

from repro.analysis.runner import TrialFabric
from repro.chaos.capsule import Capsule, replay_capsule, run_chaos
from repro.chaos.shrink import shrink_capsule
from repro.chaos.watchdogs import (
    BacklogWatchdog,
    LivelockWatchdog,
    watchdog_from_config,
)
from repro.core.potential import fdp_legitimate
from repro.errors import ConfigurationError

from tests.chaos.conftest import TEST_LIVELOCK_WATCHDOG, livelock_meta


class TestLivelockShrink:
    def test_pr2_livelock_shrinks_to_small_reproducer(
        self, buggy_postprocess, tmp_path
    ):
        """The ISSUE's end-to-end acceptance path: the re-introduced
        livelock is detected by the watchdog, captured, and delta-debugged
        down to at most 8 processes; the minimized capsule still replays
        and a fresh run of the minimized spec still trips."""
        captured = run_chaos(
            livelock_meta(),
            watchdogs=[LivelockWatchdog(**TEST_LIVELOCK_WATCHDOG)],
            max_steps=40_000,
        )
        assert captured.outcome == "watchdog"

        result = shrink_capsule(captured.capsule, capsule_dir=str(tmp_path))
        assert result.original_n == 12
        assert result.final_n <= 8
        assert result.probes > 0
        assert any(step["axis"] == "process" for step in result.history)
        assert result.scenario["n"] == result.final_n
        assert len(result.scenario["edges"]) <= len(captured.capsule.scenario["edges"])

        # the minimized capsule is itself bit-identically replayable ...
        minimal = result.capsule
        assert minimal is not None and minimal.kind == "watchdog"
        replayed = replay_capsule(minimal)
        assert replayed.step_count == len(minimal.schedule)

        # ... and the minimized *spec* still trips on a fresh run.
        rerun = run_chaos(
            result.scenario,
            watchdogs=[watchdog_from_config(c) for c in minimal.watchdogs],
            max_steps=result.max_steps,
        )
        assert rerun.outcome == "watchdog"
        assert rerun.capsule.diagnosis["kind"] == "livelock"

    def test_nonreproducible_capsule_rejected(self):
        """A capsule whose failure exists only on its exact schedule
        cannot be shrunk by re-running — the shrinker must say so instead
        of silently returning the original."""
        capsule = Capsule(
            kind="watchdog",
            scenario={
                "scenario": "fdp",
                "n": 6,
                "topology": "random_connected",
                "leaving": 0.3,
                "seed": 5,
                "corruption": 0.2,
            },
            schedule=[],
            watchdogs=[BacklogWatchdog(max_pending=10**9).config()],
        )
        with pytest.raises(ConfigurationError, match="does not reproduce"):
            shrink_capsule(capsule, max_steps=2_000)


class TestParallelShrink:
    def test_backlog_failure_shrinks_over_a_fabric(self, tmp_path):
        """An unpatched (real-protocol) failure class — the backlog bound
        set below the scenario's working set — shrinks with probe batches
        fanned out over a worker fabric. No monkeypatching involved, so
        worker processes see the same protocol the parent does."""
        scenario = {
            "scenario": "fdp",
            "n": 12,
            "topology": "random_connected",
            "leaving": 0.3,
            "seed": 9,
            "corruption": 0.8,
        }
        captured = run_chaos(
            scenario,
            watchdogs=[BacklogWatchdog(check_every=1, max_pending=8)],
            max_steps=4_000,
        )
        assert captured.outcome == "watchdog"
        with TrialFabric(max_workers=2, chunk_size=1) as fabric:
            result = shrink_capsule(
                captured.capsule,
                parallel=True,
                fabric=fabric,
                capsule_dir=str(tmp_path),
            )
        assert result.final_n < 12
        assert result.capsule is not None
        rerun = run_chaos(
            result.scenario,
            watchdogs=[watchdog_from_config(c) for c in result.capsule.watchdogs],
            max_steps=result.max_steps,
        )
        assert rerun.outcome == "watchdog"


class TestBudgetShrink:
    def test_budget_capsule_shrinks_against_legitimacy(self, tmp_path):
        """Budget-kind capsules reproduce as ``not converged`` against the
        scenario's own legitimacy predicate (no watchdogs on probes)."""
        scenario = {
            "scenario": "fdp",
            "n": 10,
            "topology": "random_connected",
            "leaving": 0.3,
            "seed": 5,
            "corruption": 0.9,
            "oracle": "never",  # oracle denies every exit: never legitimate
        }
        captured = run_chaos(
            scenario, max_steps=500, until=fdp_legitimate, check_every=16
        )
        assert captured.outcome == "budget"
        result = shrink_capsule(
            captured.capsule, max_steps=500, capsule_dir=str(tmp_path)
        )
        assert result.final_n <= 10
        assert result.capsule is not None and result.capsule.kind == "budget"
