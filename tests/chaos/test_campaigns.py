"""Chaos campaigns: admissible mid-run faults, never a safety breach."""

from __future__ import annotations

import pytest

from repro.chaos.campaigns import CAMPAIGN_KINDS, ChaosCampaign, InjectionRecord
from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import build_from_meta
from repro.errors import ConfigurationError, SafetyViolation
from repro.overlays import LOGICS
from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor
from repro.sim.states import Mode

from tests.conftest import make_fdp_engine

BUDGET = 400_000


def _framework_done(logic):
    def done(engine):
        return fdp_legitimate(engine) and logic.target_reached(engine)

    return done


def _battery_cells():
    """One cell per overlay (Lemma 2 monitored) plus the fdp/fsp base
    scenarios (Lemma 2 *and* Lemma 3 — Φ-monotonicity is an FDP/FSP
    statement; the framework's verify machinery legitimately copies
    unvalidated beliefs, so PotentialMonitor must stay off those cells).
    """
    cells = []
    for name in sorted(LOGICS):
        meta = {
            "scenario": "framework",
            "protocol": name,
            "n": 8,
            "topology": "random_connected",
            "leaving": 0.25,
            "seed": 11,
            "corruption": 0.5,
        }
        cells.append(
            (name, meta, _framework_done(LOGICS[name]), [ConnectivityMonitor(check_every=16)])
        )
    for scenario, until in (("fdp", fdp_legitimate), ("fsp", fsp_legitimate)):
        meta = {
            "scenario": scenario,
            "n": 10,
            "topology": "random_connected",
            "leaving": 0.3,
            "seed": 11,
            "corruption": 0.5,
        }
        cells.append(
            (
                scenario,
                meta,
                until,
                [
                    ConnectivityMonitor(check_every=16),
                    PotentialMonitor(check_every=16),
                ],
            )
        )
    return cells


class TestCampaignBattery:
    @pytest.mark.parametrize(
        "meta, until, monitors",
        [cell[1:] for cell in _battery_cells()],
        ids=[cell[0] for cell in _battery_cells()],
    )
    def test_injections_never_break_safety(self, meta, until, monitors):
        """Every overlay and both base scenarios converge through a
        seeded campaign with the safety monitors live: admissibility is
        asserted after every injection, Lemma 2 throughout."""
        campaign = ChaosCampaign(seed=7, period=200, max_injections=3)
        eng = build_from_meta(meta, monitors=[campaign, *monitors])
        assert eng.run(BUDGET, until=until, check_every=64)
        assert campaign.injections, "campaign never fired"
        assert campaign.admissibility_checks == len(campaign.injections)
        for record in campaign.injections:
            assert record.kind in CAMPAIGN_KINDS
            assert record.component
            assert record.step > 0


class TestDeterminism:
    def _run(self):
        meta = {
            "scenario": "framework",
            "protocol": "robust_ring",
            "n": 8,
            "topology": "random_connected",
            "leaving": 0.25,
            "seed": 13,
            "corruption": 0.5,
        }
        campaign = ChaosCampaign(seed=3, period=150, max_injections=4)
        eng = build_from_meta(meta, monitors=[campaign])
        eng.run(BUDGET, until=_framework_done(LOGICS["robust_ring"]), check_every=64)
        fingerprint = (
            eng.step_count,
            eng.potential(),
            eng.pending_count,
            eng.gone_count,
            eng.stats.messages_posted,
        )
        return [r.as_dict() for r in campaign.injections], fingerprint

    def test_same_seeds_same_injections_same_run(self):
        first_injections, first_fp = self._run()
        second_injections, second_fp = self._run()
        assert first_injections == second_injections
        assert first_fp == second_fp
        assert first_injections  # the comparison must not be vacuous

    def test_config_roundtrip_preserves_schedule(self):
        campaign = ChaosCampaign(
            seed=9,
            period=120,
            start_after=50,
            max_injections=2,
            kinds=("garbage", "scramble"),
            garbage_count=3,
        )
        rebuilt = ChaosCampaign.from_config(campaign.config())
        assert rebuilt.config() == campaign.config()
        assert rebuilt._next_due == campaign._next_due


class TestAdmissibility:
    def test_component_without_staying_process_rejected(self):
        eng = make_fdp_engine(
            {
                0: {"mode": Mode.LEAVING, "neighbors": {1: Mode.LEAVING}},
                1: {"mode": Mode.LEAVING, "neighbors": {0: Mode.LEAVING}},
            },
            require_staying=False,
        )
        eng.attach()
        campaign = ChaosCampaign()
        with pytest.raises(SafetyViolation):
            campaign._assert_admissible(eng)

    def test_healthy_component_passes(self):
        eng = make_fdp_engine(
            {
                0: {"mode": Mode.STAYING, "neighbors": {1: Mode.LEAVING}},
                1: {"mode": Mode.LEAVING, "neighbors": {0: Mode.STAYING}},
            },
            require_staying=False,
        )
        eng.attach()
        campaign = ChaosCampaign()
        campaign._assert_admissible(eng)
        assert campaign.admissibility_checks == 1


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosCampaign(kinds=("garbage", "meteor_strike"))

    def test_empty_kinds_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosCampaign(kinds=())

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosCampaign(period=0)

    def test_exhaustion_stops_firing(self):
        campaign = ChaosCampaign(max_injections=0)
        assert campaign.exhausted

    def test_injection_record_serializes(self):
        record = InjectionRecord(step=5, kind="garbage", count=3, component=(0, 1))
        assert record.as_dict() == {
            "step": 5,
            "kind": "garbage",
            "count": 3,
            "component": [0, 1],
        }
