"""Property-based tests for the Section 4 framework (Theorem 4).

Hypothesis draws overlay type, topology, leaving set, corruption and
scheduler; every draw must keep Lemma 2's invariant throughout and reach
both Theorem 4 obligations within budget.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.potential import fdp_legitimate
from repro.core.scenarios import (
    Corruption,
    build_framework_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.overlays import LOGICS
from repro.sim.monitors import ConnectivityMonitor
from repro.sim.scheduler import AdversarialScheduler, RandomScheduler


@st.composite
def framework_scenario(draw):
    name = draw(st.sampled_from(sorted(LOGICS)))
    n = draw(st.integers(4, 12))
    extra = draw(st.integers(0, n // 2))
    topo_seed = draw(st.integers(0, 5000))
    edges = gen.random_connected(n, extra_edges=extra, seed=topo_seed)
    fraction = draw(st.floats(0.0, 0.5))
    leaving = choose_leaving(
        n, edges, fraction=fraction, seed=draw(st.integers(0, 5000))
    )
    corruption = Corruption(
        belief_lie_prob=draw(st.floats(0.0, 0.4)),
        anchor_prob=draw(st.floats(0.0, 0.5)),
        anchor_lie_prob=draw(st.floats(0.0, 0.5)),
        garbage_per_process=draw(st.floats(0.0, 1.0)),
    )
    seed = draw(st.integers(0, 5000))
    adversarial = draw(st.booleans())
    return name, n, edges, leaving, corruption, seed, adversarial


class TestTheorem4Properties:
    @given(framework_scenario())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_framework_safety_and_double_convergence(self, case):
        name, n, edges, leaving, corruption, seed, adversarial = case
        logic = LOGICS[name]
        scheduler = (
            AdversarialScheduler(patience=24, seed=seed)
            if adversarial
            else RandomScheduler(seed)
        )
        engine = build_framework_engine(
            n,
            edges,
            leaving,
            logic,
            seed=seed,
            corruption=corruption,
            scheduler=scheduler,
            monitors=[ConnectivityMonitor(check_every=8)],
        )

        def done(e):
            return fdp_legitimate(e) and logic.target_reached(e)

        assert engine.run(500_000, until=done, check_every=128)
        assert engine.stats.exits == len(leaving)
