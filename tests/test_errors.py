"""The exception hierarchy contract."""

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    CopyStoreSendViolation,
    ModelViolation,
    ReproError,
    SafetyViolation,
    StateViolation,
    UnknownActionError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            ConvergenceError,
            CopyStoreSendViolation,
            ModelViolation,
            SafetyViolation,
            StateViolation,
            UnknownActionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("x")

    def test_model_violation_family(self):
        assert issubclass(CopyStoreSendViolation, ModelViolation)
        assert issubclass(StateViolation, ModelViolation)
        assert issubclass(UnknownActionError, ModelViolation)

    def test_safety_is_not_a_model_violation(self):
        """A tripped invariant is the system failing a theorem, not the
        protocol misusing the model."""
        assert not issubclass(SafetyViolation, ModelViolation)


class TestConvergenceError:
    def test_carries_stats(self):
        err = ConvergenceError("budget", stats={"steps": 5})
        assert err.stats == {"steps": 5}

    def test_stats_default_empty(self):
        assert ConvergenceError("x").stats == {}

    def test_stats_copied(self):
        source = {"a": 1}
        err = ConvergenceError("x", stats=source)
        source["a"] = 2
        assert err.stats["a"] == 1
