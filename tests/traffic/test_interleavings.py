"""Differential fuzz of open-system interleavings.

Hypothesis generates arbitrary join/leave/request/step interleavings and
drives them through the churn API under ``engine_mode="verify"`` — every
protocol step executes on both the object model and the struct-of-arrays
core, and the first divergence raises :class:`StateViolation`. The run
itself is the oracle; the end-state assertions (zero searchability
violations fault-free, maintained counters ≡ full recount) close the
open-system accounting loop.

Parametrized over all four fair scheduler families: churn interacts with
scheduler bookkeeping (``notify_send`` to dead channels, ``notify_gone``
after reap, wake stamps for admitted processes), so each family gets its
own sweep.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fdp import FDPProcess
from repro.core.scenarios import (
    SCHEDULER_FACTORIES,
    build_fdp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.states import Mode, PState
from repro.traffic.requests import SearchabilityTracker

COMMON = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

OPS = ("step", "join", "leave", "request", "reap")


@st.composite
def interleaving(draw):
    n = draw(st.integers(4, 9))
    extra = draw(st.integers(0, n // 2))
    topo_seed = draw(st.integers(0, 10_000))
    leave_seed = draw(st.integers(0, 10_000))
    run_seed = draw(st.integers(0, 10_000))
    fraction = draw(st.floats(0.0, 0.5))
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(OPS), st.integers(0, 2**20)),
            min_size=8,
            max_size=40,
        )
    )
    return n, extra, topo_seed, leave_seed, run_seed, fraction, ops


class Harness:
    """Applies one generated op stream, mirroring the TrafficDriver's
    liveness guard (never drain the last staying member of an initial
    component) so every interleaving is an admissible open-system run."""

    def __init__(self, engine):
        self.engine = engine
        self.tracker = SearchabilityTracker()
        self.violations = 0
        self.next_pid = max(engine.processes) + 1
        self.watch: set[int] = set()
        self.comp_of: dict[int, int] = {}
        self.comp_staying: dict[int, int] = {}
        for idx, comp in enumerate(engine.initial_components):
            for pid in comp:
                self.comp_of[pid] = idx
        self.staying = {
            pid
            for pid, p in engine.processes.items()
            if p.mode is Mode.STAYING and p.state is not PState.GONE
        }
        for pid in self.staying:
            comp = self.comp_of.get(pid)
            if comp is not None:
                self.comp_staying[comp] = self.comp_staying.get(comp, 0) + 1

    def apply(self, op: str, arg: int) -> None:
        engine = self.engine
        if op == "step":
            engine.run(1 + arg % 32)
        elif op == "join":
            pool = sorted(self.staying)
            contact = engine.processes[pool[arg % len(pool)]].self_ref
            pid = self.next_pid
            self.next_pid += 1
            engine.admit(FDPProcess(pid, Mode.STAYING, neighbors=[contact]))
            self.staying.add(pid)
        elif op == "leave":
            pool = sorted(self.staying)
            pid = pool[arg % len(pool)]
            comp = self.comp_of.get(pid)
            if comp is not None:
                if self.comp_staying[comp] <= 1:
                    return  # liveness guard: last stayer of the component
                self.comp_staying[comp] -= 1
            engine.request_leave(pid)
            self.staying.discard(pid)
            self.watch.add(pid)
            self.tracker.retire(pid)
        elif op == "request":
            pool = sorted(self.staying)
            if len(pool) < 2:
                return
            src = pool[arg % len(pool)]
            dst = pool[(arg // len(pool)) % len(pool)]
            ok = engine.live_graph.same_component((src, dst))
            if self.tracker.record(src, dst, ok):
                self.violations += 1
        elif op == "reap":
            for pid in sorted(self.watch):
                proc = engine.processes.get(pid)
                if proc is None:
                    self.watch.discard(pid)
                elif proc.state is PState.GONE and engine.can_reap(pid):
                    engine.reap(pid)
                    self.tracker.retire(pid)
                    self.watch.discard(pid)


NET_OPS = OPS + ("burst",)


@st.composite
def net_interleaving(draw):
    n = draw(st.integers(4, 9))
    extra = draw(st.integers(0, n // 2))
    topo_seed = draw(st.integers(0, 10_000))
    leave_seed = draw(st.integers(0, 10_000))
    run_seed = draw(st.integers(0, 10_000))
    fraction = draw(st.floats(0.0, 0.5))
    loss = draw(st.floats(0.0, 0.3))
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(NET_OPS), st.integers(0, 2**20)),
            min_size=8,
            max_size=40,
        )
    )
    return n, extra, topo_seed, leave_seed, run_seed, fraction, loss, ops


@pytest.mark.parametrize("family", sorted(SCHEDULER_FACTORIES))
@settings(**COMMON)
@given(interleaving())
def test_interleavings_verify_clean(family, case):
    n, extra, topo_seed, leave_seed, run_seed, fraction, ops = case
    edges = gen.random_connected(n, extra_edges=extra, seed=topo_seed)
    leaving = choose_leaving(n, edges, fraction=fraction, seed=leave_seed)
    engine = build_fdp_engine(
        n,
        edges,
        leaving,
        seed=run_seed,
        scheduler=SCHEDULER_FACTORIES[family](run_seed),
        engine_mode="verify",  # every step cross-checked object vs soa
    )
    engine.attach()
    harness = Harness(engine)
    for op, arg in ops:
        harness.apply(op, arg)
    engine.run(256)  # drain: any latent divergence surfaces here

    # fault-free open-system runs stay monotonically searchable
    assert harness.violations == 0
    # maintained lifecycle tallies survive arbitrary churn
    maintained = (engine.gone_count, engine.asleep_count)
    engine._lifecycle_stale = True  # force the full rescan
    assert (engine.gone_count, engine.asleep_count) == maintained
    assert engine.pending_count == sum(
        len(ch) for ch in engine.channels.values()
    )
    # retired pids are gone for good
    assert not set(engine.processes) & set(getattr(engine, "_retired_pids", ()))


@pytest.mark.parametrize("family", sorted(SCHEDULER_FACTORIES))
@settings(**COMMON)
@given(net_interleaving())
def test_net_fault_interleavings_stay_searchable(family, case):
    """Churn × underlay faults: arbitrary join/leave/request/reap
    interleavings with seeded loss/dup/delay/partition bursts landing
    mid-stream. Faults only defer notification timing, so the
    open-system accounting invariants must hold verbatim; the
    ``verify`` engine mode is requested on purpose — a transport-backed
    run must *fall back* to the object loop with a legible
    ``core_status`` reason rather than mirror stale state."""
    from repro.net import ReliableTransport, default_net_config
    from repro.net.underlay import BURST_KINDS

    n, extra, topo_seed, leave_seed, run_seed, fraction, loss, ops = case
    edges = gen.random_connected(n, extra_edges=extra, seed=topo_seed)
    leaving = choose_leaving(n, edges, fraction=fraction, seed=leave_seed)
    engine = build_fdp_engine(
        n,
        edges,
        leaving,
        seed=run_seed,
        scheduler=SCHEDULER_FACTORIES[family](run_seed),
        engine_mode="verify",
    )
    cfg = default_net_config(
        run_seed, loss=loss, dup=loss, delay=loss, partition_at=32
    )
    transport = ReliableTransport.from_config(cfg).install(engine)
    engine.attach()
    status = engine.core_status
    assert not status["active"]
    assert "reliable transport" in (status["reason"] or "")

    harness = Harness(engine)
    for op, arg in ops:
        if op == "burst":
            kind = BURST_KINDS[arg % len(BURST_KINDS)]
            transport.underlay.add_burst(
                kind,
                start=engine.step_count,
                duration=1 + arg % 64,
                amount=0.05 + (arg % 7) / 10.0,
            )
        else:
            harness.apply(op, arg)
    engine.run(512)  # drain through the fault tail

    # faults defer deliveries but never corrupt the graph: fault-free
    # searchability accounting holds under loss/dup/delay/partition too
    assert harness.violations == 0
    maintained = (engine.gone_count, engine.asleep_count)
    engine._lifecycle_stale = True
    assert (engine.gone_count, engine.asleep_count) == maintained
    assert engine.pending_count == sum(
        len(ch) for ch in engine.channels.values()
    )
    # transport bookkeeping stayed structurally sound through the churn
    assert len(transport._by_mseq) <= transport.stats.sends
    for chan, rx in transport._rx.items():
        # a receiver can never ack past what the sender has numbered
        assert rx.floor < transport._next_tseq.get(chan, 0)
