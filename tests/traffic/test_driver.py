"""Open-system traffic driver: determinism, accounting, churn safety.

The load-bearing claims of docs/TRAFFIC.md:

* the workload is bit-identical across the object loop, the
  struct-of-arrays core, and the differential verify mode — churn and
  requests included;
* a fault-free run stays monotonically searchable with zero request
  drops (the bounce semantics close the dead-channel reference leak);
* the engine's incrementally maintained lifecycle counters agree with a
  full recount after arbitrary mid-run joins/leaves/reaps (the
  ``len(processes)``-constant assumptions audit).
"""

from __future__ import annotations

import json

import pytest

from repro.core.scenarios import build_fdp_engine, build_fsp_engine
from repro.errors import ConfigurationError
from repro.sim.states import PState
from repro.traffic import ArrivalConfig, RequestConfig, TrafficDriver


def line(n: int) -> list[tuple[int, int]]:
    return [(i, i + 1) for i in range(n - 1)]


def open_run(mode: str, *, scenario: str = "fdp", steps: int = 6_000):
    build = build_fsp_engine if scenario == "fsp" else build_fdp_engine
    engine = build(16, line(16), leaving=[3], seed=7, engine_mode=mode)
    driver = TrafficDriver(
        engine,
        arrivals=ArrivalConfig(
            join_rate=30.0,
            session_min=200,
            flash_crowd_prob=0.1,
            flash_crowd_size=4,
            mass_departure_prob=0.05,
            mass_departure_frac=0.3,
        ),
        requests=RequestConfig(rate=80.0, latency_sample_every=4),
        seed=42,
        chunk=128,
    )
    report = driver.run(steps)
    return engine, driver, report


class TestBitIdentity:
    def test_identical_across_engine_modes(self):
        """Same seed, same report — objects vs soa vs verify. The verify
        run is itself the differential oracle: every step executed on
        both models, raising StateViolation on the first divergence."""
        reports = {
            mode: open_run(mode)[2] for mode in ("objects", "soa", "verify")
        }
        base = json.dumps(reports["objects"], sort_keys=True)
        assert json.dumps(reports["soa"], sort_keys=True) == base
        assert json.dumps(reports["verify"], sort_keys=True) == base

    def test_same_seed_is_deterministic(self):
        assert open_run("objects")[2] == open_run("objects")[2]


class TestOpenSystemSafety:
    def test_fault_free_run_is_monotonically_searchable(self):
        engine, driver, report = open_run("soa")
        stats = report["stats"]
        # the workload actually exercised the full churn surface
        assert stats["joins"] > 0
        assert stats["leaves"] > 0
        assert stats["reaps"] > 0
        assert stats["requests_issued"] > 100
        # ... and stayed clean: no drops, no searchability regressions
        assert stats["requests_failed"] == 0
        assert stats["searchability_violations"] == 0

    def test_fsp_variant_runs_clean(self):
        engine, driver, report = open_run("soa", scenario="fsp", steps=3_000)
        stats = report["stats"]
        assert stats["joins"] > 0 and stats["leaves"] > 0
        assert stats["searchability_violations"] == 0
        # FSP leaves hibernate rather than exit: nothing ever bounces
        assert engine.stats.bounced == 0
        assert engine.stats.dropped_gone == 0

    def test_requires_incremental_graph(self):
        engine = build_fdp_engine(
            8, line(8), leaving=[3], seed=1, graph_mode="rebuild"
        )
        with pytest.raises(ConfigurationError):
            TrafficDriver(engine)


class TestCounterRecountParity:
    """Satellite of the open-system audit: every incrementally maintained
    tally must survive arbitrary mid-run population changes."""

    def test_lifecycle_counters_match_recount_after_churn(self):
        engine, driver, report = open_run("objects")
        live = sum(
            1 for p in engine.processes.values() if p.state is not PState.GONE
        )
        assert report["stats"]["population"] == live
        maintained = (engine.gone_count, engine.asleep_count)
        engine._lifecycle_stale = True  # force the full rescan
        assert (engine.gone_count, engine.asleep_count) == maintained

    def test_flow_counters_match_channel_recount(self):
        engine, _, _ = open_run("objects")
        pending = sum(len(ch) for ch in engine.channels.values())
        assert engine.pending_count == pending

    def test_reaped_pids_never_reused(self):
        engine, driver, _ = open_run("objects")
        assert engine._retired_pids, "run should have reaped someone"
        assert not engine._retired_pids & set(engine.processes)
        assert driver._next_pid > max(engine._retired_pids)


class TestTrace:
    def test_trace_final_record_matches_report(self, tmp_path):
        path = tmp_path / "traffic.jsonl"
        engine = build_fdp_engine(12, line(12), leaving=[5], seed=3)
        driver = TrafficDriver(
            engine,
            arrivals=ArrivalConfig(join_rate=20.0, session_min=300),
            requests=RequestConfig(rate=40.0),
            seed=9,
            chunk=128,
            trace_path=str(path),
        )
        report = driver.run(2_000)
        records = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert records[0]["t"] == "traffic-header"
        assert records[-1]["t"] == "final"
        assert records[-1]["stats"] == report["stats"]
        boundaries = [r for r in records if r["t"] == "boundary"]
        assert boundaries, "chunk boundaries should be streamed"
        assert boundaries[-1]["pop"] == report["stats"]["population"]
