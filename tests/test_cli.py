"""Command-line interface tests (every subcommand exercised)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fdp", "--topology", "nonsense"])

    def test_defaults(self):
        args = build_parser().parse_args(["fdp"])
        assert args.n == 16
        assert args.oracle == "single"


class TestCommands:
    def test_fdp_converges(self, capsys):
        rc = main(
            ["fdp", "--n", "10", "--topology", "ring", "--leaving", "0.3",
             "--seed", "2", "--corruption", "0.4", "--monitor"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged : ✓" in out
        assert "final Φ   : 0" in out

    def test_fdp_never_oracle_fails_to_converge(self, capsys):
        rc = main(
            ["fdp", "--n", "8", "--topology", "ring", "--oracle", "never",
             "--max-steps", "4000"]
        )
        assert rc == 1
        assert "✗" in capsys.readouterr().out

    def test_fsp(self, capsys):
        rc = main(["fsp", "--n", "10", "--topology", "star", "--leaving", "0.3",
                   "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hibernating" in out

    def test_overlay(self, capsys):
        rc = main(
            ["overlay", "--n", "8", "--protocol", "clique", "--topology", "line"]
        )
        assert rc == 0
        assert "clique" in capsys.readouterr().out

    def test_framework(self, capsys):
        rc = main(
            ["framework", "--n", "8", "--protocol", "star", "--topology",
             "ring", "--leaving", "0.25", "--seed", "3"]
        )
        assert rc == 0

    def test_baseline(self, capsys):
        rc = main(
            ["baseline", "--n", "8", "--topology", "bidirected_line",
             "--leaving", "0.25", "--seed", "1"]
        )
        assert rc == 0

    def test_transform(self, capsys):
        rc = main(["transform", "--source", "line", "--target", "star", "--n", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified" in out

    def test_scheduler_choices(self, capsys):
        for sched in ("random", "oldest", "adversarial", "sync"):
            rc = main(
                ["fdp", "--n", "6", "--topology", "ring", "--leaving", "0.2",
                 "--scheduler", sched]
            )
            assert rc == 0


class TestListings:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        assert "lollipop" in capsys.readouterr().out

    def test_overlays(self, capsys):
        assert main(["overlays"]) == 0
        out = capsys.readouterr().out
        assert "linearization" in out and "needs total order" in out

    def test_oracles(self, capsys):
        assert main(["oracles"]) == 0
        assert "single" in capsys.readouterr().out


class TestChaosCommands:
    def test_chaos_run_converges(self, capsys, tmp_path):
        rc = main(
            ["chaos", "run", "--n", "10", "--leaving", "0.3", "--seed", "5",
             "--corruption", "0.5", "--inject-every", "100",
             "--injections", "2", "--monitor",
             "--capsule-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged" in out
        assert list(tmp_path.iterdir()) == []  # no failure, no capsule

    def test_chaos_run_framework_with_monitor(self, capsys, tmp_path):
        """--monitor on a framework scenario must not attach the Lemma 3
        monitor (Φ legitimately rises while verify copies beliefs)."""
        rc = main(
            ["chaos", "run", "--scenario", "framework", "--protocol", "ring",
             "--n", "8", "--leaving", "0.25", "--seed", "5",
             "--corruption", "0.5", "--inject-every", "100",
             "--injections", "2", "--monitor",
             "--capsule-dir", str(tmp_path)]
        )
        assert rc == 0
        assert "converged" in capsys.readouterr().out

    def test_chaos_run_budget_writes_capsule_and_replays(self, capsys, tmp_path):
        rc = main(
            ["chaos", "run", "--n", "10", "--leaving", "0.3", "--seed", "5",
             "--corruption", "0.5", "--injections", "0",
             "--max-steps", "64", "--capsule-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 1  # budget exhausted
        (capsule_path,) = list(tmp_path.iterdir())
        assert "capsule" in out
        rc = main(["capsule", "replay", str(capsule_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bit-identical" in out

    def test_chaos_shrink_cli(self, capsys, tmp_path):
        # seed a reproducible (seed-independent) failure: the backlog
        # bound set far below the scenario's working set.
        from repro.chaos import BacklogWatchdog, run_chaos

        captured = run_chaos(
            {"scenario": "fdp", "n": 10, "topology": "random_connected",
             "leaving": 0.3, "seed": 9, "corruption": 0.8},
            watchdogs=[BacklogWatchdog(check_every=1, max_pending=8)],
            max_steps=4_000,
            capsule_dir=str(tmp_path),
        )
        assert captured.outcome == "watchdog"
        out_dir = tmp_path / "minimized"
        rc = main(
            ["chaos", "shrink", captured.capsule_path, "--out-dir", str(out_dir)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "shrink" in out
        assert list(out_dir.iterdir())

    def test_chaos_soak_quick(self, capsys):
        rc = main(
            ["chaos", "soak", "--quick", "--n", "8", "--max-steps", "30000",
             "--inject-every", "200"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 failures" in out
