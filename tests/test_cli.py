"""Command-line interface tests (every subcommand exercised)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fdp", "--topology", "nonsense"])

    def test_defaults(self):
        args = build_parser().parse_args(["fdp"])
        assert args.n == 16
        assert args.oracle == "single"


class TestCommands:
    def test_fdp_converges(self, capsys):
        rc = main(
            ["fdp", "--n", "10", "--topology", "ring", "--leaving", "0.3",
             "--seed", "2", "--corruption", "0.4", "--monitor"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged : ✓" in out
        assert "final Φ   : 0" in out

    def test_fdp_never_oracle_fails_to_converge(self, capsys):
        rc = main(
            ["fdp", "--n", "8", "--topology", "ring", "--oracle", "never",
             "--max-steps", "4000"]
        )
        assert rc == 1
        assert "✗" in capsys.readouterr().out

    def test_fsp(self, capsys):
        rc = main(["fsp", "--n", "10", "--topology", "star", "--leaving", "0.3",
                   "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hibernating" in out

    def test_overlay(self, capsys):
        rc = main(
            ["overlay", "--n", "8", "--protocol", "clique", "--topology", "line"]
        )
        assert rc == 0
        assert "clique" in capsys.readouterr().out

    def test_framework(self, capsys):
        rc = main(
            ["framework", "--n", "8", "--protocol", "star", "--topology",
             "ring", "--leaving", "0.25", "--seed", "3"]
        )
        assert rc == 0

    def test_baseline(self, capsys):
        rc = main(
            ["baseline", "--n", "8", "--topology", "bidirected_line",
             "--leaving", "0.25", "--seed", "1"]
        )
        assert rc == 0

    def test_transform(self, capsys):
        rc = main(["transform", "--source", "line", "--target", "star", "--n", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified" in out

    def test_scheduler_choices(self, capsys):
        for sched in ("random", "oldest", "adversarial", "sync"):
            rc = main(
                ["fdp", "--n", "6", "--topology", "ring", "--leaving", "0.2",
                 "--scheduler", sched]
            )
            assert rc == 0


class TestListings:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        assert "lollipop" in capsys.readouterr().out

    def test_overlays(self, capsys):
        assert main(["overlays"]) == 0
        out = capsys.readouterr().out
        assert "linearization" in out and "needs total order" in out

    def test_oracles(self, capsys):
        assert main(["oracles"]) == 0
        assert "single" in capsys.readouterr().out
