"""P messages with non-reference payload through the Section 4 framework.

The paper: "this additional information in parameters is not lost by
preprocess and postprocess, but we do not interfere with it". A toy
overlay whose messages carry a data payload verifies both directions:
delivered messages keep their payload in position, and postprocessed
messages hand the payload to the overlay's ``postprocess_extra`` hook.
"""

import pytest

from repro.core.framework import FrameworkProcess
from repro.core.oracles import SingleOracle
from repro.overlays.base import OverlayLogic
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode

from tests.conftest import deliver, drive_timeout

L, S = Mode.LEAVING, Mode.STAYING


class NotedLogic(OverlayLogic):
    """Clique-ish overlay whose introduction messages carry a note."""

    requires_order = False
    message_labels = ("p_noted_insert",)

    def __init__(self, self_ref):
        super().__init__(self_ref)
        self.known: set[Ref] = set()
        self.notes: list[str] = []
        self.salvaged: list[tuple] = []

    def neighbor_refs(self):
        yield from self.known

    def integrate(self, send, ref):
        if ref != self.self_ref:
            self.known.add(ref)

    def drop_neighbor(self, ref):
        if ref in self.known:
            self.known.discard(ref)
            return True
        return False

    def p_timeout(self, send, keys):
        for v in self.known:
            send(v, "p_noted_insert", self.self_ref, f"hello-from-{id(self) % 7}")

    def handle(self, send, keys, label, *args):
        ref, note = args
        self.integrate(send, ref)
        self.notes.append(note)

    def postprocess_extra(self, ctx, payload):
        self.salvaged.append(payload)

    @classmethod
    def target_reached(cls, engine):  # pragma: no cover - not used here
        return True


def make(specs):
    procs = {}
    for pid, spec in specs.items():
        procs[pid] = FrameworkProcess(pid, spec.get("mode", S), NotedLogic)
    for pid, spec in specs.items():
        for npid in spec.get("neighbors", ()):
            procs[pid].logic.known.add(procs[npid].self_ref)
            procs[pid].beliefs[procs[npid].self_ref] = S
    return Engine(
        procs.values(),
        OldestFirstScheduler(),
        capability=Capability.EXIT,
        oracle=SingleOracle(),
        require_staying_per_component=False,
    )


class TestPayloadDelivery:
    def test_payload_travels_with_verified_message(self):
        eng = make({0: {"neighbors": [1]}, 1: {}})
        drive_timeout(eng, 0)  # withheld + verify sent
        deliver(eng, 0, "process", RefInfo(Ref(1), S))  # all-staying: released
        # find the released message and check its payload position
        (msg,) = [m for m in eng.channels[1] if m.label == "p_noted_insert"]
        assert isinstance(msg.args[0], RefInfo)
        assert msg.args[1].startswith("hello-from-")

    def test_receiver_handles_payload(self):
        eng = make({0: {"neighbors": [1]}, 1: {}})
        p1 = eng.processes[1]
        deliver(
            eng,
            1,
            "p_noted_insert",
            RefInfo(Ref(0), S),
            "the-note",
        )
        assert p1.logic.notes == ["the-note"]
        assert Ref(0) in p1.logic.known

    def test_postprocess_hands_payload_to_hook(self):
        eng = make({0: {"neighbors": [1]}, 1: {"mode": L}})
        drive_timeout(eng, 0)
        deliver(eng, 0, "process", RefInfo(Ref(1), L))  # target leaving: postprocess
        p0 = eng.processes[0]
        assert len(p0.logic.salvaged) == 1
        assert p0.logic.salvaged[0][0].startswith("hello-from-")

    def test_default_hook_is_noop(self):
        from repro.overlays.clique import CliqueLogic

        logic = CliqueLogic(Ref(0))
        logic.postprocess_extra(None, ("data",))  # must not raise

    def test_end_to_end_with_departures(self):
        from repro.core.potential import fdp_legitimate

        eng = make(
            {
                0: {"neighbors": [1, 2]},
                1: {"mode": L, "neighbors": [0]},
                2: {"neighbors": [0]},
            }
        )
        assert eng.run(200_000, until=fdp_legitimate, check_every=32)
        # payload machinery never corrupted the reference machinery
        assert eng.processes[1].state.value == "gone"
