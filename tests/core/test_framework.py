"""Section 4 framework: preprocess/verify/process mechanics + Theorem 4."""

import pytest

from repro.core.framework import FrameworkProcess, PendingMessage
from repro.core.oracles import SingleOracle
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import (
    LIGHT_CORRUPTION,
    build_framework_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.overlays.clique import CliqueLogic
from repro.overlays.linearization import LinearizationLogic
from repro.overlays.ring import RingLogic
from repro.overlays.star import StarLogic
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.monitors import ConnectivityMonitor
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode, PState

from tests.conftest import channel_payloads

L, S = Mode.LEAVING, Mode.STAYING
BUDGET = 400_000


def make_fw(specs, logic=CliqueLogic):
    procs = {}
    for pid, spec in specs.items():
        procs[pid] = FrameworkProcess(pid, spec.get("mode", S), logic)
    for pid, spec in specs.items():
        for npid in spec.get("neighbors", ()):
            lg = procs[pid].logic
            if hasattr(lg, "integrate_with_keys"):
                from repro.sim.refs import KeyProvider

                lg.integrate_with_keys(KeyProvider(), procs[npid].self_ref)
            else:
                lg.integrate(lambda *a: None, procs[npid].self_ref)
            procs[pid].beliefs[procs[npid].self_ref] = spec.get(
                "beliefs", {}
            ).get(npid, S)
    return Engine(
        procs.values(),
        OldestFirstScheduler(),
        capability=Capability.EXIT,
        oracle=SingleOracle(),
        require_staying_per_component=False,
    )


def drive_timeout(eng, pid):
    from tests.conftest import drive_timeout as dt

    return dt(eng, pid)


def deliver(eng, pid, label, *args):
    from tests.conftest import deliver as dv

    return dv(eng, pid, label, *args)


class TestPreprocess:
    def test_p_send_is_withheld_and_verified(self):
        eng = make_fw({0: {"neighbors": [1]}, 1: {}})
        drive_timeout(eng, 0)  # clique p_timeout: p_insert(self) to 1
        p = eng.processes[0]
        assert len(p.mlist) == 1
        assert p.mlist[0].label == "p_insert"
        # a verify went to the target
        assert ("verify", 0, S) in channel_payloads(eng, 1)
        # the P message itself was NOT sent yet
        assert all(lbl != "p_insert" for lbl, _, _ in channel_payloads(eng, 1))

    def test_verify_answered_with_process(self):
        eng = make_fw({0: {}, 1: {"mode": L}})
        deliver(eng, 1, "verify", RefInfo(Ref(0), S))
        assert ("process", 1, L) in channel_payloads(eng, 0)

    def test_leaving_processes_answer_verify_too(self):
        eng = make_fw({0: {}, 1: {"mode": L}})
        deliver(eng, 1, "verify", RefInfo(Ref(0), S))
        (payload,) = [p for p in channel_payloads(eng, 0) if p[0] == "process"]
        assert payload[2] is L  # true mode revealed

    def test_all_staying_releases_message(self):
        eng = make_fw({0: {"neighbors": [1]}, 1: {}})
        drive_timeout(eng, 0)
        deliver(eng, 0, "process", RefInfo(Ref(1), S))
        p = eng.processes[0]
        assert p.mlist == []
        assert ("p_insert", 0, S) in channel_payloads(eng, 1)

    def test_leaving_verdict_postprocesses(self):
        eng = make_fw({0: {"neighbors": [1]}, 1: {"mode": L}})
        drive_timeout(eng, 0)
        deliver(eng, 0, "process", RefInfo(Ref(1), L))
        p = eng.processes[0]
        assert p.mlist == []
        # the message was not sent; the leaving target got our reference
        labels = channel_payloads(eng, 1)
        assert ("p_insert", 0, S) not in labels
        assert ("present", 0, S) in labels


class TestRetriesAndFallback:
    def test_verify_resent_each_timeout(self):
        eng = make_fw({0: {"neighbors": [1]}, 1: {}})
        drive_timeout(eng, 0)
        verifies = [p for p in channel_payloads(eng, 1) if p[0] == "verify"]
        drive_timeout(eng, 0)
        verifies2 = [p for p in channel_payloads(eng, 1) if p[0] == "verify"]
        assert len(verifies2) > len(verifies)

    def test_retry_budget_presumes_leaving(self):
        eng = make_fw({0: {"neighbors": [1]}, 1: {}})
        p = eng.processes[0]
        p.max_verify_retries = 2
        drive_timeout(eng, 0)
        assert p.mlist
        for _ in range(4):
            drive_timeout(eng, 0)
        # entries finalized by presumption: mlist drains (new entries from
        # later p_timeouts may exist, but the original is gone)
        assert all(e.retries <= 3 for e in p.mlist)
        assert ("present", 0, S) in channel_payloads(eng, 1)

    def test_gone_target_eventually_presumed(self):
        """The deadlock the fallback exists for: verifying a gone process."""
        eng = make_fw({0: {"neighbors": [1]}, 1: {"mode": L}})
        eng.attach()
        eng._transition(eng.processes[1], PState.GONE)
        p = eng.processes[0]
        p.max_verify_retries = 3
        for _ in range(10):
            drive_timeout(eng, 0)
        assert p.mlist == [] or all(e.retries <= 4 for e in p.mlist)
        # Presumption must also evict the gone neighbour from P — if it
        # stays, P re-targets it on every p_timeout and the verify cycle
        # restarts forever (livelock with unbounded channel growth).
        assert not any(r == Ref(1) for r in p.logic.neighbor_refs())
        assert not any(Ref(1) in set(e.refs()) for e in p.mlist)
        # With the ref evicted, traffic to the gone channel dries up.
        before = len(eng.channels[1])
        for _ in range(5):
            drive_timeout(eng, 0)
        assert len(eng.channels[1]) == before


class TestLeavingBehaviour:
    def test_leaving_drains_logic_refs(self):
        eng = make_fw({0: {"mode": L, "neighbors": [1, 2]}, 1: {}, 2: {}})
        p = drive_timeout(eng, 0)
        assert list(p.logic.neighbor_refs()) == []
        fwd = [x for x in channel_payloads(eng, 0) if x[0] == "forward"]
        assert {x[1] for x in fwd} == {1, 2}

    def test_leaving_does_not_run_p_action(self):
        eng = make_fw({0: {"mode": L}, 1: {}, 2: {}})
        deliver(eng, 0, "p_insert", RefInfo(Ref(1), S))
        p = eng.processes[0]
        assert list(p.logic.neighbor_refs()) == []
        # instead it presented itself to the referenced process
        assert ("present", 0, L) in channel_payloads(eng, 1)

    def test_leaving_eventually_exits(self):
        eng = make_fw(
            {0: {"mode": L, "neighbors": [1]}, 1: {"neighbors": [0]}, 2: {"neighbors": [1]}}
        )
        assert eng.run(BUDGET, until=fdp_legitimate, check_every=32)
        assert eng.processes[0].state is PState.GONE


class TestStayingIntegration:
    def test_staying_ref_handed_to_p(self):
        eng = make_fw({0: {}, 1: {}})
        p = deliver(eng, 0, "present", RefInfo(Ref(1), S))
        assert Ref(1) in set(p.logic.neighbor_refs())
        assert p.N == {}  # not the departure N

    def test_leaving_ref_dropped_from_p(self):
        eng = make_fw({0: {"neighbors": [1]}, 1: {"mode": L}})
        p = deliver(eng, 0, "present", RefInfo(Ref(1), L))
        assert Ref(1) not in set(p.logic.neighbor_refs())
        assert ("forward", 0, S) in channel_payloads(eng, 1)

    def test_unsolicited_process_disposed_safely(self):
        eng = make_fw({0: {}, 1: {}})
        p = deliver(eng, 0, "process", RefInfo(Ref(1), S))
        # treated like a forwarded staying reference: integrated into P
        assert Ref(1) in set(p.logic.neighbor_refs())

    def test_garbage_p_message_with_leaving_claim_salvaged(self):
        eng = make_fw({0: {}, 1: {"mode": L}, 2: {}})
        p = deliver(eng, 0, "p_insert", RefInfo(Ref(1), L))
        assert Ref(1) not in set(p.logic.neighbor_refs())
        assert ("present", 0, S) in channel_payloads(eng, 1)


class TestPendingMessage:
    def test_ready_and_all_staying(self):
        e = PendingMessage(0, Ref(1), "x", (), {Ref(1): None})
        assert not e.ready()
        e.modes[Ref(1)] = S
        assert e.ready() and e.all_staying()
        e.modes[Ref(1)] = L
        assert e.ready() and not e.all_staying()

    def test_refs_includes_target_and_args(self):
        e = PendingMessage(0, Ref(1), "x", (Ref(2), "data"), {})
        assert set(e.refs()) == {Ref(1), Ref(2)}


class TestTheorem4:
    @pytest.mark.parametrize(
        "logic",
        [LinearizationLogic, RingLogic, CliqueLogic, StarLogic],
        ids=["line", "ring", "clique", "star"],
    )
    def test_p_prime_solves_fdp_and_p(self, logic):
        """P′ excludes the leaving processes AND still reaches P's target
        topology for the staying ones."""
        n = 10
        edges = gen.random_connected(n, 5, seed=21)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=21)
        eng = build_framework_engine(
            n,
            edges,
            leaving,
            logic,
            seed=21,
            corruption=LIGHT_CORRUPTION,
            monitors=[ConnectivityMonitor(check_every=8)],
        )

        def done(e):
            return fdp_legitimate(e) and logic.target_reached(e)

        assert eng.run(BUDGET, until=done, check_every=128)
        assert eng.stats.exits == len(leaving)

    def test_presumed_leaving_evicted_from_p(self):
        """Pinned hypothesis-found livelock: a staying robust-ring process
        whose pred departed must presume it leaving AND evict it from P.

        Before the eviction (see ``_postprocess``), the gone pred stayed
        in P's pointers, P re-targeted it every timeout, and each round
        spawned a fresh unanswerable verify cycle — Φ stalled while the
        gone process's channel grew without bound (~1M pending messages
        by 3M steps) and the target was never reached.
        """
        from repro.core.scenarios import Corruption
        from repro.overlays import LOGICS
        from repro.sim.scheduler import RandomScheduler

        logic = LOGICS["robust_ring"]
        eng = build_framework_engine(
            6,
            [(0, 1), (1, 2), (1, 4), (2, 3), (2, 4), (4, 1), (4, 3), (5, 4)],
            frozenset({2, 3, 4}),
            logic,
            seed=1201,
            corruption=Corruption(
                belief_lie_prob=0.2047035841490263,
                anchor_prob=0.18379276174876072,
                anchor_lie_prob=0.2047035841490263,
                garbage_per_process=0.3418840602302751,
                garbage_lie_prob=0.5,
            ),
            scheduler=RandomScheduler(1201),
            monitors=[ConnectivityMonitor(check_every=8)],
        )

        def done(e):
            return fdp_legitimate(e) and logic.target_reached(e)

        assert eng.run(100_000, until=done, check_every=128)
        assert eng.stats.exits == 3
