"""Scenario builder tests: admissibility, corruption knobs, determinism."""

import pytest

from repro.core.scenarios import (
    CLEAN,
    HEAVY_CORRUPTION,
    LIGHT_CORRUPTION,
    Corruption,
    build_fdp_engine,
    build_fsp_engine,
    choose_leaving,
    components_of_edges,
)
from repro.errors import ConfigurationError
from repro.graphs import generators as gen
from repro.sim.refs import pid_of
from repro.sim.states import Mode


class TestChooseLeaving:
    def test_fraction_size(self):
        leaving = choose_leaving(20, gen.ring(20), fraction=0.5, seed=0)
        assert 8 <= len(leaving) <= 10  # component fix may shrink slightly

    def test_count(self):
        leaving = choose_leaving(10, gen.ring(10), count=3, seed=0)
        assert len(leaving) == 3

    def test_every_component_keeps_a_stayer(self):
        # two disjoint rings
        edges = gen.ring(5) + [(a + 5, b + 5) for a, b in gen.ring(5)]
        leaving = choose_leaving(10, edges, fraction=1.0, seed=3)
        for comp in components_of_edges(10, edges):
            assert comp - leaving, "component fully leaving"

    def test_exclusive_parameters(self):
        with pytest.raises(ConfigurationError):
            choose_leaving(5, gen.ring(5), fraction=0.5, count=2)
        with pytest.raises(ConfigurationError):
            choose_leaving(5, gen.ring(5))

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            choose_leaving(5, gen.ring(5), fraction=1.5)

    def test_deterministic(self):
        a = choose_leaving(20, gen.ring(20), fraction=0.4, seed=9)
        b = choose_leaving(20, gen.ring(20), fraction=0.4, seed=9)
        assert a == b


class TestCorruption:
    def test_clean_has_zero_potential(self):
        eng = build_fdp_engine(8, gen.ring(8), leaving={2}, corruption=CLEAN)
        assert eng.potential() == 0

    def test_lies_raise_potential(self):
        eng = build_fdp_engine(
            10,
            gen.clique(10),
            leaving={1, 2, 3},
            corruption=Corruption(belief_lie_prob=1.0),
            seed=4,
        )
        assert eng.potential() > 0

    def test_garbage_fills_channels(self):
        eng = build_fdp_engine(
            8,
            gen.ring(8),
            leaving={2},
            corruption=Corruption(garbage_per_process=2.0),
            seed=1,
        )
        assert sum(len(ch) for ch in eng.channels.values()) == 16

    def test_anchors_planted_within_component(self):
        edges = gen.ring(4) + [(a + 4, b + 4) for a, b in gen.ring(4)]
        eng = build_fdp_engine(
            8,
            edges,
            leaving={1, 5},
            corruption=Corruption(anchor_prob=1.0),
            seed=2,
        )
        for pid, proc in eng.processes.items():
            if proc.anchor is not None:
                assert (pid < 4) == (pid_of(proc.anchor) < 4)

    def test_scaled(self):
        half = HEAVY_CORRUPTION.scaled(0.5)
        assert half.belief_lie_prob == pytest.approx(0.25)
        assert half.garbage_per_process == pytest.approx(1.0)
        capped = HEAVY_CORRUPTION.scaled(10.0)
        assert capped.belief_lie_prob == 1.0

    def test_presets_ordered(self):
        assert (
            CLEAN.belief_lie_prob
            < LIGHT_CORRUPTION.belief_lie_prob
            < HEAVY_CORRUPTION.belief_lie_prob
        )


class TestBuilders:
    def test_modes_assigned(self):
        eng = build_fdp_engine(6, gen.ring(6), leaving={1, 4})
        assert eng.processes[1].mode is Mode.LEAVING
        assert eng.processes[0].mode is Mode.STAYING

    def test_neighborhoods_from_edges(self):
        eng = build_fdp_engine(4, [(0, 1), (2, 3), (3, 0)], leaving=set())
        assert eng.ref(1) in eng.processes[0].N
        assert eng.ref(3) in eng.processes[2].N
        assert eng.ref(2) not in eng.processes[0].N

    def test_self_loops_skipped(self):
        eng = build_fdp_engine(3, [(0, 0), (0, 1), (1, 2)], leaving=set())
        assert eng.ref(0) not in eng.processes[0].N

    def test_bad_edge_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fdp_engine(3, [(0, 9)], leaving=set())

    def test_bad_leaving_pid_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fdp_engine(3, gen.ring(3), leaving={9})

    def test_zero_processes_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fdp_engine(0, [], leaving=set())

    def test_fsp_builder_uses_sleep_capability(self):
        eng = build_fsp_engine(4, gen.ring(4), leaving={1})
        assert eng.capability.allows_sleep
        assert not eng.capability.allows_exit

    def test_fdp_builder_uses_exit_capability(self):
        eng = build_fdp_engine(4, gen.ring(4), leaving={1})
        assert eng.capability.allows_exit
        assert not eng.capability.allows_sleep

    def test_identical_seeds_identical_initial_state(self):
        def fingerprint(seed):
            eng = build_fdp_engine(
                8,
                gen.ring(8),
                leaving={1, 3},
                seed=seed,
                corruption=HEAVY_CORRUPTION,
            )
            return (
                eng.potential(),
                sum(len(c) for c in eng.channels.values()),
                {
                    pid: sorted(repr(i) for i in p.stored_refs())
                    for pid, p in eng.processes.items()
                },
            )

        assert fingerprint(5) == fingerprint(5)


class TestComponentsOfEdges:
    def test_two_components(self):
        comps = components_of_edges(4, [(0, 1), (2, 3)])
        assert {frozenset(c) for c in comps} == {
            frozenset({0, 1}),
            frozenset({2, 3}),
        }

    def test_isolated_nodes_are_components(self):
        comps = components_of_edges(3, [])
        assert len(comps) == 3
