"""Protocol ablations: demonstrating that the pseudocode's pieces are
load-bearing.

Each ablation removes one element of the Algorithms 1–3 transcription and
exhibits an admissible initial state from which the crippled protocol
makes no departure progress within a generous budget — while the faithful
protocol converges quickly from the same state. (Bounded runs cannot
prove non-termination; each case also states the invariant explaining
*why* no later progress is possible.)
"""

import pytest

from repro.core.fdp import FDPProcess
from repro.core.oracles import SingleOracle
from repro.core.potential import fdp_legitimate
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode

L, S = Mode.LEAVING, Mode.STAYING


class NoReversalFDPProcess(FDPProcess):
    """Ablation: a staying process drops leaving-believed neighbours
    WITHOUT the paired reversal (Algorithm 1 line 22's present for the
    dropped case) — an edge deletion that is not a primitive."""

    def timeout(self, ctx):
        if self.mode is S:
            if self.anchor is not None:
                self._clear_anchor_to_self(ctx)
            for v, belief in list(self.N.items()):
                if belief is L:
                    del self.N[v]  # drop ... and tell nobody (NOT ♣)
                else:
                    ctx.send(v, "present", RefInfo(self.self_ref, self.mode))
            return
        super().timeout(ctx)


class NoDrainFDPProcess(FDPProcess):
    """Ablation: the rejected parse of Algorithm 1 lines 8–14 — a leaving
    process with an anchor only verifies it and never drains N."""

    def timeout(self, ctx):
        if self.anchor is not None and self.anchor_belief is L:
            self._clear_anchor_to_self(ctx)
        if self.mode is L:
            if not self.N:
                if self._consult_oracle(ctx):
                    self._departure_ready(ctx)
                elif self.anchor is not None:
                    ctx.send(self.anchor, "present", RefInfo(self.self_ref, L))
            elif self.anchor is not None:
                # the alternative reading: anchor present, N untouched
                ctx.send(self.anchor, "present", RefInfo(self.self_ref, L))
            else:
                for v, belief in self.N.items():
                    ctx.send(self.self_ref, "forward", RefInfo(v, belief))
                self.N.clear()
            return
        super().timeout(ctx)


def build(process_cls, specs):
    procs = {}
    for pid, spec in specs.items():
        procs[pid] = process_cls(pid, spec.get("mode", S))
    for pid, spec in specs.items():
        for npid, belief in spec.get("neighbors", {}).items():
            procs[pid].N[procs[npid].self_ref] = belief
        if spec.get("anchor") is not None:
            procs[pid].anchor = procs[spec["anchor"]].self_ref
            procs[pid].anchor_belief = spec.get("anchor_belief", S)
    return Engine(
        procs.values(),
        OldestFirstScheduler(),
        capability=Capability.EXIT,
        oracle=SingleOracle(),
    )


#: the edge (0, 1) is the only thing tying staying 0 to the rest; the
#: leaving process 1 does not know 0 back.
SCENARIO_NO_REVERSAL = {
    0: {"neighbors": {1: L}},
    1: {"mode": L, "neighbors": {2: S}},
    2: {},
}

#: leaving 0 holds an anchor AND a neighbour — the state the rejected
#: parse can never clear.
SCENARIO_NO_DRAIN = {
    0: {"mode": L, "anchor": 2, "anchor_belief": S, "neighbors": {1: S}},
    1: {"mode": S, "neighbors": {2: S}},
    2: {"mode": S, "neighbors": {1: S}},
}


class TestNoReversalAblation:
    def test_faithful_protocol_converges(self):
        eng = build(FDPProcess, SCENARIO_NO_REVERSAL)
        assert eng.run(50_000, until=fdp_legitimate, check_every=16)

    def test_silent_drop_disconnects_the_overlay(self):
        """Dropping a reference without the reversal is not one of the
        four primitives; on this instance it severs staying 0 from the
        rest permanently — the Lemma 2 monitor raises at the exact step."""
        from repro.errors import SafetyViolation
        from repro.sim.monitors import ConnectivityMonitor

        eng = build(NoReversalFDPProcess, SCENARIO_NO_REVERSAL)
        eng.monitors.append(ConnectivityMonitor(check_every=1))
        with pytest.raises(SafetyViolation, match="Lemma 2"):
            eng.run(30_000, until=fdp_legitimate, check_every=64)

    def test_silent_drop_blocks_legitimacy(self):
        """Without the monitor: the run simply never reaches condition
        (iii) — staying 0 and 2 are permanently disconnected (no process
        holds any reference bridging them, and copy-store-send cannot
        manufacture one)."""
        eng = build(NoReversalFDPProcess, SCENARIO_NO_REVERSAL)
        assert not eng.run(30_000, until=fdp_legitimate, check_every=64)
        from repro.core.potential import staying_connected_per_component

        assert not staying_connected_per_component(eng)


class TestNoDrainAblation:
    def test_faithful_protocol_converges(self):
        eng = build(FDPProcess, SCENARIO_NO_DRAIN)
        assert eng.run(50_000, until=fdp_legitimate, check_every=16)

    def test_rejected_parse_never_departs(self):
        """Invariant: with a (correct, staying) anchor present, the
        rejected reading never executes the drain, so 0's stored edge to 1
        persists; SINGLE(0) sees partners {1, 2} at every state and 0 can
        never exit — the contradiction with Lemma 3 that justified the
        transcription choice (DESIGN.md, fdp.py note 1)."""
        eng = build(NoDrainFDPProcess, SCENARIO_NO_DRAIN)
        assert not eng.run(30_000, until=fdp_legitimate, check_every=64)
        assert eng.stats.exits == 0
        assert Ref(1) in eng.processes[0].N  # the never-drained neighbour
