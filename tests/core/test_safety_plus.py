"""Stronger-than-connectivity safety measures (future-work module)."""

import math

import pytest

from repro.core.potential import fdp_legitimate
from repro.core.safety_plus import (
    StretchMonitor,
    degree_blowup,
    staying_distances,
    staying_out_degrees,
    stretch,
)
from repro.core.scenarios import build_fdp_engine, choose_leaving
from repro.errors import SafetyViolation
from repro.graphs import generators as gen
from repro.sim.states import Mode

from tests.conftest import make_fdp_engine

S, L = Mode.STAYING, Mode.LEAVING


class TestStayingDistances:
    def test_line_distances(self):
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: S}},
                1: {"neighbors": {2: S}},
                2: {},
            }
        )
        d = staying_distances(eng)
        assert d[(0, 2)] == 2
        assert d[(2, 0)] == 2  # undirected view

    def test_leaving_excluded(self):
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: L}},
                1: {"mode": L, "neighbors": {2: S}},
                2: {},
            }
        )
        d = staying_distances(eng)
        assert (0, 2) not in d  # only connected through the leaver


class TestStretch:
    def test_unchanged_graph_stretch_one(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {"neighbors": {0: S}}}
        )
        base = staying_distances(eng)
        assert stretch(eng, base) == 1.0

    def test_detour_detected(self):
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: S, 2: S}},
                1: {"neighbors": {2: S}},
                2: {},
            }
        )
        base = staying_distances(eng)
        # remove the direct 0–2 edge: distance 1 becomes 2 via 1
        del eng.processes[0].N[eng.ref(2)]
        eng._dirty = True
        assert stretch(eng, base) == pytest.approx(2.0)

    def test_disconnection_is_infinite(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {}}
        )
        base = staying_distances(eng)
        eng.processes[0].N.clear()
        eng._dirty = True
        assert math.isinf(stretch(eng, base))

    def test_restricted_pairs(self):
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: S, 2: S}},
                1: {"neighbors": {2: S}},
                2: {},
            }
        )
        base = staying_distances(eng)
        del eng.processes[0].N[eng.ref(2)]
        eng._dirty = True
        assert stretch(eng, base, pairs=[(0, 1)]) == 1.0


class TestDegreeBlowup:
    def test_no_growth(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {}}
        )
        base = staying_out_degrees(eng)
        assert degree_blowup(eng, base) == 1.0

    def test_growth_measured(self):
        eng = make_fdp_engine({0: {"neighbors": {1: S}}, 1: {}, 2: {}})
        base = staying_out_degrees(eng)
        eng.processes[0].N[eng.ref(2)] = S
        eng._dirty = True
        assert degree_blowup(eng, base) == pytest.approx(2.0)

    def test_zero_baseline_compared_to_one(self):
        eng = make_fdp_engine({0: {}, 1: {}})
        base = staying_out_degrees(eng)
        eng.processes[0].N[eng.ref(1)] = S
        eng._dirty = True
        assert degree_blowup(eng, base) == pytest.approx(1.0)


class TestStretchMonitor:
    def test_records_series_on_real_run(self):
        n = 10
        edges = gen.ring(n)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=2)
        monitor = StretchMonitor(check_every=8)
        eng = build_fdp_engine(n, edges, leaving, seed=2, monitors=[monitor])
        assert eng.run(200_000, until=fdp_legitimate, check_every=32)
        assert monitor.series  # sampled
        assert monitor.peak >= 1.0
        # final stretch finite: stayers end connected
        assert not math.isinf(monitor.series[-1])

    def test_bound_enforced(self):
        class Dropper(Exception):
            pass

        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: S, 2: S}},
                1: {"neighbors": {2: S}},
                2: {},
            }
        )
        monitor = StretchMonitor(bound=1.0, check_every=1)
        eng.monitors.append(monitor)
        eng.attach()
        # force a detour by removing the direct edge, then step
        monitor(eng, None)  # captures baseline
        del eng.processes[0].N[eng.ref(2)]
        eng._dirty = True
        eng.step_count = 1  # align with check_every
        with pytest.raises(SafetyViolation, match="stretch"):
            monitor(eng, None)

    def test_validation(self):
        with pytest.raises(ValueError):
            StretchMonitor(check_every=0)
