"""Φ (Lemma 3) and the legitimacy predicates (Section 1.2)."""

import pytest

from repro.core.potential import (
    all_leaving_gone,
    all_leaving_hibernating,
    all_staying_awake,
    fdp_legitimate,
    fsp_legitimate,
    invalid_edges,
    is_valid_state,
    potential,
    relevant_connected_per_component,
    staying_connected_induced,
    staying_connected_per_component,
)
from repro.sim.messages import RefInfo
from repro.sim.refs import Ref
from repro.sim.states import Mode, PState

from tests.conftest import make_fdp_engine

L, S = Mode.LEAVING, Mode.STAYING


class TestPotential:
    def test_clean_state_zero(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {"mode": L, "neighbors": {0: S}}}
        )
        # 0's belief about leaving 1?  not set here: 0 believes 1 staying
        eng.processes[0].N[Ref(1)] = L
        assert potential(eng) == 0

    def test_counts_stored_lies(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {"mode": L}}
        )
        assert potential(eng) == 1
        (edge,) = invalid_edges(eng)
        assert (edge.src, edge.dst) == (0, 1)

    def test_counts_anchor_lies(self):
        eng = make_fdp_engine(
            {0: {"mode": L, "anchor": 1, "anchor_belief": S}, 1: {"mode": L}}
        )
        assert potential(eng) == 1

    def test_counts_inflight_lies(self):
        eng = make_fdp_engine({0: {}, 1: {"mode": L}})
        eng.post(None, eng.ref(0), "present", (RefInfo(Ref(1), S),))
        assert potential(eng) == 1

    def test_multi_edges_counted_individually(self):
        eng = make_fdp_engine({0: {}, 1: {"mode": L}})
        for _ in range(3):
            eng.post(None, eng.ref(0), "present", (RefInfo(Ref(1), S),))
        assert potential(eng) == 3

    def test_is_valid_state(self):
        eng = make_fdp_engine({0: {"neighbors": {1: S}}, 1: {}})
        assert is_valid_state(eng)


class TestConditionI:
    def test_all_staying_awake_true_initially(self):
        eng = make_fdp_engine({0: {}, 1: {}})
        assert all_staying_awake(eng)

    def test_detects_sleeping_staying(self):
        from repro.sim.states import Capability

        eng = make_fdp_engine({0: {}, 1: {}}, capability=Capability.BOTH)
        eng.attach()
        eng._transition(eng.processes[0], PState.ASLEEP)
        assert not all_staying_awake(eng)


class TestConditionII:
    def test_all_leaving_gone(self):
        eng = make_fdp_engine({0: {"mode": L}, 1: {}})
        eng.attach()
        assert not all_leaving_gone(eng)
        eng._transition(eng.processes[0], PState.GONE)
        assert all_leaving_gone(eng)

    def test_hibernating_reading(self):
        from repro.sim.states import Capability

        eng = make_fdp_engine(
            {0: {"mode": L}, 1: {}}, capability=Capability.BOTH
        )
        eng.attach()
        assert not all_leaving_hibernating(eng)
        eng._transition(eng.processes[0], PState.ASLEEP)
        assert all_leaving_hibernating(eng)  # asleep, unreferenced, empty

    def test_referenced_sleeper_not_hibernating(self):
        from repro.sim.states import Capability

        eng = make_fdp_engine(
            {0: {"mode": L}, 1: {"neighbors": {0: L}}},
            capability=Capability.BOTH,
        )
        eng.attach()
        eng._transition(eng.processes[0], PState.ASLEEP)
        assert not all_leaving_hibernating(eng)  # awake 1 has a path to 0


class TestConditionIII:
    def test_connected_staying(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {"neighbors": {0: S}}}
        )
        eng.attach()
        assert staying_connected_per_component(eng)

    def test_disconnection_detected(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {}}
        )
        eng.attach()
        eng.processes[0].N.clear()
        eng._dirty = True
        assert not staying_connected_per_component(eng)

    def test_pg_reading_allows_hibernating_joints(self):
        """Two staying processes held together only by a sleeping leaving
        process: legitimate under the PG reading, not under the induced
        one."""
        from repro.sim.states import Capability

        eng = make_fdp_engine(
            {
                0: {},
                1: {},
                2: {"mode": L, "neighbors": {0: S, 1: S}},
            },
            capability=Capability.BOTH,
        )
        eng.attach()
        eng._transition(eng.processes[2], PState.ASLEEP)
        assert staying_connected_per_component(eng)
        assert not staying_connected_induced(eng)

    def test_separate_initial_components_independent(self):
        eng = make_fdp_engine({0: {}, 1: {}})  # two singleton components
        eng.attach()
        assert staying_connected_per_component(eng)

    def test_relevant_connectivity(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: L}}, 1: {"mode": L, "neighbors": {0: S}}}
        )
        eng.attach()
        assert relevant_connected_per_component(eng)
        eng.processes[0].N.clear()
        eng.processes[1].N.clear()
        eng._dirty = True
        assert not relevant_connected_per_component(eng)


class TestFullPredicates:
    def test_fdp_legitimate_end_state(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {"neighbors": {0: S}}, 2: {"mode": L}}
        )
        eng.attach()
        assert not fdp_legitimate(eng)  # 2 not gone yet
        eng._transition(eng.processes[2], PState.GONE)
        assert fdp_legitimate(eng)

    def test_fsp_legitimate_end_state(self):
        from repro.sim.states import Capability

        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {"neighbors": {0: S}}, 2: {"mode": L}},
            capability=Capability.BOTH,
        )
        eng.attach()
        assert not fsp_legitimate(eng)
        eng._transition(eng.processes[2], PState.ASLEEP)
        assert fsp_legitimate(eng)

    def test_fdp_requires_staying_connectivity(self):
        eng = make_fdp_engine({0: {"neighbors": {1: S}}, 1: {}})
        eng.attach()
        eng.processes[0].N.clear()
        eng._dirty = True
        assert not fdp_legitimate(eng)
