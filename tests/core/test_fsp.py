"""The FSP variant: unit tests for its adaptations plus convergence.

The FSP-specific machinery (parking, park notification, one-shot anchor
verification) exists to remove livelocks of the naive exit→sleep
translation; each unit test here pins one of those behaviours.
"""

import pytest

from repro.core.fsp import FSPProcess
from repro.core.potential import fsp_legitimate
from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fsp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.monitors import PotentialMonitor
from repro.sim.refs import Ref
from repro.sim.scheduler import AdversarialScheduler, OldestFirstScheduler, RandomScheduler
from repro.sim.states import Capability, Mode, PState

from tests.conftest import channel_payloads

L, S = Mode.LEAVING, Mode.STAYING

BUDGET = 300_000


def make_fsp(specs, scheduler=None):
    procs = {}
    for pid, spec in specs.items():
        procs[pid] = FSPProcess(pid, spec.get("mode", S))
    for pid, spec in specs.items():
        for npid, belief in spec.get("neighbors", {}).items():
            procs[pid].N[procs[npid].self_ref] = belief
        if spec.get("anchor") is not None:
            procs[pid].anchor = procs[spec["anchor"]].self_ref
            procs[pid].anchor_belief = spec.get("anchor_belief", S)
        for ppid, belief in spec.get("parked", {}).items():
            procs[pid].parked[procs[ppid].self_ref] = belief
    return Engine(
        procs.values(),
        scheduler if scheduler is not None else OldestFirstScheduler(),
        capability=Capability.SLEEP,
        require_staying_per_component=False,
    )


def drive_timeout(eng, pid):
    from tests.conftest import drive_timeout as dt

    return dt(eng, pid)


def deliver(eng, pid, label, *args):
    from tests.conftest import deliver as dv

    return dv(eng, pid, label, *args)


class TestSleepInsteadOfExit:
    def test_drained_leaving_process_sleeps(self):
        eng = make_fsp({0: {"mode": L}, 1: {}})
        p = drive_timeout(eng, 0)
        assert p.state is PState.ASLEEP

    def test_no_oracle_needed(self):
        """The engine has no oracle configured; sleeping must not consult one."""
        eng = make_fsp({0: {"mode": L}, 1: {}})
        drive_timeout(eng, 0)  # would raise ConfigurationError if it asked

    def test_staying_never_sleeps(self):
        eng = make_fsp({0: {"neighbors": {1: S}}, 1: {}})
        p = drive_timeout(eng, 0)
        assert p.state is PState.AWAKE


class TestParking:
    def test_forwarded_leaving_ref_parked_not_bounced(self):
        """Adaptation 2: the FDP would reverse here; the FSP parks."""
        eng = make_fsp({0: {"mode": L}, 1: {"mode": L}})
        p = deliver(eng, 0, "forward", RefInfo(Ref(1), L))
        assert p.parked == {Ref(1): L}

    def test_first_park_notifies_true_mode(self):
        """Adaptation 3: self-introduction over the fresh parked edge."""
        eng = make_fsp({0: {"mode": L}, 1: {"mode": L}})
        deliver(eng, 0, "forward", RefInfo(Ref(1), L))
        assert ("present", 0, L) in channel_payloads(eng, 1)

    def test_repark_is_silent(self):
        eng = make_fsp({0: {"mode": L}, 1: {"mode": L}})
        deliver(eng, 0, "forward", RefInfo(Ref(1), L))
        n_msgs = len(eng.channels[1])
        deliver(eng, 0, "forward", RefInfo(Ref(1), L))
        assert len(eng.channels[1]) == n_msgs  # no second notification

    def test_parked_refs_drain_to_anchor(self):
        eng = make_fsp(
            {
                0: {"mode": L, "anchor": 2, "anchor_belief": S, "parked": {1: L}},
                1: {"mode": L},
                2: {},
            }
        )
        p = drive_timeout(eng, 0)
        assert p.parked == {}
        assert ("forward", 1, L) in channel_payloads(eng, 2)

    def test_parked_anchor_requeued_to_self(self):
        """u, v, w pairwise distinct: the anchor itself cannot be delegated
        to the anchor."""
        eng = make_fsp(
            {
                0: {"mode": L, "anchor": 1, "anchor_belief": S, "parked": {1: L}},
                1: {},
            }
        )
        p = drive_timeout(eng, 0)
        assert p.parked == {}
        assert ("present", 1, L) in channel_payloads(eng, 0)

    def test_parked_edges_are_stored_refs(self):
        p = FSPProcess(0, L)
        p.parked[Ref(3)] = L
        assert any(info.ref == Ref(3) for info in p.stored_refs())

    def test_present_leaving_leaving_still_reverses(self):
        """The present path keeps the FDP reversal (its answer travels as
        forward and gets parked — one round-trip, no ping-pong)."""
        eng = make_fsp({0: {"mode": L}, 1: {"mode": L}})
        deliver(eng, 0, "present", RefInfo(Ref(1), L))
        assert ("forward", 0, L) in channel_payloads(eng, 1)


class TestAnchorVerification:
    def test_probe_sent_once(self):
        eng = make_fsp(
            {0: {"mode": L, "anchor": 1, "anchor_belief": S}, 1: {}}
        )
        drive_timeout(eng, 0)
        assert ("present", 0, L) in channel_payloads(eng, 1)
        n = len(eng.channels[1])
        p = eng.processes[0]
        # woken again: no second probe
        eng._transition(p, PState.AWAKE)
        drive_timeout(eng, 0)
        assert len(eng.channels[1]) == n

    def test_confirmation_sets_verified(self):
        eng = make_fsp(
            {0: {"mode": L, "anchor": 1, "anchor_belief": S}, 1: {}}
        )
        p = deliver(eng, 0, "forward", RefInfo(Ref(1), S))
        assert p.anchor_verified

    def test_leaving_answer_purges_anchor_and_parks(self):
        eng = make_fsp(
            {0: {"mode": L, "anchor": 1, "anchor_belief": S}, 1: {"mode": L}}
        )
        p = deliver(eng, 0, "forward", RefInfo(Ref(1), L))
        assert p.anchor is None
        assert Ref(1) in p.parked

    def test_new_anchor_resets_verification(self):
        eng = make_fsp({0: {"mode": L}, 1: {}})
        p = eng.processes[0]
        p.anchor_verified = True
        p.anchor_probe_sent = True
        deliver(eng, 0, "forward", RefInfo(Ref(1), S))  # adopts anchor 1
        assert p.anchor == Ref(1)
        assert not p.anchor_verified
        assert not p.anchor_probe_sent


class TestLivelockRegressions:
    def test_mutual_references_resolve(self):
        """Two anchor-less leaving processes knowing only each other: the
        naive FSP ping-pongs forever; parking ends it."""
        eng = make_fsp(
            {
                0: {"mode": L, "neighbors": {1: L}},
                1: {"mode": L, "neighbors": {0: L}},
                2: {"neighbors": {0: L}},
            },
        )
        assert eng.run(50_000, until=fsp_legitimate, check_every=16)

    def test_mutual_anchor_pair_resolves(self):
        """Two leaving processes anchored at each other with (invalid)
        staying beliefs: one-shot verification flushes the lie."""
        eng = make_fsp(
            {
                0: {"mode": L, "anchor": 1, "anchor_belief": S},
                1: {"mode": L, "anchor": 0, "anchor_belief": S},
                2: {"neighbors": {0: L}},
            },
        )
        assert eng.run(50_000, until=fsp_legitimate, check_every=16)

    def test_parked_staying_process_learns_truth(self):
        """Park notification lets a wrongly-believed-leaving staying process
        correct the lie and reconnect."""
        eng = make_fsp(
            {
                0: {"mode": L, "neighbors": {1: L}},  # 1 is actually staying!
                1: {},
                2: {"neighbors": {0: L}},
            },
        )
        eng.processes[0].N[Ref(1)] = L  # the lie
        assert eng.run(50_000, until=fsp_legitimate, check_every=16)


class TestConvergence:
    @pytest.mark.parametrize("seed", range(4))
    def test_heavy_corruption_random_and_adversarial(self, seed):
        n = 12
        edges = gen.random_connected(n, 6, seed=seed)
        leaving = choose_leaving(n, edges, fraction=0.5, seed=seed)
        sched = (
            AdversarialScheduler(patience=32, seed=seed)
            if seed % 2
            else RandomScheduler(seed)
        )
        eng = build_fsp_engine(
            n,
            edges,
            leaving,
            seed=seed,
            scheduler=sched,
            corruption=HEAVY_CORRUPTION,
            monitors=[PotentialMonitor(check_every=4)],
        )
        assert eng.run(BUDGET, until=fsp_legitimate, check_every=64)

    def test_hibernating_processes_stay_asleep(self):
        """The [15] claim reproduced in the paper: a hibernating process is
        permanently asleep (closure of the FSP legitimate state)."""
        n = 10
        edges = gen.ring(n)
        leaving = choose_leaving(n, edges, fraction=0.4, seed=2)
        eng = build_fsp_engine(n, edges, leaving, seed=2)
        assert eng.run(BUDGET, until=fsp_legitimate, check_every=64)
        sleeping = {
            pid for pid, p in eng.processes.items() if p.state is PState.ASLEEP
        }
        for _ in range(500):
            eng.step()
            assert fsp_legitimate(eng)
        for pid in sleeping:
            assert eng.processes[pid].state is PState.ASLEEP
        assert eng.stats.wakes == 0 or all(
            eng.processes[pid].state is PState.ASLEEP for pid in sleeping
        )

    def test_no_exits_ever_in_fsp(self):
        n = 8
        edges = gen.star(n)
        leaving = choose_leaving(n, edges, fraction=0.4, seed=4)
        eng = build_fsp_engine(n, edges, leaving, seed=4)
        assert eng.run(BUDGET, until=fsp_legitimate, check_every=32)
        assert eng.stats.exits == 0
