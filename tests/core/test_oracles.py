"""Oracle semantics on hand-wired process graphs."""

import pytest

from repro.core.oracles import (
    ORACLES,
    AlwaysOracle,
    NeverOracle,
    NoIncomingOracle,
    SingleOracle,
    TimeoutSingleOracle,
)
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.process import Process
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode, PState


class Holder(Process):
    def __init__(self, pid, mode=Mode.STAYING):
        super().__init__(pid, mode)
        self.refs = {}

    def stored_refs(self):
        return (RefInfo(r, m) for r, m in self.refs.items())

    def on_noop(self, ctx, *args):
        pass


def wire(n, explicit=(), leaving=(), implicit=()):
    procs = {
        i: Holder(i, Mode.LEAVING if i in leaving else Mode.STAYING)
        for i in range(n)
    }
    for a, b in explicit:
        procs[a].refs[procs[b].self_ref] = procs[b].mode
    eng = Engine(
        procs.values(),
        OldestFirstScheduler(),
        capability=Capability.EXIT,
        require_staying_per_component=False,
    )
    for a, b in implicit:
        eng.post(None, eng.ref(a), "noop", (RefInfo(eng.ref(b), procs[b].mode),))
    return eng


class TestSingleOracle:
    def test_isolated_process_single(self):
        eng = wire(2)
        assert SingleOracle()(eng, 0)

    def test_one_partner_single(self):
        eng = wire(3, explicit=[(0, 1)])
        assert SingleOracle()(eng, 0)
        assert SingleOracle()(eng, 1)

    def test_two_partners_not_single(self):
        eng = wire(3, explicit=[(0, 1), (2, 0)])
        assert not SingleOracle()(eng, 0)

    def test_implicit_edges_count(self):
        """In-flight references are edges with the process too."""
        eng = wire(3, explicit=[(0, 1)], implicit=[(2, 0)])
        assert not SingleOracle()(eng, 0)

    def test_refs_carried_in_own_channel_count(self):
        eng = wire(3, explicit=[(0, 1)], implicit=[(0, 2)])
        assert not SingleOracle()(eng, 0)

    def test_gone_partner_irrelevant(self):
        eng = wire(3, explicit=[(0, 1), (2, 0)], leaving={2})
        eng.attach()
        eng._transition(eng.processes[2], PState.GONE)
        assert SingleOracle()(eng, 0)

    def test_hibernating_partner_irrelevant(self):
        eng = wire(3, explicit=[(0, 1), (2, 0)], leaving={2})
        eng.attach()
        eng._transition(eng.processes[2], PState.ASLEEP)
        # 2 is asleep with empty channel and nobody points to it: hibernating
        assert SingleOracle()(eng, 0)

    def test_self_loop_ignored(self):
        eng = wire(2, explicit=[(0, 0), (0, 1)])
        assert SingleOracle()(eng, 0)

    def test_multi_edges_to_same_partner_still_single(self):
        eng = wire(2, explicit=[(0, 1)], implicit=[(0, 1), (1, 0)])
        assert SingleOracle()(eng, 0)


class TestTrivialOracles:
    def test_always(self):
        eng = wire(3, explicit=[(0, 1), (0, 2), (1, 0), (2, 0)])
        assert AlwaysOracle()(eng, 0)

    def test_never(self):
        eng = wire(1)
        assert not NeverOracle()(eng, 0)

    def test_registry(self):
        assert set(ORACLES) == {
            "single",
            "always",
            "never",
            "timeout_single",
            "no_incoming",
        }


class TestTimeoutSingleOracle:
    def test_agrees_with_single_on_explicit_graphs(self):
        eng = wire(3, explicit=[(0, 1), (2, 0)])
        assert TimeoutSingleOracle()(eng, 0) == SingleOracle()(eng, 0)
        eng2 = wire(3, explicit=[(0, 1)])
        assert TimeoutSingleOracle()(eng2, 0) == SingleOracle()(eng2, 0)

    def test_blind_to_inflight_references_elsewhere(self):
        """The unsafe gap: a reference to us in someone else's channel is
        invisible to the timeout-based approximation."""
        eng = wire(3, explicit=[(0, 1)], implicit=[(2, 0)])
        assert not SingleOracle()(eng, 0)  # exact oracle sees the edge
        assert TimeoutSingleOracle()(eng, 0)  # approximation does not

    def test_sees_own_channel(self):
        eng = wire(3, explicit=[(0, 1)], implicit=[(0, 2)])
        assert not TimeoutSingleOracle()(eng, 0)

    def test_grace_requires_streak(self):
        eng = wire(2, explicit=[(0, 1)])
        oracle = TimeoutSingleOracle(grace=2)
        assert not oracle(eng, 0)
        assert not oracle(eng, 0)
        assert oracle(eng, 0)  # third consecutive positive

    def test_streak_resets(self):
        oracle = TimeoutSingleOracle(grace=1)
        eng = wire(3, explicit=[(0, 1)])
        assert not oracle(eng, 0)
        # now add a second partner: streak resets
        eng.processes[0].refs[eng.ref(2)] = Mode.STAYING
        eng._dirty = True
        assert not oracle(eng, 0)
        del eng.processes[0].refs[eng.ref(2)]
        eng._dirty = True
        assert not oracle(eng, 0)  # streak restarted at 1
        assert oracle(eng, 0)

    def test_grace_validation(self):
        with pytest.raises(ValueError):
            TimeoutSingleOracle(grace=-1)


class TestNoIncomingOracle:
    def test_true_when_unreferenced(self):
        eng = wire(3, explicit=[(0, 1), (0, 2)])
        assert NoIncomingOracle()(eng, 0)  # only outgoing edges

    def test_false_with_explicit_in_edge(self):
        eng = wire(2, explicit=[(1, 0)])
        assert not NoIncomingOracle()(eng, 0)

    def test_false_with_inflight_reference(self):
        eng = wire(3, implicit=[(2, 0)])
        assert not NoIncomingOracle()(eng, 0)

    def test_differs_from_single(self):
        """SINGLE counts out-edges as edges 'with' the process; NoIncoming
        does not — the design difference between the two departure styles."""
        eng = wire(3, explicit=[(0, 1), (0, 2)])
        assert NoIncomingOracle()(eng, 0)
        assert not SingleOracle()(eng, 0)
