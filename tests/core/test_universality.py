"""Theorem 1 (universality), Corollary 1 and Theorem 2 (necessity)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.primitives import Primitive, PrimitiveGraph
from repro.core.universality import (
    NECESSITY_WITNESSES,
    bidirected_extension,
    plan_transformation,
    plan_weak_transformation,
    restricted_reachable,
    rounds_to_clique,
)
from repro.errors import ConfigurationError
from repro.graphs import generators as gen


@st.composite
def connected_edge_list(draw, n):
    edges = set()
    for i in range(1, n):
        p = draw(st.integers(0, i - 1))
        edges.add((p, i) if draw(st.booleans()) else (i, p))
    for _ in range(draw(st.integers(0, n))):
        a, b = draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1))
        if a != b:
            edges.add((a, b))
    return sorted(edges)


@st.composite
def transformation_instance(draw):
    n = draw(st.integers(2, 7))
    return n, draw(connected_edge_list(n)), draw(connected_edge_list(n))


class TestTheorem1:
    @given(transformation_instance())
    @settings(max_examples=40, deadline=None)
    def test_any_to_any(self, case):
        """The planner transforms any weakly connected G into any G′, with
        Lemma 1 holding at every intermediate step (checked replay)."""
        n, initial, target = case
        plan = plan_transformation(range(n), initial, target)
        result = plan.replay(check_connectivity=True)
        assert result.simple_edges() == frozenset(target)
        assert all(result.multiplicity(a, b) == 1 for a, b in target)

    def test_line_to_ring(self):
        plan = plan_transformation(range(6), gen.line(6), gen.ring(6))
        assert plan.replay().simple_edges() == frozenset(gen.ring(6))

    def test_ring_to_star(self):
        plan = plan_transformation(range(5), gen.ring(5), gen.star(5))
        assert plan.replay().simple_edges() == frozenset(gen.star(5))

    def test_single_edge_reversal_instance(self):
        plan = plan_transformation([0, 1], [(0, 1)], [(1, 0)])
        assert plan.replay().simple_edges() == {(1, 0)}
        assert any(op.primitive is Primitive.REVERSAL for op in plan.schedule)

    def test_identity_transformation(self):
        edges = gen.ring(4)
        plan = plan_transformation(range(4), edges, edges)
        assert plan.replay().simple_edges() == frozenset(edges)

    def test_multigraph_initial_deduped(self):
        plan = plan_transformation([0, 1], [(0, 1), (0, 1), (1, 0)], [(0, 1), (1, 0)])
        g = plan.replay()
        assert g.multiplicity(0, 1) == 1

    def test_single_node(self):
        plan = plan_transformation([0], [], [])
        assert len(plan) == 0

    def test_counts_accounting(self):
        plan = plan_transformation(range(5), gen.line(5), gen.ring(5))
        counts = plan.counts()
        assert sum(counts.values()) == len(plan)
        assert counts["introduction"] > 0

    def test_rejects_disconnected_initial(self):
        with pytest.raises(ConfigurationError):
            plan_transformation(range(4), [(0, 1)], gen.ring(4))

    def test_rejects_disconnected_target(self):
        with pytest.raises(ConfigurationError):
            plan_transformation(range(4), gen.ring(4), [(0, 1)])

    def test_rejects_self_loops(self):
        with pytest.raises(ConfigurationError, match="self-loop"):
            plan_transformation(range(2), [(0, 1), (0, 0)], [(0, 1)])

    def test_rejects_foreign_nodes(self):
        with pytest.raises(ConfigurationError):
            plan_transformation(range(2), [(0, 5)], [(0, 1)])


class TestCliqueRounds:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_logarithmic_rounds_on_bidirected_line(self, n):
        """Theorem 1's O(log n) clique-formation claim: distances halve per
        introduction round."""
        rounds = rounds_to_clique(range(n), gen.bidirected_line(n))
        assert rounds <= math.ceil(math.log2(n)) + 1

    def test_clique_needs_zero_rounds(self):
        assert rounds_to_clique(range(4), gen.clique(4)) == 0

    def test_monotone_in_diameter(self):
        line = rounds_to_clique(range(16), gen.bidirected_line(16))
        star = rounds_to_clique(range(16), gen.star(16) + [(i, 0) for i in range(1, 16)])
        assert star <= line


class TestCorollary1:
    def test_weak_plan_avoids_reversal(self):
        plan = plan_weak_transformation(range(5), gen.line(5), gen.ring(5))
        assert all(op.primitive is not Primitive.REVERSAL for op in plan.schedule)
        assert plan.replay().simple_edges() == frozenset(gen.ring(5))

    def test_weak_plan_to_clique(self):
        plan = plan_weak_transformation(range(4), gen.line(4), gen.clique(4))
        assert plan.replay().simple_edges() == frozenset(gen.clique(4))

    def test_rejects_non_strongly_connected_target(self):
        with pytest.raises(ConfigurationError, match="strongly connected"):
            plan_weak_transformation(range(3), gen.ring(3), gen.line(3))

    @given(st.integers(3, 7), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_weak_plan_to_random_ring_rotation(self, n, seed):
        initial = gen.random_connected(n, 2, seed=seed)
        target = gen.ring(n)
        plan = plan_weak_transformation(range(n), initial, target)
        assert plan.replay(check_connectivity=True).simple_edges() == frozenset(
            target
        )


class TestBidirectedExtension:
    def test_both_orientations(self):
        assert bidirected_extension([(0, 1)]) == {(0, 1), (1, 0)}

    def test_idempotent(self):
        e = bidirected_extension([(0, 1), (1, 2)])
        assert bidirected_extension(e) == e


class TestTheorem2:
    """Each primitive is necessary: the witness instances are unreachable
    without it — verified by exhaustive search on the witness instance AND
    by the invariant argument of the proof."""

    @pytest.mark.parametrize("name", sorted(NECESSITY_WITNESSES))
    def test_full_calculus_reaches_witness_target(self, name):
        w = NECESSITY_WITNESSES[name]
        plan = plan_transformation(w.nodes, w.initial, w.target)
        assert plan.replay().simple_edges() == frozenset(w.target)

    @pytest.mark.parametrize("name", ["reversal", "fusion"])
    def test_exhaustive_unreachability_small(self, name):
        w = NECESSITY_WITNESSES[name]
        allowed = frozenset(Primitive) - {w.dropped}
        if w.dropped is Primitive.INTRODUCTION:
            allowed -= {Primitive.SELF_INTRODUCTION}
        reachable = restricted_reachable(
            w.nodes, w.initial, allowed, max_multiplicity=2
        )
        target_key = PrimitiveGraph(w.nodes, w.target).state_key()
        assert target_key not in reachable

    @pytest.mark.parametrize("name", ["introduction", "delegation"])
    def test_exhaustive_unreachability_3nodes(self, name):
        w = NECESSITY_WITNESSES[name]
        allowed = frozenset(Primitive) - {w.dropped}
        if w.dropped is Primitive.INTRODUCTION:
            allowed -= {Primitive.SELF_INTRODUCTION}
        reachable = restricted_reachable(
            w.nodes, w.initial, allowed, max_multiplicity=2, max_states=500_000
        )
        target_key = PrimitiveGraph(w.nodes, w.target).state_key()
        assert target_key not in reachable

    @pytest.mark.parametrize("name", sorted(NECESSITY_WITNESSES))
    def test_invariant_separates_initial_from_target(self, name):
        """The proof's invariant differs between G and G′ in the direction
        the restricted calculus cannot cross."""
        w = NECESSITY_WITNESSES[name]
        gi = PrimitiveGraph(w.nodes, w.initial)
        gt = PrimitiveGraph(w.nodes, w.target)
        vi, vt = w.invariant(gi), w.invariant(gt)
        if w.invariant_kind == "non-increasing":
            assert vt > vi  # target needs an increase — impossible
        elif w.invariant_kind == "non-decreasing":
            assert vt < vi  # target needs a decrease — impossible
        elif w.invariant_kind == "superset":
            assert not (vi <= vt)  # target lost an adjacency — impossible
        else:  # pragma: no cover
            pytest.fail(f"unknown kind {w.invariant_kind}")

    @pytest.mark.parametrize("name", sorted(NECESSITY_WITNESSES))
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_invariant_preserved_by_restricted_walks(self, name, data):
        """Random walks in the restricted calculus never violate the
        invariant direction."""
        from repro.core.universality import enumerate_ops

        w = NECESSITY_WITNESSES[name]
        allowed = frozenset(Primitive) - {w.dropped}
        if w.dropped is Primitive.INTRODUCTION:
            allowed -= {Primitive.SELF_INTRODUCTION}
        g = PrimitiveGraph(w.nodes, w.initial)
        previous = w.invariant(g)
        for _ in range(15):
            ops = enumerate_ops(g, allowed, max_multiplicity=3)
            if not ops:
                break
            op = ops[data.draw(st.integers(0, len(ops) - 1))]
            g.apply(op)
            current = w.invariant(g)
            if w.invariant_kind == "non-increasing":
                assert current <= previous
            elif w.invariant_kind == "non-decreasing":
                assert current >= previous
            elif w.invariant_kind == "superset":
                assert previous <= current
            previous = current
