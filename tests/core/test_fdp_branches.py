"""Per-branch unit tests for the FDP protocol (Algorithms 1–3).

Each test drives exactly one pseudocode branch via a hand-wired engine and
asserts the state changes and messages the paper's line prescribes.
"""

import pytest

from repro.core.oracles import NeverOracle, SingleOracle
from repro.sim.messages import RefInfo
from repro.sim.refs import Ref
from repro.sim.states import Mode, PState

from tests.conftest import (
    channel_payloads,
    deliver,
    drive_timeout,
    make_fdp_engine,
)

L, S = Mode.LEAVING, Mode.STAYING


class TestTimeoutAnchorPurge:
    """Algorithm 1 lines 1–3."""

    def test_leaving_believed_anchor_purged_to_self(self):
        eng = make_fdp_engine(
            {
                0: {"mode": L, "anchor": 1, "anchor_belief": L},
                1: {"mode": S},
            }
        )
        p = drive_timeout(eng, 0)
        assert p.anchor is None
        # the anchor reference became a pending present to ourselves
        assert ("present", 1, L) in channel_payloads(eng, 0)

    def test_staying_believed_anchor_kept_by_leaving(self):
        eng = make_fdp_engine(
            {
                0: {"mode": L, "anchor": 1, "anchor_belief": S},
                1: {"mode": S, "neighbors": {0: L}},
            },
            oracle=NeverOracle(),
        )
        p = drive_timeout(eng, 0)
        assert p.anchor == Ref(1)


class TestTimeoutLeaving:
    """Algorithm 1 lines 4–14."""

    def test_empty_n_single_true_exits(self):
        eng = make_fdp_engine({0: {"mode": L}, 1: {"mode": S}})
        p = drive_timeout(eng, 0)
        assert p.state is PState.GONE

    def test_empty_n_single_false_waits(self):
        eng = make_fdp_engine(
            {
                0: {"mode": L},
                1: {"mode": S, "neighbors": {0: L}},
                2: {"mode": S, "neighbors": {0: L}},
            }
        )
        p = drive_timeout(eng, 0)
        assert p.state is PState.AWAKE
        assert len(eng.channels[0]) == 0  # nothing to do but wait

    def test_empty_n_not_single_with_anchor_verifies(self):
        """Lines 8–10: self-introduction to the anchor."""
        eng = make_fdp_engine(
            {
                0: {"mode": L, "anchor": 1, "anchor_belief": S},
                1: {"mode": S},
                2: {"mode": S, "neighbors": {0: L}},
                3: {"mode": S, "neighbors": {0: L}},
            }
        )
        drive_timeout(eng, 0)
        assert ("present", 0, L) in channel_payloads(eng, 1)

    def test_exit_with_anchor_only_is_single(self):
        """A leaving process whose only partner is its anchor may exit."""
        eng = make_fdp_engine(
            {0: {"mode": L, "anchor": 1, "anchor_belief": S}, 1: {"mode": S}}
        )
        p = drive_timeout(eng, 0)
        assert p.state is PState.GONE

    def test_nonempty_n_drained_to_self(self):
        """Lines 11–14: every neighbour forwarded to ourselves, N cleared."""
        eng = make_fdp_engine(
            {
                0: {"mode": L, "neighbors": {1: S, 2: L}},
                1: {"mode": S},
                2: {"mode": L},
            }
        )
        p = drive_timeout(eng, 0)
        assert p.N == {}
        payloads = channel_payloads(eng, 0)
        assert ("forward", 1, S) in payloads
        assert ("forward", 2, L) in payloads
        assert p.state is PState.AWAKE  # no exit while refs outstanding

    def test_drain_happens_even_with_anchor(self):
        """The liveness-critical parse decision (transcription note 1)."""
        eng = make_fdp_engine(
            {
                0: {"mode": L, "anchor": 2, "anchor_belief": S, "neighbors": {1: S}},
                1: {"mode": S},
                2: {"mode": S},
            }
        )
        p = drive_timeout(eng, 0)
        assert p.N == {}
        assert ("forward", 1, S) in channel_payloads(eng, 0)


class TestTimeoutStaying:
    """Algorithm 1 lines 15–22."""

    def test_anchor_cleared_to_self(self):
        eng = make_fdp_engine(
            {0: {"anchor": 1, "anchor_belief": S}, 1: {"mode": S}}
        )
        p = drive_timeout(eng, 0)
        assert p.anchor is None
        assert ("present", 1, S) in channel_payloads(eng, 0)

    def test_leaving_neighbors_dropped_and_reversed(self):
        """Lines 20–22: drop + present(u) = reversal."""
        eng = make_fdp_engine(
            {0: {"neighbors": {1: L}}, 1: {"mode": L, "neighbors": {0: S}}}
        )
        p = drive_timeout(eng, 0)
        assert Ref(1) not in p.N
        assert ("present", 0, S) in channel_payloads(eng, 1)

    def test_staying_neighbors_kept_and_introduced(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: S}}, 1: {"mode": S}}
        )
        p = drive_timeout(eng, 0)
        assert p.N == {Ref(1): S}
        assert ("present", 0, S) in channel_payloads(eng, 1)

    def test_mixed_neighborhood(self):
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: S, 2: L}},
                1: {"mode": S},
                2: {"mode": L, "neighbors": {0: S}},
            }
        )
        p = drive_timeout(eng, 0)
        assert set(p.N) == {Ref(1)}
        assert ("present", 0, S) in channel_payloads(eng, 1)
        assert ("present", 0, S) in channel_payloads(eng, 2)


class TestPresentAction:
    """Algorithm 2."""

    def test_self_reference_discarded(self):
        eng = make_fdp_engine({0: {"mode": S}})
        p = deliver(eng, 0, "present", RefInfo(Ref(0), S))
        assert p.N == {}
        assert len(eng.channels[0]) == 0

    def test_line1_anchor_dropped_on_leaving_info(self):
        eng = make_fdp_engine(
            {
                0: {"mode": L, "anchor": 1, "anchor_belief": S},
                1: {"mode": L},
                2: {"mode": S, "neighbors": {0: L, 1: L}},
            },
            oracle=NeverOracle(),
        )
        p = deliver(eng, 0, "present", RefInfo(Ref(1), L))
        assert p.anchor is None

    def test_leaving_gets_leaving_ref_reverses(self):
        """Lines 4–5."""
        eng = make_fdp_engine(
            {0: {"mode": L}, 1: {"mode": L}, 2: {"mode": S, "neighbors": {0: L, 1: L}}}
        )
        deliver(eng, 0, "present", RefInfo(Ref(1), L))
        assert ("forward", 0, L) in channel_payloads(eng, 1)

    def test_staying_gets_leaving_ref_drops_and_reverses(self):
        """Lines 6–9."""
        eng = make_fdp_engine(
            {0: {"neighbors": {1: L}}, 1: {"mode": L, "neighbors": {0: S}}}
        )
        p = deliver(eng, 0, "present", RefInfo(Ref(1), L))
        assert Ref(1) not in p.N
        assert ("forward", 0, S) in channel_payloads(eng, 1)

    def test_staying_gets_leaving_ref_not_stored_still_reverses(self):
        eng = make_fdp_engine(
            {0: {}, 1: {"mode": L, "neighbors": {0: S}}}
        )
        deliver(eng, 0, "present", RefInfo(Ref(1), L))
        assert ("forward", 0, S) in channel_payloads(eng, 1)

    def test_leaving_no_anchor_adopts_staying_ref(self):
        """Lines 14–15."""
        eng = make_fdp_engine(
            {0: {"mode": L}, 1: {"mode": S, "neighbors": {0: L}}}
        )
        p = deliver(eng, 0, "present", RefInfo(Ref(1), S))
        assert p.anchor == Ref(1)
        assert p.anchor_belief is S

    def test_leaving_with_anchor_reverses_staying_ref(self):
        """Lines 12–13."""
        eng = make_fdp_engine(
            {
                0: {"mode": L, "anchor": 2, "anchor_belief": S},
                1: {"mode": S},
                2: {"mode": S, "neighbors": {0: L}},
            }
        )
        p = deliver(eng, 0, "present", RefInfo(Ref(1), S))
        assert p.anchor == Ref(2)  # unchanged
        assert ("forward", 0, L) in channel_payloads(eng, 1)

    def test_staying_stores_staying_ref(self):
        """Lines 16–17."""
        eng = make_fdp_engine({0: {}, 1: {"mode": S}})
        p = deliver(eng, 0, "present", RefInfo(Ref(1), S))
        assert p.N == {Ref(1): S}

    def test_fusion_on_duplicate(self):
        eng = make_fdp_engine({0: {"neighbors": {1: S}}, 1: {"mode": S}})
        p = deliver(eng, 0, "present", RefInfo(Ref(1), S))
        assert len(p.N) == 1

    def test_missing_mode_treated_as_staying(self):
        """Transcription note 3."""
        eng = make_fdp_engine({0: {}, 1: {"mode": S}})
        p = deliver(eng, 0, "present", RefInfo(Ref(1), None))
        assert p.N == {Ref(1): S}


class TestForwardAction:
    """Algorithm 3."""

    def test_self_reference_discarded(self):
        eng = make_fdp_engine({0: {"mode": S}})
        p = deliver(eng, 0, "forward", RefInfo(Ref(0), S))
        assert p.N == {}

    def test_line1_anchor_dropped(self):
        eng = make_fdp_engine(
            {
                0: {"mode": L, "anchor": 1, "anchor_belief": S},
                1: {"mode": L},
                2: {"mode": S, "neighbors": {0: L, 1: L}},
            },
            oracle=NeverOracle(),
        )
        p = deliver(eng, 0, "forward", RefInfo(Ref(1), L))
        assert p.anchor is None
        # anchor now gone and ref believed leaving: reversal (lines 5–6)
        assert ("forward", 0, L) in channel_payloads(eng, 1)

    def test_leaving_no_anchor_reverses_leaving_ref(self):
        """Lines 5–6 (the FDP ping-pong move that SINGLE terminates)."""
        eng = make_fdp_engine(
            {0: {"mode": L}, 1: {"mode": L}, 2: {"mode": S, "neighbors": {0: L, 1: L}}}
        )
        deliver(eng, 0, "forward", RefInfo(Ref(1), L))
        assert ("forward", 0, L) in channel_payloads(eng, 1)

    def test_leaving_with_anchor_delegates_leaving_ref(self):
        """Lines 7–8: delegation to the anchor."""
        eng = make_fdp_engine(
            {
                0: {"mode": L, "anchor": 2, "anchor_belief": S},
                1: {"mode": L},
                2: {"mode": S, "neighbors": {1: L}},
            }
        )
        deliver(eng, 0, "forward", RefInfo(Ref(1), L))
        assert ("forward", 1, L) in channel_payloads(eng, 2)

    def test_staying_drops_and_reverses_leaving_ref(self):
        """Lines 9–12."""
        eng = make_fdp_engine(
            {0: {"neighbors": {1: L}}, 1: {"mode": L, "neighbors": {0: S}}}
        )
        p = deliver(eng, 0, "forward", RefInfo(Ref(1), L))
        assert Ref(1) not in p.N
        assert ("forward", 0, S) in channel_payloads(eng, 1)

    def test_leaving_with_anchor_delegates_staying_ref(self):
        """Lines 15–16."""
        eng = make_fdp_engine(
            {
                0: {"mode": L, "anchor": 2, "anchor_belief": S},
                1: {"mode": S},
                2: {"mode": S, "neighbors": {0: L}},
            }
        )
        deliver(eng, 0, "forward", RefInfo(Ref(1), S))
        assert ("forward", 1, S) in channel_payloads(eng, 2)

    def test_leaving_no_anchor_adopts_staying_ref(self):
        """Lines 17–18."""
        eng = make_fdp_engine(
            {0: {"mode": L}, 1: {"mode": S, "neighbors": {0: L}}}
        )
        p = deliver(eng, 0, "forward", RefInfo(Ref(1), S))
        assert p.anchor == Ref(1)

    def test_staying_stores_staying_ref(self):
        """Lines 19–20."""
        eng = make_fdp_engine({0: {}, 1: {"mode": S}})
        p = deliver(eng, 0, "forward", RefInfo(Ref(1), S))
        assert p.N == {Ref(1): S}


class TestConstructionEdgeCases:
    def test_self_neighbor_ignored(self):
        from repro.core.fdp import FDPProcess

        p = FDPProcess(0, S, neighbors=[Ref(0), Ref(1)])
        assert set(p.N) == {Ref(1)}

    def test_self_anchor_ignored(self):
        from repro.core.fdp import FDPProcess

        p = FDPProcess(0, L, anchor=Ref(0))
        assert p.anchor is None

    def test_neighbors_mapping_with_beliefs(self):
        from repro.core.fdp import FDPProcess

        p = FDPProcess(0, S, neighbors={Ref(1): L, Ref(2): S})
        assert p.N[Ref(1)] is L

    def test_stored_refs_includes_anchor(self):
        from repro.core.fdp import FDPProcess

        p = FDPProcess(0, L, neighbors=[Ref(1)], anchor=Ref(2), anchor_belief=S)
        pids = {info.ref for info in p.stored_refs()}
        assert pids == {Ref(1), Ref(2)}

    def test_describe_vars(self):
        from repro.core.fdp import FDPProcess

        p = FDPProcess(0, L, anchor=Ref(1), anchor_belief=S)
        d = p.describe_vars()
        assert d["anchor"] == "Ref<1>"
        assert d["anchor_belief"] == "staying"
