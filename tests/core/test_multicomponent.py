"""Multi-component systems: legitimacy is per initial component.

The paper's condition (iii) quantifies over the weakly connected
components of the *initial* process graph. Copy-store-send protocols can
never merge components (no process can learn a reference nobody in its
component holds), so each component must converge independently — and
the engine/monitors must judge them independently.
"""

import pytest

from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import (
    LIGHT_CORRUPTION,
    build_fdp_engine,
    build_fsp_engine,
)
from repro.graphs import generators as gen
from repro.sim.monitors import ConnectivityMonitor
from repro.sim.refs import pid_of
from repro.sim.states import PState


def two_rings(n_each: int) -> list[tuple[int, int]]:
    first = gen.ring(n_each)
    second = [(a + n_each, b + n_each) for a, b in gen.ring(n_each)]
    return first + second


class TestComponentIsolation:
    def test_components_never_merge(self):
        n = 12
        edges = two_rings(6)
        eng = build_fdp_engine(
            n, edges, leaving={2, 8}, seed=1, corruption=LIGHT_CORRUPTION
        )
        assert eng.run(200_000, until=fdp_legitimate, check_every=32)
        snap = eng.snapshot()
        comps = snap.weakly_connected_components()
        # still (at least) two components; no reference crossed the gap
        assert len(comps) >= 2
        for e in snap.edges:
            assert (e.src < 6) == (e.dst < 6)

    def test_initial_components_recorded_separately(self):
        eng = build_fdp_engine(8, two_rings(4), leaving=set(), seed=0)
        eng.attach()
        assert len(eng.initial_components) == 2

    def test_per_component_convergence(self):
        n = 14
        edges = two_rings(7)
        eng = build_fdp_engine(
            n,
            edges,
            leaving={1, 2, 8, 9},
            seed=3,
            corruption=LIGHT_CORRUPTION,
            monitors=[ConnectivityMonitor(check_every=4)],
        )
        assert eng.run(300_000, until=fdp_legitimate, check_every=64)
        for pid in (1, 2, 8, 9):
            assert eng.processes[pid].state is PState.GONE

    def test_fsp_multicomponent(self):
        n = 12
        edges = two_rings(6)
        eng = build_fsp_engine(
            n, edges, leaving={0, 7}, seed=4, corruption=LIGHT_CORRUPTION
        )
        assert eng.run(300_000, until=fsp_legitimate, check_every=64)

    def test_isolated_singletons(self):
        """Isolated staying processes are their own (trivially legitimate)
        components."""
        eng = build_fdp_engine(5, [(0, 1), (1, 0)], leaving={1}, seed=5)
        assert eng.run(100_000, until=fdp_legitimate, check_every=16)
        # pids 2..4 never did anything but their timeouts
        for pid in (2, 3, 4):
            assert eng.processes[pid].state is PState.AWAKE

    def test_component_with_all_leavers_rejected_by_builder_fix(self):
        """choose_leaving flips one process per component back to staying;
        manual leaving sets violating the precondition are rejected by the
        engine at attach."""
        from repro.errors import ConfigurationError

        eng = build_fdp_engine(
            6, two_rings(3), leaving={3, 4, 5}, seed=6
        )
        with pytest.raises(ConfigurationError, match="staying"):
            eng.attach()
