"""The four primitives: preconditions, effects, and Lemma 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.primitives import (
    Primitive,
    PrimitiveGraph,
    PrimitiveOp,
    apply_schedule,
)
from repro.errors import ModelViolation


def pg(edges, nodes=None, **kw):
    nodes = nodes if nodes is not None else sorted({x for e in edges for x in e}) or [0]
    return PrimitiveGraph(nodes, edges, **kw)


class TestIntroduction:
    def test_creates_edge_keeps_originals(self):
        g = pg([(0, 1), (0, 2)])
        g.introduce(0, 1, 2)
        assert g.has_edge(1, 2)
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_requires_both_edges(self):
        g = pg([(0, 1)], nodes=[0, 1, 2])
        with pytest.raises(ModelViolation):
            g.introduce(0, 1, 2)

    def test_requires_pairwise_distinct(self):
        g = pg([(0, 1), (0, 2)])
        with pytest.raises(ModelViolation):
            g.introduce(0, 1, 1)

    def test_parallel_copies_accumulate(self):
        g = pg([(0, 1), (0, 2), (1, 2)])
        g.introduce(0, 1, 2)
        assert g.multiplicity(1, 2) == 2


class TestSelfIntroduction:
    def test_creates_reverse_edge(self):
        g = pg([(0, 1)])
        g.self_introduce(0, 1)
        assert g.has_edge(1, 0)
        assert g.has_edge(0, 1)

    def test_requires_edge(self):
        g = pg([], nodes=[0, 1])
        with pytest.raises(ModelViolation):
            g.self_introduce(0, 1)

    def test_requires_distinct(self):
        g = pg([(0, 1)])
        with pytest.raises(ModelViolation):
            g.self_introduce(0, 0)


class TestDelegation:
    def test_moves_edge(self):
        g = pg([(0, 1), (0, 2)])
        g.delegate(0, 1, 2)
        assert not g.has_edge(0, 2)
        assert g.has_edge(1, 2)
        assert g.has_edge(0, 1)

    def test_requires_pairwise_distinct(self):
        """Delegating v's own ref to v (w = v) is forbidden — this is what
        makes Reversal non-redundant on two nodes (Theorem 2)."""
        g = pg([(0, 1)])
        with pytest.raises(ModelViolation):
            g.delegate(0, 1, 1)

    def test_requires_both_edges(self):
        g = pg([(0, 1)], nodes=[0, 1, 2])
        with pytest.raises(ModelViolation):
            g.delegate(0, 1, 2)

    def test_moves_one_copy_only(self):
        g = pg([(0, 1), (0, 2), (0, 2)])
        g.delegate(0, 1, 2)
        assert g.multiplicity(0, 2) == 1
        assert g.multiplicity(1, 2) == 1


class TestFusion:
    def test_consumes_duplicate(self):
        g = pg([(0, 1), (0, 1)])
        g.fuse(0, 1)
        assert g.multiplicity(0, 1) == 1

    def test_requires_two_copies(self):
        g = pg([(0, 1)])
        with pytest.raises(ModelViolation):
            g.fuse(0, 1)

    def test_single_self_loop_cannot_be_fused(self):
        g = pg([(0, 0)])
        with pytest.raises(ModelViolation):
            g.fuse(0, 0)

    def test_duplicate_self_loops_can(self):
        g = pg([(0, 0), (0, 0)])
        g.fuse(0, 0)
        assert g.multiplicity(0, 0) == 1


class TestReversal:
    def test_flips_edge(self):
        g = pg([(0, 1)])
        g.reverse(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_requires_edge(self):
        g = pg([], nodes=[0, 1])
        with pytest.raises(ModelViolation):
            g.reverse(0, 1)

    def test_self_loop_cannot_reverse(self):
        g = pg([(0, 0)])
        with pytest.raises(ModelViolation):
            g.reverse(0, 0)


class TestLogAndReplay:
    def test_operations_logged(self):
        g = pg([(0, 1), (0, 2)])
        g.introduce(0, 1, 2)
        assert len(g.log) == 1
        assert g.log[0].primitive is Primitive.INTRODUCTION

    def test_replay_reproduces_graph(self):
        g = pg([(0, 1), (0, 2)])
        g.introduce(0, 1, 2)
        g.self_introduce(0, 1)
        g.delegate(0, 1, 2)
        replayed = apply_schedule(pg([(0, 1), (0, 2)]), g.log)
        assert replayed == g

    def test_apply_unknown_via_dataclass(self):
        g = pg([(0, 1)])
        op = PrimitiveOp(Primitive.REVERSAL, 0, 1)
        g.apply(op)
        assert g.has_edge(1, 0)

    def test_symbols(self):
        assert Primitive.INTRODUCTION.symbol == "♦"
        assert Primitive.DELEGATION.symbol == "♥"
        assert Primitive.FUSION.symbol == "♠"
        assert Primitive.REVERSAL.symbol == "♣"


class TestGraphQueries:
    def test_out_neighbours(self):
        g = pg([(0, 1), (0, 2), (1, 2)])
        assert g.out_neighbours(0) == {1, 2}

    def test_edge_count_counts_copies(self):
        g = pg([(0, 1), (0, 1), (1, 0)])
        assert g.edge_count() == 3

    def test_copy_is_independent(self):
        g = pg([(0, 1)])
        h = g.copy()
        h.reverse(0, 1)
        assert g.has_edge(0, 1)
        assert not h.has_edge(0, 1)

    def test_state_key_hashable_and_canonical(self):
        g1 = pg([(0, 1), (1, 2)])
        g2 = pg([(1, 2), (0, 1)])
        assert g1.state_key() == g2.state_key()

    def test_edges_iteration_with_multiplicity(self):
        g = pg([(0, 1), (0, 1)])
        assert sorted(g.edges()) == [(0, 1), (0, 1)]

    def test_unknown_node_edge_rejected(self):
        with pytest.raises(ModelViolation):
            PrimitiveGraph([0, 1], [(0, 5)])


# ----------------------------------------------------------------- Lemma 1


@st.composite
def connected_graph_and_ops(draw):
    """A random weakly connected multigraph plus a random primitive walk."""
    n = draw(st.integers(2, 6))
    # random spanning structure + extras
    edges = []
    for i in range(1, n):
        p = draw(st.integers(0, i - 1))
        edges.append((p, i) if draw(st.booleans()) else (i, p))
    for _ in range(draw(st.integers(0, 6))):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b:
            edges.append((a, b))
    steps = draw(st.integers(0, 30))
    choices = draw(st.lists(st.integers(0, 10**6), min_size=steps, max_size=steps))
    return n, edges, choices


class TestLemma1:
    @given(connected_graph_and_ops())
    @settings(max_examples=80, deadline=None)
    def test_random_primitive_walks_preserve_weak_connectivity(self, case):
        """Lemma 1, property-based: any applicable primitive sequence keeps
        the graph weakly connected (checked after every operation)."""
        from repro.core.universality import enumerate_ops

        n, edges, choices = case
        g = PrimitiveGraph(range(n), edges, check_connectivity=True)
        assert g.is_weakly_connected()
        allowed = frozenset(Primitive)
        for c in choices:
            ops = enumerate_ops(g, allowed, max_multiplicity=3)
            if not ops:
                break
            g.apply(ops[c % len(ops)])  # check_connectivity asserts Lemma 1
        assert g.is_weakly_connected()
