"""Integration tests: Theorem 3 — the FDP protocol self-stabilizes.

Safety (Lemma 2) and Φ-monotonicity (Lemma 3) are enforced per-step by
monitors during every run; liveness is the convergence assertion itself.
"""

import pytest

from repro.core.oracles import NeverOracle, SingleOracle
from repro.core.potential import fdp_legitimate, relevant_connected_per_component
from repro.core.scenarios import (
    CLEAN,
    HEAVY_CORRUPTION,
    LIGHT_CORRUPTION,
    build_fdp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor
from repro.sim.scheduler import (
    AdversarialScheduler,
    OldestFirstScheduler,
    RandomScheduler,
    SynchronousScheduler,
)
from repro.sim.states import PState

BUDGET = 300_000


def converge(eng, budget=BUDGET):
    return eng.run(budget, until=fdp_legitimate, check_every=64)


def monitors():
    return [ConnectivityMonitor(check_every=2), PotentialMonitor(check_every=2)]


class TestCleanStates:
    @pytest.mark.parametrize(
        "topology",
        ["ring", "bidirected_line", "star", "binary_tree", "clique"],
    )
    def test_converges_on_named_topologies(self, topology):
        n = 10
        edges = gen.GENERATORS[topology](n)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=1)
        eng = build_fdp_engine(
            n, edges, leaving, seed=1, corruption=CLEAN, monitors=monitors()
        )
        assert converge(eng)
        assert eng.stats.exits == len(leaving)

    def test_no_leaving_trivially_legitimate(self):
        eng = build_fdp_engine(6, gen.ring(6), leaving=set(), seed=0)
        assert converge(eng, budget=5_000)
        assert eng.stats.exits == 0

    def test_all_but_one_leaving(self):
        n = 8
        edges = gen.clique(n)
        eng = build_fdp_engine(n, edges, leaving=set(range(1, n)), seed=2)
        assert converge(eng)
        survivors = [p for p in eng.processes.values() if p.state is not PState.GONE]
        assert len(survivors) == 1 and survivors[0].is_staying


class TestCorruptedStates:
    @pytest.mark.parametrize("seed", range(4))
    def test_heavy_corruption(self, seed):
        n = 14
        edges = gen.random_connected(n, 7, seed=seed)
        leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
        eng = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=seed,
            corruption=HEAVY_CORRUPTION,
            monitors=monitors(),
        )
        assert converge(eng)
        assert eng.potential() == 0

    def test_bridge_topology_with_leaving_bridge_endpoint(self):
        """The disconnection-risk case SINGLE exists to prevent: a leaving
        articulation-like process."""
        n = 10
        edges = gen.two_cliques_bridge(n)
        eng = build_fdp_engine(
            n,
            edges,
            leaving={n // 2 - 1, n // 2},  # both bridge endpoints leave
            seed=5,
            corruption=LIGHT_CORRUPTION,
            monitors=monitors(),
        )
        assert converge(eng)


class TestSchedulers:
    @pytest.mark.parametrize(
        "sched_factory",
        [
            lambda s: RandomScheduler(s),
            lambda s: OldestFirstScheduler(),
            lambda s: AdversarialScheduler(patience=32, seed=s),
            lambda s: SynchronousScheduler(seed=s),
        ],
        ids=["random", "oldest", "adversarial", "sync"],
    )
    def test_converges_under_every_fair_scheduler(self, sched_factory):
        n = 12
        edges = gen.lollipop(n)
        leaving = choose_leaving(n, edges, fraction=0.5, seed=9)
        eng = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=9,
            scheduler=sched_factory(9),
            corruption=HEAVY_CORRUPTION,
            monitors=monitors(),
        )
        assert converge(eng)


class TestClosure:
    def test_legitimate_states_stay_legitimate(self):
        """Closure: after reaching legitimacy, every subsequent state is
        legitimate (the staying protocol churns but never regresses)."""
        n = 10
        edges = gen.random_connected(n, 5, seed=3)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=3)
        eng = build_fdp_engine(
            n, edges, leaving, seed=3, corruption=LIGHT_CORRUPTION
        )
        assert converge(eng)
        for _ in range(300):
            eng.step()
            assert fdp_legitimate(eng)


class TestOracleDependence:
    def test_never_oracle_blocks_liveness_but_not_safety(self):
        n = 8
        edges = gen.ring(n)
        leaving = choose_leaving(n, edges, fraction=0.4, seed=1)
        eng = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=1,
            oracle=NeverOracle(),
            monitors=monitors(),
        )
        assert not converge(eng, budget=20_000)
        assert eng.stats.exits == 0
        assert relevant_connected_per_component(eng)  # safety intact

    def test_oracle_queries_counted(self):
        n = 6
        edges = gen.ring(n)
        eng = build_fdp_engine(n, edges, leaving={2}, seed=0)
        assert converge(eng)
        assert eng.stats.oracle_queries >= 1
        assert eng.stats.oracle_true >= 1


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run(seed):
            n = 10
            edges = gen.random_connected(n, 5, seed=7)
            leaving = choose_leaving(n, edges, fraction=0.4, seed=7)
            eng = build_fdp_engine(
                n, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION
            )
            converge(eng)
            return (eng.step_count, eng.stats.as_dict())

        assert run(123) == run(123)

    def test_different_seeds_generally_differ(self):
        def steps(seed):
            n = 10
            edges = gen.random_connected(n, 5, seed=7)
            leaving = choose_leaving(n, edges, fraction=0.4, seed=7)
            eng = build_fdp_engine(
                n, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION
            )
            converge(eng)
            return eng.step_count

        results = {steps(s) for s in range(5)}
        assert len(results) > 1


class TestStructuralOutcome:
    def test_gone_processes_have_left_the_graph(self):
        n = 10
        edges = gen.clique(n)
        leaving = choose_leaving(n, edges, count=4, seed=2)
        eng = build_fdp_engine(n, edges, leaving, seed=2)
        assert converge(eng)
        snap = eng.snapshot()
        for pid in leaving:
            assert pid not in snap

    def test_staying_connected_after_half_leave(self):
        n = 16
        edges = gen.random_connected(n, 4, seed=11)
        leaving = choose_leaving(n, edges, fraction=0.5, seed=11)
        eng = build_fdp_engine(
            n, edges, leaving, seed=11, corruption=LIGHT_CORRUPTION
        )
        assert converge(eng)
        snap = eng.snapshot()
        staying = snap.staying()
        assert snap.is_weakly_connected(staying)
