"""Public API stability: everything advertised in __all__ exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.graphs",
    "repro.core",
    "repro.overlays",
    "repro.analysis",
    "repro.chaos",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    for attr in module.__all__:
        assert hasattr(module, attr), f"{name}.{attr} advertised but missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted_unique(name):
    module = importlib.import_module(name)
    names = [n for n in module.__all__ if n != "__version__"]
    assert len(names) == len(set(names)), f"{name}: duplicate __all__ entries"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_quickstart_docstring_snippet_runs():
    """The package docstring's quickstart must keep working verbatim-ish."""
    from repro import build_fdp_engine, fdp_legitimate
    from repro.graphs import generators

    n = 12
    edges = generators.random_connected(n, extra_edges=6, seed=1)
    engine = build_fdp_engine(n, edges, leaving={3, 7}, seed=1)
    assert engine.run(200_000, until=fdp_legitimate, check_every=64)


def test_cli_entrypoint_importable():
    from repro.cli import build_parser, main  # noqa: F401

    assert build_parser().prog == "repro"
