"""Helpers for the analyzer's fixture-driven tests."""

from __future__ import annotations

from pathlib import Path

from repro.lint.runner import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


def fixture_findings(name: str) -> list[str]:
    """Lint one fixture file and return the finding rule ids."""
    result = lint_paths([str(FIXTURES / name)])
    assert not result.errors, [f.render() for f in result.errors]
    return [f.rule for f in result.findings]
