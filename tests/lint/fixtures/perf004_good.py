"""PERF004 known-good: int-keyed tables, no per-message wrappers."""

from repro.sim.process import Process
from repro.sim.refs import Ref, pid_of


class Wrapped:
    __slots__ = ("payload",)

    def __init__(self, payload) -> None:
        self.payload = payload


class TaggedProcess(Process):
    def on_msg(self, ctx, ref: Ref) -> None:
        # Key by int pid: no Ref hashing on the step path.
        beliefs = {pid_of(info.ref): info.mode for info in self.stored_infos}
        tagged = {pid_of(ref)}
        # Counting needs no wrapper object per message.
        backlog = sum(1 for msg in self.channel_messages)
        self.cache = (beliefs, tagged, backlog)
