"""API003 known-bad: lifecycle state assigned outside the engine."""

from repro.sim.states import Mode


class Meddler:
    def hurry(self, proc) -> None:
        proc.mode = Mode.LEAVING  # leaving is engine-initiated
