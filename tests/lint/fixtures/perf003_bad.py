"""PERF003 known-bad: snapshots and full scans in observation code."""


class GoneCountMonitor:
    def __call__(self, engine, executed) -> None:
        self.gone = sum(
            1 for p in engine.processes.values() if p.state.value == "gone"
        )


class EdgeSeriesRecorder:
    def __call__(self, engine, executed) -> None:
        self.edges.append(len(engine.snapshot().edges))


MY_PROBES = {
    "pending": lambda e: sum(len(c) for c in e.channels.values()),
}
