"""API001 known-good: the host drives logic via the sanctioned surface."""

from repro.sim.process import Process


class PoliteHost(Process):
    def timeout(self, ctx) -> None:
        for ref in list(self.logic.neighbor_refs()):
            self.logic.drop_neighbor(ref)
