"""DET005 known-bad: the shipped PYTHONHASHSEED-sensitive ``Ref.__hash__``.

str hashing is salted per interpreter process, so this hash — and every
set/dict iteration order derived from it — differed between runs.
"""


class BadRef:
    __slots__ = ("_pid",)

    def __init__(self, pid: int) -> None:
        self._pid = pid

    def __hash__(self) -> int:
        return hash(("Ref", self._pid))
