"""PERF002 known-good: bound methods instead of per-call closures."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class BoundMethodProcess(Process):
    def rank(self, ref: Ref) -> int:
        return self.keys[ref]

    def timeout(self, ctx) -> None:
        best = min(self.pool, key=self.rank)
        ctx.send(best, "ping")

    def on_msg(self, ctx, ref: Ref) -> None:
        ctx.send(self.succ, "fwd", ref)
