"""API001 known-bad: host code reaching into overlay-logic internals."""

from repro.sim.process import Process


class MeddlingHost(Process):
    def timeout(self, ctx) -> None:
        self.logic.known.clear()  # bypasses drop_neighbor
