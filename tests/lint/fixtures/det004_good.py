"""DET004 known-good: ref sets are iterated in an explicit order."""

from repro.sim.process import Process
from repro.sim.refs import Ref, pid_of


class SortedOrderProcess(Process):
    def __init__(self, pid, mode) -> None:
        super().__init__(pid, mode)
        self.known: set[Ref] = set()

    def timeout(self, ctx) -> None:
        for ref in sorted(self.known, key=pid_of):
            ctx.send(ref, "ping")

    def on_drain(self, ctx, batch) -> None:
        for ref in dict.fromkeys(batch.refs()):  # ordered dedup
            ctx.send(ref, "pong")
