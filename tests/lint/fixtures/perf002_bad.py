"""PERF002 known-bad: closures allocated per handler call."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class ClosureProcess(Process):
    def timeout(self, ctx) -> None:
        best = min(self.pool, key=lambda r: self.rank(r))
        ctx.send(best, "ping")

    def on_msg(self, ctx, ref: Ref) -> None:
        def forward(target: Ref) -> None:
            ctx.send(target, "fwd", ref)

        forward(self.succ)
