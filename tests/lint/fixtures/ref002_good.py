"""REF002 known-good: the fixed ``_postprocess`` — reversal plus eviction."""

from repro.sim.messages import RefInfo
from repro.sim.process import Process
from repro.sim.states import Mode


class FrameworkProcessFixed(Process):
    def _postprocess(self, ctx, entry) -> None:
        handled = set()
        for ref in entry.refs():
            if ref == self.self_ref or ref in handled:
                continue
            handled.add(ref)
            mode = entry.modes.get(ref, Mode.STAYING)
            if mode is Mode.STAYING:
                self._integrate(ctx, ref)
            else:
                # P forgets the reference before the reversal `present`.
                if self.logic.drop_neighbor(ref):
                    self.beliefs.pop(ref, None)
                ctx.send(ref, "present", RefInfo(self.self_ref, self.mode))
