"""DET001 known-good: a seeded Random instance owned by the process."""

from random import Random

from repro.sim.process import Process


class SeededProcess(Process):
    def __init__(self, pid, mode, seed: int) -> None:
        super().__init__(pid, mode)
        self.rng = Random(seed)

    def timeout(self, ctx) -> None:
        if self.rng.random() < 0.5:
            ctx.send(self.self_ref, "noop")
