"""SOA004 recycle known-good: the free-list pop keeps the exit-bumped generation and retires exhausted slots."""

from __future__ import annotations

from repro.sim.messages import RefInfo
from repro.sim.process import ActionContext, Process
from repro.sim.soa import MirrorAction, MirrorProtocol

_STAYING, _LEAVING, _NONE = 0, 1, 2
_AWAKE, _ASLEEP, _GONE = 0, 1, 2

_LABEL_MASK = 0xFF
_BEL_SHIFT = 8
_SUBJ_SHIFT = 10
_SUBJ_MASK = (1 << 22) - 1
_SENDER_SHIFT = 32

MIRROR_ACTIONS = (
    MirrorAction(
        name="timeout",
        kind="timeout",
        object_method="timeout",
        kernel="_timeout_kernel",
    ),
    MirrorAction(
        name="present",
        kind="deliver",
        label_id=0,
        object_method="on_present",
        kernel="_present_kernel",
    ),
    MirrorAction(
        name="forward",
        kind="deliver",
        label_id=1,
        object_method="on_forward",
        kernel="_forward_kernel",
    ),
)
MIRROR_PROTOCOLS = (
    MirrorProtocol(
        name="MINI", process_class="MiniProcess", is_fsp=False, capability="exit"
    ),
)
MIRROR_EVENT_COUNTERS = {"_run_timeout": ("timeouts",)}
BATCH_FLUSH_COUNTERS = ("steps",)


class MiniProcess(Process):
    def timeout(self, ctx: ActionContext) -> None:
        if self.anchor is not None:
            ctx.send(self.anchor, "present", RefInfo(ctx.self_ref, self.mode))
        ctx.exit()

    def on_present(self, ctx: ActionContext, info: RefInfo) -> None:
        self.N[info.ref] = info.mode

    def on_forward(self, ctx: ActionContext, info: RefInfo) -> None:
        ctx.send(self.anchor, "forward", RefInfo(info.ref, info.mode))


class MiniCore:
    def _send(self, src: int, dst: int, label_id: int, subj: int, bel: int) -> None:
        raise NotImplementedError

    def _transition(self, u: int, new_state: int) -> None:
        self.state_[u] = new_state
        if new_state == _GONE:
            self.gen_[u] += 1

    def _run_timeout(self, u: int) -> None:
        self.timeouts += 1
        self._transition(u, self._timeout_kernel(u))

    def _timeout_kernel(self, u: int) -> int:
        if self.anchor_[u] >= 0:
            self._send(u, self.anchor_[u], 0, u, self.abelief_[u])
        return _GONE

    def _present_kernel(self, u: int, v: int, bel: int) -> int:
        self.N[u][v] = bel
        return _AWAKE

    def _forward_kernel(self, u: int, v: int, bel: int) -> int:
        self._send(u, self.anchor_[u], 1, v, bel)
        return _AWAKE
    def admit(self, pid: int, proc: object) -> None:
        free = self.free_slots
        if free:
            u = free.pop()
            if self.gen_[u] >= (1 << 31):
                raise OverflowError(f"slot {u} exhausted its generations")
            self.pids[u] = pid
        else:
            u = len(self.pids)
            self.pids.append(pid)
            self.gen_.append(0)
        self.slot_of[pid] = u
