"""PERF001 known-bad: a dict-ful class instantiated on the step path."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class Token:
    def __init__(self, seq: int) -> None:
        self.seq = seq


class SpawningProcess(Process):
    def on_msg(self, ctx, ref: Ref) -> None:
        self.last = Token(self.seq)
        self.neighbors.add(ref)
