"""DET002 known-good: simulated time is the engine's step counter."""

from repro.sim.process import Process


class StepClockProcess(Process):
    def timeout(self, ctx) -> None:
        if ctx.now - self.last_seen > 10:
            ctx.send(self.self_ref, "expire")
