"""DET003 known-bad: id()-keyed container on the hot path."""

from repro.sim.process import Process


class AddressKeyedProcess(Process):
    def on_msg(self, ctx, msg) -> None:
        self.pending[id(msg)] = msg
