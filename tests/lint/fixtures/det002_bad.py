"""DET002 known-bad: wall-clock read feeding a hot-path decision."""

import time

from repro.sim.process import Process


class ClockProcess(Process):
    def timeout(self, ctx) -> None:
        if time.time() - self.last_seen > 1.0:
            ctx.send(self.self_ref, "expire")
