"""DET005 known-good: the fixed seed-free ``Ref.__hash__`` (ints only)."""


class GoodRef:
    __slots__ = ("_pid",)

    def __init__(self, pid: int) -> None:
        self._pid = pid

    def __hash__(self) -> int:
        return hash((0x5EED, self._pid))
