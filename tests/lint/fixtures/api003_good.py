"""API003 known-good: lifecycle state is observed, never assigned."""

from repro.sim.states import Mode


class Observer:
    def is_leaving(self, proc) -> bool:
        return proc.mode is Mode.LEAVING
