"""API002 known-good: overlay logic interacts only via send."""

from repro.overlays.base import OverlayLogic


class MessagingLogic(OverlayLogic):
    def integrate(self, send, ref) -> None:
        if ref != self.self_ref:
            self.known.add(ref)  # own state is fine
            send(ref, "p_insert", self.self_ref)
