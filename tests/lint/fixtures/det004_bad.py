"""DET004 known-bad: protocol decisions taken in set-iteration order."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class HashOrderProcess(Process):
    def __init__(self, pid, mode) -> None:
        super().__init__(pid, mode)
        self.known: set[Ref] = set()

    def timeout(self, ctx) -> None:
        for ref in self.known:
            ctx.send(ref, "ping")

    def on_drain(self, ctx, batch) -> None:
        for ref in set(batch.refs()):
            ctx.send(ref, "pong")
