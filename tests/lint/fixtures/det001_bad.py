"""DET001 known-bad: global random state on the hot path."""

import random

from repro.sim.process import Process


class CoinFlipProcess(Process):
    def timeout(self, ctx) -> None:
        if random.random() < 0.5:
            ctx.send(self.self_ref, "noop")
