"""REF001 known-bad: handler lets a received reference fall out of scope."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class LeakyProcess(Process):
    def on_join(self, ctx, ref: Ref) -> None:
        if ref == self.self_ref:
            return
        self.count += 1  # ref neither sent, stored, nor dropped
