"""PERF004 known-bad: Ref-keyed containers and per-message allocation."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class Wrapped:
    __slots__ = ("payload",)

    def __init__(self, payload) -> None:
        self.payload = payload


class HashingProcess(Process):
    def on_msg(self, ctx, ref: Ref) -> None:
        # Ref-keyed dict comprehension: hashes a Ref per entry.
        beliefs = {info.ref: info.mode for info in self.stored_infos}
        # Set of Refs: same hashing cost, plus hash-order iteration risk.
        tagged = {ref}
        # One wrapper object allocated per pending message.
        copies = [Wrapped(msg) for msg in self.channel_messages]
        self.cache = (beliefs, tagged, copies)
