"""REF002 known-bad: the PR 2-era ``_postprocess`` presumption path.

Faithful shape of the shipped livelock: when a withheld P message turns
out to involve a (presumed-)leaving reference, the reversal ``present``
is sent — but the reference is never evicted from P, so the sender
re-targets the gone process on every later timeout.
"""

from repro.sim.messages import RefInfo
from repro.sim.process import Process
from repro.sim.states import Mode


class FrameworkProcessPR2(Process):
    def _postprocess(self, ctx, entry) -> None:
        handled = set()
        for ref in entry.refs():
            if ref == self.self_ref or ref in handled:
                continue
            handled.add(ref)
            mode = entry.modes.get(ref, Mode.STAYING)
            if mode is Mode.STAYING:
                self._integrate(ctx, ref)
            else:
                # Reversal without eviction: the livelock.
                ctx.send(ref, "present", RefInfo(self.self_ref, self.mode))
