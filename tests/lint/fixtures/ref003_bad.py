"""REF003 known-bad: references compared by identity."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class IdentityProcess(Process):
    def on_ping(self, ctx, ref: Ref) -> None:
        if ref is self.self_ref:  # distinct Ref objects may be equal
            return
        self.neighbors.add(ref)
