"""API002 known-bad: overlay logic mutating an object it received."""

from repro.overlays.base import OverlayLogic


class PushyLogic(OverlayLogic):
    def merge(self, other) -> None:
        other.known.add(self.self_ref)  # shared-memory shortcut
        other.generation = 0
