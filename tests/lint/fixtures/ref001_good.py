"""REF001 known-good: every received reference is stored or forwarded."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class CarefulProcess(Process):
    def on_join(self, ctx, ref: Ref) -> None:
        if ref == self.self_ref:
            return
        self.neighbors.add(ref)

    def on_bounce(self, ctx, ref: Ref) -> None:
        ctx.send(self.succ, "insert", ref)
