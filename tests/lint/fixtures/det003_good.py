"""DET003 known-good: containers keyed by stable pids (id() only in repr)."""

from repro.sim.process import Process


class PidKeyedProcess(Process):
    def on_msg(self, ctx, msg) -> None:
        self.pending[msg.seq] = msg

    def __repr__(self) -> str:
        return f"<PidKeyedProcess at {id(self):#x}>"
