"""PERF003 known-good: observation code reading the O(1) counters."""


class GoneCountMonitor:
    def __call__(self, engine, executed) -> None:
        self.gone = engine.gone_count


class EdgeSeriesRecorder:
    def __call__(self, engine, executed) -> None:
        self.edges.append(engine.edge_count)


def _probe_pending(e) -> float:
    return float(e.pending_count)


MY_PROBES = {
    "pending": _probe_pending,
}
