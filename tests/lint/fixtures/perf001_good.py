"""PERF001 known-good: step-path classes declare __slots__."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class Token:
    __slots__ = ("seq",)

    def __init__(self, seq: int) -> None:
        self.seq = seq


class SlottedProcess(Process):
    def on_msg(self, ctx, ref: Ref) -> None:
        self.last = Token(self.seq)
        self.neighbors.add(ref)
