"""REF003 known-good: reference equality plus optional-field None checks."""

from repro.sim.process import Process
from repro.sim.refs import Ref


class EqualityProcess(Process):
    def on_ping(self, ctx, ref: Ref) -> None:
        if ref == self.self_ref:
            return
        if self.anchor_ref is not None:  # None check is not identity abuse
            ctx.send(self.anchor_ref, "fwd", ref)
            return
        self.neighbors.add(ref)
