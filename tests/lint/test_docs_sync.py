"""docs/LINT.md and the rule registry must describe the same analyzer.

Every registered rule needs a documented table row, and the docs may
not advertise a rule id that the registry no longer ships — the doc is
part of the CI contract (`--format github` points reviewers at it), so
it is pinned here instead of drifting.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint.model import rule_registry
from repro.lint.rules import ALL_RULES

DOC = Path(__file__).resolve().parents[2] / "docs" / "LINT.md"

RULE_ID_RE = re.compile(r"\b(?:REF|DET|PERF|API|SOA|ENC)\d{3}\b")


@pytest.fixture(scope="module")
def registry_ids() -> set[str]:
    return set(rule_registry(ALL_RULES))


@pytest.fixture(scope="module")
def doc_text() -> str:
    return DOC.read_text()


def test_every_rule_has_a_doc_table_row(registry_ids, doc_text) -> None:
    missing = [
        rid for rid in sorted(registry_ids) if f"| `{rid}` |" not in doc_text
    ]
    assert not missing, f"rules without a docs/LINT.md table row: {missing}"


def test_docs_mention_no_unregistered_rule(registry_ids, doc_text) -> None:
    ghosts = sorted(set(RULE_ID_RE.findall(doc_text)) - registry_ids)
    assert not ghosts, f"docs/LINT.md mentions unregistered rules: {ghosts}"


def test_list_rules_matches_registry_and_docs(registry_ids, doc_text, capsys) -> None:
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    listed = set(RULE_ID_RE.findall(out))
    assert listed == registry_ids
    for rid in sorted(listed):
        assert rid in doc_text, f"--list-rules id {rid} missing from docs/LINT.md"


def test_docs_cover_analysis_error_codes(doc_text) -> None:
    for code in ("LINT000", "LINT001", "LINT002"):
        assert code in doc_text, f"{code} undocumented"
