"""Regression fixtures for the two shipped PR 2 bugs.

These pin the analyzer to its provenance: run against the PR 2-era code
shapes it must find both bugs, and against the fixed shapes (including
the real merged tree) it must stay silent.
"""

from __future__ import annotations

from repro.lint.runner import lint_paths
from tests.lint.conftest import SRC, fixture_findings


class TestPostprocessRefDrop:
    """The livelock: presumed-leaving ref reversed but never evicted."""

    def test_pr2_era_shape_is_flagged(self) -> None:
        findings = fixture_findings("ref002_bad.py")
        assert "REF002" in findings

    def test_fixed_shape_is_clean(self) -> None:
        assert "REF002" not in fixture_findings("ref002_good.py")

    def test_merged_framework_is_clean(self) -> None:
        result = lint_paths(
            [str(SRC / "repro" / "core" / "framework.py")], select=("REF",)
        )
        assert result.findings == [], [f.render() for f in result.findings]


class TestHashSeedSensitivity:
    """The PYTHONHASHSEED-salted Ref.__hash__."""

    def test_pr2_era_shape_is_flagged(self) -> None:
        assert "DET005" in fixture_findings("det005_bad.py")

    def test_fixed_shape_is_clean(self) -> None:
        assert fixture_findings("det005_good.py") == []

    def test_merged_refs_module_is_clean(self) -> None:
        result = lint_paths(
            [str(SRC / "repro" / "sim" / "refs.py")], select=("DET005",)
        )
        assert result.findings == []
