"""Acceptance gate: ``repro lint src/`` is clean on the merged tree.

Every finding must be fixed or carry a justified ``# repro: noqa[RULE]``
— this test is what "zero un-triaged findings" means in CI.
"""

from __future__ import annotations

from repro.lint.runner import lint_paths
from tests.lint.conftest import SRC


def test_src_tree_is_clean() -> None:
    result = lint_paths([str(SRC)])
    rendered = [f.render() for f in [*result.errors, *result.findings]]
    assert result.exit_code == 0, "\n".join(rendered)
