"""CLI contract of ``repro lint``: exit codes, output formats, selection,
and the ``# repro: noqa[RULE]`` suppression syntax."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint.runner import lint_paths
from tests.lint.conftest import FIXTURES

BAD = str(FIXTURES / "det005_bad.py")
GOOD = str(FIXTURES / "det005_good.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys) -> None:
        assert main(["lint", GOOD]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys) -> None:
        assert main(["lint", BAD]) == 1
        out = capsys.readouterr().out
        assert "DET005" in out and "1 finding" in out

    def test_syntax_error_exits_two(self, tmp_path: Path, capsys) -> None:
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        assert main(["lint", str(broken)]) == 2
        assert "LINT000" in capsys.readouterr().out

    def test_unknown_selector_exits_two(self, capsys) -> None:
        assert main(["lint", GOOD, "--select", "NOPE"]) == 2


class TestOutput:
    def test_json_format(self, capsys) -> None:
        assert main(["lint", BAD, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET005"
        assert finding["path"].endswith("det005_bad.py")
        assert finding["line"] > 0

    def test_text_format_has_location(self, capsys) -> None:
        main(["lint", BAD])
        out = capsys.readouterr().out
        assert "det005_bad.py:" in out

    def test_list_rules(self, capsys) -> None:
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REF001", "DET004", "PERF001", "API003"):
            assert rule_id in out


class TestSelection:
    def test_select_excludes_other_families(self, capsys) -> None:
        assert main(["lint", BAD, "--select", "REF"]) == 0

    def test_ignore_silences_family(self, capsys) -> None:
        assert main(["lint", BAD, "--ignore", "DET"]) == 0

    def test_family_prefix_selects_members(self, capsys) -> None:
        assert main(["lint", BAD, "--select", "DET"]) == 1


class TestNoqa:
    def _lint_text(self, tmp_path: Path, text: str) -> list[str]:
        path = tmp_path / "snippet.py"
        path.write_text(text)
        result = lint_paths([str(path)])
        assert not result.errors
        return [f.rule for f in result.findings]

    SNIPPET = (
        "class R:\n"
        "    def __hash__(self):\n"
        "        return hash(('R', self.pid)){noqa}\n"
    )

    def test_unsuppressed_fires(self, tmp_path: Path) -> None:
        assert self._lint_text(tmp_path, self.SNIPPET.format(noqa="")) == ["DET005"]

    def test_exact_rule_suppression(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[DET005]")
        assert self._lint_text(tmp_path, text) == []

    def test_family_prefix_suppression(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[DET]")
        assert self._lint_text(tmp_path, text) == []

    def test_blanket_suppression(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa")
        assert self._lint_text(tmp_path, text) == []

    def test_other_rule_does_not_suppress(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[REF001]")
        assert self._lint_text(tmp_path, text) == ["DET005"]

    def test_suppression_is_line_scoped(self, tmp_path: Path) -> None:
        text = "# repro: noqa[DET005]\n" + self.SNIPPET.format(noqa="")
        assert self._lint_text(tmp_path, text) == ["DET005"]

    def test_comma_list_suppresses_each_named_rule(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[REF001, DET005]")
        assert self._lint_text(tmp_path, text) == []


class TestNoqaHygiene:
    """LINT002: a suppression that names no real rule warns, never silences."""

    def _lint_text(self, tmp_path: Path, text: str) -> list[str]:
        path = tmp_path / "snippet.py"
        path.write_text(text)
        result = lint_paths([str(path)])
        assert not result.errors
        return [f.rule for f in result.findings]

    SNIPPET = TestNoqa.SNIPPET

    def test_lowercase_id_warns_and_does_not_suppress(self, tmp_path: Path) -> None:
        # the old strict regex fell back to matching the bare ``noqa``
        # prefix here, silently blanket-suppressing the whole line
        text = self.SNIPPET.format(noqa="  # repro: noqa[det005]")
        assert sorted(self._lint_text(tmp_path, text)) == ["DET005", "LINT002"]

    def test_unknown_rule_id_warns_and_does_not_suppress(
        self, tmp_path: Path
    ) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[ZZZ001]")
        assert sorted(self._lint_text(tmp_path, text)) == ["DET005", "LINT002"]

    def test_empty_bracket_list_warns(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[]")
        assert sorted(self._lint_text(tmp_path, text)) == ["DET005", "LINT002"]

    def test_mixed_list_suppresses_known_and_warns_on_unknown(
        self, tmp_path: Path
    ) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[DET005, ZZZ001]")
        assert self._lint_text(tmp_path, text) == ["LINT002"]

    def test_bare_noqa_never_warns(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa")
        assert self._lint_text(tmp_path, text) == []

    def test_hygiene_warning_alone_exits_one(self, tmp_path: Path, capsys) -> None:
        path = tmp_path / "clean_but_sloppy.py"
        path.write_text("x = 1  # repro: noqa[ZZZ001]\n")
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "LINT002" in out and "ZZZ001" in out

    def test_hygiene_warning_survives_selection(self, tmp_path: Path) -> None:
        # LINT002 rides along even when the selector excludes everything
        path = tmp_path / "snippet.py"
        path.write_text("x = 1  # repro: noqa[ZZZ001]\n")
        result = lint_paths([str(path)], select=("REF",))
        assert [f.rule for f in result.findings] == ["LINT002"]


class TestGithubFormat:
    def test_annotation_shape(self, capsys) -> None:
        assert main(["lint", BAD, "--format", "github"]) == 1
        out = capsys.readouterr().out
        line = next(ln for ln in out.splitlines() if ln.startswith("::error"))
        assert line.startswith("::error file=")
        assert ",line=" in line and ",col=" in line
        assert ",title=DET005::" in line

    def test_clean_run_emits_no_annotations(self, capsys) -> None:
        assert main(["lint", GOOD, "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out
        assert "0 findings" in out


class TestCache:
    def test_warm_run_replays_identical_findings(self, tmp_path: Path) -> None:
        cache = tmp_path / "cache.json"
        cold = lint_paths([BAD, GOOD], cache_path=str(cache))
        assert cold.stats["cache_misses"] == cold.stats["files"]
        warm = lint_paths([BAD, GOOD], cache_path=str(cache))
        assert warm.stats["cache_hits"] == warm.stats["files"]
        assert warm.stats["cache_misses"] == 0
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_edited_file_invalidates_cache(self, tmp_path: Path) -> None:
        src = tmp_path / "snippet.py"
        src.write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        assert lint_paths([str(src)], cache_path=str(cache)).findings == []
        src.write_text(
            "class R:\n"
            "    def __hash__(self):\n"
            "        return hash(('R', self.pid))\n"
        )
        fresh = lint_paths([str(src)], cache_path=str(cache))
        assert fresh.stats["cache_hits"] == 0
        assert [f.rule for f in fresh.findings] == ["DET005"]

    def test_selector_change_invalidates_cache(self, tmp_path: Path) -> None:
        cache = tmp_path / "cache.json"
        lint_paths([BAD], cache_path=str(cache))
        narrowed = lint_paths([BAD], select=("REF",), cache_path=str(cache))
        assert narrowed.stats["cache_hits"] == 0
        assert narrowed.findings == []

    def test_corrupt_cache_is_ignored(self, tmp_path: Path) -> None:
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        result = lint_paths([BAD], cache_path=str(cache))
        assert [f.rule for f in result.findings] == ["DET005"]

    def test_stats_flag_prints_timing(self, tmp_path: Path, capsys) -> None:
        cache = tmp_path / "cache.json"
        main(["lint", GOOD, "--cache", str(cache), "--stats"])
        out = capsys.readouterr().out
        assert "[lint]" in out and "ms" in out and "cache:" in out
