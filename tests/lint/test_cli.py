"""CLI contract of ``repro lint``: exit codes, output formats, selection,
and the ``# repro: noqa[RULE]`` suppression syntax."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint.runner import lint_paths
from tests.lint.conftest import FIXTURES

BAD = str(FIXTURES / "det005_bad.py")
GOOD = str(FIXTURES / "det005_good.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys) -> None:
        assert main(["lint", GOOD]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys) -> None:
        assert main(["lint", BAD]) == 1
        out = capsys.readouterr().out
        assert "DET005" in out and "1 finding" in out

    def test_syntax_error_exits_two(self, tmp_path: Path, capsys) -> None:
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        assert main(["lint", str(broken)]) == 2
        assert "LINT000" in capsys.readouterr().out

    def test_unknown_selector_exits_two(self, capsys) -> None:
        assert main(["lint", GOOD, "--select", "NOPE"]) == 2


class TestOutput:
    def test_json_format(self, capsys) -> None:
        assert main(["lint", BAD, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET005"
        assert finding["path"].endswith("det005_bad.py")
        assert finding["line"] > 0

    def test_text_format_has_location(self, capsys) -> None:
        main(["lint", BAD])
        out = capsys.readouterr().out
        assert "det005_bad.py:" in out

    def test_list_rules(self, capsys) -> None:
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REF001", "DET004", "PERF001", "API003"):
            assert rule_id in out


class TestSelection:
    def test_select_excludes_other_families(self, capsys) -> None:
        assert main(["lint", BAD, "--select", "REF"]) == 0

    def test_ignore_silences_family(self, capsys) -> None:
        assert main(["lint", BAD, "--ignore", "DET"]) == 0

    def test_family_prefix_selects_members(self, capsys) -> None:
        assert main(["lint", BAD, "--select", "DET"]) == 1


class TestNoqa:
    def _lint_text(self, tmp_path: Path, text: str) -> list[str]:
        path = tmp_path / "snippet.py"
        path.write_text(text)
        result = lint_paths([str(path)])
        assert not result.errors
        return [f.rule for f in result.findings]

    SNIPPET = (
        "class R:\n"
        "    def __hash__(self):\n"
        "        return hash(('R', self.pid)){noqa}\n"
    )

    def test_unsuppressed_fires(self, tmp_path: Path) -> None:
        assert self._lint_text(tmp_path, self.SNIPPET.format(noqa="")) == ["DET005"]

    def test_exact_rule_suppression(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[DET005]")
        assert self._lint_text(tmp_path, text) == []

    def test_family_prefix_suppression(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[DET]")
        assert self._lint_text(tmp_path, text) == []

    def test_blanket_suppression(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa")
        assert self._lint_text(tmp_path, text) == []

    def test_other_rule_does_not_suppress(self, tmp_path: Path) -> None:
        text = self.SNIPPET.format(noqa="  # repro: noqa[REF001]")
        assert self._lint_text(tmp_path, text) == ["DET005"]

    def test_suppression_is_line_scoped(self, tmp_path: Path) -> None:
        text = "# repro: noqa[DET005]\n" + self.SNIPPET.format(noqa="")
        assert self._lint_text(tmp_path, text) == ["DET005"]
