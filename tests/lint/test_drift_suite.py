"""Seeded-mutation drift suite for the SOA0xx mirror rules.

Two layers of evidence that the effect-algebra diff is load-bearing:

* a *deletion sweep* over the known-good mini fixture — removing any
  single mirrored handler effect (a send, a store, a lifecycle exit, a
  counter bump, the generation bump) must produce a SOA0xx finding; and
* *real-tree mutations* — textually seeded bugs in a copy of
  ``src/repro/sim/soa.py`` (wrong label posted, counter flush dropped,
  generation bump skipped) linted against the real object model. These
  are the static twins of the dynamic ``engine_mode=verify`` mutations
  in tests/sim/test_soa_mutation_verify.py: each seeded bug is caught
  both ways.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.runner import lint_paths
from tests.lint.conftest import FIXTURES, SRC

GOOD = FIXTURES / "soa002_good.py"

SOA_FILES = [
    SRC / "repro" / "sim" / "soa.py",
    SRC / "repro" / "sim" / "process.py",
    SRC / "repro" / "core" / "fdp.py",
    SRC / "repro" / "core" / "fsp.py",
]


def _soa_findings(paths: list[str]) -> list:
    result = lint_paths(paths, select=("SOA",))
    assert not result.errors, result.errors
    return result.findings


# --------------------------------------------------------------------------
# deletion sweep over the mini fixture

# (marker substring, replacement statement, rule expected to flag it)
EFFECT_MARKERS = [
    ('ctx.send(self.anchor, "present"', "pass", "SOA002"),
    ("ctx.exit()", "pass", "SOA002"),
    ("self.N[info.ref] = info.mode", "pass", "SOA002"),
    ('ctx.send(self.anchor, "forward"', "pass", "SOA002"),
    ("self._send(u, self.anchor_[u], 0,", "pass", "SOA002"),
    ("self.N[u][v] = bel", "pass", "SOA002"),
    ("self._send(u, self.anchor_[u], 1,", "pass", "SOA002"),
    ("return _GONE", "return _AWAKE", "SOA002"),
    ("self.timeouts += 1", "pass", "SOA003"),
    ("self.gen_[u] += 1", "pass", "SOA004"),
]


def _delete_marker(source: str, marker: str, replacement: str) -> str:
    lines = source.splitlines(keepends=True)
    hits = [i for i, line in enumerate(lines) if marker in line]
    assert len(hits) == 1, f"marker {marker!r} matched {len(hits)} lines"
    (idx,) = hits
    indent = lines[idx][: len(lines[idx]) - len(lines[idx].lstrip())]
    lines[idx] = f"{indent}{replacement}\n"
    return "".join(lines)


class TestFixtureDeletionSweep:
    def test_intact_fixture_is_clean(self) -> None:
        assert _soa_findings([str(GOOD)]) == []

    @pytest.mark.parametrize(
        "marker,replacement,rule",
        EFFECT_MARKERS,
        ids=[m[0].split("(")[0].strip() for m in EFFECT_MARKERS],
    )
    def test_deleting_any_single_effect_is_flagged(
        self, tmp_path: Path, marker: str, replacement: str, rule: str
    ) -> None:
        mutated = _delete_marker(GOOD.read_text(), marker, replacement)
        target = tmp_path / "mini.py"
        target.write_text(mutated)
        rules = [f.rule for f in _soa_findings([str(target)])]
        assert any(r.startswith("SOA") for r in rules), (
            f"deleting {marker!r} produced no SOA finding"
        )
        assert rule in rules, f"expected {rule}, got {rules}"


# --------------------------------------------------------------------------
# real-tree mutations against src/repro/sim/soa.py

# (name, original text, replacement text, rule)
REAL_MUTATIONS = [
    (
        "anchor_purge_posts_wrong_label",
        "\n            self._send(u, u, 0, self.anchor_[u], self.abelief_[u])\n",
        "\n            self._send(u, u, 1, self.anchor_[u], self.abelief_[u])\n",
        "SOA002",
    ),
    (
        "timeout_counter_flush_dropped",
        "        self.timeouts += 1\n",
        "",
        "SOA003",
    ),
    (
        "generation_bump_skipped",
        "            self.gen_[u] += 1\n",
        "",
        "SOA004",
    ),
]


def _lint_mutated_tree(tmp_path: Path, original: str, replacement: str) -> list:
    source = SOA_FILES[0].read_text()
    assert source.count(original) == 1, f"mutation target not unique: {original!r}"
    mutated = source.replace(original, replacement, 1)
    target = tmp_path / "soa.py"
    target.write_text(mutated)
    paths = [str(target), *(str(p) for p in SOA_FILES[1:])]
    return _soa_findings(paths)


class TestRealTreeMutations:
    def test_unmutated_tree_is_clean(self) -> None:
        assert _soa_findings([str(p) for p in SOA_FILES]) == []

    @pytest.mark.parametrize(
        "name,original,replacement,rule",
        REAL_MUTATIONS,
        ids=[m[0] for m in REAL_MUTATIONS],
    )
    def test_seeded_bug_is_flagged(
        self, tmp_path: Path, name: str, original: str, replacement: str, rule: str
    ) -> None:
        findings = _lint_mutated_tree(tmp_path, original, replacement)
        rules = [f.rule for f in findings]
        assert rule in rules, f"{name}: expected {rule}, got {rules}"

    def test_drift_finding_names_both_sides(self, tmp_path: Path) -> None:
        # the SOA002 message must point at the *object-model* location so
        # the diagnostic carries both sides of the mirror
        name, original, replacement, rule = REAL_MUTATIONS[0]
        findings = _lint_mutated_tree(tmp_path, original, replacement)
        drift = [f for f in findings if f.rule == "SOA002"]
        assert drift, findings
        assert any("fdp.py" in f.message or "fsp.py" in f.message for f in drift), [
            f.message for f in drift
        ]
