"""Per-rule fixture tests: one known-bad and one known-good file each.

The bad fixture must trigger its rule; the good twin must be *fully*
clean (no rule fires at all) — that keeps the analyzer's false-positive
budget at zero by construction.
"""

from __future__ import annotations

import pytest

from tests.lint.conftest import fixture_findings

RULES = [
    "REF001",
    "REF002",
    "REF003",
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "DET005",
    "PERF001",
    "PERF002",
    "PERF003",
    "PERF004",
    "API001",
    "API002",
    "API003",
    "SOA001",
    "SOA002",
    "SOA003",
    "SOA004",
    "ENC001",
    "ENC002",
    "ENC003",
    "ENC004",
    "ENC005",
]


@pytest.mark.parametrize("rule", RULES)
def test_bad_fixture_triggers_rule(rule: str) -> None:
    findings = fixture_findings(f"{rule.lower()}_bad.py")
    assert rule in findings, f"{rule} did not fire: {findings}"


@pytest.mark.parametrize("rule", RULES)
def test_good_fixture_is_clean(rule: str) -> None:
    findings = fixture_findings(f"{rule.lower()}_good.py")
    assert findings == [], f"good fixture not clean: {findings}"


def test_det004_flags_both_shapes() -> None:
    # the annotated set attribute and the inline set(...) call
    assert fixture_findings("det004_bad.py").count("DET004") == 2


def test_soa004_flags_both_recycle_shapes() -> None:
    # the generation reset on the recycled slot AND the missing
    # REF_GEN_BITS capacity guard are separate findings
    assert fixture_findings("soa004_recycle_bad.py").count("SOA004") == 2


def test_soa004_recycle_good_is_clean() -> None:
    assert fixture_findings("soa004_recycle_good.py") == []


def test_api002_flags_assignment_and_mutator() -> None:
    assert fixture_findings("api002_bad.py").count("API002") == 2


def test_perf003_flags_all_three_shapes() -> None:
    # the full-process scan, the snapshot call, and the probe-table lambda
    assert fixture_findings("perf003_bad.py").count("PERF003") == 3


def test_perf004_flags_all_three_shapes() -> None:
    # the Ref-keyed dict comp, the Ref set literal, and the per-message
    # wrapper allocation
    assert fixture_findings("perf004_bad.py").count("PERF004") == 3


def test_soa002_reports_both_sides_of_the_drift() -> None:
    # a wrong label in the kernel diverges twice: the effect the object
    # model produces is missing from the core, and the core produces one
    # the object model never does
    assert fixture_findings("soa002_bad.py").count("SOA002") == 2


def test_soa003_flags_runner_and_batch_hoist() -> None:
    # the event-counter runner that forgot its bump, and the batch loop
    # that hoisted a counter without flushing it in the finally
    assert fixture_findings("soa003_bad.py").count("SOA003") == 2


def test_enc003_flags_star_args_and_arity() -> None:
    # the *args send and the extra non-encodable payload argument
    assert fixture_findings("enc003_bad.py").count("ENC003") == 2


def test_registry_is_complete() -> None:
    from repro.lint.model import rule_registry
    from repro.lint.rules import ALL_RULES

    registry = rule_registry(ALL_RULES)
    assert sorted(registry) == sorted(RULES)
    for rule in registry.values():
        assert rule.title and rule.rationale
