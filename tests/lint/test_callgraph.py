"""Tests for the import/call-graph index (lint/callgraph.py)."""

from __future__ import annotations

from pathlib import Path

from repro.lint.callgraph import Project
from repro.lint.model import Module, parse_module

ENGINE_SRC = '''
from hotutil import helper


class Engine:
    def step(self) -> None:
        helper()
        self._inner()

    def _inner(self) -> None:
        fanout()

    def offline_report(self) -> None:
        untouched()


def fanout() -> None:
    pass
'''

HOTUTIL_SRC = '''
def helper() -> None:
    pass
'''

PROTOCOL_SRC = '''
class MyLogic(OverlayLogic):
    def p_timeout(self, send, keys) -> None:
        self._spread(send)

    def _spread(self, send) -> None:
        pass

    def offline(self) -> None:
        pass


class Derived(MyLogic):
    pass
'''

COLD_SRC = '''
def analysis() -> None:
    pass
'''


def _project(tmp_path: Path) -> Project:
    sources = {
        "repro.sim.engine": ENGINE_SRC,
        "hotutil": HOTUTIL_SRC,
        "proto": PROTOCOL_SRC,
        "cold": COLD_SRC,
    }
    modules: list[Module] = []
    for name, src in sources.items():
        path = tmp_path / f"{name}.py"
        path.write_text(src)
        parsed = parse_module(str(path), name)
        assert isinstance(parsed, Module)
        modules.append(parsed)
    return Project(modules)


class TestHierarchy:
    def test_protocol_class_via_bare_base_name(self, tmp_path: Path) -> None:
        project = _project(tmp_path)
        assert project.protocol_modules == {"proto"}

    def test_transitive_base_chain(self, tmp_path: Path) -> None:
        project = _project(tmp_path)
        derived = project.classes["proto.Derived"]
        assert project.is_overlay_logic_class(derived)


class TestHotModules:
    def test_import_closure_from_engine_seed(self, tmp_path: Path) -> None:
        project = _project(tmp_path)
        assert "repro.sim.engine" in project.hot_modules
        assert "hotutil" in project.hot_modules  # imported by the engine
        assert "proto" in project.hot_modules  # protocol module
        assert "cold" not in project.hot_modules

    def test_fixture_without_engine_falls_back_to_protocols(
        self, tmp_path: Path
    ) -> None:
        path = tmp_path / "solo.py"
        path.write_text(PROTOCOL_SRC)
        parsed = parse_module(str(path), "solo")
        assert isinstance(parsed, Module)
        project = Project([parsed])
        assert project.hot_modules == {"solo"}


class TestStepReachability:
    def test_reaches_through_calls(self, tmp_path: Path) -> None:
        project = _project(tmp_path)
        assert project.is_step_reachable("repro.sim.engine.Engine.step")
        assert project.is_step_reachable("repro.sim.engine.Engine._inner")
        assert project.is_step_reachable("repro.sim.engine.fanout")
        assert project.is_step_reachable("hotutil.helper")

    def test_action_methods_are_roots(self, tmp_path: Path) -> None:
        project = _project(tmp_path)
        assert project.is_step_reachable("proto.MyLogic.p_timeout")
        assert project.is_step_reachable("proto.MyLogic._spread")

    def test_offline_functions_are_not_reachable(self, tmp_path: Path) -> None:
        project = _project(tmp_path)
        assert not project.is_step_reachable("repro.sim.engine.Engine.offline_report")
        assert not project.is_step_reachable("proto.MyLogic.offline")
        assert not project.is_step_reachable("cold.analysis")


class TestCoreEntryPoints:
    """The SoA batch handlers are analysis roots, not dead code.

    Regression: before CORE_ENTRY_POINTS, everything reached only from
    ``EngineCore.run_batch`` / ``mirror_step`` (the batch scheduler
    kernels, the replay driver) was invisible to step-path rules.
    """

    @staticmethod
    def _real_project() -> "Project":
        from repro.lint.runner import discover_files, module_name_for

        src = str(Path(__file__).resolve().parents[2] / "src")
        modules = []
        for path in discover_files([src]):
            parsed = parse_module(path, module_name_for(path))
            assert isinstance(parsed, Module), parsed
            modules.append(parsed)
        return Project(modules)

    def test_soa_batch_handlers_are_step_reachable(self) -> None:
        project = self._real_project()
        for qualname in (
            "repro.sim.soa.EngineCore.run_batch",
            "repro.sim.soa.EngineCore.mirror_step",
            "repro.sim.soa.EngineCore._run_batch_random",
            "repro.sim.soa.EngineCore._run_timeout",
            "repro.sim.soa.EngineCore._transition",
            "repro.sim.soa.EngineCore._send",
        ):
            assert project.is_step_reachable(qualname), qualname


class TestClassResolution:
    def test_same_module_wins(self, tmp_path: Path) -> None:
        import ast

        project = _project(tmp_path)
        call = ast.parse("MyLogic(x)").body[0].value
        module = next(m for m in project.modules.values() if m.name == "proto")
        resolved = project.resolve_class(module, call)
        assert resolved is not None and resolved.qualname == "proto.MyLogic"
