"""Property-based tests: the paper's invariants over random initial states.

Hypothesis drives the admissible-initial-state space (random weakly
connected topologies, random leaving sets, random belief corruption,
random channel garbage, random schedules) and checks the executable forms
of the paper's claims:

* Lemma 2 — the relevant subgraph stays weakly connected at every step;
* Lemma 3 — Φ never increases at any step, and convergence drives it to 0;
* Theorem 3 — legitimacy is reached and then kept (closure);
* the FSP analogue of the above.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.potential import (
    fdp_legitimate,
    fsp_legitimate,
    relevant_connected_per_component,
)
from repro.core.scenarios import (
    Corruption,
    build_fdp_engine,
    build_fsp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor
from repro.sim.scheduler import AdversarialScheduler, RandomScheduler

COMMON = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def scenario(draw):
    n = draw(st.integers(3, 14))
    extra = draw(st.integers(0, n))
    topo_seed = draw(st.integers(0, 10_000))
    edges = gen.random_connected(n, extra_edges=extra, seed=topo_seed)
    fraction = draw(st.floats(0.0, 0.8))
    leave_seed = draw(st.integers(0, 10_000))
    leaving = choose_leaving(n, edges, fraction=fraction, seed=leave_seed)
    corruption = Corruption(
        belief_lie_prob=draw(st.floats(0.0, 1.0)),
        anchor_prob=draw(st.floats(0.0, 1.0)),
        anchor_lie_prob=draw(st.floats(0.0, 1.0)),
        garbage_per_process=draw(st.floats(0.0, 2.0)),
        garbage_lie_prob=draw(st.floats(0.0, 1.0)),
    )
    run_seed = draw(st.integers(0, 10_000))
    adversarial = draw(st.booleans())
    return n, edges, leaving, corruption, run_seed, adversarial


def _scheduler(adversarial, seed):
    if adversarial:
        return AdversarialScheduler(patience=24, seed=seed)
    return RandomScheduler(seed)


class TestFDPProperties:
    @given(scenario())
    @settings(**COMMON)
    def test_safety_and_potential_monotone_under_random_states(self, case):
        """Lemmas 2 and 3, checked at every executed step of a bounded run
        (the monitors raise on violation)."""
        n, edges, leaving, corruption, seed, adversarial = case
        eng = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=seed,
            corruption=corruption,
            scheduler=_scheduler(adversarial, seed),
            monitors=[ConnectivityMonitor(1), PotentialMonitor(1)],
        )
        eng.run(3_000, until=fdp_legitimate, check_every=64)
        # no SafetyViolation raised ⇒ both lemmas held on this prefix
        assert relevant_connected_per_component(eng)

    @given(scenario())
    @settings(**COMMON)
    def test_convergence_and_closure(self, case):
        """Theorem 3 end-to-end: legitimacy reached within budget, then
        maintained."""
        n, edges, leaving, corruption, seed, adversarial = case
        eng = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=seed,
            corruption=corruption,
            scheduler=_scheduler(adversarial, seed),
        )
        assert eng.run(400_000, until=fdp_legitimate, check_every=64)
        assert eng.potential() == 0 or fdp_legitimate(eng)
        for _ in range(100):
            eng.step()
        assert fdp_legitimate(eng)


class TestFSPProperties:
    @given(scenario())
    @settings(**COMMON)
    def test_fsp_reaches_legitimacy(self, case):
        n, edges, leaving, corruption, seed, adversarial = case
        eng = build_fsp_engine(
            n,
            edges,
            leaving,
            seed=seed,
            corruption=corruption,
            scheduler=_scheduler(adversarial, seed),
            monitors=[PotentialMonitor(2)],
        )
        assert eng.run(400_000, until=fsp_legitimate, check_every=64)
        assert eng.stats.exits == 0  # no exit command exists in FSP

    @given(scenario())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fsp_closure(self, case):
        n, edges, leaving, corruption, seed, adversarial = case
        eng = build_fsp_engine(
            n, edges, leaving, seed=seed, corruption=corruption
        )
        assert eng.run(400_000, until=fsp_legitimate, check_every=64)
        for _ in range(150):
            if eng.step() is None:
                break
            assert fsp_legitimate(eng)
