"""ProcessGraph snapshot semantics: edges, hibernation, invalid info."""

import pytest

from repro.graphs.snapshot import Edge, EdgeKind, NodeView, ProcessGraph
from repro.sim.states import Mode, PState


def node(pid, mode=Mode.STAYING, state=PState.AWAKE, ch=0):
    return NodeView(pid=pid, mode=mode, state=state, channel_len=ch)


def graph(nodes, edges):
    return ProcessGraph(nodes, edges)


class TestBasics:
    def test_nodes_and_edges(self):
        g = graph([node(0), node(1)], [Edge(0, 1, EdgeKind.EXPLICIT)])
        assert g.pids == {0, 1}
        assert len(g.edges) == 1
        assert 0 in g and 2 not in g

    def test_out_in_edges(self):
        e = Edge(0, 1, EdgeKind.IMPLICIT)
        g = graph([node(0), node(1)], [e])
        assert g.out_edges(0) == [e]
        assert g.in_edges(1) == [e]
        assert g.out_edges(1) == []

    def test_edge_to_absent_node_kept_in_out_only(self):
        """Edges to gone (absent) processes dangle: they appear in the
        holder's out-list but not in any in-list."""
        e = Edge(0, 5, EdgeKind.EXPLICIT)
        g = graph([node(0)], [e])
        assert g.out_edges(0) == [e]
        assert g.in_edges(5) == []

    def test_staying_leaving_partition(self):
        g = graph([node(0), node(1, Mode.LEAVING)], [])
        assert g.staying() == {0}
        assert g.leaving() == {1}

    def test_edge_multiset(self):
        g = graph(
            [node(0), node(1)],
            [Edge(0, 1, EdgeKind.EXPLICIT), Edge(0, 1, EdgeKind.IMPLICIT)],
        )
        assert g.edge_multiset() == {(0, 1): 2}
        assert g.simple_edges() == {(0, 1)}

    def test_self_loops_excluded_from_simple_edges(self):
        g = graph([node(0)], [Edge(0, 0, EdgeKind.EXPLICIT)])
        assert g.simple_edges() == frozenset()


class TestPartners:
    def test_both_directions_count(self):
        g = graph(
            [node(0), node(1), node(2)],
            [Edge(0, 1, EdgeKind.EXPLICIT), Edge(2, 0, EdgeKind.IMPLICIT)],
        )
        assert g.partners(0) == {1, 2}

    def test_within_filter(self):
        g = graph(
            [node(0), node(1), node(2)],
            [Edge(0, 1, EdgeKind.EXPLICIT), Edge(0, 2, EdgeKind.EXPLICIT)],
        )
        assert g.partners(0, within=frozenset({1})) == {1}

    def test_self_loop_not_a_partner(self):
        g = graph([node(0)], [Edge(0, 0, EdgeKind.EXPLICIT)])
        assert g.partners(0) == set()


class TestHibernation:
    def test_quiet_isolated_sleeper_hibernates(self):
        g = graph([node(0, Mode.LEAVING, PState.ASLEEP, ch=0)], [])
        assert g.hibernating() == {0}

    def test_nonempty_channel_blocks(self):
        g = graph([node(0, Mode.LEAVING, PState.ASLEEP, ch=1)], [])
        assert g.hibernating() == frozenset()

    def test_awake_upstream_blocks(self):
        g = graph(
            [node(0, Mode.LEAVING, PState.ASLEEP), node(1)],
            [Edge(1, 0, EdgeKind.EXPLICIT)],
        )
        assert g.hibernating() == frozenset()

    def test_transitively_awake_upstream_blocks(self):
        """awake → asleep → asleep chain: the far sleeper is reachable from
        the awake node, so neither sleeper hibernates."""
        g = graph(
            [
                node(0),
                node(1, Mode.LEAVING, PState.ASLEEP),
                node(2, Mode.LEAVING, PState.ASLEEP),
            ],
            [Edge(0, 1, EdgeKind.EXPLICIT), Edge(1, 2, EdgeKind.EXPLICIT)],
        )
        assert g.hibernating() == frozenset()

    def test_mutually_parked_sleepers_hibernate(self):
        g = graph(
            [
                node(0, Mode.LEAVING, PState.ASLEEP),
                node(1, Mode.LEAVING, PState.ASLEEP),
            ],
            [Edge(0, 1, EdgeKind.EXPLICIT), Edge(1, 0, EdgeKind.EXPLICIT)],
        )
        assert g.hibernating() == {0, 1}

    def test_outgoing_edge_to_awake_does_not_block(self):
        """Hibernation is about paths *to* the sleeper, not from it."""
        g = graph(
            [node(0, Mode.LEAVING, PState.ASLEEP), node(1)],
            [Edge(0, 1, EdgeKind.EXPLICIT)],
        )
        assert g.hibernating() == {0}

    def test_relevant_excludes_hibernating(self):
        g = graph(
            [node(0), node(1, Mode.LEAVING, PState.ASLEEP)],
            [],
        )
        assert g.relevant() == {0}


class TestConnectivityHelpers:
    def test_is_weakly_connected_subset(self):
        g = graph(
            [node(0), node(1), node(2)],
            [Edge(0, 1, EdgeKind.EXPLICIT)],
        )
        assert g.is_weakly_connected(frozenset({0, 1}))
        assert not g.is_weakly_connected(frozenset({0, 2}))

    def test_within_allows_intermediate_nodes(self):
        g = graph(
            [node(0), node(1), node(2)],
            [Edge(0, 1, EdgeKind.EXPLICIT), Edge(1, 2, EdgeKind.EXPLICIT)],
        )
        members = frozenset({0, 2})
        assert not g.is_weakly_connected(members)  # induced on {0, 2}: no edge
        assert g.is_weakly_connected_within(members, frozenset({0, 1, 2}))

    def test_filter_nodes(self):
        g = graph(
            [node(0), node(1, Mode.LEAVING), node(2)],
            [Edge(0, 1, EdgeKind.EXPLICIT), Edge(0, 2, EdgeKind.EXPLICIT)],
        )
        sub = g.filter_nodes(lambda n: n.mode is Mode.STAYING)
        assert sub.pids == {0, 2}
        assert sub.simple_edges() == {(0, 2)}


class TestInvalidEdges:
    def actual(self, pid):
        return Mode.LEAVING if pid == 1 else Mode.STAYING

    def test_wrong_belief_counts(self):
        g = graph(
            [node(0), node(1, Mode.LEAVING)],
            [Edge(0, 1, EdgeKind.EXPLICIT, Mode.STAYING)],
        )
        assert len(list(g.iter_invalid_edges(self.actual))) == 1

    def test_correct_belief_does_not_count(self):
        g = graph(
            [node(0), node(1, Mode.LEAVING)],
            [Edge(0, 1, EdgeKind.EXPLICIT, Mode.LEAVING)],
        )
        assert list(g.iter_invalid_edges(self.actual)) == []

    def test_none_belief_about_leaving_counts(self):
        """Unknown belief = implicit staying claim (transcription note 3)."""
        g = graph(
            [node(0), node(1, Mode.LEAVING)],
            [Edge(0, 1, EdgeKind.IMPLICIT, None)],
        )
        assert len(list(g.iter_invalid_edges(self.actual))) == 1

    def test_none_belief_about_staying_is_valid(self):
        g = graph(
            [node(0), node(2)],
            [Edge(0, 2, EdgeKind.IMPLICIT, None)],
        )
        assert list(g.iter_invalid_edges(self.actual)) == []
