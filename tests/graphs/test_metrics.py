"""Graph metric and target-topology recognizer tests."""

import pytest

from repro.graphs import generators as gen
from repro.graphs.metrics import (
    degree_stats,
    density,
    diameter,
    eccentricities,
    edge_count,
    is_clique,
    is_sorted_line,
    is_sorted_ring,
    is_star,
    undirected_view,
)


class TestDegreeStats:
    def test_star_degrees(self):
        stats = degree_stats(gen.star(5), range(5))
        assert stats["max"] == 4
        assert stats["min"] == 0

    def test_empty(self):
        stats = degree_stats([], [])
        assert stats["mean"] == 0.0

    def test_regular_graph_zero_std(self):
        stats = degree_stats(gen.ring(6), range(6))
        assert stats["std"] == 0.0
        assert stats["mean"] == 1.0


class TestDiameter:
    def test_path_diameter(self):
        adj = undirected_view(gen.line(5), range(5))
        assert diameter(adj) == 4

    def test_clique_diameter(self):
        adj = undirected_view(gen.clique(5), range(5))
        assert diameter(adj) == 1

    def test_disconnected_is_negative(self):
        adj = undirected_view([], range(3))
        assert diameter(adj) == -1

    def test_single_node(self):
        assert diameter({0: set()}) == 0

    def test_eccentricities_of_path(self):
        adj = undirected_view(gen.line(4), range(4))
        ecc = eccentricities(adj)
        assert ecc[0] == 3 and ecc[1] == 2


class TestDensity:
    def test_clique_density_one(self):
        assert density(gen.clique(4), 4) == 1.0

    def test_small_n(self):
        assert density([], 1) == 0.0

    def test_edge_count(self):
        assert edge_count(gen.ring(5)) == 5


class TestRecognizers:
    def test_sorted_line_accepts_target(self):
        keys = {i: float(i) for i in range(5)}
        assert is_sorted_line(frozenset(gen.bidirected_line(5)), keys)

    def test_sorted_line_rejects_extra_edge(self):
        keys = {i: float(i) for i in range(4)}
        edges = set(gen.bidirected_line(4)) | {(0, 3)}
        assert not is_sorted_line(frozenset(edges), keys)

    def test_sorted_line_respects_keys_not_pids(self):
        keys = {0: 10.0, 1: 0.0, 2: 5.0}  # order: 1, 2, 0
        edges = {(1, 2), (2, 1), (2, 0), (0, 2)}
        assert is_sorted_line(frozenset(edges), keys)

    def test_sorted_ring(self):
        keys = {i: float(i) for i in range(4)}
        assert is_sorted_ring(frozenset(gen.ring(4)), keys)
        assert not is_sorted_ring(frozenset(gen.bidirected_line(4)), keys)

    def test_sorted_ring_tiny(self):
        assert is_sorted_ring(frozenset(), {0: 0.0})

    def test_is_clique(self):
        assert is_clique(frozenset(gen.clique(4)), range(4))
        missing = set(gen.clique(4)) - {(1, 2)}
        assert not is_clique(frozenset(missing), range(4))

    def test_is_clique_allows_extra(self):
        """Clique check is a superset check (self-loops tolerated upstream)."""
        assert is_clique(frozenset(gen.clique(3)), range(3))

    def test_is_star(self):
        edges = {(0, 1), (1, 0), (0, 2), (2, 0)}
        assert is_star(frozenset(edges), {0, 1, 2}, center=0)
        assert not is_star(frozenset(edges | {(1, 2)}), {0, 1, 2}, center=0)
