"""Connectivity algorithms, cross-checked against networkx as an oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.connectivity import (
    UnionFind,
    bfs_shortest_path,
    is_strongly_connected,
    is_weakly_connected,
    reachable_from,
    reverse_reachable,
    strongly_connected_components,
    weakly_connected_components,
)


def random_digraph(draw, max_n=10, max_m=30):
    n = draw(st.integers(1, max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_m,
        )
    )
    return n, edges


digraphs = st.builds(lambda d: d, st.integers())  # placeholder, replaced below


@st.composite
def digraph_strategy(draw):
    n = draw(st.integers(1, 10))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=30
        )
    )
    return n, edges


def to_adj(n, edges):
    adj = {i: [] for i in range(n)}
    for a, b in edges:
        adj[a].append(b)
    return adj


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(range(3))
        assert uf.n_sets == 3
        assert not uf.connected(0, 1)

    def test_union_merges(self):
        uf = UnionFind(range(4))
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.n_sets == 3

    def test_union_idempotent(self):
        uf = UnionFind(range(3))
        uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_groups(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(2, 3)
        groups = {frozenset(g) for g in uf.groups()}
        assert groups == {frozenset({0, 1}), frozenset({2, 3})}

    def test_add_after_unions(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        uf.union("a", "b")
        uf.add("a")  # no-op
        assert uf.n_sets == 1

    def test_transitivity_chain(self):
        uf = UnionFind(range(100))
        for i in range(99):
            uf.union(i, i + 1)
        assert uf.connected(0, 99)
        assert uf.n_sets == 1


class TestWeakComponents:
    @given(digraph_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, graph):
        n, edges = graph
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        expected = {frozenset(c) for c in nx.weakly_connected_components(g)}
        adj = {i: set() for i in range(n)}
        for a, b in edges:
            adj[a].add(b)
            adj[b].add(a)
        got = {frozenset(c) for c in weakly_connected_components(adj)}
        assert got == expected

    def test_empty_graph_connected(self):
        assert is_weakly_connected({})

    def test_outsider_neighbours_ignored(self):
        # node 9 appears only as a neighbour, not a key: induced semantics
        comps = weakly_connected_components({0: [9], 1: []})
        assert {frozenset(c) for c in comps} == {frozenset({0}), frozenset({1})}


class TestStrongComponents:
    @given(digraph_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, graph):
        n, edges = graph
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        expected = {frozenset(c) for c in nx.strongly_connected_components(g)}
        got = {
            frozenset(c)
            for c in strongly_connected_components(to_adj(n, edges))
        }
        assert got == expected

    def test_cycle_is_one_scc(self):
        adj = {0: [1], 1: [2], 2: [0]}
        assert is_strongly_connected(adj)

    def test_path_is_not_strongly_connected(self):
        assert not is_strongly_connected({0: [1], 1: [2], 2: []})

    def test_deep_path_no_recursion_error(self):
        """Iterative Tarjan must survive graphs deeper than the recursion
        limit."""
        n = 5000
        adj = {i: [i + 1] for i in range(n - 1)}
        adj[n - 1] = []
        comps = strongly_connected_components(adj)
        assert len(comps) == n


class TestReachability:
    def test_reachable_from(self):
        adj = {0: [1], 1: [2], 2: [], 3: [0]}
        assert reachable_from(adj, 0) == {0, 1, 2}

    def test_reverse_reachable(self):
        adj = {0: [1], 1: [2], 2: [], 3: [0]}
        assert reverse_reachable(adj, 2) == {0, 1, 2, 3}

    @given(digraph_strategy(), st.integers(0, 9))
    @settings(max_examples=40, deadline=None)
    def test_reverse_is_forward_in_transpose(self, graph, start):
        n, edges = graph
        start %= n
        rev_edges = [(b, a) for a, b in edges]
        assert reverse_reachable(to_adj(n, edges), start) == reachable_from(
            to_adj(n, rev_edges), start
        )


class TestShortestPath:
    def test_trivial(self):
        assert bfs_shortest_path({0: []}, 0, 0) == [0]

    def test_simple_path(self):
        adj = {0: [1], 1: [2], 2: []}
        assert bfs_shortest_path(adj, 0, 2) == [0, 1, 2]

    def test_unreachable_returns_none(self):
        assert bfs_shortest_path({0: [], 1: []}, 0, 1) is None

    @given(digraph_strategy(), st.integers(0, 9), st.integers(0, 9))
    @settings(max_examples=50, deadline=None)
    def test_matches_networkx_length(self, graph, s, t):
        n, edges = graph
        s, t = s % n, t % n
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        path = bfs_shortest_path(to_adj(n, edges), s, t)
        try:
            expected = nx.shortest_path_length(g, s, t)
        except nx.NetworkXNoPath:
            assert path is None
            return
        assert path is not None
        assert len(path) - 1 == expected
        # and it is an actual path
        for a, b in zip(path, path[1:], strict=False):
            assert (a, b) in set(edges)
