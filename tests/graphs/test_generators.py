"""Topology generator tests: shapes, sizes and the connectivity guarantee."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as gen
from repro.graphs.connectivity import is_weakly_connected


def undirected(n, edges):
    adj = {i: set() for i in range(n)}
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)
    return adj


class TestShapes:
    def test_line(self):
        assert gen.line(4) == [(0, 1), (1, 2), (2, 3)]

    def test_bidirected_line(self):
        edges = set(gen.bidirected_line(3))
        assert edges == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_ring(self):
        assert set(gen.ring(3)) == {(0, 1), (1, 2), (2, 0)}
        assert gen.ring(1) == []

    def test_star(self):
        assert set(gen.star(4)) == {(0, 1), (0, 2), (0, 3)}
        assert set(gen.star(3, center=1)) == {(1, 0), (1, 2)}

    def test_clique(self):
        edges = gen.clique(3)
        assert len(edges) == 6
        assert (0, 0) not in edges

    def test_binary_tree(self):
        assert set(gen.binary_tree(5)) == {(0, 1), (0, 2), (1, 3), (1, 4)}

    def test_lollipop_has_clique_and_tail(self):
        edges = set(gen.lollipop(8, head=4))
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert (i, j) in edges
        assert (6, 7) in edges

    def test_two_cliques_bridge(self):
        edges = set(gen.two_cliques_bridge(6))
        assert (2, 3) in edges  # the bridge
        assert (0, 3) not in edges

    def test_minimum_sizes_rejected(self):
        with pytest.raises(ValueError):
            gen.line(0)
        with pytest.raises(ValueError):
            gen.two_cliques_bridge(3)

    def test_density_validation(self):
        with pytest.raises(ValueError):
            gen.random_weakly_connected_digraph(5, density=1.5)


class TestConnectivityGuarantee:
    @pytest.mark.parametrize(
        "name",
        [n for n in gen.GENERATORS if n not in ("random_tree", "random_connected")],
    )
    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_named_generators_connected(self, name, n):
        if name == "two_cliques_bridge" and n < 4:
            pytest.skip("size constraint")
        edges = gen.GENERATORS[name](n)
        assert is_weakly_connected(undirected(n, edges))

    @given(st.integers(1, 40), st.integers(0, 30), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_random_connected_is_connected(self, n, extra, seed):
        edges = gen.random_connected(n, extra_edges=extra, seed=seed)
        assert is_weakly_connected(undirected(n, edges))
        assert len(edges) >= n - 1

    @given(st.integers(1, 40), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_random_tree_is_spanning(self, n, seed):
        edges = gen.random_tree(n, seed=seed)
        assert len(edges) == n - 1
        assert is_weakly_connected(undirected(n, edges))

    def test_determinism(self):
        assert gen.random_connected(10, 5, seed=4) == gen.random_connected(
            10, 5, seed=4
        )
        assert gen.random_tree(10, seed=1) == gen.random_tree(10, seed=1)

    def test_no_self_loops_anywhere(self):
        for name, fn in gen.GENERATORS.items():
            n = 6
            edges = fn(n)
            assert all(a != b for a, b in edges), name

    def test_edges_within_range(self):
        for name, fn in gen.GENERATORS.items():
            for a, b in fn(7):
                assert 0 <= a < 7 and 0 <= b < 7, name
