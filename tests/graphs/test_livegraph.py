"""Unit tests for the event-sourced live graph.

Each test exercises one delta source or maintained structure in
isolation; the end-to-end ``LiveGraph ≡ rebuild(state)`` invariant has
its own differential property suite in
``tests/sim/test_livegraph_differential.py``.
"""

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.graphs import LiveGraph
from repro.graphs.livegraph import explicit_fingerprint
from repro.graphs.snapshot import EdgeKind
from repro.sim.messages import RefInfo
from repro.sim.states import Mode, PState
from tests.conftest import deliver, drive_timeout, make_fdp_engine


@pytest.fixture(autouse=True)
def _force_incremental(monkeypatch):
    """These tests exercise the live graph; pin the mode even when the
    suite runs under ``REPRO_GRAPH_MODE=rebuild``."""
    monkeypatch.setenv("REPRO_GRAPH_MODE", "incremental")


def edge_multiset(snap) -> Counter:
    return Counter((e.src, e.dst, e.kind, e.belief) for e in snap.edges)


def rebuild_phi(engine) -> int:
    snap = engine.rebuild_snapshot()
    return sum(1 for _ in snap.iter_invalid_edges(engine.actual_mode))


def assert_live_matches_rebuild(engine):
    live = engine.live_graph
    rebuilt = engine.rebuild_snapshot()
    assert edge_multiset(live.materialize()) == edge_multiset(rebuilt)
    assert live.phi == rebuild_phi(engine)
    assert live.edge_total == len(rebuilt.edges)


class TestBuild:
    def test_initial_build_matches_rebuild(self):
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: Mode.STAYING, 2: Mode.LEAVING}},
                1: {"neighbors": {0: Mode.STAYING}},
                2: {"mode": Mode.LEAVING, "neighbors": {0: Mode.STAYING}},
            }
        )
        eng.attach()
        assert_live_matches_rebuild(eng)

    def test_live_graph_unavailable_in_rebuild_mode(self):
        eng = make_fdp_engine({0: {}})
        eng._graph_mode = "rebuild"
        with pytest.raises(ConfigurationError):
            eng.live_graph


class TestChannelDeltas:
    def test_enqueue_adds_implicit_edge(self):
        eng = make_fdp_engine({0: {}, 1: {}, 2: {}})
        eng.attach()
        live = eng.live_graph
        before = live.edge_total
        # a message to 1 carrying 2's reference = implicit edge (1, 2)
        eng.post(None, eng.processes[1].self_ref, "present", (RefInfo(eng.ref(2), Mode.STAYING),))
        assert live.edge_total == before + 1
        store = live.materialize()
        assert (1, 2, EdgeKind.IMPLICIT) in {
            (e.src, e.dst, e.kind) for e in store.edges
        }
        assert_live_matches_rebuild(eng)

    def test_dequeue_removes_implicit_edge(self):
        eng = make_fdp_engine({0: {}, 1: {}, 2: {}})
        eng.attach()
        msg = eng.post(None, eng.processes[1].self_ref, "present", (RefInfo(eng.ref(2), Mode.STAYING),))
        eng.channels[1].remove(msg.seq)
        assert eng.live_graph.edge_total == 0
        assert_live_matches_rebuild(eng)

    def test_pending_total_counts_refless_messages(self):
        eng = make_fdp_engine({0: {}, 1: {}})
        eng.attach()
        eng.post(None, eng.processes[1].self_ref, "ping", ())
        live = eng.live_graph
        assert live.pending_total == 1
        assert live.edge_total == 0


class TestExplicitDiff:
    def test_diff_applies_out_of_band_ref_store(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: Mode.STAYING}}, 1: {}, 2: {}}
        )
        eng.attach()
        proc = eng.processes[0]
        live = eng.live_graph
        before = explicit_fingerprint(proc)
        proc.N[eng.ref(2)] = Mode.LEAVING  # store
        del proc.N[eng.ref(1)]  # drop
        live.apply_explicit_diff(0, before, proc)
        assert_live_matches_rebuild(eng)

    def test_noop_action_short_circuits(self):
        eng = make_fdp_engine({0: {"neighbors": {1: Mode.STAYING}}, 1: {}})
        eng.attach()
        proc = eng.processes[0]
        live = eng.live_graph
        before = explicit_fingerprint(proc)
        total = live.edge_total
        live.apply_explicit_diff(0, before, proc)
        assert live.edge_total == total
        assert_live_matches_rebuild(eng)


class TestPhi:
    def test_belief_lie_counts(self):
        # 0 believes 1 is staying; 1 is actually leaving → one invalid edge.
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: Mode.STAYING}},
                1: {"mode": Mode.LEAVING, "neighbors": {0: Mode.STAYING}},
            }
        )
        eng.attach()
        assert eng.live_graph.phi == 1
        assert eng.potential() == rebuild_phi(eng)

    def test_none_belief_normalizes_to_staying(self):
        eng = make_fdp_engine(
            {0: {}, 1: {"mode": Mode.LEAVING, "neighbors": {0: Mode.STAYING}}}
        )
        eng.attach()
        # an anchorless present carrying a bare ref (belief None) to the
        # leaving process 1's own pid: None ≡ staying-claim about 1 → invalid.
        eng.post(None, eng.processes[0].self_ref, "present", (RefInfo(eng.ref(1), None),))
        assert eng.potential() == rebuild_phi(eng)

    def test_reprice_rederives_buckets(self):
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: Mode.STAYING}},
                1: {"neighbors": {0: Mode.STAYING}},
            }
        )
        eng.attach()
        live = eng.live_graph
        assert live.phi == 0
        live.reprice(1, Mode.LEAVING)  # now 0's staying-belief about 1 is wrong
        assert live.phi == 1
        live.reprice(1, Mode.STAYING)
        assert live.phi == 0


class TestLifecycle:
    def test_exit_purges_out_edges(self):
        eng = make_fdp_engine(
            {
                0: {
                    "mode": Mode.LEAVING,
                    "neighbors": {},
                    "anchor": None,
                },
                1: {"neighbors": {}},
            },
        )
        eng.attach()
        drive_timeout(eng, 0)  # empty neighbourhood + SINGLE → exit
        assert eng.processes[0].state is PState.GONE
        assert_live_matches_rebuild(eng)
        assert eng.partner_pids(0) == set()

    def test_edges_to_gone_target_still_counted(self):
        eng = make_fdp_engine(
            {
                0: {"mode": Mode.LEAVING},
                1: {},
            },
        )
        eng.attach()
        drive_timeout(eng, 0)
        assert eng.processes[0].state is PState.GONE
        # 1 now stores the gone process's ref out-of-band: the edge exists
        # in PG (Φ counts it; belief staying about a leaving process lies).
        eng.processes[1].N[eng.ref(0)] = Mode.STAYING
        eng._dirty = True
        assert_live_matches_rebuild(eng)
        assert eng.potential() == rebuild_phi(eng) == 1

    def test_mail_to_gone_process_is_inert(self):
        eng = make_fdp_engine({0: {"mode": Mode.LEAVING}, 1: {}})
        eng.attach()
        drive_timeout(eng, 0)
        live = eng.live_graph
        eng.post(None, eng.processes[0].self_ref, "present", (RefInfo(eng.ref(1), None),))
        # pending mail counted, but no PG edge: gone processes left the graph
        assert live.pending_total == 1
        assert_live_matches_rebuild(eng)


class TestSelfLoops:
    def test_self_loop_has_no_connectivity_weight(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {0: Mode.STAYING}}, 1: {}}
        )
        eng.attach()
        live = eng.live_graph
        assert live.edge_total == 1
        assert live.partners(0) == set()
        assert not live.same_component({0, 1})
        assert_live_matches_rebuild(eng)


class TestConnectivity:
    def test_same_component_tracks_added_edges(self):
        eng = make_fdp_engine({0: {}, 1: {}, 2: {}})
        eng.attach()
        live = eng.live_graph
        assert not live.same_component({0, 1, 2})
        eng.post(None, eng.processes[0].self_ref, "present", (RefInfo(eng.ref(1), None),))
        assert live.same_component({0, 1})
        assert not live.same_component({0, 2})

    def test_dead_pair_restored_within_step_avoids_rebuild(self):
        # remove + re-add of the same undirected pair between two queries
        # must leave the union-find trusted (white-box: the deferral set).
        eng = make_fdp_engine(
            {0: {"neighbors": {1: Mode.STAYING}}, 1: {}}
        )
        eng.attach()
        live = eng.live_graph
        assert live.same_component({0, 1})
        proc = eng.processes[0]
        before = explicit_fingerprint(proc)
        del proc.N[eng.ref(1)]
        proc.N[eng.ref(1)] = Mode.STAYING
        live.apply_explicit_diff(0, before, proc)
        assert not live._uf_stale
        assert not live._dead_pairs
        assert live.same_component({0, 1})

    def test_disconnecting_deletion_is_detected(self):
        eng = make_fdp_engine(
            {0: {"neighbors": {1: Mode.STAYING}}, 1: {}, 2: {}}
        )
        eng.attach()
        live = eng.live_graph
        assert live.same_component({0, 1})
        proc = eng.processes[0]
        before = explicit_fingerprint(proc)
        del proc.N[eng.ref(1)]
        live.apply_explicit_diff(0, before, proc)
        assert not live.same_component({0, 1})

    def test_induced_connected_excludes_outside_paths(self):
        # 0-1-2 chain: {0, 2} connected only through 1.
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: Mode.STAYING}},
                1: {"neighbors": {2: Mode.STAYING}},
                2: {},
            }
        )
        eng.attach()
        live = eng.live_graph
        assert live.induced_connected(frozenset({0, 1, 2}))
        assert not live.induced_connected(frozenset({0, 2}))


class TestPartners:
    def test_partner_index_both_directions(self):
        eng = make_fdp_engine(
            {
                0: {"neighbors": {1: Mode.STAYING}},
                1: {},
                2: {"neighbors": {0: Mode.STAYING}},
            }
        )
        eng.attach()
        assert eng.live_graph.partners(0) == {1, 2}
        assert eng.live_graph.partners(1) == {0}
        assert eng.live_graph.partners(2) == {0}


class TestOutOfBandInvalidation:
    def test_dirty_flag_schedules_live_rebuild(self):
        eng = make_fdp_engine({0: {}, 1: {}})
        eng.attach()
        assert eng.live_graph.edge_total == 0
        # mutate behind the live graph's back, then use the documented hook
        eng.processes[0].N[eng.ref(1)] = Mode.STAYING
        eng._dirty = True
        assert eng.live_graph.edge_total == 1
        assert_live_matches_rebuild(eng)


class TestMaterialize:
    def test_materialize_after_protocol_steps(self):
        eng = make_fdp_engine(
            {
                0: {"mode": Mode.LEAVING, "neighbors": {1: Mode.STAYING}},
                1: {"neighbors": {0: Mode.LEAVING, 2: Mode.STAYING}},
                2: {"neighbors": {1: Mode.STAYING}},
            },
        )
        eng.attach()
        for _ in range(40):
            if eng.step() is None:
                break
        assert_live_matches_rebuild(eng)
