"""Unit tests for the overlay logics (stand-alone semantics)."""

import pytest

from repro.overlays.clique import CliqueLogic
from repro.overlays.linearization import LinearizationLogic
from repro.overlays.ring import RingLogic
from repro.overlays.star import StarLogic
from repro.sim.refs import KeyProvider, Ref

KEYS = KeyProvider()


class Sent:
    """Capture a logic's outgoing sends."""

    def __init__(self):
        self.calls = []

    def __call__(self, target, label, *args):
        self.calls.append((target, label, args))

    def to(self, target):
        return [(l, a) for t, l, a in self.calls if t == target]


class TestLinearizationLogic:
    def make(self, pid=5):
        return LinearizationLogic(Ref(pid))

    def test_integrate_classifies_sides(self):
        lg = self.make(5)
        lg.integrate_with_keys(KEYS, Ref(2))
        lg.integrate_with_keys(KEYS, Ref(8))
        assert lg.left == {Ref(2)}
        assert lg.right == {Ref(8)}

    def test_integrate_self_ignored(self):
        lg = self.make(5)
        lg.integrate_with_keys(KEYS, Ref(5))
        assert not lg.left and not lg.right

    def test_side_reclassification(self):
        lg = self.make(5)
        lg.left.add(Ref(8))  # corrupted placement
        lg.integrate_with_keys(KEYS, Ref(8))
        assert Ref(8) in lg.right and Ref(8) not in lg.left

    def test_timeout_keeps_closest_delegates_rest(self):
        lg = self.make(5)
        for pid in (1, 3, 7, 9):
            lg.integrate_with_keys(KEYS, Ref(pid))
        sent = Sent()
        lg.p_timeout(sent, KEYS)
        assert lg.left == {Ref(3)}
        assert lg.right == {Ref(7)}
        # far left 1 delegated to 3; far right 9 delegated to 7
        assert ("p_insert", (Ref(1),)) in sent.to(Ref(3))
        assert ("p_insert", (Ref(9),)) in sent.to(Ref(7))
        # self-introduction to both closest neighbours
        assert ("p_insert", (Ref(5),)) in sent.to(Ref(3))
        assert ("p_insert", (Ref(5),)) in sent.to(Ref(7))

    def test_chain_delegation_direction(self):
        lg = self.make(10)
        for pid in (1, 4, 7):
            lg.integrate_with_keys(KEYS, Ref(pid))
        sent = Sent()
        lg.p_timeout(sent, KEYS)
        # 1 → 4, 4 → 7 (toward their positions)
        assert ("p_insert", (Ref(1),)) in sent.to(Ref(4))
        assert ("p_insert", (Ref(4),)) in sent.to(Ref(7))

    def test_drop_neighbor(self):
        lg = self.make(5)
        lg.integrate_with_keys(KEYS, Ref(2))
        assert lg.drop_neighbor(Ref(2))
        assert not lg.drop_neighbor(Ref(2))

    def test_handle_p_insert(self):
        lg = self.make(5)
        lg.handle(Sent(), KEYS, "p_insert", Ref(1))
        assert Ref(1) in lg.left


class TestRingLogic:
    def make(self, pid):
        return RingLogic(Ref(pid))

    def test_succ_is_next_larger(self):
        lg = self.make(5)
        for pid in (2, 7, 9):
            lg.integrate(Sent(), Ref(pid))
        lg.p_timeout(Sent(), KEYS)
        assert lg.succ == Ref(7)

    def test_succ_wraps_to_minimum(self):
        lg = self.make(9)
        for pid in (2, 5):
            lg.integrate(Sent(), Ref(pid))
        lg.p_timeout(Sent(), KEYS)
        assert lg.succ == Ref(2)

    def test_pred_is_next_smaller_or_wrap(self):
        lg = self.make(5)
        for pid in (2, 7):
            lg.integrate(Sent(), Ref(pid))
        lg.p_timeout(Sent(), KEYS)
        assert lg.pred == Ref(2)
        lg2 = self.make(2)
        for pid in (5, 7):
            lg2.integrate(Sent(), Ref(pid))
        lg2.p_timeout(Sent(), KEYS)
        assert lg2.pred == Ref(7)  # wrap: largest

    def test_self_introduces_to_both_kept_neighbours(self):
        lg = self.make(5)
        for pid in (2, 7):
            lg.integrate(Sent(), Ref(pid))
        sent = Sent()
        lg.p_timeout(sent, KEYS)
        assert ("p_insert", (Ref(5),)) in sent.to(Ref(7))  # succ
        assert ("p_insert", (Ref(5),)) in sent.to(Ref(2))  # pred

    def test_spares_delegated_to_succ(self):
        lg = self.make(1)
        for pid in (2, 3, 4):
            lg.integrate(Sent(), Ref(pid))
        sent = Sent()
        lg.p_timeout(sent, KEYS)
        assert lg.succ == Ref(2)
        assert ("p_insert", (Ref(3),)) in sent.to(Ref(2))

    def test_drop_neighbor_clears_roles(self):
        lg = self.make(1)
        lg.integrate(Sent(), Ref(2))
        lg.p_timeout(Sent(), KEYS)
        assert lg.drop_neighbor(Ref(2))
        assert lg.succ is None and lg.pred is None

    def test_empty_timeout_noop(self):
        lg = self.make(1)
        lg.p_timeout(Sent(), KEYS)  # no candidates: nothing to do


class TestCliqueLogic:
    def test_introduces_all_pairs_and_self(self):
        lg = CliqueLogic(Ref(0))
        for pid in (1, 2):
            lg.integrate(Sent(), Ref(pid))
        sent = Sent()
        lg.p_timeout(sent, None)
        assert ("p_insert", (Ref(2),)) in sent.to(Ref(1))
        assert ("p_insert", (Ref(1),)) in sent.to(Ref(2))
        assert ("p_insert", (Ref(0),)) in sent.to(Ref(1))
        assert ("p_insert", (Ref(0),)) in sent.to(Ref(2))

    def test_requires_no_order(self):
        assert CliqueLogic.requires_order is False

    def test_integrate_dedups(self):
        lg = CliqueLogic(Ref(0))
        lg.integrate(Sent(), Ref(1))
        lg.integrate(Sent(), Ref(1))
        assert len(list(lg.neighbor_refs())) == 1


class TestStarLogic:
    def test_smaller_keeps_and_broadcasts(self):
        lg = StarLogic(Ref(0))
        for pid in (3, 5):
            lg.integrate(Sent(), Ref(pid))
        sent = Sent()
        lg.p_timeout(sent, KEYS)
        assert set(lg.known) == {Ref(3), Ref(5)}
        assert ("p_insert", (Ref(0),)) in sent.to(Ref(3))
        assert ("p_insert", (Ref(0),)) in sent.to(Ref(5))

    def test_larger_delegates_to_min(self):
        lg = StarLogic(Ref(9))
        for pid in (2, 5):
            lg.integrate(Sent(), Ref(pid))
        sent = Sent()
        lg.p_timeout(sent, KEYS)
        assert set(lg.known) == {Ref(2)}
        assert ("p_insert", (Ref(5),)) in sent.to(Ref(2))
        assert ("p_insert", (Ref(9),)) in sent.to(Ref(2))


class TestCommonLogicContract:
    @pytest.mark.parametrize(
        "logic_cls", [LinearizationLogic, RingLogic, CliqueLogic, StarLogic]
    )
    def test_message_labels_declared(self, logic_cls):
        assert logic_cls.message_labels == ("p_insert",)

    @pytest.mark.parametrize(
        "logic_cls", [LinearizationLogic, RingLogic, CliqueLogic, StarLogic]
    )
    def test_describe_vars_is_dict(self, logic_cls):
        lg = logic_cls(Ref(0))
        assert isinstance(lg.describe_vars(), dict)
