"""Stand-alone overlay convergence: topological self-stabilization of 𝒫."""

import pytest

from repro.graphs import generators as gen
from repro.overlays import LOGICS
from repro.overlays.builders import build_overlay_engine
from repro.sim.monitors import ConnectivityMonitor
from repro.sim.scheduler import AdversarialScheduler, SynchronousScheduler

BUDGET = 300_000


@pytest.mark.parametrize("name", sorted(LOGICS))
class TestOverlayConvergence:
    def test_from_random_connected(self, name):
        logic = LOGICS[name]
        n = 10
        edges = gen.random_connected(n, 5, seed=13)
        eng = build_overlay_engine(
            n, edges, logic, seed=13, monitors=[ConnectivityMonitor(8)]
        )
        assert eng.run(BUDGET, until=logic.target_reached, check_every=64)

    def test_from_line(self, name):
        logic = LOGICS[name]
        n = 9
        eng = build_overlay_engine(n, gen.line(n), logic, seed=1)
        assert eng.run(BUDGET, until=logic.target_reached, check_every=64)

    def test_from_own_target_stays(self, name):
        """Closure: started at the target, the protocol remains there."""
        logic = LOGICS[name]
        n = 8
        target_edges = {
            "linearization": gen.bidirected_line,
            "ring": lambda n: gen.ring(n) + [(b, a) for a, b in gen.ring(n)],
            "robust_ring": lambda n: gen.ring(n)
            + [(b, a) for a, b in gen.ring(n)]
            + [(i, (i + 2) % n) for i in range(n)],
            "clique": gen.clique,
            "star": lambda n: gen.star(n) + [(i, 0) for i in range(1, n)],
        }[name](n)
        eng = build_overlay_engine(n, target_edges, logic, seed=2)
        assert eng.run(BUDGET, until=logic.target_reached, check_every=32)
        for _ in range(500):
            eng.step()
        assert logic.target_reached(eng)

    def test_under_adversarial_schedule(self, name):
        logic = LOGICS[name]
        n = 8
        edges = gen.random_connected(n, 4, seed=3)
        eng = build_overlay_engine(
            n,
            edges,
            logic,
            seed=3,
            scheduler=AdversarialScheduler(patience=24, seed=3),
        )
        assert eng.run(BUDGET, until=logic.target_reached, check_every=64)

    def test_single_process(self, name):
        logic = LOGICS[name]
        eng = build_overlay_engine(1, [], logic, seed=0)
        assert eng.run(1000, until=logic.target_reached, check_every=8)

    def test_two_processes(self, name):
        logic = LOGICS[name]
        eng = build_overlay_engine(2, [(0, 1)], logic, seed=0)
        assert eng.run(20_000, until=logic.target_reached, check_every=16)


class TestCliqueRoundComplexity:
    def test_synchronous_rounds_logarithmic(self):
        """The O(log n) transitive-closure argument, measured on the live
        protocol under the synchronous scheduler."""
        import math

        logic = LOGICS["clique"]
        results = {}
        for n in (4, 8, 16):
            sched = SynchronousScheduler(seed=0)
            eng = build_overlay_engine(
                n, gen.bidirected_line(n), logic, scheduler=sched, seed=0
            )
            assert eng.run(2_000_000, until=logic.target_reached, check_every=n)
            results[n] = sched.round_count
        for n, rounds in results.items():
            assert rounds <= 4 * (math.log2(n) + 2), (n, rounds)
