"""The stand-alone overlay host (OverlayProcess) and the logic contract."""

import pytest

from repro.errors import ConfigurationError, CopyStoreSendViolation
from repro.graphs import generators as gen
from repro.overlays.base import OverlayLogic, OverlayProcess
from repro.overlays.builders import build_overlay_engine
from repro.overlays.clique import CliqueLogic
from repro.overlays.linearization import LinearizationLogic
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode


def make(procs):
    return Engine(
        procs,
        OldestFirstScheduler(),
        capability=Capability.NONE,
        require_staying_per_component=False,
    )


class TestOverlayProcessHost:
    def test_logic_constructed_with_self_ref(self):
        p = OverlayProcess(3, Mode.STAYING, CliqueLogic)
        assert p.logic.self_ref == Ref(3)

    def test_requires_order_propagates(self):
        assert OverlayProcess(0, Mode.STAYING, LinearizationLogic).requires_order
        assert not OverlayProcess(0, Mode.STAYING, CliqueLogic).requires_order

    def test_stored_refs_reflect_logic(self):
        p = OverlayProcess(0, Mode.STAYING, CliqueLogic)
        p.logic.known.add(Ref(1))
        assert [i.ref for i in p.stored_refs()] == [Ref(1)]

    def test_p_message_dispatched_into_logic(self):
        a = OverlayProcess(0, Mode.STAYING, CliqueLogic)
        b = OverlayProcess(1, Mode.STAYING, CliqueLogic)
        eng = make([a, b])
        eng.post(None, a.self_ref, "p_insert", (RefInfo(b.self_ref, Mode.STAYING),))
        eng.run(10, until=lambda e: False)
        assert Ref(1) in a.logic.known

    def test_unknown_label_falls_back_to_base(self):
        p = OverlayProcess(0, Mode.STAYING, CliqueLogic)
        assert p.handler("p_insert") is not None
        assert p.handler("unrelated") is None

    def test_sends_carry_staying_beliefs(self):
        a = OverlayProcess(0, Mode.STAYING, CliqueLogic)
        b = OverlayProcess(1, Mode.STAYING, CliqueLogic)
        c = OverlayProcess(2, Mode.STAYING, CliqueLogic)
        a.logic.known |= {b.self_ref, c.self_ref}
        eng = make([a, b, c])
        eng.attach()
        from tests.conftest import drive_timeout

        drive_timeout(eng, 0)
        for msg in eng.channels[1]:
            for info in msg.refinfos():
                assert info.mode is Mode.STAYING

    def test_describe_vars_delegates(self):
        p = OverlayProcess(0, Mode.STAYING, CliqueLogic)
        assert isinstance(p.describe_vars(), dict)


class TestLogicBaseContract:
    def test_abstract_hooks_raise(self):
        lg = OverlayLogic(Ref(0))
        with pytest.raises(NotImplementedError):
            list(lg.neighbor_refs())
        with pytest.raises(NotImplementedError):
            lg.integrate(lambda *a: None, Ref(1))
        with pytest.raises(NotImplementedError):
            lg.drop_neighbor(Ref(1))
        with pytest.raises(NotImplementedError):
            lg.p_timeout(lambda *a: None, None)
        with pytest.raises(NotImplementedError):
            lg.handle(lambda *a: None, None, "x")
        with pytest.raises(NotImplementedError):
            OverlayLogic.target_reached(None)


class TestBuilder:
    def test_rejects_empty_population(self):
        with pytest.raises(ConfigurationError):
            build_overlay_engine(0, [], CliqueLogic)

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ConfigurationError):
            build_overlay_engine(3, [(0, 7)], CliqueLogic)

    def test_initial_neighborhoods_wired(self):
        eng = build_overlay_engine(3, [(0, 1), (1, 2)], CliqueLogic)
        assert Ref(1) in eng.processes[0].logic.known
        assert Ref(2) in eng.processes[1].logic.known

    def test_keyed_logic_initialized_by_side(self):
        eng = build_overlay_engine(3, [(1, 0), (1, 2)], LinearizationLogic)
        lg = eng.processes[1].logic
        assert Ref(0) in lg.left
        assert Ref(2) in lg.right
