"""Unit tests for the robust ring (succ² shortcut) overlay."""

import pytest

from repro.overlays.robust_ring import RobustRingLogic
from repro.sim.refs import KeyProvider, Ref

KEYS = KeyProvider()


class Sent:
    def __init__(self):
        self.calls = []

    def __call__(self, target, label, *args):
        self.calls.append((target, label, args))

    def to(self, target, label=None):
        return [
            (l, a)
            for t, l, a in self.calls
            if t == target and (label is None or l == label)
        ]


class TestSucc2Gossip:
    def test_timeout_gossips_succ_to_pred(self):
        lg = RobustRingLogic(Ref(5))
        for pid in (2, 7):
            lg.integrate(Sent(), Ref(pid))
        sent = Sent()
        lg.p_timeout(sent, KEYS)
        # pred=2 is told about succ=7 via the dedicated label
        assert ("p_succ2", (Ref(7),)) in sent.to(Ref(2))

    def test_no_gossip_on_two_node_ring(self):
        lg = RobustRingLogic(Ref(5))
        lg.integrate(Sent(), Ref(2))
        sent = Sent()
        lg.p_timeout(sent, KEYS)  # pred == succ == 2
        assert sent.to(Ref(2), "p_succ2") == []

    def test_handle_sets_succ2(self):
        lg = RobustRingLogic(Ref(1))
        lg.handle(Sent(), KEYS, "p_succ2", Ref(3))
        assert lg.succ2 == Ref(3)

    def test_self_reference_ignored(self):
        lg = RobustRingLogic(Ref(1))
        lg.handle(Sent(), KEYS, "p_succ2", Ref(1))
        assert lg.succ2 is None

    def test_replaced_succ2_delegated_not_dropped(self):
        lg = RobustRingLogic(Ref(1))
        lg.integrate(Sent(), Ref(2))
        lg.p_timeout(Sent(), KEYS)  # succ = 2
        lg.handle(Sent(), KEYS, "p_succ2", Ref(3))
        sent = Sent()
        lg.handle(sent, KEYS, "p_succ2", Ref(4))
        assert lg.succ2 == Ref(4)
        # the old shortcut travelled to the successor: edge preserved
        assert ("p_insert", (Ref(3),)) in sent.to(Ref(2))

    def test_replaced_succ2_equal_to_succ_pooled(self):
        lg = RobustRingLogic(Ref(1))
        lg.integrate(Sent(), Ref(2))
        lg.p_timeout(Sent(), KEYS)  # succ = 2
        lg.handle(Sent(), KEYS, "p_succ2", Ref(2))
        sent = Sent()
        lg.handle(sent, KEYS, "p_succ2", Ref(4))
        # old succ2 == succ: no delegation needed (edge still stored)
        assert lg.succ2 == Ref(4)

    def test_succ2_self_introduced_to(self):
        lg = RobustRingLogic(Ref(1))
        lg.integrate(Sent(), Ref(2))
        lg.handle(Sent(), KEYS, "p_succ2", Ref(3))
        sent = Sent()
        lg.p_timeout(sent, KEYS)
        assert ("p_insert", (Ref(1),)) in sent.to(Ref(3))


class TestStateSurface:
    def test_succ2_in_neighbor_refs(self):
        lg = RobustRingLogic(Ref(1))
        lg.handle(Sent(), KEYS, "p_succ2", Ref(3))
        assert Ref(3) in set(lg.neighbor_refs())

    def test_drop_neighbor_clears_succ2(self):
        lg = RobustRingLogic(Ref(1))
        lg.handle(Sent(), KEYS, "p_succ2", Ref(3))
        assert lg.drop_neighbor(Ref(3))
        assert lg.succ2 is None

    def test_two_labels_declared(self):
        assert RobustRingLogic.message_labels == ("p_insert", "p_succ2")

    def test_describe_vars(self):
        lg = RobustRingLogic(Ref(1))
        lg.handle(Sent(), KEYS, "p_succ2", Ref(3))
        assert lg.describe_vars()["succ2"] == "Ref<3>"


class TestConvergence:
    def test_standalone_reaches_ring_plus_shortcuts(self):
        from repro.graphs import generators as gen
        from repro.overlays.builders import build_overlay_engine

        eng = build_overlay_engine(
            9, gen.random_connected(9, 4, seed=5), RobustRingLogic, seed=5
        )
        assert eng.run(300_000, until=RobustRingLogic.target_reached, check_every=64)

    def test_framework_embedding(self):
        from repro.core.potential import fdp_legitimate
        from repro.core.scenarios import build_framework_engine, choose_leaving
        from repro.graphs import generators as gen

        n = 9
        edges = gen.random_connected(n, 4, seed=8)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=8)
        eng = build_framework_engine(n, edges, leaving, RobustRingLogic, seed=8)

        def done(e):
            return fdp_legitimate(e) and RobustRingLogic.target_reached(e)

        assert eng.run(600_000, until=done, check_every=128)

    def test_tiny_rings_trivially_reach_target(self):
        from repro.overlays.builders import build_overlay_engine

        for n in (1, 2):
            eng = build_overlay_engine(n, [(0, 1)] if n == 2 else [], RobustRingLogic)
            assert eng.run(20_000, until=RobustRingLogic.target_reached, check_every=16)
