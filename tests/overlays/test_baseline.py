"""The Foreback-style sorted-list departure baseline (E10's comparator)."""

import pytest

from repro.core.potential import fdp_legitimate, relevant_connected_per_component
from repro.core.scenarios import choose_leaving
from repro.graphs import generators as gen
from repro.graphs.metrics import is_sorted_line
from repro.graphs.snapshot import EdgeKind
from repro.overlays.baseline_foreback import BaselineListProcess
from repro.overlays.builders import build_baseline_engine
from repro.sim.engine import Engine
from repro.sim.messages import RefInfo
from repro.sim.monitors import ConnectivityMonitor
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode, PState

from tests.conftest import channel_payloads

L, S = Mode.LEAVING, Mode.STAYING
BUDGET = 400_000


def make_baseline(specs):
    from repro.core.oracles import NoIncomingOracle

    procs = {}
    for pid, spec in specs.items():
        procs[pid] = BaselineListProcess(pid, spec.get("mode", S))
    for pid, spec in specs.items():
        for npid, belief in spec.get("candidates", {}).items():
            procs[pid].candidates[procs[npid].self_ref] = belief
    return Engine(
        procs.values(),
        OldestFirstScheduler(),
        capability=Capability.EXIT,
        oracle=NoIncomingOracle(),
        require_staying_per_component=False,
    )


def drive_timeout(eng, pid):
    from tests.conftest import drive_timeout as dt

    return dt(eng, pid)


def deliver(eng, pid, label, *args):
    from tests.conftest import deliver as dv

    return dv(eng, pid, label, *args)


class TestSheddingRule:
    def test_staying_sheds_any_leaving(self):
        eng = make_baseline({0: {"candidates": {1: L}}, 1: {"mode": L}})
        p = drive_timeout(eng, 0)
        assert Ref(1) not in p.candidates
        assert ("b_insert", 0, S) in channel_payloads(eng, 1)

    def test_leaving_sheds_smaller_key_leaving(self):
        eng = make_baseline(
            {5: {"mode": L, "candidates": {1: L}}, 1: {"mode": L}}
        )
        p = drive_timeout(eng, 5)
        assert Ref(1) not in p.candidates

    def test_leaving_keeps_larger_key_leaving(self):
        eng = make_baseline(
            {1: {"mode": L, "candidates": {5: L}}, 5: {"mode": L}}
        )
        p = drive_timeout(eng, 1)
        assert Ref(5) in p.candidates

    def test_handler_applies_same_rule(self):
        eng = make_baseline({0: {}, 1: {"mode": L}})
        p = deliver(eng, 0, "b_insert", RefInfo(Ref(1), L))
        assert Ref(1) not in p.candidates
        assert ("b_insert", 0, S) in channel_payloads(eng, 1)


class TestLinearizeAndBridge:
    def test_delegation_toward_sides(self):
        eng = make_baseline(
            {5: {"candidates": {1: S, 3: S, 7: S, 9: S}}, 1: {}, 3: {}, 7: {}, 9: {}}
        )
        p = drive_timeout(eng, 5)
        assert set(p.candidates) == {Ref(3), Ref(7)}
        assert ("b_insert", 1, S) in channel_payloads(eng, 3)
        assert ("b_insert", 9, S) in channel_payloads(eng, 7)

    def test_leaving_bridges_endpoints(self):
        eng = make_baseline(
            {5: {"mode": L, "candidates": {3: S, 7: S}}, 3: {}, 7: {}}
        )
        drive_timeout(eng, 5)
        assert ("b_insert", 7, S) in channel_payloads(eng, 3)
        assert ("b_insert", 3, S) in channel_payloads(eng, 7)

    def test_leaving_announces_mode_when_blocked(self):
        eng = make_baseline(
            {5: {"mode": L, "candidates": {3: S}}, 3: {"candidates": {5: L}}}
        )
        drive_timeout(eng, 5)  # 3 still holds our ref: oracle false
        assert ("b_insert", 5, L) in channel_payloads(eng, 3)
        assert eng.processes[5].state is PState.AWAKE

    def test_unreferenced_leaving_exits(self):
        eng = make_baseline(
            {5: {"mode": L, "candidates": {3: S, 7: S}}, 3: {}, 7: {}}
        )
        p = drive_timeout(eng, 5)
        assert p.state is PState.GONE
        # the bridge was in flight at exit time: endpoints stay connected
        assert ("b_insert", 7, S) in channel_payloads(eng, 3)


class TestBaselineConvergence:
    @pytest.mark.parametrize("seed", range(4))
    def test_converges_with_departures(self, seed):
        n = 12
        edges = gen.random_connected(n, 6, seed=seed)
        leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
        eng = build_baseline_engine(
            n,
            edges,
            leaving,
            seed=seed,
            monitors=[ConnectivityMonitor(check_every=8)],
        )
        assert eng.run(BUDGET, until=fdp_legitimate, check_every=64)
        assert eng.stats.exits == len(leaving)

    def test_staying_end_in_sorted_list(self):
        """The baseline's defining property: it reshapes everything into
        the sorted list."""
        n = 10
        edges = gen.random_connected(n, 5, seed=8)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=8)

        def done(e):
            if not fdp_legitimate(e):
                return False
            staying = {
                pid
                for pid, p in e.processes.items()
                if p.mode is S and p.state is not PState.GONE
            }
            snap = e.snapshot()
            explicit = {
                (x.src, x.dst)
                for x in snap.edges
                if x.kind is EdgeKind.EXPLICIT
                and x.src in staying
                and x.dst in staying
            }
            return is_sorted_line(
                frozenset(explicit), {pid: float(pid) for pid in staying}
            )

        eng = build_baseline_engine(n, edges, leaving, seed=8)
        assert eng.run(BUDGET, until=done, check_every=64)

    def test_adjacent_leaving_chain_resolves(self):
        """Order-based tie-breaking: consecutive leaving list nodes exit."""
        n = 8
        edges = gen.bidirected_line(n)
        eng = build_baseline_engine(n, edges, leaving={3, 4, 5}, seed=1)
        assert eng.run(BUDGET, until=fdp_legitimate, check_every=32)

    def test_belief_corruption_tolerated(self):
        n = 10
        edges = gen.bidirected_line(n)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=5)
        eng = build_baseline_engine(
            n, edges, leaving, seed=5, belief_lie_prob=0.4,
            monitors=[ConnectivityMonitor(check_every=8)],
        )
        assert eng.run(BUDGET, until=fdp_legitimate, check_every=64)

    def test_requires_order_declared(self):
        assert BaselineListProcess.requires_order is True
