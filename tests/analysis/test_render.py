"""ASCII graph rendering."""

from repro.analysis.render import render_adjacency_list, render_matrix, render_modes
from repro.sim.states import Mode, PState

from tests.conftest import make_fdp_engine

S, L = Mode.STAYING, Mode.LEAVING


def small_engine():
    return make_fdp_engine(
        {
            0: {"neighbors": {1: S}},
            1: {"neighbors": {0: S, 2: L}},
            2: {"mode": L},
        }
    )


class TestAdjacencyList:
    def test_lists_neighbours_and_modes(self):
        out = render_adjacency_list(small_engine(), title="t")
        assert out.startswith("t")
        assert "0 → [1]" in out
        assert "leaving" in out

    def test_gone_marked(self):
        eng = small_engine()
        eng.attach()
        eng._transition(eng.processes[2], PState.GONE)
        out = render_adjacency_list(eng)
        assert "✝ gone" in out


class TestMatrix:
    def test_explicit_marker(self):
        out = render_matrix(small_engine())
        assert "#" in out
        assert "legend" in out

    def test_implicit_marker(self):
        from repro.sim.messages import RefInfo

        eng = small_engine()
        eng.post(None, eng.ref(0), "present", (RefInfo(eng.ref(2), L),))
        out = render_matrix(eng)
        assert "·" in out

    def test_both_marker(self):
        from repro.sim.messages import RefInfo

        eng = small_engine()
        eng.post(None, eng.ref(0), "present", (RefInfo(eng.ref(1), S),))
        assert "@" in render_matrix(eng)

    def test_gone_marker(self):
        eng = small_engine()
        eng.attach()
        eng._transition(eng.processes[2], PState.GONE)
        assert "x" in render_matrix(eng)


class TestModesStrip:
    def test_strip(self):
        eng = small_engine()
        assert render_modes(eng) == "SSL"

    def test_asleep_lowercase_and_gone_cross(self):
        from repro.sim.states import Capability

        eng = make_fdp_engine(
            {0: {}, 1: {"mode": L}, 2: {"mode": L}},
            capability=Capability.BOTH,
        )
        eng.attach()
        eng._transition(eng.processes[1], PState.ASLEEP)
        eng._transition(eng.processes[2], PState.GONE)
        assert render_modes(eng) == "Sl✝"
