"""Epoch-based churn simulation."""

import pytest

from repro.analysis.churn import ChurnSimulation, EpochResult
from repro.core.scenarios import Corruption
from repro.graphs import generators as gen
from repro.overlays.ring import RingLogic
from repro.overlays.star import StarLogic


class TestChurnSimulation:
    def test_single_epoch(self):
        sim = ChurnSimulation(
            RingLogic, 10, gen.random_connected(10, 5, seed=1), seed=1
        )
        result = sim.run_epoch()
        assert result.converged
        assert result.population == 10
        assert len(result.survivors) == 10 - result.leavers
        assert sim.pids == list(result.survivors)

    def test_multi_epoch_population_shrinks(self):
        sim = ChurnSimulation(
            RingLogic,
            12,
            gen.random_connected(12, 6, seed=2),
            churn_rate=0.3,
            seed=2,
        )
        results = sim.run(3, min_population=4)
        assert all(r.converged for r in results)
        pops = [r.population for r in results]
        assert pops == sorted(pops, reverse=True)

    def test_survivor_pids_are_original_ids(self):
        sim = ChurnSimulation(
            StarLogic, 8, gen.random_connected(8, 4, seed=3), seed=3
        )
        sim.run(2)
        for r in sim.results:
            assert all(0 <= pid < 8 for pid in r.survivors)

    def test_epoch_topology_feeds_next_epoch(self):
        sim = ChurnSimulation(
            RingLogic, 10, gen.random_connected(10, 5, seed=4), seed=4,
            churn_rate=0.25,
        )
        sim.run_epoch()
        # surviving topology references only surviving pids
        alive = set(sim.pids)
        assert all(a in alive and b in alive for a, b in sim.edges)
        sim.run_epoch()  # and it is a valid starting state for the next wave

    def test_with_corruption(self):
        sim = ChurnSimulation(
            RingLogic,
            10,
            gen.random_connected(10, 5, seed=5),
            corruption=Corruption(belief_lie_prob=0.2, garbage_per_process=0.5),
            seed=5,
        )
        assert sim.run_epoch().converged

    def test_min_population_stops(self):
        sim = ChurnSimulation(
            RingLogic, 6, gen.ring(6), churn_rate=0.6, seed=6
        )
        sim.run(10, min_population=5)
        assert len(sim.pids) < 5 or len(sim.results) == 10

    def test_rows_shape(self):
        sim = ChurnSimulation(RingLogic, 8, gen.ring(8), seed=7)
        sim.run(1)
        rows = sim.rows()
        assert len(rows) == len(sim.results)
        assert len(rows[0]) == 7

    def test_churn_rate_validation(self):
        with pytest.raises(ValueError):
            ChurnSimulation(RingLogic, 5, gen.ring(5), churn_rate=1.0)
