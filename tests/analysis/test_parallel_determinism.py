"""Serial ≡ parallel determinism of the trial fabric.

The fabric's contract is that ``run_series(parallel=True)`` returns the
*same sequence of TrialResult objects* as the serial path for the same
seeds — chunking, worker scheduling, and completion order must be
invisible in the output. These tests exercise the real FDP and FSP
scenarios (heavy corruption, so the runs are nontrivial) through actual
worker processes; builders live at module level so they pickle.
"""

from __future__ import annotations

from repro.analysis.runner import TrialFabric, run_series
from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    build_fsp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen

N = 12
BUDGET = 60_000


def _topology(seed: int):
    edges = gen.random_connected(N, N // 2, seed=seed)
    leaving = choose_leaving(N, edges, fraction=0.3, seed=seed)
    return edges, leaving


def build_fdp(seed: int):
    edges, leaving = _topology(seed)
    return build_fdp_engine(
        N, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION
    )


def build_fsp(seed: int):
    edges, leaving = _topology(seed)
    return build_fsp_engine(
        N, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION
    )


def collect_phi(engine) -> dict:
    return {"phi": float(engine.potential())}


def _series(build, until, **kw):
    return run_series(
        build,
        range(6),
        until=until,
        max_steps=BUDGET,
        check_every=64,
        collect=collect_phi,
        **kw,
    )


class TestSerialParallelIdentity:
    def test_fdp_sequences_identical(self):
        serial = _series(build_fdp, fdp_legitimate, parallel=False)
        fanned = _series(build_fdp, fdp_legitimate, parallel=True, max_workers=2)
        assert serial.trials == fanned.trials
        assert [t.seed for t in fanned.trials] == list(range(6))

    def test_fsp_sequences_identical(self):
        serial = _series(build_fsp, fsp_legitimate, parallel=False)
        fanned = _series(build_fsp, fsp_legitimate, parallel=True, max_workers=2)
        assert serial.trials == fanned.trials

    def test_chunk_size_does_not_leak_into_results(self):
        """Different chunkings reassemble to the same sequence."""
        one = _series(build_fdp, fdp_legitimate, parallel=True, max_workers=2,
                      chunk_size=1)
        big = _series(build_fdp, fdp_legitimate, parallel=True, max_workers=2,
                      chunk_size=4)
        assert one.trials == big.trials

    def test_warm_fabric_reuse_identical(self):
        """A fabric shared across two series (the sweep pattern) gives the
        same results as fresh pools."""
        with TrialFabric(max_workers=2, chunk_size=2) as fab:
            first = _series(build_fdp, fdp_legitimate, fabric=fab)
            second = _series(build_fdp, fdp_legitimate, fabric=fab)
        assert first.trials == second.trials
        assert first.trials == _series(build_fdp, fdp_legitimate,
                                       parallel=False).trials


class TestStructuredFailures:
    def test_capture_identical_serial_and_parallel(self):
        serial = _series(build_fdp, fdp_legitimate, parallel=False,
                         on_error="capture")
        fanned = _series(build_fdp, fdp_legitimate, parallel=True,
                         max_workers=2, on_error="capture")
        assert serial.trials == fanned.trials
        assert serial.failures == []
