"""Fabric resilience: a killed worker loses no results, a slow trial no sweep.

The killer builder must live at module level (workers unpickle it), and
it must only fire *inside a worker* (pid differs from the orchestrating
process) and only *once* (a flag file) — the resubmitted chunk and the
serial baseline then build the very same engines, which is what makes
the bit-identity assertion meaningful.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.runner import TrialFabric, run_series, run_trial
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import (
    build_fdp_engine,
    choose_leaving,
    corruption_from_factor,
)
from repro.errors import TrialTimeout
from repro.graphs import generators as gen

N = 8
BUDGET = 60_000


def build_fdp(seed: int):
    edges = gen.random_connected(N, N // 2, seed=seed)
    leaving = choose_leaving(N, edges, fraction=0.3, seed=seed)
    return build_fdp_engine(N, edges, leaving, seed=seed, corruption=corruption_from_factor(0.6))


class KillerBuild:
    """Builds normal engines — except the first call inside a worker
    process, which kills that worker outright (``os._exit`` escapes every
    exception handler, exactly like the OOM killer would)."""

    def __init__(self, parent_pid: int, flag_path: str) -> None:
        self.parent_pid = parent_pid
        self.flag_path = flag_path

    def __call__(self, seed: int):
        if os.getpid() != self.parent_pid and not os.path.exists(self.flag_path):
            with open(self.flag_path, "w"):
                pass
            os._exit(1)
        return build_fdp(seed)


class TestWorkerDeath:
    def test_killed_worker_recovers_with_serial_identical_results(self, tmp_path):
        """One worker dies mid-batch: the fabric rebuilds the pool,
        resubmits only the missing chunks, logs the recovery, and the
        reassembled sequence is bit-identical to the serial path."""
        build = KillerBuild(os.getpid(), str(tmp_path / "killed-once"))
        serial = [
            run_trial(
                build, s, until=fdp_legitimate, max_steps=BUDGET,
                capture_errors=True,
            )
            for s in range(6)
        ]
        with TrialFabric(max_workers=2, chunk_size=2) as fabric:
            fanned = fabric.run(
                build, range(6), until=fdp_legitimate, max_steps=BUDGET
            )
            recovery = list(fabric.recovery_log)
        assert os.path.exists(str(tmp_path / "killed-once")), "worker never died"
        assert fanned == serial
        assert all(t.error is None for t in fanned)
        assert recovery, "a pool rebuild must be logged, never silent"
        assert all(
            event["event"] in ("pool_rebuilt", "serial_fallback")
            for event in recovery
        )
        assert all(event["chunks"] for event in recovery)

    def test_exhausted_retries_fall_back_to_serial(self, tmp_path):
        """With zero pool retries the fabric may not rebuild — the
        missing chunks must complete serially in-process instead."""
        build = KillerBuild(os.getpid(), str(tmp_path / "killed-once"))
        with TrialFabric(
            max_workers=2, chunk_size=2, max_pool_retries=0
        ) as fabric:
            fanned = fabric.run(
                build, range(4), until=fdp_legitimate, max_steps=BUDGET
            )
            recovery = list(fabric.recovery_log)
        assert [t.seed for t in fanned] == list(range(4))
        assert all(t.error is None for t in fanned)
        assert any(event["event"] == "serial_fallback" for event in recovery)

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError):
            TrialFabric(max_pool_retries=-1)


class TestTrialTimeout:
    def test_timeout_raises_by_default(self):
        with pytest.raises(TrialTimeout):
            run_trial(
                build_fdp,
                1,
                until=lambda e: False,  # never satisfied: run out the clock
                max_steps=10**9,
                check_every=1,
                timeout=0.05,
            )

    def test_timeout_captured_as_structured_failure(self):
        trial = run_trial(
            build_fdp,
            1,
            until=lambda e: False,
            max_steps=10**9,
            check_every=1,
            timeout=0.05,
            capture_errors=True,
        )
        assert trial.failed
        assert trial.error.startswith("TrialTimeout")
        assert not trial.converged
        assert trial.steps > 0  # the run got somewhere before the clock hit
        assert trial.stats  # ... and its stats survived the failure

    def test_run_series_threads_timeout(self):
        series = run_series(
            build_fdp,
            range(2),
            until=lambda e: False,
            max_steps=10**9,
            check_every=1,
            timeout=0.05,
            on_error="capture",
        )
        assert all(t.error.startswith("TrialTimeout") for t in series.trials)

    def test_no_timeout_is_no_limit(self):
        trial = run_trial(
            build_fdp, 1, until=fdp_legitimate, max_steps=BUDGET, timeout=None
        )
        assert trial.converged
