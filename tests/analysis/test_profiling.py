"""Profiling hooks."""

import time

from repro.analysis.profiling import Stopwatch, profile_call, time_block


class TestProfileCall:
    def test_returns_result_and_report(self):
        result, report = profile_call(sum, range(1000))
        assert result == 499500
        assert "cumulative" in report or "function calls" in report

    def test_top_limit(self):
        _, report = profile_call(sorted, list(range(100)), top=3)
        assert isinstance(report, str)


class TestStopwatch:
    def test_accumulates_sections(self):
        sw = Stopwatch()
        with sw.section("a"):
            pass
        with sw.section("a"):
            pass
        with sw.section("b"):
            pass
        assert sw.counts["a"] == 2
        assert sw.counts["b"] == 1
        assert sw.totals["a"] >= 0.0

    def test_report_lists_sections(self):
        sw = Stopwatch()
        with sw.section("hot"):
            time.sleep(0.001)
        report = sw.report()
        assert "hot" in report
        assert "per_call_ms" in report

    def test_section_survives_exceptions(self):
        sw = Stopwatch()
        try:
            with sw.section("x"):
                raise ValueError
        except ValueError:
            pass
        assert sw.counts["x"] == 1


class TestTimeBlock:
    def test_sink_receives_label(self):
        lines = []
        with time_block("phase", sink=lines.append):
            pass
        assert len(lines) == 1
        assert lines[0].startswith("phase:")
