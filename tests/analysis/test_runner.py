"""Trial runner and series aggregation."""

import math

import pytest

from repro.analysis.runner import SeriesResult, TrialResult, run_series, run_trial
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import build_fdp_engine, choose_leaving
from repro.graphs import generators as gen


def builder(seed):
    n = 8
    edges = gen.ring(n)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=7)
    return build_fdp_engine(n, edges, leaving, seed=seed)


class TestRunTrial:
    def test_converging_trial(self):
        t = run_trial(builder, 1, until=fdp_legitimate, max_steps=100_000)
        assert t.converged
        assert t.steps > 0
        assert t.messages > 0
        assert t.exits > 0

    def test_budget_exhaustion(self):
        t = run_trial(builder, 1, until=lambda e: False, max_steps=50)
        assert not t.converged
        assert t.steps == 50

    def test_collect_extra(self):
        t = run_trial(
            builder,
            1,
            until=fdp_legitimate,
            max_steps=100_000,
            collect=lambda e: {"phi": e.potential()},
        )
        assert t.extra["phi"] == 0


class TestSeries:
    def test_aggregation(self):
        s = run_series(
            builder,
            range(4),
            until=fdp_legitimate,
            max_steps=100_000,
            parallel=False,
        )
        assert s.n == 4
        assert s.convergence_rate == 1.0
        summary = s.steps_summary()
        assert summary["min"] <= summary["median"] <= summary["max"]

    def test_partial_convergence_rate(self):
        trials = [
            TrialResult(True, 10, {"messages_posted": 5}),
            TrialResult(False, 99, {"messages_posted": 50}),
        ]
        s = SeriesResult(trials)
        assert s.convergence_rate == 0.5
        # summaries only cover converged trials
        assert s.steps_summary()["max"] == 10

    def test_empty_series(self):
        s = SeriesResult([])
        assert s.convergence_rate == 0.0
        assert math.isnan(s.steps_summary()["median"])

    def test_extra_summary(self):
        trials = [
            TrialResult(True, 1, {}, extra={"x": 2.0}),
            TrialResult(True, 1, {}, extra={"x": 4.0}),
        ]
        s = SeriesResult(trials)
        assert s.extra_summary("x")["mean"] == 3.0
