"""Table/series/sparkline rendering."""

from repro.analysis.tables import format_kv, format_series, format_table, sparkline


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["name", "value"], [["alpha", 1], ["b", 22.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        # columns aligned: separators at consistent positions
        assert lines[0].index("|") == lines[2].index("|")

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1] == "========"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.5], [12345.678], [float("nan")]])
        assert "0.5" in out
        assert "1.23e+04" in out
        assert "—" in out

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "✓" in out and "✗" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert s[0] != s[-1]

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_gap(self):
        s = sparkline([1.0, float("nan"), 2.0])
        assert s[1] == " "


class TestFormatSeries:
    def test_contains_values_and_shape(self):
        out = format_series(
            "n", [2, 4, 8], {"steps": [10.0, 20.0, 40.0]}, title="scaling"
        )
        assert "scaling" in out
        assert "shape:" in out
        assert "steps" in out
        assert "40" in out


class TestFormatKV:
    def test_pairs(self):
        out = format_kv({"alpha": 1, "bb": True}, title="cfg")
        assert "cfg" in out
        assert "alpha : 1" in out
        assert "✓" in out
