"""Parameter sweep grid tests."""

from repro.analysis.sweep import SweepPoint, sweep
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import build_fdp_engine, choose_leaving
from repro.graphs import generators as gen


def make_builder(n, fraction):
    def build(seed):
        edges = gen.ring(n)
        leaving = choose_leaving(n, edges, fraction=fraction, seed=seed)
        return build_fdp_engine(n, edges, leaving, seed=seed)

    return build


class TestSweep:
    def test_grid_crossing(self):
        points = sweep(
            {"n": [4, 6], "fraction": [0.25, 0.5]},
            make_builder,
            until=fdp_legitimate,
            max_steps=100_000,
            seeds_per_point=2,
            parallel=False,
        )
        assert len(points) == 4
        params = [(p.params["n"], p.params["fraction"]) for p in points]
        assert (4, 0.25) in params and (6, 0.5) in params

    def test_all_points_converge(self):
        points = sweep(
            {"n": [5], "fraction": [0.2]},
            make_builder,
            until=fdp_legitimate,
            max_steps=100_000,
            seeds_per_point=3,
            parallel=False,
        )
        assert points[0].result.convergence_rate == 1.0

    def test_rows_flatten(self):
        points = sweep(
            {"n": [4]},
            lambda n: make_builder(n, 0.25),
            until=fdp_legitimate,
            max_steps=100_000,
            seeds_per_point=2,
            parallel=False,
        )
        row = points[0].row()
        assert row[0] == 4  # param
        assert row[1] == 1.0  # convergence rate

    def test_seeds_distinct_per_point(self):
        seen = []

        def builder_factory(n):
            def build(seed):
                seen.append(seed)
                return make_builder(n, 0.25)(seed)

            return build

        sweep(
            {"n": [4, 5]},
            builder_factory,
            until=fdp_legitimate,
            max_steps=50_000,
            seeds_per_point=2,
            parallel=False,
        )
        assert len(set(seen)) == 4  # no seed collisions across grid points
