"""Statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    bootstrap_median_ci,
    is_nonincreasing,
    loglog_slope,
    normalized_area_under,
)


class TestBootstrapMedianCI:
    def test_interval_contains_median(self):
        values = [1.0, 2.0, 3.0, 4.0, 100.0]
        med, lo, hi = bootstrap_median_ci(values, seed=1)
        assert med == 3.0
        assert lo <= med <= hi

    def test_empty(self):
        med, lo, hi = bootstrap_median_ci([])
        assert math.isnan(med)

    def test_deterministic_by_seed(self):
        values = list(range(20))
        assert bootstrap_median_ci(values, seed=5) == bootstrap_median_ci(
            values, seed=5
        )

    @given(st.lists(st.floats(0, 1e6), min_size=3, max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_ci_ordered(self, values):
        med, lo, hi = bootstrap_median_ci(values, n_boot=200, seed=0)
        assert lo <= hi


class TestLogLogSlope:
    def test_linear_scaling(self):
        xs = [2, 4, 8, 16]
        ys = [10, 20, 40, 80]
        assert loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_quadratic_scaling(self):
        xs = [2, 4, 8, 16]
        ys = [4, 16, 64, 256]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_drops_nonpositive(self):
        assert loglog_slope([1, 2, 0], [2, 4, -1]) == pytest.approx(1.0)

    def test_insufficient_data(self):
        assert math.isnan(loglog_slope([1], [1]))


class TestIsNonincreasing:
    def test_flat_and_decreasing(self):
        assert is_nonincreasing([5, 5, 4, 1, 0])

    def test_rise_detected(self):
        assert not is_nonincreasing([3, 2, 4])

    def test_tolerance(self):
        assert is_nonincreasing([3.0, 3.05], tolerance=0.1)

    def test_short_series(self):
        assert is_nonincreasing([])
        assert is_nonincreasing([7])


class TestNormalizedArea:
    def test_constant_series(self):
        assert normalized_area_under([0, 10], [3, 3]) == pytest.approx(3.0)

    def test_linear_decay(self):
        assert normalized_area_under([0, 10], [10, 0]) == pytest.approx(5.0)

    def test_degenerate(self):
        assert normalized_area_under([1], [5]) == 5.0
