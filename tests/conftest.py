"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.fdp import FDPProcess
from repro.sim.engine import Engine
from repro.sim.refs import Ref
from repro.sim.scheduler import OldestFirstScheduler, RandomScheduler
from repro.sim.states import Capability, Mode


def ref(pid: int) -> Ref:
    """Shorthand reference constructor."""
    return Ref(pid)


def make_fdp_engine(
    specs: dict[int, dict],
    *,
    oracle=None,
    scheduler=None,
    capability: Capability = Capability.EXIT,
    seed: int = 0,
    monitors=(),
    strict: bool = True,
    require_staying: bool = False,
):
    """Build a small hand-wired FDP engine from per-process specs.

    ``specs[pid]`` may contain: ``mode`` (default staying), ``neighbors``
    (dict pid -> Mode belief), ``anchor`` (pid), ``anchor_belief`` (Mode).
    """

    from repro.core.oracles import SingleOracle

    procs = {}
    for pid, spec in specs.items():
        procs[pid] = FDPProcess(pid, spec.get("mode", Mode.STAYING))
    for pid, spec in specs.items():
        for npid, belief in spec.get("neighbors", {}).items():
            procs[pid].N[procs[npid].self_ref] = belief
        if "anchor" in spec and spec["anchor"] is not None:
            procs[pid].anchor = procs[spec["anchor"]].self_ref
            procs[pid].anchor_belief = spec.get("anchor_belief", Mode.STAYING)
    return Engine(
        procs.values(),
        scheduler if scheduler is not None else OldestFirstScheduler(),
        capability=capability,
        oracle=oracle if oracle is not None else SingleOracle(),
        seed=seed,
        monitors=monitors,
        strict=strict,
        require_staying_per_component=require_staying,
    )


def drive_timeout(engine: Engine, pid: int):
    """Execute the timeout action of *pid* directly (unit-test helper)."""
    from repro.sim.process import ActionContext

    engine.attach()
    proc = engine.processes[pid]
    ctx = ActionContext(engine, proc)
    proc.timeout(ctx)
    requested = ctx._close()
    if requested is not None:
        engine._transition(proc, requested)
    engine._dirty = True
    return proc


def deliver(engine: Engine, pid: int, label: str, *args):
    """Deposit and immediately process one message at *pid* (unit helper)."""
    from repro.sim.process import ActionContext

    engine.attach()
    proc = engine.processes[pid]
    msg = engine.post(None, proc.self_ref, label, tuple(args))
    engine.channels[pid].remove(msg.seq)
    handler = proc.handler(label)
    assert handler is not None, f"no handler for {label}"
    if proc.state.value == "asleep":
        engine._transition(proc, __import__("repro.sim.states", fromlist=["PState"]).PState.AWAKE)
    ctx = ActionContext(engine, proc)
    handler(ctx, *msg.args)
    requested = ctx._close()
    if requested is not None:
        engine._transition(proc, requested)
    engine._dirty = True
    return proc


def channel_labels(engine: Engine, pid: int) -> list[str]:
    """Labels of messages currently pending at *pid* (oldest first)."""
    return [m.label for m in engine.channels[pid]]


def channel_payloads(engine: Engine, pid: int) -> list[tuple]:
    """(label, ref-pid, belief) triples pending at *pid*."""
    from repro.sim.refs import pid_of

    out = []
    for m in engine.channels[pid]:
        infos = list(m.refinfos())
        if infos:
            out.append((m.label, pid_of(infos[0].ref), infos[0].mode))
        else:
            out.append((m.label, None, None))
    return out


@pytest.fixture
def two_staying():
    """Two staying processes knowing each other."""
    return make_fdp_engine(
        {
            0: {"neighbors": {1: Mode.STAYING}},
            1: {"neighbors": {0: Mode.STAYING}},
        }
    )
