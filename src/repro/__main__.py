"""``python -m repro`` — the command-line interface (see repro.cli)."""

import sys

from repro.cli import main

sys.exit(main())
