"""Causal telemetry: provenance, streaming traces, and the probe catalog.

The paper's proofs are statements about *executions* — which message
caused which action, how the potential Φ drains, when the oracle fired.
This package makes those quantities observable on real runs without
giving up the O(Δ) per-step observation cost of the live graph:

* :mod:`repro.obs.provenance` — per-message lineage (parent = the
  message whose action posted it): happens-before chains, hop/age
  statistics, and "which planted garbage message ultimately triggered
  this exit" answers. Zero-cost when off — the engine pays one
  predicted-false branch per post/delivery.
* :mod:`repro.obs.trace` — a bounded-memory JSONL trace sink capturing
  the executed schedule, lifecycle transitions and oracle verdicts; the
  shipped file re-ingests through
  :class:`~repro.sim.replay.ReplayScheduler` for bit-identical replay.
* :mod:`repro.obs.metrics` — the documented probe registry (name,
  description, asymptotic cost) over the engine's O(1) counters, plus
  per-process Φ attribution (who holds / who is the subject of the
  invalid information).

Layering: ``repro.obs`` may import ``repro.sim``; the simulator never
imports ``repro.obs`` at runtime — the engine only holds the optional
tracker/sink objects it is handed.
"""

from __future__ import annotations

from repro.obs.metrics import (
    REGISTRY,
    Probe,
    phi_by_holder,
    phi_by_subject,
    sample_all,
)
from repro.obs.provenance import ExitRecord, Lineage, ProvenanceTracker
from repro.obs.trace import (
    JsonlTraceSink,
    TraceData,
    read_trace,
    replay_trace,
)

__all__ = [
    "ProvenanceTracker",
    "Lineage",
    "ExitRecord",
    "JsonlTraceSink",
    "TraceData",
    "read_trace",
    "replay_trace",
    "Probe",
    "REGISTRY",
    "sample_all",
    "phi_by_subject",
    "phi_by_holder",
]
