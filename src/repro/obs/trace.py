"""Streaming JSONL traces: record a run to disk, replay it bit-identically.

:class:`JsonlTraceSink` is an engine tracer (``Engine(..., tracer=sink)``)
that streams one compact JSON object per executed step to a file,
holding only a small line buffer in memory — unlike the in-memory
:class:`~repro.sim.replay.ScheduleRecorder` it is bounded regardless of
run length. The file carries everything a reader needs:

* a header (``"t": "h"``) with the format version and caller-supplied
  metadata — scenario builders store their full parameter set here so
  the initial state can be reconstructed;
* one step record (``"t": "s"``) per executed action: kind, pid, message
  seq/label, resulting lifecycle state, and the oracle query/verdict
  counter deltas when they changed — exactly the executed schedule plus
  the observations the paper's lemmas quantify over;
* optional metric records (``"t": "m"``) every *k* steps with the O(1)
  counters (Φ, gone, edges, pending);
* a final record (``"t": "f"``) with the run's closing counters, used by
  :func:`replay_trace` to verify a replay reproduced the recorded run.

Replaying re-ingests the step records as
:class:`~repro.sim.replay.RecordedEvent` s through a
:class:`~repro.sim.replay.ReplayScheduler`: message sequence numbers are
a pure function of posting order, so an identical initial state plus the
recorded schedule yields a bit-identical run (asserted by tests/obs/).

Schema (one JSON object per line, compact keys):

==== =======================================================
key  meaning
==== =======================================================
t    record type: h(eader) / s(tep) / m(etrics) / f(inal)
v    format version (header only, currently 1)
i    step index (the value of ``engine.step_count`` *before*
     the step for "s" records; the sampling step for "m")
k    step kind: "t" timeout, "d" deliver
p    executing pid
q    message seq (deliver only)
l    message label (deliver only)
st   resulting lifecycle state: a(wake) / s(leep) / g(one)
oq   cumulative oracle queries (only when changed)
ot   cumulative oracle-true verdicts (only when changed)
==== =======================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Any
from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.sim.replay import RecordedEvent, replay_run

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, ExecutedStep

__all__ = [
    "TRACE_VERSION",
    "JsonlTraceSink",
    "TraceData",
    "read_trace",
    "replay_trace",
]

TRACE_VERSION = 1

#: default number of buffered lines between file writes — small enough
#: that a crash loses little, large enough to amortize write syscalls.
DEFAULT_BUFFER_LINES = 256

_KIND_CODE = {"timeout": "t", "deliver": "d"}
_KIND_NAME = {"t": "timeout", "d": "deliver"}


class JsonlTraceSink:
    """Engine tracer streaming step records to a JSONL file.

    Bounded memory: at most ``buffer_lines`` pending lines plus a small
    label-encoding cache. Use as a context manager (or call
    :meth:`close`) so the final record lands on disk::

        with JsonlTraceSink("run.jsonl", meta={...}) as sink:
            engine = build_fdp_engine(..., tracer=sink)
            engine.run(10_000)
            sink.finalize(engine)
    """

    def __init__(
        self,
        path: str,
        *,
        meta: dict[str, Any] | None = None,
        metrics_every: int = 0,
        buffer_lines: int = DEFAULT_BUFFER_LINES,
    ) -> None:
        if metrics_every < 0:
            raise ValueError("metrics_every must be >= 0 (0 disables)")
        if buffer_lines < 1:
            raise ValueError("buffer_lines must be >= 1")
        self.path = path
        self.metrics_every = metrics_every
        self.buffer_lines = buffer_lines
        self.steps_recorded = 0
        self._fh: IO[str] | None = open(path, "w", encoding="utf-8")
        self._buf: list[str] = []
        self._label_json: dict[str, str] = {}
        self._stats: Any = None  # engine.stats, cached on first record
        self._last_oq = 0
        self._last_ot = 0
        self._finalized = False
        header = {"t": "h", "v": TRACE_VERSION, "meta": meta or {}}
        self._buf.append(json.dumps(header, separators=(",", ":")) + "\n")

    # ------------------------------------------------------------ hot path

    def record(self, engine: Engine, executed: ExecutedStep) -> None:
        """Engine hook: append one step record (O(1), no snapshot)."""
        kind = executed.kind
        if kind == "deliver":
            label = executed.label
            enc = self._label_json.get(label)  # type: ignore[arg-type]
            if enc is None:
                enc = json.dumps(label)
                self._label_json[label] = enc  # type: ignore[index]
            line = (
                f'{{"t":"s","i":{executed.index},"k":"d","p":{executed.pid},'
                f'"q":{executed.seq},"l":{enc}'
            )
        else:
            line = f'{{"t":"s","i":{executed.index},"k":"t","p":{executed.pid}'
        state = executed.new_state
        if state is not None:
            line += f',"st":"{state.value[0]}"'
        stats = self._stats
        if stats is None:
            stats = self._stats = engine.stats
        oq = stats.oracle_queries
        if oq != self._last_oq:
            ot = stats.oracle_true
            line += f',"oq":{oq},"ot":{ot}'
            self._last_oq = oq
            self._last_ot = ot
        buf = self._buf
        buf.append(line + "}\n")
        self.steps_recorded += 1
        if self.metrics_every and engine.step_count % self.metrics_every == 0:
            buf.append(
                f'{{"t":"m","i":{engine.step_count},"phi":{engine.potential()},'
                f'"gone":{engine.gone_count},"edges":{engine.edge_count},'
                f'"pend":{engine.pending_count}}}\n'
            )
        if len(buf) >= self.buffer_lines:
            self._flush()

    # ------------------------------------------------------------ lifecycle

    def _flush(self) -> None:
        if self._fh is None:
            raise ConfigurationError(f"trace sink {self.path!r} already closed")
        self._fh.write("".join(self._buf))
        self._buf.clear()

    def finalize(self, engine: Engine) -> None:
        """Write the final verification record (once, before close)."""
        if self._finalized:
            return
        self._finalized = True
        self._buf.append(
            f'{{"t":"f","steps":{engine.step_count},"phi":{engine.potential()},'
            f'"gone":{engine.gone_count},'
            f'"posted":{engine.stats.messages_posted}}}\n'
        )

    def close(self) -> None:
        """Flush buffered lines and close the file (idempotent)."""
        if self._fh is None:
            return
        self._flush()
        self._fh.close()
        self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __enter__(self) -> JsonlTraceSink:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class TraceData:
    """A parsed trace file."""

    version: int
    meta: dict[str, Any]
    events: list[RecordedEvent]
    steps: list[dict[str, Any]] = field(repr=False, default_factory=list)
    metrics: list[dict[str, Any]] = field(repr=False, default_factory=list)
    final: dict[str, Any] | None = None


def read_trace(path: str) -> TraceData:
    """Parse a JSONL trace file back into events + metadata.

    Raises :class:`~repro.errors.ConfigurationError` on a missing or
    version-incompatible header and on malformed records.
    """

    version: int | None = None
    meta: dict[str, Any] = {}
    events: list[RecordedEvent] = []
    steps: list[dict[str, Any]] = []
    metrics: list[dict[str, Any]] = []
    final: dict[str, Any] | None = None
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: malformed trace line: {exc}"
                ) from exc
            kind = rec.get("t")
            if kind == "h":
                version = rec.get("v")
                if version != TRACE_VERSION:
                    raise ConfigurationError(
                        f"{path}: unsupported trace version {version!r} "
                        f"(this reader speaks {TRACE_VERSION})"
                    )
                meta = rec.get("meta", {})
            elif kind == "s":
                try:
                    event_kind = _KIND_NAME[rec["k"]]
                    events.append(
                        RecordedEvent(event_kind, rec["p"], rec.get("q"))
                    )
                except KeyError as exc:
                    raise ConfigurationError(
                        f"{path}:{lineno}: malformed step record {rec!r}"
                    ) from exc
                steps.append(rec)
            elif kind == "m":
                metrics.append(rec)
            elif kind == "f":
                final = rec
    if version is None:
        raise ConfigurationError(f"{path}: no trace header record")
    return TraceData(version, meta, events, steps=steps, metrics=metrics, final=final)


def replay_trace(
    build: Callable[[], "Engine"],
    path: str,
    *,
    verify: bool = True,
) -> "Engine":
    """Rebuild the initial state and re-execute a trace file's schedule.

    *build* must reconstruct the recorded run's exact initial state (the
    scenario builders keyed by the header metadata satisfy this). With
    ``verify=True`` the replayed run's closing counters are checked
    against the trace's final record; a mismatch raises
    :class:`~repro.errors.ConfigurationError` — the replay is not the
    recorded run. Returns the engine after the replay.
    """

    data = read_trace(path)
    engine = replay_run(build, data.events)
    if verify and data.final is not None:
        observed = {
            "steps": engine.step_count,
            "phi": engine.potential(),
            "gone": engine.gone_count,
            "posted": engine.stats.messages_posted,
        }
        expected = {k: data.final[k] for k in observed if k in data.final}
        mismatches = {
            k: (expected[k], observed[k])
            for k in expected
            if expected[k] != observed[k]
        }
        if mismatches:
            raise ConfigurationError(
                f"replay of {path!r} diverged from the recorded run: "
                + ", ".join(
                    f"{k}: recorded {exp} vs replayed {obs}"
                    for k, (exp, obs) in sorted(mismatches.items())
                )
            )
    return engine
