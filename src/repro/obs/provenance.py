"""Message provenance: happens-before lineage over posted messages.

Every message either exists in the initial state (planted by the fault
injector — the "finitely many action-triggering messages" of Section
1.2's admissibility constraints) or was posted by an action, and every
action is either a timeout or the delivery of exactly one message. That
gives each message a unique *parent* — the message whose delivery posted
it (``None`` for timeout-posted and planted messages) — and the parent
relation organizes an execution's messages into forests rooted at the
initial state and at timeouts.

Relays (Scheideler & Setzer) and Berns' general framework analyze
exactly these causal chains when arguing departure safety; making them
observable lets the test-suite ask questions like "which planted garbage
message ultimately triggered this unsafe exit" directly.

The tracker is wired into the engine's post/deliver hot path behind a
``provenance is not None`` check — one predicted-false branch per
post/delivery when off. When on, bookkeeping is O(1) per message: one
:class:`Lineage` record (``__slots__``, engine-hot-path discipline) and
two dict operations. Memory is O(messages posted); provenance is a
diagnostic instrument, not an always-on monitor — for multi-million-step
soak runs prefer the bounded :class:`~repro.obs.trace.JsonlTraceSink`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.messages import Message

__all__ = ["Lineage", "ExitRecord", "ProvenanceTracker"]


class Lineage:
    """Provenance record of one message (allocated on the hot path).

    Attributes
    ----------
    seq:
        The message's engine-assigned sequence number (its identity).
    parent:
        Seq of the message whose delivery posted this one, or ``None``
        for roots (timeout-posted, planted, or posted before the tracker
        was attached).
    label / sender / target:
        The message's action label, sending pid (``None`` for planted
        messages) and receiving pid.
    born_step:
        ``engine.step_count`` at post time (0 for initial-state plants;
        -1 for synthetic roots the tracker never saw posted).
    depth:
        Hop count from the root of this message's causal tree (0 for
        roots) — "how long is the chain of actions behind this message".
    delivered_step:
        ``engine.step_count`` when the message was delivered, or ``None``
        while still in flight (messages to gone processes stay in flight
        forever; their lineage records why they exist regardless).
    """

    __slots__ = (
        "seq",
        "parent",
        "label",
        "sender",
        "target",
        "born_step",
        "depth",
        "delivered_step",
    )

    def __init__(
        self,
        seq: int,
        parent: int | None,
        label: str,
        sender: int | None,
        target: int,
        born_step: int,
        depth: int,
    ) -> None:
        self.seq = seq
        self.parent = parent
        self.label = label
        self.sender = sender
        self.target = target
        self.born_step = born_step
        self.depth = depth
        self.delivered_step: int | None = None

    @property
    def planted(self) -> bool:
        """Whether this message was planted (no sending process)."""
        return self.sender is None and self.parent is None

    def __repr__(self) -> str:
        parent = f"<-#{self.parent}" if self.parent is not None else "(root)"
        return (
            f"Lineage(#{self.seq}{parent} {self.label!r} "
            f"{self.sender}->{self.target} depth={self.depth})"
        )


class ExitRecord:
    """One ``exit`` transition with its causal trigger.

    ``trigger_seq`` is the message whose delivery ran the exiting action
    (``None`` for exits out of timeout actions); ``root_seq`` is the root
    of that message's causal chain — when the root is a planted message,
    this exit traces back to the corrupted initial state.
    """

    __slots__ = ("pid", "step", "trigger_seq", "root_seq")

    def __init__(
        self, pid: int, step: int, trigger_seq: int | None, root_seq: int | None
    ) -> None:
        self.pid = pid
        self.step = step
        self.trigger_seq = trigger_seq
        self.root_seq = root_seq

    def __repr__(self) -> str:
        return (
            f"ExitRecord(pid={self.pid}, step={self.step}, "
            f"trigger=#{self.trigger_seq}, root=#{self.root_seq})"
        )


class ProvenanceTracker:
    """Maintains the message-lineage forest of one run.

    Install via ``Engine(..., provenance=tracker)`` (or the scenario
    builders' ``provenance=`` passthrough — they construct the engine
    before scattering garbage, so planted messages get root records).
    The engine calls four O(1) hooks; everything else is offline query
    API over the accumulated records.
    """

    def __init__(self) -> None:
        #: seq → lineage, for every message the tracker has seen.
        self.records: dict[int, Lineage] = {}
        #: exit transitions with their causal triggers, in exit order.
        self.exits: list[ExitRecord] = []
        #: seq of the message currently being delivered (None outside
        #: delivery actions — i.e. during timeouts and between steps).
        self._current: int | None = None

    # ------------------------------------------------------------ engine hooks

    def on_post(self, msg: Message, target: int, step: int) -> None:
        """Engine hook: a message entered a channel."""
        parent = self._current
        if parent is not None:
            depth = self.records[parent].depth + 1
        else:
            depth = 0
        self.records[msg.seq] = Lineage(
            msg.seq, parent, msg.label, msg.sender, target, step, depth
        )

    def begin_deliver(self, msg: Message, pid: int, step: int) -> None:
        """Engine hook: a delivery action started for *msg*."""
        rec = self.records.get(msg.seq)
        if rec is None:
            # Posted before the tracker was attached: synthesize a root.
            rec = Lineage(msg.seq, None, msg.label, msg.sender, pid, -1, 0)
            self.records[msg.seq] = rec
        rec.delivered_step = step
        self._current = msg.seq

    def end_action(self) -> None:
        """Engine hook: the delivery action (and its sends) completed."""
        self._current = None

    def on_exit(self, pid: int, step: int) -> None:
        """Engine hook: *pid* transitioned to gone."""
        trigger = self._current
        root = self.root_seq(trigger) if trigger is not None else None
        self.exits.append(ExitRecord(pid, step, trigger, root))

    # ------------------------------------------------------------ queries

    def lineage(self, seq: int) -> Lineage | None:
        """The lineage record of message *seq*, if seen."""
        return self.records.get(seq)

    def chain(self, seq: int) -> list[Lineage]:
        """Causal chain of *seq*: the message first, its root last."""
        out: list[Lineage] = []
        cursor: int | None = seq
        while cursor is not None:
            rec = self.records.get(cursor)
            if rec is None:
                break
            out.append(rec)
            cursor = rec.parent
        return out

    def root_seq(self, seq: int) -> int:
        """Seq of the root of *seq*'s causal chain (itself if a root)."""
        cursor = seq
        while True:
            rec = self.records.get(cursor)
            if rec is None or rec.parent is None:
                return cursor
            cursor = rec.parent

    def hops(self, seq: int) -> int:
        """Causal depth of message *seq* (0 = root)."""
        rec = self.records.get(seq)
        return rec.depth if rec is not None else 0

    def age(self, seq: int) -> int | None:
        """Steps *seq* spent in flight, or ``None`` if undelivered."""
        rec = self.records.get(seq)
        if rec is None or rec.delivered_step is None or rec.born_step < 0:
            return None
        return rec.delivered_step - rec.born_step

    def planted_seqs(self) -> list[int]:
        """Seqs of planted root messages (the adversary's garbage)."""
        return sorted(
            seq for seq, rec in self.records.items() if rec.planted
        )

    def descendants_of(self, seq: int) -> list[int]:
        """Seqs of all messages causally downstream of *seq* (excl.)."""
        children: dict[int, list[int]] = {}
        for rec in self.records.values():
            if rec.parent is not None:
                children.setdefault(rec.parent, []).append(rec.seq)
        out: list[int] = []
        stack = list(children.get(seq, ()))
        while stack:
            cur = stack.pop()
            out.append(cur)
            stack.extend(children.get(cur, ()))
        return sorted(out)

    def exits_from_planted(self) -> list[ExitRecord]:
        """Exit records whose causal root is a planted message — the
        "which planted garbage ultimately triggered this exit" answer."""
        out: list[ExitRecord] = []
        for rec in self.exits:
            if rec.root_seq is None:
                continue
            root = self.records.get(rec.root_seq)
            if root is not None and root.planted:
                out.append(rec)
        return out

    def hop_stats(self) -> dict[str, float]:
        """Summary (count/min/max/mean) of causal depth over messages."""
        return _summary([rec.depth for rec in self.records.values()])

    def age_stats(self) -> dict[str, float]:
        """Summary of in-flight age over delivered messages."""
        ages = [
            rec.delivered_step - rec.born_step
            for rec in self.records.values()
            if rec.delivered_step is not None and rec.born_step >= 0
        ]
        return _summary(ages)

    def __len__(self) -> int:
        return len(self.records)


def _summary(values: list[int]) -> dict[str, float]:
    if not values:
        return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0}
    return {
        "count": len(values),
        "min": float(min(values)),
        "max": float(max(values)),
        "mean": sum(values) / len(values),
    }
