"""The documented probe catalog and per-process Φ attribution.

:data:`REGISTRY` is the named, documented superset of
:data:`repro.sim.tracing.STANDARD_PROBES`: every probe carries a
description and an asymptotic cost annotation, so experiment code (and
``repro metrics``) can pick instruments knowing what a per-step sample
costs. All catalog probes read counters the engine already maintains —
the PERF003 lint rule rejects probes that rebuild snapshots or scan the
process population (the shipped ``STANDARD_PROBES`` bug).

Φ attribution answers *where* the invalid information sits once Φ > 0:

* :func:`phi_by_subject` — per process the invalid information is
  *about* (beliefs contradicting that process's true mode);
* :func:`phi_by_holder` — per process *holding* the invalid information
  (in its memory or channel).

Both are analysis queries, not per-step probes: O(targets) /
O(distinct edge keys) in incremental graph mode, one snapshot scan in
rebuild mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING
from collections.abc import Callable

from repro.sim.tracing import (
    STANDARD_PROBES,
    _probe_asleep,
    _probe_edges,
    _probe_gone,
    _probe_messages_posted,
    _probe_pending,
    _probe_potential,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = [
    "Probe",
    "REGISTRY",
    "sample_all",
    "standard_probe_fns",
    "phi_by_subject",
    "phi_by_holder",
    "top_phi",
    "top_backlog",
]


@dataclass(frozen=True)
class Probe:
    """One documented metric probe: a named ``Engine -> float`` reader."""

    name: str
    description: str
    cost: str
    fn: Callable[["Engine"], float]

    def __call__(self, engine: "Engine") -> float:
        return self.fn(engine)


def _probe_steps(e: "Engine") -> float:
    return float(e.step_count)


def _probe_exits(e: "Engine") -> float:
    return float(e.stats.exits)


def _probe_sleeps(e: "Engine") -> float:
    return float(e.stats.sleeps)


def _probe_dropped_unknown(e: "Engine") -> float:
    return float(e.stats.dropped_unknown)


def _probe_oracle_queries(e: "Engine") -> float:
    return float(e.stats.oracle_queries)


def _probe_oracle_true(e: "Engine") -> float:
    return float(e.stats.oracle_true)


def _probe_load_imbalance(e: "Engine") -> float:
    return e.stats.load_imbalance()


def _probe_core_active(e: "Engine") -> float:
    return 1.0 if e.core_status["active"] else 0.0


def _probe_dropped_gone(e: "Engine") -> float:
    return float(e.stats.dropped_gone)


def _probe_bounced(e: "Engine") -> float:
    return float(e.stats.bounced)


def _traffic(e: "Engine"):
    # Set by repro.traffic.TrafficDriver; None on workload-less runs.
    return getattr(e, "traffic_stats", None)


def _probe_traffic_requests(e: "Engine") -> float:
    t = _traffic(e)
    return float(t.requests_issued) if t is not None else 0.0


def _probe_traffic_drop_rate(e: "Engine") -> float:
    t = _traffic(e)
    return float(t.drop_rate) if t is not None else 0.0


def _probe_traffic_latency_mean(e: "Engine") -> float:
    t = _traffic(e)
    return float(t.mean_latency) if t is not None else 0.0


def _probe_traffic_violations(e: "Engine") -> float:
    t = _traffic(e)
    return float(t.searchability_violations) if t is not None else 0.0


def _probe_traffic_population(e: "Engine") -> float:
    t = _traffic(e)
    return float(t.population) if t is not None else 0.0


def _net(e: "Engine"):
    # Set by repro.net.ReliableTransport.install; None on reliable runs.
    return getattr(e, "net_stats", None)


def _probe_net_sends(e: "Engine") -> float:
    t = _net(e)
    return float(t.sends) if t is not None else 0.0


def _probe_net_delivered(e: "Engine") -> float:
    t = _net(e)
    return float(t.delivered) if t is not None else 0.0


def _probe_net_dropped(e: "Engine") -> float:
    t = _net(e)
    return float(t.dropped) if t is not None else 0.0


def _probe_net_duplicated(e: "Engine") -> float:
    t = _net(e)
    return float(t.duplicated) if t is not None else 0.0


def _probe_net_delayed(e: "Engine") -> float:
    t = _net(e)
    return float(t.delayed) if t is not None else 0.0


def _probe_net_retransmits(e: "Engine") -> float:
    t = _net(e)
    return float(t.retransmits) if t is not None else 0.0


def _probe_net_acks(e: "Engine") -> float:
    t = _net(e)
    return float(t.acks) if t is not None else 0.0


_CATALOG: tuple[Probe, ...] = (
    Probe(
        "potential",
        "the potential Φ of Lemma 3 — edges carrying invalid mode information",
        "O(1)",
        _probe_potential,
    ),
    Probe("gone", "processes that have exited", "O(1)", _probe_gone),
    Probe("asleep", "processes currently hibernating", "O(1)", _probe_asleep),
    Probe(
        "pending_messages",
        "messages in flight across all channels (gone pids included)",
        "O(1)",
        _probe_pending,
    ),
    Probe(
        "messages_posted",
        "cumulative messages posted since the start of the run",
        "O(1)",
        _probe_messages_posted,
    ),
    Probe(
        "edges",
        "edges of PG, parallel copies and self-loops counted",
        "O(1)",
        _probe_edges,
    ),
    Probe("steps", "executed steps so far", "O(1)", _probe_steps),
    Probe("exits", "exit transitions taken", "O(1)", _probe_exits),
    Probe("sleeps", "sleep transitions taken", "O(1)", _probe_sleeps),
    Probe(
        "dropped_unknown",
        "deliveries whose label no action matched (model: ignored)",
        "O(1)",
        _probe_dropped_unknown,
    ),
    Probe(
        "oracle_queries", "oracle consultations so far", "O(1)", _probe_oracle_queries
    ),
    Probe(
        "oracle_true",
        "oracle consultations that answered true",
        "O(1)",
        _probe_oracle_true,
    ),
    Probe(
        "load_imbalance",
        "max/mean ratio of per-process delivered messages (1.0 = even)",
        "O(n)",
        _probe_load_imbalance,
    ),
    Probe(
        "core_active",
        "1.0 when the struct-of-arrays core is executing this run",
        "O(1)",
        _probe_core_active,
    ),
    Probe(
        "dropped_gone",
        "protocol sends to gone processes dropped (carried no third-party refs)",
        "O(1)",
        _probe_dropped_gone,
    ),
    Probe(
        "bounced",
        "third-party references bounced back to their senders (Section 4 postprocess)",
        "O(1)",
        _probe_bounced,
    ),
    Probe(
        "traffic_requests",
        "search requests issued by the open-system traffic driver",
        "O(1)",
        _probe_traffic_requests,
    ),
    Probe(
        "traffic_drop_rate",
        "fraction of traffic requests that failed (unreachable destination)",
        "O(1)",
        _probe_traffic_drop_rate,
    ),
    Probe(
        "traffic_latency_mean",
        "mean sampled request latency in overlay hops",
        "O(1)",
        _probe_traffic_latency_mean,
    ),
    Probe(
        "traffic_searchability_violations",
        "monotonic-searchability violations observed by the traffic driver",
        "O(1)",
        _probe_traffic_violations,
    ),
    Probe(
        "traffic_population",
        "non-gone population at the driver's last chunk boundary",
        "O(1)",
        _probe_traffic_population,
    ),
    Probe(
        "net_sends",
        "paper messages handed to the reliable transport",
        "O(1)",
        _probe_net_sends,
    ),
    Probe(
        "net_delivered",
        "data frames that arrived through the faulty underlay",
        "O(1)",
        _probe_net_delivered,
    ),
    Probe(
        "net_dropped",
        "data frames lost to underlay loss or an active partition",
        "O(1)",
        _probe_net_dropped,
    ),
    Probe(
        "net_duplicated",
        "data frames the underlay duplicated in flight",
        "O(1)",
        _probe_net_duplicated,
    ),
    Probe(
        "net_delayed",
        "data frames the underlay delayed past the next flush",
        "O(1)",
        _probe_net_delayed,
    ),
    Probe(
        "net_retransmits",
        "retransmission attempts fired by the ack/backoff loop",
        "O(1)",
        _probe_net_retransmits,
    ),
    Probe(
        "net_acks",
        "cumulative-ack frames sent back by receivers",
        "O(1)",
        _probe_net_acks,
    ),
)

#: name → probe; the documented catalog ``repro metrics`` renders.
REGISTRY: dict[str, Probe] = {p.name: p for p in _CATALOG}

# The registry must cover everything a default SeriesRecorder samples —
# guarded by tests/obs/test_metrics.py.
assert set(STANDARD_PROBES) <= set(REGISTRY)


def standard_probe_fns(names: tuple[str, ...] | None = None) -> dict[
    str, Callable[["Engine"], float]
]:
    """Catalog probes as a plain ``SeriesRecorder``-ready dict."""
    if names is None:
        return {name: probe.fn for name, probe in REGISTRY.items()}
    return {name: REGISTRY[name].fn for name in names}


def sample_all(engine: "Engine") -> dict[str, float]:
    """One sample of every catalog probe."""
    return {name: probe.fn(engine) for name, probe in REGISTRY.items()}


# ------------------------------------------------------------ Φ attribution


def phi_by_subject(engine: "Engine") -> dict[int, int]:
    """Φ broken down by the process the invalid information is *about*.

    ``sum(phi_by_subject(e).values()) == e.potential()`` always. Served
    from the live graph's per-target Φ buckets in incremental mode; by a
    snapshot scan in rebuild mode.
    """

    if engine.graph_mode == "incremental":
        return engine.live_graph.phi_by_subject()
    out: dict[int, int] = {}
    snap = engine.snapshot()
    for edge in snap.iter_invalid_edges(engine.actual_mode):
        out[edge.dst] = out.get(edge.dst, 0) + 1
    return out


def phi_by_holder(engine: "Engine") -> dict[int, int]:
    """Φ broken down by the process *holding* the invalid information
    (stored in its memory or sitting in its channel)."""

    if engine.graph_mode == "incremental":
        return engine.live_graph.phi_by_holder()
    out: dict[int, int] = {}
    snap = engine.snapshot()
    for edge in snap.iter_invalid_edges(engine.actual_mode):
        out[edge.src] = out.get(edge.src, 0) + 1
    return out


def top_phi(
    engine: "Engine", *, by: str = "subject", limit: int = 10
) -> list[tuple[int, int]]:
    """The *limit* largest Φ contributors as ``(pid, contribution)``.

    ``by="subject"`` attributes to the process the information is about,
    ``by="holder"`` to the process holding it. Ties break by pid for
    deterministic output.
    """

    if by == "subject":
        table = phi_by_subject(engine)
    elif by == "holder":
        table = phi_by_holder(engine)
    else:
        raise ValueError(f"by must be 'subject' or 'holder', not {by!r}")
    ranked = sorted(table.items(), key=_rank_key)
    return ranked[:limit]


def _rank_key(item: tuple[int, int]) -> tuple[int, int]:
    return (-item[1], item[0])


def top_backlog(engine: "Engine", limit: int = 5) -> list[tuple[int, int]]:
    """The *limit* most backlogged channels as ``(pid, pending)``.

    An analysis query (one O(n) pass over the channel table), not a
    per-step probe: watchdogs read the O(1) ``pending_count`` on the hot
    path and call this only when building a trip diagnosis. Gone pids
    are included — a gone process's growing channel is precisely the
    livelock signature this attribution exists to expose. Ties break by
    pid for deterministic output; empty channels are omitted.
    """

    ranked = sorted(
        (
            (pid, len(channel))
            for pid, channel in engine.channels.items()
            if len(channel)
        ),
        key=_rank_key,
    )
    return ranked[:limit]
