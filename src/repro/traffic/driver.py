"""The open-system traffic driver: churn + request streams over an Engine.

:class:`TrafficDriver` turns a closed-system :class:`~repro.sim.engine.
Engine` into a *service*: processes join on Poisson arrivals, serve
heavy-tailed sessions, then request departure; user search requests
stream through the overlay concurrently; every boundary reaps departed
processes whose slots became unreferenced. All stochastic choices come
from independent seeded streams, so the generated churn/request schedule
is a pure function of ``seed`` — runs replay bit-identically in every
engine mode, which is what lets ``engine_mode="verify"`` cross-check an
open-system run end to end.

Structure of a run: the engine executes protocol steps in *chunks*; at
every chunk boundary the driver performs churn operations (admissions,
departure intents, reaps) and issues requests. Churn is thus always
between computations — exactly the paper's open-system regime, where
each join/leave starts a new computation from an admissibly extended
initial state. Boundaries advance **virtual time** by the chunk size
even when the engine went quiescent early; session clocks tick on
virtual time, so a converged overlay still experiences churn (this is
what the closed-system driver got wrong: nothing could ever happen
after quiescence).

One liveness guard: the paper requires at least one staying process per
initial component (Sections 3-4), and the chaos campaigns assert the
same invariant. The driver therefore never flips the *last* staying
member of an initial component to leaving; processes admitted mid-run
are always free to leave.

Requests are observation-only reads of the live graph (never engine
mutations), so traffic requires ``graph_mode="incremental"`` and leaves
schedule replay untouched. The driver writes its own boundary-level
JSONL trace — hooking a per-step tracer would disqualify the run from
the struct-of-arrays fast path.
"""

from __future__ import annotations

import json
from heapq import heappop, heappush
from random import Random
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.sim.refs import Ref
from repro.sim.states import Mode, PState
from repro.traffic.arrivals import ArrivalConfig, sample_poisson, sample_session
from repro.traffic.requests import RequestConfig, SearchabilityTracker, TrafficStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.sim.process import Process

__all__ = ["TrafficDriver", "default_joiner"]

TRAFFIC_TRACE_VERSION = 1

#: builds a newcomer: (pid, contact ref) -> process ready for admit().
Joiner = Callable[[int, Ref], "Process"]


def default_joiner(template: "Process") -> Joiner:
    """Derive a joiner from an existing member of the population.

    Newcomers attach *by edge*: one stored reference to a contact already
    in the system (the admissible one-node extension ``Engine.admit``
    enforces). The subclass checks precede the exact-type ones because
    :class:`FrameworkProcess` extends :class:`FDPProcess`.
    """

    from repro.core.fdp import FDPProcess
    from repro.core.framework import FrameworkProcess
    from repro.core.fsp import FSPProcess
    from repro.overlays.base import OverlayProcess

    if isinstance(template, FrameworkProcess):
        logic_cls = type(template.logic)
        return lambda pid, contact: FrameworkProcess.join(pid, logic_cls, contact)
    if isinstance(template, OverlayProcess):
        cls, logic_cls = type(template), type(template.logic)
        return lambda pid, contact: cls.join(pid, logic_cls, contact)
    if type(template) is FSPProcess:
        return lambda pid, contact: FSPProcess(
            pid, Mode.STAYING, neighbors=[contact]
        )
    if type(template) is FDPProcess:
        return lambda pid, contact: FDPProcess(
            pid, Mode.STAYING, neighbors=[contact]
        )
    raise ConfigurationError(
        f"no default joiner for {type(template).__name__}; pass joiner="
    )


class TrafficDriver:
    """Drives one engine through an open-system churn + request workload."""

    def __init__(
        self,
        engine: "Engine",
        *,
        arrivals: ArrivalConfig | None = None,
        requests: RequestConfig | None = None,
        seed: int = 0,
        chunk: int = 256,
        joiner: Joiner | None = None,
        trace_path: str | None = None,
    ) -> None:
        if engine.graph_mode != "incremental":
            raise ConfigurationError(
                "traffic needs the live graph; use graph_mode='incremental'"
            )
        if chunk < 1:
            raise ConfigurationError("chunk must be >= 1")
        self.engine = engine
        self.arrivals = arrivals if arrivals is not None else ArrivalConfig()
        self.requests = requests if requests is not None else RequestConfig()
        self.arrivals.validate()
        self.requests.validate()
        self.seed = seed
        self.chunk = chunk
        self.trace_path = trace_path
        # Independent streams: retuning one knob never perturbs the others.
        self._join_rng = Random(f"{seed}:join")
        self._session_rng = Random(f"{seed}:session")
        self._request_rng = Random(f"{seed}:request")
        self._burst_rng = Random(f"{seed}:burst")
        self.stats = TrafficStats()
        self.searchability = SearchabilityTracker()
        engine.attach()  # idempotent; initial_components needs it
        self._joiner = joiner
        if self._joiner is None and engine.processes:
            template = engine.processes[min(engine.processes)]
            self._joiner = default_joiner(template)
        #: virtual time — advances chunk-by-chunk even through quiescence.
        self._vt = 0
        #: (expiry vt, pid) heap of running sessions.
        self._sessions: list[tuple[int, int]] = []
        #: staying & awake & present pids — contact/request/victim pool.
        self._staying: set[int] = set()
        #: leaving pids watched for GONE → reap.
        self._watch: set[int] = set()
        #: initial-component index and its staying head-count (the guard).
        self._comp_of: dict[int, int] = {}
        self._comp_staying: dict[int, int] = {}
        retired = getattr(engine, "_retired_pids", ())
        self._next_pid = (
            max(max(engine.processes, default=-1), max(retired, default=-1)) + 1
        )
        for idx, comp in enumerate(engine.initial_components):
            for pid in comp:
                self._comp_of[pid] = idx
        for pid, proc in engine.processes.items():
            if proc.state is PState.GONE:
                continue
            if proc.mode is Mode.STAYING:
                self._staying.add(pid)
                comp = self._comp_of.get(pid)
                if comp is not None:
                    self._comp_staying[comp] = self._comp_staying.get(comp, 0) + 1
                heappush(
                    self._sessions,
                    (sample_session(self._session_rng, self.arrivals), pid),
                )
            else:
                self._watch.add(pid)
        self.stats.population = sum(
            1 for p in engine.processes.values() if p.state is not PState.GONE
        )
        engine.traffic_stats = self.stats

    # ------------------------------------------------------------------ churn

    def _depart(self, pid: int) -> bool:
        """Flip *pid* to leaving if the staying-per-component guard allows."""

        if pid not in self._staying:
            return False
        comp = self._comp_of.get(pid)
        if comp is not None:
            if self._comp_staying[comp] <= 1:
                return False  # last staying member of an initial component
            self._comp_staying[comp] -= 1
        self.engine.request_leave(pid)
        self._staying.discard(pid)
        self._watch.add(pid)
        self.searchability.retire(pid)
        self.stats.leaves += 1
        return True

    def _reap_departed(self) -> None:
        engine = self.engine
        done: list[int] = []
        for pid in sorted(self._watch):
            proc = engine.processes.get(pid)
            if proc is None:
                done.append(pid)
                continue
            if proc.state is PState.GONE and engine.can_reap(pid):
                engine.reap(pid)
                self.searchability.retire(pid)
                self.stats.reaps += 1
                done.append(pid)
        self._watch.difference_update(done)

    def _admit_one(self, pool: list[int]) -> bool:
        if not pool or self._joiner is None:
            self.stats.joins_deferred += 1
            return False
        cap = self.arrivals.max_population
        if cap is not None and self.stats.population >= cap:
            self.stats.joins_deferred += 1
            return False
        contact_pid = self._join_rng.choice(pool)
        contact = self.engine.processes[contact_pid].self_ref
        pid = self._next_pid
        self._next_pid += 1
        proc = self._joiner(pid, contact)
        self.engine.admit(proc)
        self._staying.add(pid)
        pool.append(pid)
        self.stats.joins += 1
        self.stats.population += 1
        heappush(
            self._sessions,
            (self._vt + sample_session(self._session_rng, self.arrivals), pid),
        )
        return True

    # ------------------------------------------------------------------ requests

    def _hops(self, src: int, dst: int) -> int:
        """PG hop distance via BFS over the live partner index."""

        if src == dst:
            return 0
        live = self.engine.live_graph
        seen = {src}
        frontier = [src]
        hops = 0
        while frontier:
            hops += 1
            nxt: list[int] = []
            for u in frontier:
                for v in live.partners(u):
                    if v == dst:
                        return hops
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return -1  # unreachable — same_component said otherwise

    def _issue_requests(self, count: int, pool: list[int]) -> None:
        if count <= 0 or len(pool) < 2:
            return
        stats = self.stats
        live = self.engine.live_graph
        every = self.requests.latency_sample_every
        for _ in range(count):
            src, dst = self._request_rng.sample(pool, 2)
            ok = live.same_component((src, dst))
            stats.requests_issued += 1
            if ok:
                stats.requests_ok += 1
                if stats.requests_ok % every == 0:
                    hops = self._hops(src, dst)
                    if hops >= 0:
                        stats.latency_samples += 1
                        stats.latency_hops_total += hops
                        if hops > stats.latency_hops_max:
                            stats.latency_hops_max = hops
            else:
                stats.requests_failed += 1
            if self.searchability.record(src, dst, ok):
                stats.searchability_violations += 1

    # ------------------------------------------------------------------ boundaries

    def _boundary(self, budget: int) -> None:
        """All churn + traffic work at one chunk boundary (budget = virtual
        steps since the previous boundary)."""

        arrivals = self.arrivals
        # 1. sessions that expired by now request departure.
        while self._sessions and self._sessions[0][0] <= self._vt:
            _, pid = heappop(self._sessions)
            self._depart(pid)
        # 2. correlated mass departure.
        if (
            arrivals.mass_departure_prob > 0.0
            and self._burst_rng.random() < arrivals.mass_departure_prob
        ):
            pool = sorted(self._staying)
            k = max(1, int(len(pool) * arrivals.mass_departure_frac))
            for pid in self._burst_rng.sample(pool, min(k, len(pool))):
                self._depart(pid)
        # 3. reclaim departed, unreferenced processes.
        self._reap_departed()
        self.stats.population = sum(
            1
            for p in self.engine.processes.values()
            if p.state is not PState.GONE
        )
        # 4. arrivals (Poisson + optional flash crowd).
        joins = sample_poisson(
            self._join_rng, arrivals.join_rate * budget / 1000.0
        )
        if (
            arrivals.flash_crowd_prob > 0.0
            and self._burst_rng.random() < arrivals.flash_crowd_prob
        ):
            joins += arrivals.flash_crowd_size
        pool = sorted(self._staying)
        for _ in range(joins):
            self._admit_one(pool)
        # 5. user requests against the post-churn population.
        count = sample_poisson(
            self._request_rng, self.requests.rate * budget / 1000.0
        )
        self._issue_requests(count, pool)

    # ------------------------------------------------------------------ run

    def run(self, total_steps: int) -> dict:
        """Drive *total_steps* virtual steps of open-system operation.

        Returns a report dict (also reachable as ``engine.traffic_stats``
        for the probe registry while the run progresses).
        """

        engine = self.engine
        start_step = engine.step_count
        sink = open(self.trace_path, "w") if self.trace_path else None
        try:
            if sink is not None:
                header = {
                    "t": "traffic-header",
                    "version": TRAFFIC_TRACE_VERSION,
                    "seed": self.seed,
                    "chunk": self.chunk,
                    "engine_mode": engine.engine_mode,
                    "arrivals": {
                        k: getattr(self.arrivals, k)
                        for k in self.arrivals.__dataclass_fields__
                    },
                    "requests": {
                        k: getattr(self.requests, k)
                        for k in self.requests.__dataclass_fields__
                    },
                }
                sink.write(json.dumps(header) + "\n")
            remaining = total_steps
            while remaining > 0:
                budget = min(self.chunk, remaining)
                engine.run(budget)
                self._vt += budget
                remaining -= budget
                self._boundary(budget)
                if sink is not None:
                    stats = self.stats
                    sink.write(
                        json.dumps(
                            {
                                "t": "boundary",
                                "vt": self._vt,
                                "step": engine.step_count,
                                "pop": stats.population,
                                "join": stats.joins,
                                "leave": stats.leaves,
                                "reap": stats.reaps,
                                "req": stats.requests_issued,
                                "ok": stats.requests_ok,
                                "viol": stats.searchability_violations,
                            }
                        )
                        + "\n"
                    )
            report = {
                "virtual_steps": self._vt,
                "executed_steps": engine.step_count - start_step,
                "stats": self.stats.as_dict(),
            }
            if sink is not None:
                sink.write(json.dumps({"t": "final", **report}) + "\n")
            return report
        finally:
            if sink is not None:
                sink.close()
