"""Open-system workloads: churn arrival processes + request traffic.

See :mod:`repro.traffic.driver` for the model. ``docs/TRAFFIC.md`` has
the user-facing tour of the knobs and the monotonic-searchability gate.
"""

from repro.traffic.arrivals import ArrivalConfig, sample_poisson, sample_session
from repro.traffic.driver import TrafficDriver, default_joiner
from repro.traffic.requests import RequestConfig, SearchabilityTracker, TrafficStats

__all__ = [
    "ArrivalConfig",
    "RequestConfig",
    "SearchabilityTracker",
    "TrafficDriver",
    "TrafficStats",
    "default_joiner",
    "sample_poisson",
    "sample_session",
]
