"""Seeded arrival processes for the open-system ("service") workload.

The paper's model analyses one *computation*: a fixed population whose
modes never change. A deployed overlay is an open system — processes
join, serve for a while, and leave — which the simulator models as a
*sequence* of computations: every admission, departure intent and reap
starts a new computation whose initial state extends/shrinks the last
one admissibly (see ``Engine.admit`` / ``request_leave`` / ``reap``).

This module owns the stochastic side of that sequence:

* **arrivals** are Poisson per traffic boundary (expected ``join_rate``
  joins per 1000 virtual steps);
* **session lengths** are bounded-Pareto — heavy-tailed, matching the
  classic churn measurements of deployed peer-to-peer systems (most
  sessions are short, a fat tail of near-permanent members carries the
  overlay);
* **flash crowds** (a burst of simultaneous joins) and **mass
  departures** (a fraction of the population leaving at once) model the
  correlated events that break closed-system assumptions hardest.

Every stream draws from its own :class:`random.Random` (seeded from one
root seed), so e.g. changing the request rate cannot perturb the join
schedule — runs stay comparable knob by knob, and replays stay
bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random

from repro.errors import ConfigurationError

__all__ = ["ArrivalConfig", "sample_poisson", "sample_session"]


@dataclass(frozen=True)
class ArrivalConfig:
    """Knobs of the open-system churn process (rates are per 1000 virtual
    steps; one virtual step corresponds to one scheduler step of budget)."""

    #: expected joins per 1000 virtual steps (Poisson arrivals).
    join_rate: float = 2.0
    #: Pareto tail index α of the session-length distribution; α ≤ 2
    #: gives infinite variance (heavy tail), α ≤ 1 infinite mean.
    session_shape: float = 1.5
    #: minimum session length in virtual steps (the Pareto scale).
    session_min: float = 512.0
    #: truncation of the session tail (keeps single runs bounded).
    session_cap: float = 1e7
    #: per-boundary probability of a flash crowd of ``flash_crowd_size``
    #: simultaneous joins.
    flash_crowd_prob: float = 0.0
    flash_crowd_size: int = 32
    #: per-boundary probability of a mass departure taking
    #: ``mass_departure_frac`` of the current staying population.
    mass_departure_prob: float = 0.0
    mass_departure_frac: float = 0.25
    #: hard population ceiling (admissions beyond it are skipped and
    #: counted); None = unbounded.
    max_population: int | None = None

    def validate(self) -> None:
        if self.join_rate < 0:
            raise ConfigurationError("join_rate must be >= 0")
        if self.session_shape <= 0:
            raise ConfigurationError("session_shape must be > 0")
        if self.session_min < 1:
            raise ConfigurationError("session_min must be >= 1")
        if self.session_cap < self.session_min:
            raise ConfigurationError("session_cap must be >= session_min")
        if not 0.0 <= self.flash_crowd_prob <= 1.0:
            raise ConfigurationError("flash_crowd_prob must be in [0, 1]")
        if self.flash_crowd_size < 1:
            raise ConfigurationError("flash_crowd_size must be >= 1")
        if not 0.0 <= self.mass_departure_prob <= 1.0:
            raise ConfigurationError("mass_departure_prob must be in [0, 1]")
        if not 0.0 < self.mass_departure_frac <= 1.0:
            raise ConfigurationError("mass_departure_frac must be in (0, 1]")
        if self.max_population is not None and self.max_population < 1:
            raise ConfigurationError("max_population must be >= 1")


def sample_poisson(rng: Random, lam: float) -> int:
    """One Poisson(λ) draw (Knuth's product method).

    Boundary rates keep λ small (``rate * chunk / 1000``); for the λ
    where ``exp(-λ)`` underflows (≳ 700) the normal approximation is
    exact enough for workload generation.
    """

    if lam <= 0.0:
        return 0
    if lam > 64.0:
        # Normal approximation with continuity correction: at this λ the
        # relative skew is < 1/8 and the draw only sizes a join burst.
        return max(0, int(rng.gauss(lam, math.sqrt(lam)) + 0.5))
    limit = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def sample_session(rng: Random, config: ArrivalConfig) -> int:
    """One heavy-tailed session length in virtual steps (bounded Pareto:
    ``session_min * U^(-1/α)`` truncated at ``session_cap``)."""

    u = 1.0 - rng.random()  # (0, 1] — avoids the pole at 0
    length = config.session_min * u ** (-1.0 / config.session_shape)
    return int(min(length, config.session_cap))
