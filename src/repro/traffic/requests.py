"""Request traffic and its accounting: latency, drops, searchability.

Requests model the *service* an overlay exists to provide: a user at
process ``src`` asks for process ``dst`` (a search/route operation). In
the simulator a request is observation-only — it reads the live process
graph at a traffic boundary and never mutates engine state, so request
traffic composes with any engine mode (including the batched
struct-of-arrays core) and never perturbs a replayed schedule.

A request **succeeds** when ``src`` and ``dst`` lie in one weakly
connected component of PG restricted to non-gone processes — exactly
the paper's invariant surface: Lemma 1/2 guarantee the protocols never
disconnect PG, so as long as both endpoints are present, routing along
PG edges can answer the request. **Latency** is the PG hop distance,
sampled on a subset of successful requests (BFS is O(edges)).

**Monotonic searchability** is the regression notion of Scheideler,
Setzer & Strothmann (DISC 2015; see PAPERS.md): once a search from
``src`` for ``dst`` succeeds, later searches for the same pair must
keep succeeding — unless one endpoint itself departs. A *violation* is
therefore: pair answered before, both endpoints still present and
staying, answer now "no". On fault-free schedules the class-𝒫 overlays
must never violate this (the acceptance gate of the churn benchmark);
chaos campaigns measure how often faults break it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["RequestConfig", "SearchabilityTracker", "TrafficStats"]


@dataclass(frozen=True)
class RequestConfig:
    """Knobs of the user-request stream."""

    #: expected requests per 1000 virtual steps (Poisson arrivals).
    rate: float = 50.0
    #: BFS-sample every k-th *successful* request for hop latency
    #: (latency is O(edges) to measure; verdicts are near-O(1)).
    latency_sample_every: int = 16

    def validate(self) -> None:
        if self.rate < 0:
            raise ConfigurationError("rate must be >= 0")
        if self.latency_sample_every < 1:
            raise ConfigurationError("latency_sample_every must be >= 1")


class TrafficStats:
    """O(1)-readable counters of one open-system run.

    The driver publishes itself as ``engine.traffic_stats`` so the probe
    registry can expose these as standard probes without scanning the
    population (PERF003).
    """

    __slots__ = (
        "requests_issued",
        "requests_ok",
        "requests_failed",
        "latency_samples",
        "latency_hops_total",
        "latency_hops_max",
        "searchability_violations",
        "joins",
        "joins_deferred",
        "leaves",
        "reaps",
        "population",
    )

    def __init__(self) -> None:
        self.requests_issued = 0
        self.requests_ok = 0
        self.requests_failed = 0
        self.latency_samples = 0
        self.latency_hops_total = 0
        self.latency_hops_max = 0
        self.searchability_violations = 0
        self.joins = 0
        #: joins skipped because max_population (or an empty contact pool)
        #: blocked them — reported so capped runs can't read as "covered".
        self.joins_deferred = 0
        self.leaves = 0
        self.reaps = 0
        self.population = 0

    @property
    def drop_rate(self) -> float:
        """Failed fraction of all issued requests (0.0 when none issued)."""
        if not self.requests_issued:
            return 0.0
        return self.requests_failed / self.requests_issued

    @property
    def mean_latency(self) -> float:
        """Mean sampled hop latency (0.0 before the first sample)."""
        if not self.latency_samples:
            return 0.0
        return self.latency_hops_total / self.latency_samples

    def as_dict(self) -> dict:
        out = {name: getattr(self, name) for name in self.__slots__}
        out["drop_rate"] = self.drop_rate
        out["mean_latency"] = self.mean_latency
        return out


class SearchabilityTracker:
    """Detects monotonic-searchability regressions over (src, dst) pairs.

    Keeps the set of pairs ever answered successfully, indexed per pid so
    a departing endpoint retires its pairs in O(pairs touching pid)
    rather than O(all pairs).
    """

    __slots__ = ("_answered", "_by_pid")

    def __init__(self) -> None:
        self._answered: set[tuple[int, int]] = set()
        self._by_pid: dict[int, set[tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._answered)

    def record(self, src: int, dst: int, ok: bool) -> bool:
        """Record one request verdict; True iff it violates monotonicity
        (the pair succeeded before, both endpoints still tracked, and the
        answer is now negative)."""

        pair = (src, dst)
        if ok:
            if pair not in self._answered:
                self._answered.add(pair)
                self._by_pid.setdefault(src, set()).add(pair)
                self._by_pid.setdefault(dst, set()).add(pair)
            return False
        return pair in self._answered

    def retire(self, pid: int) -> None:
        """Forget every answered pair touching *pid* — its departure (or
        reap) legitimately ends the monotonicity obligation."""

        pairs = self._by_pid.pop(pid, None)
        if not pairs:
            return
        self._answered -= pairs
        for src, dst in pairs:
            other = dst if src == pid else src
            bucket = self._by_pid.get(other)
            if bucket is not None:
                bucket.discard((src, dst))
                if not bucket:
                    del self._by_pid[other]
