"""Replayable failure capsules: a failing run, frozen as one JSON file.

A watchdog trip, safety violation or budget exhaustion found by a chaos
run is worthless if it cannot be re-examined. A :class:`Capsule` bundles
everything needed to re-execute the failure bit-identically:

* the scenario metadata (:func:`repro.core.scenarios.build_from_meta`'s
  vocabulary) — rebuilds the exact initial state;
* the campaign configuration — rebuilds the injection stream (an
  injection is a pure function of step index, campaign RNG and engine
  state, so config + schedule reproduce it exactly);
* the executed schedule (:class:`~repro.sim.replay.RecordedEvent`
  triples) — replayed verbatim by
  :class:`~repro.sim.replay.ReplayScheduler`;
* the open-system churn journal (schema v2): every mid-run
  ``admit``/``leave``/``reap`` with the step index it was applied at,
  so a run under a live workload replays bit-identically — the churn
  ops are re-applied in the recorded inter-step gaps;
* the transport record (schema v3): the unreliable-underlay + reliable
  transport configuration, its closing counters and the retransmit
  journal with a tamper-detection digest. The journal is *evidence*
  (which frames were dropped/duplicated/delayed/retransmitted), not
  replay input — the scenario meta's ``net`` key rebuilds the
  transport, and the recorded schedule alone pins the execution, so
  replay is bit-identical whether or not the transport re-runs;
* the watchdog configs, the trip diagnosis, the error text and the
  final counters — the claim the replay is verified against.

:func:`run_chaos` is the capture harness: it wires a recorder, campaign
(first monitor — the determinism contract of
:mod:`repro.chaos.campaigns`), watchdogs and extra monitors into a
scenario engine, runs it, and on failure writes the capsule.

:func:`replay_capsule` rebuilds the engine from the stored meta,
re-attaches the campaign as the *sole* monitor (watchdogs are left off:
re-raising at the recorded trip step would abort the replay before the
final-state comparison) and re-executes the schedule, then asserts the
final counters match the capture. Mid-action errors (capsule kind
``"error"``) are the one soft spot: the exception fired inside a step
the tracer never recorded, so only the step count is verified for them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from collections.abc import Callable, Sequence

from repro.chaos.campaigns import ChaosCampaign
from repro.chaos.watchdogs import Watchdog
from repro.core.scenarios import build_from_meta
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    ReproError,
    SafetyViolation,
    WatchdogTrip,
)
from repro.sim.replay import RecordedEvent, ReplayScheduler, ScheduleRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = [
    "CAPSULE_VERSION",
    "Capsule",
    "ChaosRunResult",
    "run_chaos",
    "capture_capsule",
    "replay_capsule",
]

#: v2 added the ``churn`` journal (open-system admits/leaves/reaps);
#: v3 adds the ``net`` record — transport config, retransmit journal and
#: its tamper-detection digest — for runs captured over an unreliable
#: underlay. v1 and v2 capsules are still read
#: (see :meth:`Capsule.from_dict`).
CAPSULE_VERSION = 3

#: counters every capsule records and replay verifies (kind "error"
#: verifies only "steps" — see module docstring). ``population`` is
#: absent from v1 capsules and skipped for them on replay.
_FINAL_KEYS = ("steps", "phi", "gone", "posted", "pending", "population")


def _final_counters(engine: Engine) -> dict[str, int]:
    return {
        "steps": engine.step_count,
        "phi": engine.potential(),
        "gone": engine.gone_count,
        "posted": engine.stats.messages_posted,
        "pending": engine.pending_count,
        "population": len(engine.processes),
    }


@dataclass
class Capsule:
    """One captured failure, JSON-serializable and bit-identically
    replayable."""

    kind: str  # "watchdog" | "safety" | "budget" | "error"
    scenario: dict
    schedule: list[RecordedEvent]
    campaign: dict | None = None
    watchdogs: list[dict] = field(default_factory=list)
    injections: list[dict] = field(default_factory=list)
    diagnosis: dict | None = None
    error: str | None = None
    final: dict = field(default_factory=dict)
    churn: list[dict] = field(default_factory=list)
    net: dict | None = None
    version: int = CAPSULE_VERSION

    # -- (de)serialization ------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "kind": self.kind,
            "scenario": self.scenario,
            "campaign": self.campaign,
            "watchdogs": self.watchdogs,
            "injections": self.injections,
            "diagnosis": self.diagnosis,
            "error": self.error,
            "final": self.final,
            "churn": self.churn,
            "net": self.net,
            "schedule": [
                [e.kind, e.pid, e.seq] for e in self.schedule
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> Capsule:
        version = data.get("version")
        if version not in (1, 2, CAPSULE_VERSION):
            raise ConfigurationError(
                f"unsupported capsule version {version!r} "
                f"(this build reads versions 1 through {CAPSULE_VERSION})"
            )
        net = data.get("net")
        if net is not None and net.get("journal") is not None:
            # Tamper detection over the retransmit journal: the digest
            # was computed at capture; an edited journal (or an edited
            # digest) no longer matches. The journal is evidence, not
            # replay input — the schedule alone replays the run — so a
            # forged one must be rejected at load, not discovered later.
            from repro.net import journal_digest

            if journal_digest(net["journal"]) != net.get("digest"):
                raise ConfigurationError(
                    "capsule net journal does not match its digest "
                    "(tampered or corrupted capsule)"
                )
        return cls(
            kind=data["kind"],
            scenario=data["scenario"],
            schedule=[
                RecordedEvent(kind=k, pid=p, seq=s)
                for k, p, s in data["schedule"]
            ],
            campaign=data.get("campaign"),
            watchdogs=data.get("watchdogs", []),
            injections=data.get("injections", []),
            diagnosis=data.get("diagnosis"),
            error=data.get("error"),
            final=data.get("final", {}),
            # v1 capsules predate open-system churn: no journal.
            churn=data.get("churn", []),
            # v1/v2 capsules predate the unreliable underlay: no net.
            net=net,
        )

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=1)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> Capsule:
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -- replay -----------------------------------------------------------------

    def replay(
        self, *, verify: bool = True, engine_mode: str | None = None
    ) -> Engine:
        return replay_capsule(self, verify=verify, engine_mode=engine_mode)


def capture_capsule(
    engine: Engine,
    *,
    kind: str,
    scenario: dict,
    recorder: ScheduleRecorder,
    campaign: ChaosCampaign | None = None,
    watchdogs: Sequence[Watchdog] = (),
    diagnosis: dict | None = None,
    error: str | None = None,
) -> Capsule:
    """Freeze a failed run's identity into a :class:`Capsule`."""
    net_record: dict | None = None
    transport = getattr(engine, "net", None)
    if transport is not None:
        from repro.net import journal_digest

        journal = list(transport.journal)
        net_record = {
            "config": transport.config(),
            "stats": transport.stats.as_dict(),
            "journal": journal,
            "digest": journal_digest(journal),
        }
    return Capsule(
        kind=kind,
        scenario=dict(scenario),
        schedule=list(recorder.events),
        campaign=campaign.config() if campaign is not None else None,
        watchdogs=[w.config() for w in watchdogs],
        injections=[r.as_dict() for r in campaign.injections]
        if campaign is not None
        else [],
        diagnosis=diagnosis,
        error=error,
        final=_final_counters(engine),
        churn=list(getattr(engine, "churn_journal", [])),
        net=net_record,
    )


def _apply_churn_op(engine: Engine, op: dict) -> None:
    """Re-apply one recorded churn-journal operation during replay.

    ``leave``/``reap`` go straight back through the engine's churn API.
    ``admit`` reconstructs the admitted process from the journal's
    variable snapshot — FDP and FSP populations only; overlay admits
    carry protocol state (the logic object) the journal does not
    serialize, so they raise until a logic-aware schema lands.
    """
    kind = op["op"]
    if kind == "leave":
        engine.request_leave(op["pid"])
        return
    if kind == "reap":
        engine.reap(op["pid"])
        return
    if kind != "admit":
        raise ConfigurationError(f"unknown churn op {kind!r} in capsule")
    from repro.core.fdp import FDPProcess
    from repro.core.fsp import FSPProcess
    from repro.sim.states import Mode

    cls = {"FDPProcess": FDPProcess, "FSPProcess": FSPProcess}.get(op["proto"])
    if cls is None:
        raise ConfigurationError(
            f"capsule churn replay cannot reconstruct a {op['proto']!r} "
            "admission (only FDP/FSP variable snapshots are journaled)"
        )
    proc = cls(op["pid"], Mode(op["mode"]))
    for npid, bel in op["neighbors"]:
        proc.N[engine.ref(npid)] = None if bel is None else Mode(bel)
    if op["anchor"] is not None:
        apid, abel = op["anchor"]
        proc.anchor = engine.ref(apid)
        proc.anchor_belief = None if abel is None else Mode(abel)
    engine.admit(proc)


def replay_capsule(
    capsule: Capsule, *, verify: bool = True, engine_mode: str | None = None
) -> Engine:
    """Rebuild the captured run and re-execute its schedule.

    Returns the engine in its final replayed state. With *verify* (the
    default) the replayed final counters are compared against the
    captured ones and a mismatch raises
    :class:`~repro.errors.ConfigurationError` — either the capsule was
    edited, or protocol/injection code is nondeterministic (forbidden).

    *engine_mode* picks the execution core for the replay
    (``objects``/``soa``/``verify``); capsules are core-agnostic, so a
    capsule captured on one core replays bit-identically on the other.

    A v2 capsule's churn journal is interleaved back into the schedule:
    each recorded op re-applies after exactly the number of steps that
    preceded it at capture time, so the replayed engine sees the same
    sequence of populations the captured one did.
    """
    monitors: list = []
    if capsule.campaign is not None:
        monitors.append(ChaosCampaign.from_config(capsule.campaign))
    engine = build_from_meta(
        capsule.scenario, monitors=monitors, engine_mode=engine_mode
    )
    engine.scheduler = ReplayScheduler(capsule.schedule)
    # Churn can be journaled at step 0 (before any event executed);
    # admit/leave require an attached engine, so attach eagerly.
    engine.attach()
    for op in capsule.churn:
        gap = op["at"] - engine.step_count
        if gap > 0:
            engine.run(gap, until=None)
        _apply_churn_op(engine, op)
    remaining = len(capsule.schedule) - engine.step_count
    if remaining > 0:
        engine.run(remaining, until=None)
    if verify and capsule.final:
        keys = _FINAL_KEYS if capsule.kind != "error" else ("steps",)
        replayed = _final_counters(engine)
        diffs = {
            key: (capsule.final[key], replayed[key])
            for key in keys
            if key in capsule.final and capsule.final[key] != replayed[key]
        }
        if diffs:
            raise ConfigurationError(
                f"capsule replay diverged: {diffs} (captured, replayed)"
            )
    return engine


# ------------------------------------------------------------------ harness


@dataclass
class ChaosRunResult:
    """What a :func:`run_chaos` invocation produced."""

    engine: Engine
    outcome: str  # "converged" | "budget" | "watchdog" | "safety" | "error"
    capsule: Capsule | None = None
    capsule_path: str | None = None
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.outcome not in ("converged",)


def _capsule_name(result_kind: str, scenario: dict, step: int) -> str:
    base = scenario.get("scenario", "fdp")
    seed = scenario.get("seed", 0)
    return f"capsule-{result_kind}-{base}-seed{seed}-step{step}.json"


def run_chaos(
    scenario: dict,
    *,
    campaign: ChaosCampaign | None = None,
    watchdogs: Sequence[Watchdog] = (),
    monitors: Sequence[Callable] = (),
    max_steps: int = 1_000_000,
    until: Callable[[Engine], bool] | None = None,
    check_every: int = 64,
    capsule_dir: str | None = None,
    capture_on_budget: bool = True,
    workload: Callable[[Engine], object] | None = None,
) -> ChaosRunResult:
    """Run *scenario* under a chaos campaign with supervisors attached.

    Monitor order is load-bearing: campaign first (determinism contract),
    then watchdogs, then caller monitors. The executed schedule is
    recorded throughout; on a watchdog trip, safety violation, other
    :class:`~repro.errors.ReproError` or (with *capture_on_budget*)
    budget exhaustion, a capsule is captured — and written to
    *capsule_dir* when given.

    *workload* replaces the plain ``engine.run`` driving loop: it
    receives the built engine and drives it however it likes (the
    intended caller is :class:`repro.traffic.TrafficDriver`, which
    interleaves churn and requests with the stepping). Its truthiness
    is the convergence verdict. Everything the workload does through
    the engine's churn API lands in the churn journal, so the capsule
    still replays the run bit-identically — without the workload
    attached.
    """
    recorder = ScheduleRecorder()
    wired: list[Callable] = []
    if campaign is not None:
        wired.append(campaign)
    wired.extend(watchdogs)
    wired.extend(monitors)
    engine = build_from_meta(scenario, tracer=recorder, monitors=wired)

    outcome = "converged"
    diagnosis: dict | None = None
    error: str | None = None
    try:
        if workload is not None:
            converged = bool(workload(engine))
        else:
            converged = engine.run(max_steps, until=until, check_every=check_every)
        if not converged:
            outcome = "budget"
            error = (
                f"budget exhausted after {engine.step_count} steps: "
                f"{engine.progress_diagnostics()}"
            )
            diagnosis = engine.progress_diagnostics()
    except WatchdogTrip as exc:
        outcome = "watchdog"
        error = f"WatchdogTrip: {exc}"
        diagnosis = exc.diagnosis.as_dict() if exc.diagnosis else None
    except SafetyViolation as exc:
        outcome = "safety"
        error = f"SafetyViolation: {exc}"
    except ConvergenceError as exc:
        outcome = "budget"
        error = f"ConvergenceError: {exc}"
        diagnosis = exc.diagnostics
    except ReproError as exc:
        outcome = "error"
        error = f"{type(exc).__name__}: {exc}"

    capsule: Capsule | None = None
    capsule_path: str | None = None
    if outcome in ("watchdog", "safety", "error") or (
        outcome == "budget" and capture_on_budget
    ):
        capsule = capture_capsule(
            engine,
            kind=outcome,
            scenario=scenario,
            recorder=recorder,
            campaign=campaign,
            watchdogs=watchdogs,
            diagnosis=diagnosis,
            error=error,
        )
        if capsule_dir is not None:
            os.makedirs(capsule_dir, exist_ok=True)
            capsule_path = capsule.save(
                os.path.join(
                    capsule_dir,
                    _capsule_name(outcome, scenario, engine.step_count),
                )
            )
    return ChaosRunResult(
        engine=engine,
        outcome=outcome,
        capsule=capsule,
        capsule_path=capsule_path,
        error=error,
    )
