"""Delta-debugging minimizer for failure capsules.

A 64-process livelock capsule proves a bug exists; an 6-process one
shows *why*. :func:`shrink_capsule` takes a failing capsule and greedily
reduces it along three axes, keeping every reduction that still
reproduces the failure *class*:

1. **fewer processes** — a ddmin-style pass removing pid blocks from
   explicit-edge scenarios (survivors' subgraph induced, pids remapped
   densely), or a size ladder for generator-backed scenarios;
2. **fewer injected faults** — drop the campaign entirely if the bug
   survives, else walk ``max_injections`` down a ladder and halve the
   per-injection counts;
3. **shorter schedule** — cut ``max_steps`` to just past the step at
   which the minimized failure actually trips.

"Reproduces" is deliberately class-level, not schedule-level: a
candidate counts when *some* fresh run of it (a handful of probe seeds)
fails the same way — watchdog trip for watchdog capsules, safety
violation for safety capsules, non-convergence for budget capsules.
Bit-exact schedule replay is the capsule's own job
(:func:`~repro.chaos.capsule.replay_capsule`); the shrinker's job is a
*smaller* instance of the same bug, which necessarily has a different
schedule.

Probes are structured :class:`~repro.analysis.runner.TrialResult` runs
(``capture_errors=True`` — an invalid candidate, e.g. an induced
subgraph that lost its staying process, surfaces as a
``ConfigurationError`` failure and is simply not a match). With
``parallel=True`` the probe batch for each candidate fans out over a
:class:`~repro.analysis.runner.TrialFabric`; the default is serial,
which monkeypatch-based regression fixtures require (a worker process
does not see the test's patched protocol unless it forked after the
patch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.runner import TrialFabric, TrialResult, run_trial
from repro.chaos.campaigns import ChaosCampaign
from repro.chaos.capsule import Capsule, ChaosRunResult, run_chaos
from repro.chaos.watchdogs import watchdog_from_config
from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import build_from_meta
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["ShrinkResult", "shrink_capsule"]

#: candidate sizes for generator-backed scenarios, smallest first.
_SIZE_LADDER = (2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64, 96, 128)

#: candidate injection caps, smallest first (None = drop the campaign).
_INJECTION_LADDER = (1, 2, 4, 8, 16)


def _never(engine: Engine) -> bool:
    """Probe predicate for trip-seeking runs: never converge early."""
    return False


def _until_for(scenario: dict):
    """Legitimacy predicate for budget-kind probes (non-convergence is
    only meaningful against the scenario's own notion of done)."""
    return fsp_legitimate if scenario.get("scenario") == "fsp" else fdp_legitimate


def _campaign_config(
    campaign: dict | None, seed: int, base_seed: int, base_campaign_seed: int
) -> dict | None:
    """The campaign config a probe with *seed* should run: the captured
    campaign seed for the captured scenario seed, the probe seed
    otherwise (fresh schedule, fresh injection stream — one knob)."""
    if campaign is None:
        return None
    config = dict(campaign)
    config["seed"] = base_campaign_seed if seed == base_seed else seed
    return config


class _CandidateBuild:
    """Picklable builder: (scenario, campaign, watchdogs) configs → engine.

    Module-level class so fabric workers can unpickle it; all state is
    plain JSON-shaped data.
    """

    def __init__(
        self,
        scenario: dict,
        campaign: dict | None,
        watchdogs: list[dict],
        base_seed: int,
        base_campaign_seed: int,
    ) -> None:
        self.scenario = scenario
        self.campaign = campaign
        self.watchdogs = watchdogs
        self.base_seed = base_seed
        self.base_campaign_seed = base_campaign_seed

    def __call__(self, seed: int) -> Engine:
        meta = dict(self.scenario)
        meta["seed"] = seed
        monitors: list = []
        campaign_cfg = _campaign_config(
            self.campaign, seed, self.base_seed, self.base_campaign_seed
        )
        if campaign_cfg is not None:
            monitors.append(ChaosCampaign.from_config(campaign_cfg))
        monitors.extend(watchdog_from_config(c) for c in self.watchdogs)
        return build_from_meta(meta, monitors=monitors)


def _matches(result: TrialResult, kind: str) -> bool:
    """Does this probe outcome reproduce the capsule's failure class?"""
    if kind == "budget":
        return result.error is None and not result.converged
    if result.error is None:
        return False
    name = result.error.split(":", 1)[0]
    if kind == "watchdog":
        return name == "WatchdogTrip"
    if kind == "safety":
        return name == "SafetyViolation"
    # generic "error" capsules: any structured failure except an invalid
    # candidate (a ConfigurationError means the *shrunk spec* is broken,
    # not that the bug reproduced).
    return name not in ("ConfigurationError",)


@dataclass
class ShrinkResult:
    """A minimized failing spec, plus the trail that led there."""

    capsule: Capsule | None
    scenario: dict
    campaign: dict | None
    seed: int
    max_steps: int
    steps_to_failure: int
    probes: int
    original_n: int
    final_n: int
    history: list[dict] = field(default_factory=list)


def _induced(scenario: dict, keep: list[int]) -> dict:
    """Induce the explicit-edge scenario on *keep*, remapping pids densely."""
    keep_set = set(keep)
    remap = {pid: new for new, pid in enumerate(keep)}
    new = dict(scenario)
    new["n"] = len(keep)
    new["edges"] = [
        [remap[a], remap[b]]
        for a, b in scenario["edges"]
        if a in keep_set and b in keep_set
    ]
    if scenario.get("leaving_pids") is not None:
        new["leaving_pids"] = [
            remap[p] for p in scenario["leaving_pids"] if p in keep_set
        ]
    return new


def shrink_capsule(
    capsule: Capsule,
    *,
    parallel: bool = False,
    fabric: TrialFabric | None = None,
    seeds_per_candidate: int = 3,
    max_steps: int | None = None,
    check_every: int = 16,
    timeout: float | None = None,
    capsule_dir: str | None = None,
) -> ShrinkResult:
    """Greedily minimize *capsule* along processes, faults and schedule.

    Raises :class:`~repro.errors.ConfigurationError` when the original
    spec does not reproduce its failure class under fresh probe seeds —
    a failure that exists only on one exact schedule cannot be shrunk by
    re-running, only replayed.

    Returns a :class:`ShrinkResult` whose ``capsule`` is a freshly
    captured (and replayable) capsule of the minimized spec — written to
    *capsule_dir* when given.
    """
    kind = capsule.kind
    scenario = dict(capsule.scenario)
    campaign = dict(capsule.campaign) if capsule.campaign is not None else None
    watchdogs = [dict(c) for c in capsule.watchdogs]
    base_seed = scenario.get("seed", 0)
    base_campaign_seed = campaign["seed"] if campaign is not None else base_seed
    budget = (
        max_steps
        if max_steps is not None
        else max(2 * len(capsule.schedule), 4096)
    )
    until = _until_for(scenario) if kind == "budget" else _never
    probe_watchdogs = [] if kind == "budget" else watchdogs
    own_fabric = parallel and fabric is None
    fab = fabric if fabric is not None else (TrialFabric() if parallel else None)
    probes = 0
    history: list[dict] = []

    def attempt(
        cand_scenario: dict, cand_campaign: dict | None, cand_budget: int
    ) -> TrialResult | None:
        nonlocal probes
        build = _CandidateBuild(
            cand_scenario,
            cand_campaign,
            probe_watchdogs,
            base_seed,
            base_campaign_seed,
        )
        seeds = [base_seed + i for i in range(seeds_per_candidate)]
        if fab is not None:
            results = fab.run(
                build,
                seeds,
                until=until,
                max_steps=cand_budget,
                check_every=check_every,
                timeout=timeout,
            )
        else:
            results = [
                run_trial(
                    build,
                    s,
                    until=until,
                    max_steps=cand_budget,
                    check_every=check_every,
                    capture_errors=True,
                    timeout=timeout,
                )
                for s in seeds
            ]
        probes += len(results)
        for result in results:
            if _matches(result, kind):
                return result
        return None

    try:
        best = attempt(scenario, campaign, budget)
        if best is None:
            raise ConfigurationError(
                "the capsule's failure does not reproduce under fresh "
                "schedules; shrinking needs a seed-reproducible failure "
                "(the capsule itself still replays bit-identically)"
            )
        original_n = scenario["n"]

        # -- axis 1: fewer processes ----------------------------------------
        if scenario.get("edges") is not None:
            pids = list(range(scenario["n"]))
            chunk = max(1, len(pids) // 2)
            while chunk >= 1:
                i = 0
                while i < len(pids) and len(pids) > 2:
                    keep = pids[:i] + pids[i + chunk :]
                    if len(keep) < 2:
                        i += chunk
                        continue
                    hit = attempt(_induced(scenario, keep), campaign, budget)
                    if hit is not None:
                        history.append(
                            {"axis": "process", "from": len(pids), "to": len(keep)}
                        )
                        pids, best = keep, hit
                    else:
                        i += chunk
                chunk //= 2
            scenario = _induced(scenario, pids) if len(pids) != original_n else scenario
        elif scenario.get("leaving_pids") is None:
            for size in _SIZE_LADDER:
                if size >= scenario["n"]:
                    break
                candidate = dict(scenario)
                candidate["n"] = size
                hit = attempt(candidate, campaign, budget)
                if hit is not None:
                    history.append(
                        {"axis": "process", "from": scenario["n"], "to": size}
                    )
                    scenario, best = candidate, hit
                    break

        # -- axis 2: fewer injected faults ----------------------------------
        if campaign is not None:
            hit = attempt(scenario, None, budget)
            if hit is not None:
                history.append({"axis": "fault", "from": "campaign", "to": None})
                campaign, best = None, hit
        if campaign is not None:
            current = campaign.get("max_injections")
            for cap in _INJECTION_LADDER:
                if current is not None and cap >= current:
                    break
                candidate = dict(campaign)
                candidate["max_injections"] = cap
                hit = attempt(scenario, candidate, budget)
                if hit is not None:
                    history.append(
                        {"axis": "fault", "from": current, "to": cap}
                    )
                    campaign, best = candidate, hit
                    break
            for key in ("garbage_count", "lie_count"):
                while campaign.get(key, 0) > 1:
                    candidate = dict(campaign)
                    candidate[key] = campaign[key] // 2
                    hit = attempt(scenario, candidate, budget)
                    if hit is None:
                        break
                    history.append(
                        {"axis": "fault", "from": f"{key}={campaign[key]}",
                         "to": f"{key}={candidate[key]}"}
                    )
                    campaign, best = candidate, hit

        # -- axis 3: shorter schedule ---------------------------------------
        trimmed = best.steps + max(64, best.steps // 8)
        if trimmed < budget:
            hit = attempt(scenario, campaign, trimmed)
            if hit is not None:
                history.append({"axis": "budget", "from": budget, "to": trimmed})
                budget, best = trimmed, hit
    finally:
        if own_fabric and fab is not None:
            fab.close()

    # -- recapture the minimized failure as a fresh, replayable capsule ----
    final_seed = best.seed if best.seed is not None else base_seed
    final_scenario = dict(scenario)
    final_scenario["seed"] = final_seed
    final_campaign_cfg = _campaign_config(
        campaign, final_seed, base_seed, base_campaign_seed
    )
    result: ChaosRunResult = run_chaos(
        final_scenario,
        campaign=ChaosCampaign.from_config(final_campaign_cfg)
        if final_campaign_cfg is not None
        else None,
        watchdogs=[watchdog_from_config(c) for c in probe_watchdogs],
        max_steps=budget,
        until=until if kind == "budget" else None,
        check_every=check_every,
        capsule_dir=capsule_dir,
    )
    return ShrinkResult(
        capsule=result.capsule,
        scenario=final_scenario,
        campaign=final_campaign_cfg,
        seed=final_seed,
        max_steps=budget,
        steps_to_failure=best.steps,
        probes=probes,
        original_n=original_n,
        final_n=scenario["n"],
        history=history,
    )
