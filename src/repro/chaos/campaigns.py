"""Mid-run chaos campaigns: admissible transient faults while the run is live.

The initial-state fault injectors (:mod:`repro.sim.faults`,
``Corruption`` in :mod:`repro.core.scenarios`) sample Section 1.2's
space of admissible *initial* states. Self-stabilization promises more:
recovery from any admissible state, including one reached by a
transient fault striking *mid-execution*. A :class:`ChaosCampaign` is an
engine monitor that re-injects exactly the admissible fault classes on
a seeded schedule while the protocol runs:

* ``garbage`` — stale in-flight messages carrying truthful-or-lying
  mode claims (:func:`~repro.sim.faults.scatter_garbage_messages` with
  ``confine_component=True``);
* ``mode_lie`` — the same planter with ``lie_prob=1.0``: every claim is
  the opposite of the subject's true mode (guaranteed Φ pressure);
* ``scramble`` — protocol-specific belief corruption, delegated to
  :func:`repro.core.scenarios.scramble_beliefs` (flips stored mode
  beliefs and anchors in place, no new references).

Admissibility is enforced per injection, not assumed: every planted
reference stays within the target's *current* weak component (the
planter raises on a would-be leak — an adversary cannot fabricate
connectivity), no gone process is referenced (departed refs cannot be
revived), and after each injection the campaign re-asserts the
staying-process-per-component constraint over the still-alive members
of every initial component.

Injections legitimately raise Φ and pending counts out of band, so
after each one the campaign calls ``rebase()`` on every co-registered
monitor that has one (:class:`~repro.sim.monitors.PotentialMonitor`,
all :mod:`~repro.chaos.watchdogs`) — Lemma 3 and the stall windows
restart from the post-injection level instead of reporting phantoms.

Determinism contract: an injection is a pure function of (step index,
campaign RNG state, engine state), so a campaign rebuilt from
:meth:`ChaosCampaign.config` and attached to an identically rebuilt
engine replays bit-identically — the property failure capsules rely on.
For that to hold across capture and replay the campaign must be the
FIRST registered monitor: at the step a later watchdog aborts the run,
the campaign has already made its injection, so a replay without the
watchdog reproduces the same message stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SafetyViolation
from repro.sim.faults import scatter_garbage_messages
from repro.sim.states import Mode, PState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, ExecutedStep

__all__ = [
    "InjectionRecord",
    "ChaosCampaign",
    "CAMPAIGN_KINDS",
    "NET_CAMPAIGN_KINDS",
    "ALL_CAMPAIGN_KINDS",
]

#: the admissible state-fault classes a campaign draws from by default.
CAMPAIGN_KINDS = ("garbage", "mode_lie", "scramble")

#: underlay-fault kinds (docs/ROBUSTNESS.md): each injection overlays a
#: bounded burst window on the engine's attached transport — extra loss,
#: duplication or delay probability, or an extra transient partition.
#: Net kinds are opt-in (not in the default ``kinds``) because they are
#: no-ops on an engine without a transport.
NET_CAMPAIGN_KINDS = ("net_loss", "net_dup", "net_delay", "net_partition")

ALL_CAMPAIGN_KINDS = CAMPAIGN_KINDS + NET_CAMPAIGN_KINDS


@dataclass(frozen=True)
class InjectionRecord:
    """One executed injection, capsule-serializable."""

    step: int
    kind: str
    count: int
    component: tuple[int, ...]

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "kind": self.kind,
            "count": self.count,
            "component": list(self.component),
        }


class ChaosCampaign:
    """Engine monitor injecting admissible transient faults on a seeded
    schedule.

    Fires roughly every ``period`` steps (the exact gap is drawn from the
    campaign RNG, so the schedule is seeded but not metronomic), starting
    no earlier than ``start_after``, at most ``max_injections`` times
    (``None`` = unbounded). Each firing picks one initial component that
    still has alive members, picks a fault kind from ``kinds``, injects,
    re-asserts admissibility, and rebases co-registered monitors.

    Register FIRST in the engine's monitor list — see the module
    docstring's determinism contract.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        period: int = 1_000,
        start_after: int = 0,
        max_injections: int | None = None,
        kinds: tuple[str, ...] = CAMPAIGN_KINDS,
        garbage_count: int = 4,
        lie_count: int = 2,
        scramble_lie_prob: float = 0.25,
        garbage_lie_prob: float = 0.5,
        labels: tuple[str, ...] = ("present", "forward"),
        burst_duration: int = 256,
        burst_amount: float = 0.25,
    ) -> None:
        if period < 1:
            raise ConfigurationError("period must be >= 1")
        kinds = tuple(kinds)
        unknown = set(kinds) - set(ALL_CAMPAIGN_KINDS)
        if not kinds or unknown:
            raise ConfigurationError(
                f"kinds must be a non-empty subset of {ALL_CAMPAIGN_KINDS}, "
                f"got {kinds!r}"
            )
        self.seed = int(seed)
        self.period = int(period)
        self.start_after = int(start_after)
        self.max_injections = max_injections
        self.kinds = kinds
        self.garbage_count = int(garbage_count)
        self.lie_count = int(lie_count)
        self.scramble_lie_prob = float(scramble_lie_prob)
        self.garbage_lie_prob = float(garbage_lie_prob)
        self.labels = tuple(labels)
        self.burst_duration = int(burst_duration)
        self.burst_amount = float(burst_amount)
        self._rng = Random(self.seed)
        self.injections: list[InjectionRecord] = []
        self.admissibility_checks = 0
        self._next_due = self.start_after + self._gap()

    # -- scheduling -------------------------------------------------------------

    def _gap(self) -> int:
        """Seeded jitter: the next firing lands in [period/2, 3*period/2]."""
        half = self.period // 2
        return max(1, self.period + self._rng.randint(-half, half))

    @property
    def exhausted(self) -> bool:
        return (
            self.max_injections is not None
            and len(self.injections) >= self.max_injections
        )

    # -- monitor surface --------------------------------------------------------

    def __call__(self, engine: Engine, executed: ExecutedStep) -> None:
        if self.exhausted or engine.step_count < self._next_due:
            return
        self._inject(engine)
        self._next_due = engine.step_count + self._gap()

    # -- injection --------------------------------------------------------------

    def _alive_components(self, engine: Engine) -> list[list[int]]:
        """Alive (non-gone) members of each initial component, in
        deterministic order; empty components are dropped.

        Open-system runs shrink and grow the population mid-run: reaped
        pids vanish from ``engine.processes`` (``.get`` treats them as
        gone), and mid-run admissions — which belong to no *initial*
        component — form one extra pool so a campaign stays live even
        after the seed population has fully turned over.
        """
        procs = engine.processes
        initial: set[int] = set()
        pools = []
        for comp in engine.initial_components:
            initial.update(comp)
            alive = [
                pid
                for pid in sorted(comp)
                if (p := procs.get(pid)) is not None and p.state is not PState.GONE
            ]
            if alive:
                pools.append(alive)
        admitted = [
            pid
            for pid in sorted(procs)
            if pid not in initial and procs[pid].state is not PState.GONE
        ]
        if admitted:
            pools.append(admitted)
        return pools

    def _inject(self, engine: Engine) -> None:
        pools = self._alive_components(engine)
        if not pools:
            return
        members = pools[self._rng.randrange(len(pools))]
        kind = self.kinds[self._rng.randrange(len(self.kinds))]
        if kind in NET_CAMPAIGN_KINDS:
            count = self._inject_net(engine, kind)
            self.injections.append(
                InjectionRecord(
                    step=engine.step_count, kind=kind, count=count, component=()
                )
            )
            self._rebase_supervisors(engine)
            return
        if kind == "garbage":
            count = scatter_garbage_messages(
                engine,
                self._rng,
                self.garbage_count,
                labels=self.labels,
                lie_prob=self.garbage_lie_prob,
                targets=members,
                subjects=members,
                confine_component=True,
            )
        elif kind == "mode_lie":
            # a mode-claim lie IS a garbage message with a guaranteed
            # false claim — reuse the planter so confinement is enforced
            # by the same code path.
            count = scatter_garbage_messages(
                engine,
                self._rng,
                self.lie_count,
                labels=self.labels,
                lie_prob=1.0,
                targets=members,
                subjects=members,
                confine_component=True,
            )
        else:  # "scramble"
            from repro.core.scenarios import scramble_beliefs

            count = scramble_beliefs(
                engine,
                self._rng,
                lie_prob=self.scramble_lie_prob,
                pids=members,
            )
        self.injections.append(
            InjectionRecord(
                step=engine.step_count,
                kind=kind,
                count=count,
                component=tuple(members),
            )
        )
        self._assert_admissible(engine)
        self._rebase_supervisors(engine)

    def _inject_net(self, engine: Engine, kind: str) -> int:
        """Overlay one underlay-fault burst on the attached transport.

        The burst parameters are drawn from the campaign RNG *before*
        checking for a transport, so the RNG stream — and with it every
        later injection — is identical whether or not ``engine.net``
        exists (a capsule replay may rebuild the engine without one).
        Net faults touch no engine state, so the admissibility assert
        is moot; supervisors still rebase because a burst legitimately
        stalls progress.
        """
        duration = self.burst_duration + self._rng.randint(0, self.burst_duration)
        amount = self.burst_amount * (0.5 + self._rng.random())
        net = getattr(engine, "net", None)
        if net is None:
            return 0
        if kind == "net_partition":
            net.underlay.add_burst("partition", engine.step_count, duration, 1.0)
        else:
            net.underlay.add_burst(kind[4:], engine.step_count, duration, amount)
        return 1

    def _assert_admissible(self, engine: Engine) -> None:
        """Re-validate Section 1.2 after the injection.

        Constraints (2) finitely many messages and (3) refs belong to
        existing processes hold by construction (bounded counts; the
        planter validated every pid). Confinement was enforced per plant.
        What remains checkable — and what a buggy injector would break —
        is (4): every initial component with alive members still holds
        at least one alive staying process.
        """
        self.admissibility_checks += 1
        procs = engine.processes
        for comp in engine.initial_components:
            alive = [
                pid
                for pid in comp
                if (p := procs.get(pid)) is not None and p.state is not PState.GONE
            ]
            if alive and not any(
                procs[pid].mode is Mode.STAYING for pid in alive
            ):
                raise SafetyViolation(
                    f"chaos injection at step {engine.step_count} left "
                    f"component {sorted(alive)} without a staying process"
                )

    def _rebase_supervisors(self, engine: Engine) -> None:
        """Restart every co-registered monitor's observation window."""
        for monitor in engine.monitors:
            if monitor is self:
                continue
            rebase = getattr(monitor, "rebase", None)
            if callable(rebase):
                rebase(engine)

    # -- capsule round-trip -----------------------------------------------------

    def config(self) -> dict:
        """Constructor-equivalent parameters, JSON-serializable."""
        return {
            "seed": self.seed,
            "period": self.period,
            "start_after": self.start_after,
            "max_injections": self.max_injections,
            "kinds": list(self.kinds),
            "garbage_count": self.garbage_count,
            "lie_count": self.lie_count,
            "scramble_lie_prob": self.scramble_lie_prob,
            "garbage_lie_prob": self.garbage_lie_prob,
            "labels": list(self.labels),
            "burst_duration": self.burst_duration,
            "burst_amount": self.burst_amount,
        }

    @classmethod
    def from_config(cls, config: dict) -> ChaosCampaign:
        params = dict(config)
        for key in ("kinds", "labels"):
            if key in params:
                params[key] = tuple(params[key])
        return cls(**params)
