"""Livelock and no-progress supervisors over the engine's O(1) counters.

The PR 2 presumed-leaving bug had a precise runtime signature long before
its 3M-step budget ran out: Φ had stopped decreasing while a gone
process's channel grew without bound. Nothing in the engine watched for
that shape — a run would burn its whole step budget and report only
"did not converge". The watchdogs here are engine monitors (callables
``(engine, executed_step) -> None``) that detect such shapes *mid-run*
and trip with a structured :class:`StallDiagnosis`:

* :class:`LivelockWatchdog` — Φ non-decreasing over a whole sampling
  window while the undrained flow (total channel backlog plus sends
  dropped at gone processes) keeps growing — the livelock shape: work
  is being done, none of it reduces invalid information. Before the
  open-system bounce semantics the flow piled up *inside* a gone
  process's channel; now the same doomed sends surface as the O(1)
  ``dropped_gone`` counter, and the watchdog keys on both;
* :class:`NoProgressWatchdog` — the engine's observable fingerprint
  (Φ, pending, edges, lifecycle counts) frozen for a whole window with
  zero lifecycle transitions (the deadlock-in-disguise shape);
* :class:`BacklogWatchdog` — total pending messages above a hard bound
  (the memory guard: unbounded channel growth kills the host before any
  step budget is reached).

Hot-path discipline: every per-step check reads only O(1) counters
(``potential()``/``pending_count``/``edge_count``/lifecycle counts).
The O(n) channel attribution (:func:`repro.obs.metrics.top_backlog`)
runs only when building a trip diagnosis — i.e. once, on the way out.

Chaos campaigns legitimately disturb these counters mid-run (an
injection raises Φ and pending out of band); campaigns therefore call
:meth:`Watchdog.rebase` after every injection so windows restart from
the post-injection level and injections can never masquerade as
protocol stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, WatchdogTrip
from repro.obs.metrics import top_backlog
from repro.sim.states import PState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, ExecutedStep

__all__ = [
    "StallDiagnosis",
    "Watchdog",
    "LivelockWatchdog",
    "NoProgressWatchdog",
    "BacklogWatchdog",
    "RetransmitStormWatchdog",
    "WATCHDOG_KINDS",
    "watchdog_from_config",
    "default_watchdogs",
]


@dataclass
class StallDiagnosis:
    """Structured evidence attached to a :class:`~repro.errors.WatchdogTrip`.

    Everything a failure capsule needs to explain *why* the supervisor
    gave up: the Φ trend over the observation window, the total backlog
    trend, the most backlogged channels (gone pids flagged — a growing
    channel of a departed process is the livelock signature), and the
    last step at which the run made verifiable progress.
    """

    kind: str
    step: int
    phi: int
    pending: int
    gone: int
    asleep: int
    window_steps: int
    phi_start: int
    pending_start: int
    last_progress_step: int
    top_channels: list[tuple[int, int]] = field(default_factory=list)
    offending_pids: list[int] = field(default_factory=list)
    detail: str = ""
    dropped_gone: int = 0
    dropped_gone_start: int = 0

    def as_dict(self) -> dict:
        """JSON-ready form (capsules embed this verbatim)."""
        return {
            "kind": self.kind,
            "step": self.step,
            "phi": self.phi,
            "pending": self.pending,
            "gone": self.gone,
            "asleep": self.asleep,
            "window_steps": self.window_steps,
            "phi_start": self.phi_start,
            "pending_start": self.pending_start,
            "last_progress_step": self.last_progress_step,
            "top_channels": [list(item) for item in self.top_channels],
            "offending_pids": list(self.offending_pids),
            "detail": self.detail,
            "dropped_gone": self.dropped_gone,
            "dropped_gone_start": self.dropped_gone_start,
        }

    def summary(self) -> str:
        return (
            f"{self.kind} at step {self.step}: {self.detail} "
            f"(phi {self.phi_start}->{self.phi}, pending "
            f"{self.pending_start}->{self.pending} over {self.window_steps} "
            f"steps; last progress at step {self.last_progress_step})"
        )


class Watchdog:
    """Base class: counter sampling, windowing, trip/latch plumbing.

    Subclasses implement :meth:`_check` returning a ``(detail,
    window_steps, phi_start, pending_start, dropped_gone_start)`` tuple
    when the stall condition holds, else ``None``. On a trip the watchdog builds the
    O(n) diagnosis, latches it in :attr:`tripped` and — with the default
    ``raise_on_trip=True`` — raises :class:`~repro.errors.WatchdogTrip`
    to abort the run. With ``raise_on_trip=False`` it latches silently
    (soak batteries count trips without dying on the first).
    """

    kind = "watchdog"

    def __init__(self, *, check_every: int, raise_on_trip: bool = True) -> None:
        if check_every < 1:
            raise ConfigurationError("check_every must be >= 1")
        self.check_every = int(check_every)
        self.raise_on_trip = bool(raise_on_trip)
        self.tripped: StallDiagnosis | None = None
        self.checks = 0

    def __call__(self, engine: Engine, executed: ExecutedStep) -> None:
        if engine.step_count % self.check_every != 0:
            return
        if self.tripped is not None:
            return  # latched (raise_on_trip=False); one diagnosis per run
        self.checks += 1
        verdict = self._check(engine)
        if verdict is None:
            return
        detail, window_steps, phi_start, pending_start, dg_start = verdict
        self.tripped = self._diagnose(
            engine, detail, window_steps, phi_start, pending_start, dg_start
        )
        self.rebase(engine)
        if self.raise_on_trip:
            raise WatchdogTrip(self.tripped.summary(), self.tripped)

    # -- subclass surface -------------------------------------------------------

    def _check(
        self, engine: Engine
    ) -> tuple[str, int, int, int, int] | None:  # pragma: no cover - abstract
        raise NotImplementedError

    def rebase(self, engine: Engine | None = None) -> None:
        """Restart the observation window (campaigns call this after an
        injection so the out-of-band disturbance cannot trip us)."""

    def config(self) -> dict:
        """Constructor-equivalent parameters, capsule-serializable."""
        return {"watchdog": self.kind, "check_every": self.check_every}

    # -- trip path (deliberately O(n): runs once) -------------------------------

    def _diagnose(
        self,
        engine: Engine,
        detail: str,
        window_steps: int,
        phi_start: int,
        pending_start: int,
        dropped_gone_start: int = 0,
    ) -> StallDiagnosis:
        channels = top_backlog(engine, limit=5)
        procs = engine.processes
        gone_backlogged = [
            pid
            for pid, _ in channels
            # .get(): open-system runs reap pids between steps; a reaped
            # channel is gone by definition but can no longer be looked up.
            if pid not in procs or procs[pid].state is PState.GONE
        ]
        return StallDiagnosis(
            kind=self.kind,
            step=engine.step_count,
            phi=engine.potential(),
            pending=engine.pending_count,
            gone=engine.gone_count,
            asleep=engine.asleep_count,
            window_steps=window_steps,
            phi_start=phi_start,
            pending_start=pending_start,
            last_progress_step=engine.last_progress_step,
            top_channels=channels,
            offending_pids=gone_backlogged or [pid for pid, _ in channels],
            detail=detail,
            dropped_gone=engine.stats.dropped_gone,
            dropped_gone_start=dropped_gone_start,
        )


class LivelockWatchdog(Watchdog):
    """Trips when Φ never decreases over a full window while the
    undrained flow grows by at least ``min_backlog_growth``.

    Undrained flow is the channel backlog **plus** the cumulative
    ``dropped_gone`` counter (protocol sends addressed to gone
    processes, silently dropped by the open-system bounce semantics).
    The conjunction is the PR 2 livelock shape: the scheduler is fair
    and messages flow, but none of the work reduces invalid
    information. Before bounce semantics the doomed sends accumulated
    *inside* a gone process's channel (pending growth); with them they
    surface as drops — either way the flow counter grows while Φ
    stalls. Φ merely *stalling* is not enough — a converged-but-idle
    run has constant Φ = 0 and constant flow; requiring growth keeps
    healthy equilibria out.

    ``window`` counts samples taken every ``check_every`` steps, so the
    observation window spans ``window * check_every`` engine steps. The
    defaults (32 × 512 = 16384 steps) are deliberately generous: healthy
    runs decrease Φ far more often than that, and a true livelock does
    not care about an extra few thousand steps of evidence-gathering.

    The window's premise is *one computation*: within a computation Φ
    never legitimately rises (Lemma 3) and flow growth is suspect. An
    open-system churn op (admit/leave/reap) starts a new computation —
    an admission plants new beliefs out of band (Φ up) and departures
    make racing sends drop at gone processes (flow up), neither of which
    is livelock evidence. The window therefore rebases whenever the
    engine's churn journal grew, exactly as it rebases after a campaign
    injection; closed-system runs (empty journal) are unaffected.
    """

    kind = "livelock"

    def __init__(
        self,
        *,
        check_every: int = 32,
        window: int = 512,
        min_backlog_growth: int = 256,
        raise_on_trip: bool = True,
    ) -> None:
        super().__init__(check_every=check_every, raise_on_trip=raise_on_trip)
        if window < 2:
            raise ConfigurationError("window must be >= 2 samples")
        if min_backlog_growth < 1:
            raise ConfigurationError("min_backlog_growth must be >= 1")
        self.window = int(window)
        self.min_backlog_growth = int(min_backlog_growth)
        #: (step, phi, pending, dropped_gone, churn ops) at window open
        self._start: tuple[int, int, int, int, int] | None = None
        self._samples = 0

    def rebase(self, engine: Engine | None = None) -> None:
        self._start = None
        self._samples = 0

    def config(self) -> dict:
        return {
            "watchdog": self.kind,
            "check_every": self.check_every,
            "window": self.window,
            "min_backlog_growth": self.min_backlog_growth,
        }

    def _check(self, engine: Engine) -> tuple[str, int, int, int, int] | None:
        phi = engine.potential()
        pending = engine.pending_count
        dropped_gone = engine.stats.dropped_gone
        churn = len(getattr(engine, "churn_journal", ()))
        if self._start is None:
            self._start = (engine.step_count, phi, pending, dropped_gone, churn)
            self._samples = 1
            return None
        start_step, start_phi, start_pending, start_dg, start_churn = self._start
        if churn != start_churn:
            # Open-system churn started a new computation mid-window: the
            # Φ rise / flow growth it causes is not livelock evidence.
            self.rebase(engine)
            return None
        if phi < start_phi:
            # Φ made progress: restart the window from the new level.
            self.rebase(engine)
            return None
        self._samples += 1
        if self._samples < self.window:
            return None
        growth = (pending + dropped_gone) - (start_pending + start_dg)
        if growth < self.min_backlog_growth:
            # Φ stalled but the flow did not blow up — plausibly a healthy
            # equilibrium. Slide the window forward.
            self._start = (engine.step_count, phi, pending, dropped_gone, churn)
            self._samples = 1
            return None
        return (
            f"potential stalled at {phi} while undrained flow grew by "
            f"{growth} messages ({pending - start_pending} backlogged, "
            f"{dropped_gone - start_dg} dropped at gone processes)",
            engine.step_count - start_step,
            start_phi,
            start_pending,
            start_dg,
        )


class NoProgressWatchdog(Watchdog):
    """Trips when the engine's observable fingerprint is frozen.

    The fingerprint is ``(Φ, pending, edges, gone, asleep)`` plus the
    cumulative lifecycle-transition count. If every sample in a window
    is bit-identical *and* no exit/sleep/wake happened across it, the
    run is cycling through states indistinguishable to every observer —
    deadlock in all but name. ``check_every`` defaults to a prime (37)
    so the sampler cannot resonate with small periodic schedules (a
    period-2 oscillation sampled every 2 steps looks frozen; sampled
    every 37 it still does — but a period-37-divisible one cannot hide
    from a window of identical *lifecycle* counters too).
    """

    kind = "no_progress"

    def __init__(
        self,
        *,
        check_every: int = 37,
        window: int = 256,
        raise_on_trip: bool = True,
    ) -> None:
        super().__init__(check_every=check_every, raise_on_trip=raise_on_trip)
        if window < 2:
            raise ConfigurationError("window must be >= 2 samples")
        self.window = int(window)
        self._ref: tuple[int, ...] | None = None
        self._ref_step = 0
        self._streak = 0

    def rebase(self, engine: Engine | None = None) -> None:
        self._ref = None
        self._streak = 0

    def config(self) -> dict:
        return {
            "watchdog": self.kind,
            "check_every": self.check_every,
            "window": self.window,
        }

    def _fingerprint(self, engine: Engine) -> tuple[int, ...]:
        stats = engine.stats
        return (
            engine.potential(),
            engine.pending_count,
            engine.edge_count,
            engine.gone_count,
            engine.asleep_count,
            stats.exits + stats.sleeps + stats.wakes,
            # Open-system runs change the population between steps; an
            # admission or a reap is progress even when every counter
            # above happens to return to its old value.
            len(engine.processes),
            engine.admitted_count + engine.reaped_count,
            # A send dropped at a gone process is observable flow (the
            # livelock watchdog's axis) — a frozen fingerprint must mean
            # frozen *everything*, so the drop counter participates too.
            stats.dropped_gone,
        )

    def _check(self, engine: Engine) -> tuple[str, int, int, int, int] | None:
        cur = self._fingerprint(engine)
        if cur != self._ref:
            self._ref = cur
            self._ref_step = engine.step_count
            self._streak = 1
            return None
        self._streak += 1
        if self._streak < self.window:
            return None
        return (
            f"state fingerprint frozen for {self._streak} consecutive "
            f"samples with zero lifecycle transitions",
            engine.step_count - self._ref_step,
            cur[0],
            cur[1],
            engine.stats.dropped_gone,
        )


class BacklogWatchdog(Watchdog):
    """Trips when total pending messages exceed a hard bound.

    The memory guard: a livelock that floods channels will OOM the host
    long before a generous step budget runs out. Pure O(1) counter
    comparison; the bound should sit far above any healthy scenario's
    peak (admissible initial states have finitely many messages, and
    Lemma 3 runs drain them).
    """

    kind = "backlog"

    def __init__(
        self,
        *,
        check_every: int = 8,
        max_pending: int = 250_000,
        raise_on_trip: bool = True,
    ) -> None:
        super().__init__(check_every=check_every, raise_on_trip=raise_on_trip)
        if max_pending < 1:
            raise ConfigurationError("max_pending must be >= 1")
        self.max_pending = int(max_pending)
        self._floor: tuple[int, int] | None = None  # (step, pending) at window open

    def rebase(self, engine: Engine | None = None) -> None:
        self._floor = None

    def config(self) -> dict:
        return {
            "watchdog": self.kind,
            "check_every": self.check_every,
            "max_pending": self.max_pending,
        }

    def _check(self, engine: Engine) -> tuple[str, int, int, int, int] | None:
        pending = engine.pending_count
        if self._floor is None:
            self._floor = (engine.step_count, pending)
        if pending <= self.max_pending:
            return None
        start_step, start_pending = self._floor
        return (
            f"channel backlog {pending} exceeded the bound "
            f"{self.max_pending}",
            engine.step_count - start_step,
            engine.potential(),
            start_pending,
            engine.stats.dropped_gone,
        )


class RetransmitStormWatchdog(Watchdog):
    """Trips when the transport retransmits far faster than it delivers.

    A retransmit storm is the transport-layer livelock shape: the
    retransmit counter races ahead while frame deliveries stall —
    a partition that never heals, a pathological backoff configuration
    (``backoff=1.0`` hammering a lossy link), or an underlay burst
    whose loss rate the ack path cannot survive. The check reads only
    the O(1) ``engine.net_stats`` counters; on an engine without a
    transport it never trips.

    Over each window (``window`` samples × ``check_every`` steps) the
    watchdog trips when retransmit growth is at least
    ``min_retransmits`` *and* exceeds ``ratio ×`` the frame-delivery
    growth over the same window. The conjunction keeps healthy lossy
    runs out: at 10% loss retransmits grow at ~1/9 the delivery rate,
    two orders below the default ratio.
    """

    kind = "retransmit_storm"

    def __init__(
        self,
        *,
        check_every: int = 64,
        window: int = 16,
        min_retransmits: int = 256,
        ratio: float = 8.0,
        raise_on_trip: bool = True,
    ) -> None:
        super().__init__(check_every=check_every, raise_on_trip=raise_on_trip)
        if window < 2:
            raise ConfigurationError("window must be >= 2 samples")
        if min_retransmits < 1:
            raise ConfigurationError("min_retransmits must be >= 1")
        if ratio <= 0:
            raise ConfigurationError("ratio must be > 0")
        self.window = int(window)
        self.min_retransmits = int(min_retransmits)
        self.ratio = float(ratio)
        #: (step, retransmits, delivered, phi, pending, dropped_gone)
        self._start: tuple[int, int, int, int, int, int] | None = None
        self._samples = 0

    def rebase(self, engine: Engine | None = None) -> None:
        self._start = None
        self._samples = 0

    def config(self) -> dict:
        return {
            "watchdog": self.kind,
            "check_every": self.check_every,
            "window": self.window,
            "min_retransmits": self.min_retransmits,
            "ratio": self.ratio,
        }

    def _check(self, engine: Engine) -> tuple[str, int, int, int, int] | None:
        net_stats = getattr(engine, "net_stats", None)
        if net_stats is None:
            return None
        if self._start is None:
            self._start = (
                engine.step_count,
                net_stats.retransmits,
                net_stats.delivered,
                engine.potential(),
                engine.pending_count,
                engine.stats.dropped_gone,
            )
            self._samples = 1
            return None
        self._samples += 1
        if self._samples < self.window:
            return None
        start_step, start_rtx, start_dlv, phi0, pending0, dg0 = self._start
        rtx_growth = net_stats.retransmits - start_rtx
        dlv_growth = net_stats.delivered - start_dlv
        if (
            rtx_growth < self.min_retransmits
            or rtx_growth <= self.ratio * max(1, dlv_growth)
        ):
            # Healthy window (possibly lossy but draining): slide forward.
            self._start = (
                engine.step_count,
                net_stats.retransmits,
                net_stats.delivered,
                engine.potential(),
                engine.pending_count,
                engine.stats.dropped_gone,
            )
            self._samples = 1
            return None
        return (
            f"retransmit storm: {rtx_growth} retransmits against "
            f"{dlv_growth} frame deliveries over the window "
            f"(ratio bound {self.ratio})",
            engine.step_count - start_step,
            phi0,
            pending0,
            dg0,
        )


#: kind → class, for capsule round-tripping.
WATCHDOG_KINDS: dict[str, type[Watchdog]] = {
    cls.kind: cls  # type: ignore[misc]
    for cls in (
        LivelockWatchdog,
        NoProgressWatchdog,
        BacklogWatchdog,
        RetransmitStormWatchdog,
    )
}


def watchdog_from_config(config: dict) -> Watchdog:
    """Rebuild a watchdog from its :meth:`Watchdog.config` dict."""
    params = dict(config)
    kind = params.pop("watchdog", None)
    cls = WATCHDOG_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown watchdog kind {kind!r}")
    return cls(**params)


def default_watchdogs(*, raise_on_trip: bool = True) -> tuple[Watchdog, ...]:
    """The standard supervisor set: livelock + no-progress + backlog."""
    return (
        LivelockWatchdog(raise_on_trip=raise_on_trip),
        NoProgressWatchdog(raise_on_trip=raise_on_trip),
        BacklogWatchdog(raise_on_trip=raise_on_trip),
    )
