"""Runtime chaos subsystem: campaigns, watchdogs, capsules, shrinking.

The robustness loop the paper's adversary model demands but a
seed-and-pray harness cannot deliver:

* :mod:`~repro.chaos.campaigns` — admissible transient faults injected
  mid-run on a seeded schedule;
* :mod:`~repro.chaos.watchdogs` — livelock / no-progress / backlog
  supervisors over the engine's O(1) counters;
* :mod:`~repro.chaos.capsule` — failures frozen as bit-identically
  replayable JSON capsules (:func:`run_chaos` is the capture harness);
* :mod:`~repro.chaos.shrink` — delta-debugging a capsule down to a
  minimal reproducer.

See ``docs/ROBUSTNESS.md`` for the campaign admissibility argument, the
watchdog catalog and the capsule schema.
"""

from repro.chaos.campaigns import (
    ALL_CAMPAIGN_KINDS,
    CAMPAIGN_KINDS,
    NET_CAMPAIGN_KINDS,
    ChaosCampaign,
    InjectionRecord,
)
from repro.chaos.capsule import (
    CAPSULE_VERSION,
    Capsule,
    ChaosRunResult,
    capture_capsule,
    replay_capsule,
    run_chaos,
)
from repro.chaos.shrink import ShrinkResult, shrink_capsule
from repro.chaos.watchdogs import (
    WATCHDOG_KINDS,
    BacklogWatchdog,
    LivelockWatchdog,
    NoProgressWatchdog,
    RetransmitStormWatchdog,
    StallDiagnosis,
    Watchdog,
    WatchdogTrip,
    default_watchdogs,
    watchdog_from_config,
)

__all__ = [
    "ALL_CAMPAIGN_KINDS",
    "BacklogWatchdog",
    "CAMPAIGN_KINDS",
    "CAPSULE_VERSION",
    "Capsule",
    "ChaosCampaign",
    "ChaosRunResult",
    "InjectionRecord",
    "LivelockWatchdog",
    "NET_CAMPAIGN_KINDS",
    "NoProgressWatchdog",
    "RetransmitStormWatchdog",
    "ShrinkResult",
    "StallDiagnosis",
    "WATCHDOG_KINDS",
    "Watchdog",
    "WatchdogTrip",
    "capture_capsule",
    "default_watchdogs",
    "replay_capsule",
    "run_chaos",
    "shrink_capsule",
    "watchdog_from_config",
]
