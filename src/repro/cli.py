"""Command-line interface: run scenarios without writing Python.

Installed as ``python -m repro``. Subcommands:

* ``fdp`` — run the Section 3 departure protocol on a chosen topology;
* ``fsp`` — the oracle-free sleep variant;
* ``traffic`` — open-system service workload: seeded join/leave churn
  plus streaming search requests over a running FDP/FSP system, with
  the monotonic-searchability gate (docs/TRAFFIC.md);
* ``overlay`` — a stand-alone overlay protocol (topological
  self-stabilization only, no departures);
* ``framework`` — Section 4: overlay + departures (Theorem 4);
* ``baseline`` — the Foreback-style sorted-list departure baseline;
* ``transform`` — plan and verify a Theorem 1 primitive schedule between
  two named topologies;
* ``bench-monitors`` — run one monitored scenario under both graph modes
  (incremental live-graph vs legacy rebuild-on-read) and print the
  observation-cost table;
* ``trace`` — record a run to a JSONL trace file, inspect a trace, or
  replay one bit-identically (docs/OBSERVABILITY.md);
* ``chaos`` — run a scenario under a mid-run fault campaign with
  livelock/no-progress/backlog watchdogs attached (``run``), soak the
  whole scenario × scheduler matrix (``soak``), or delta-debug a failure
  capsule to a minimal reproducer (``shrink``) — docs/ROBUSTNESS.md;
* ``capsule`` — replay a captured failure capsule bit-identically;
* ``metrics`` — the documented probe catalog; with ``--sample``, run a
  scenario and print every probe plus the top Φ contributors;
* ``profile`` — cProfile one standard run and print the hottest
  functions (see docs/PERF.md for the profiling workflow);
* ``topologies`` / ``overlays`` / ``oracles`` — list the registries;
* ``experiments`` — browse the E1–E13 reproduction index.

Every run prints a summary table and exits non-zero if the scenario did
not converge within the step budget — scriptable for CI-style checks.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.tables import format_kv, format_table
from repro.core.oracles import ORACLES
from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import (
    SCHEDULER_FACTORIES,
    Corruption,
    build_fdp_engine,
    build_framework_engine,
    build_from_meta,
    build_fsp_engine,
    choose_leaving,
    corruption_from_factor,
)
from repro.core.universality import plan_transformation
from repro.graphs.generators import GENERATORS
from repro.overlays import LOGICS
from repro.overlays.builders import build_baseline_engine, build_overlay_engine
from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor

__all__ = ["main", "build_parser"]

#: scheduler-name registry, shared with scenario metadata / capsules.
SCHEDULERS = SCHEDULER_FACTORIES


def _add_common(parser: argparse.ArgumentParser, with_leaving: bool = True) -> None:
    parser.add_argument("--n", type=int, default=16, help="number of processes")
    parser.add_argument(
        "--topology",
        choices=sorted(GENERATORS),
        default="random_connected",
        help="initial topology generator",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--scheduler", choices=sorted(SCHEDULERS), default="random"
    )
    parser.add_argument(
        "--max-steps", type=int, default=1_000_000, help="step budget"
    )
    parser.add_argument(
        "--monitor",
        action="store_true",
        help="enable per-step Lemma 2/3 invariant monitors (slower)",
    )
    if with_leaving:
        parser.add_argument(
            "--leaving",
            type=float,
            default=0.25,
            help="fraction of processes that want to leave",
        )
        parser.add_argument(
            "--corruption",
            type=float,
            default=0.0,
            metavar="FACTOR",
            help="initial-state corruption level in [0, 1] "
            "(belief lies, bogus anchors, channel garbage)",
        )


def _topology(args) -> list[tuple[int, int]]:
    gen = GENERATORS[args.topology]
    try:
        return gen(args.n, seed=args.seed)  # type: ignore[call-arg]
    except TypeError:
        return gen(args.n)


def _corruption(factor: float) -> Corruption:
    return corruption_from_factor(factor)


def _monitors(args):
    if not getattr(args, "monitor", False):
        return ()
    return (ConnectivityMonitor(check_every=4), PotentialMonitor(check_every=4))


def _report(engine, converged: bool, extra: dict | None = None) -> int:
    info = {
        "converged": converged,
        "steps": engine.step_count,
        "messages": engine.stats.messages_posted,
        "exits": engine.stats.exits,
        "sleeps": engine.stats.sleeps,
        "final Φ": engine.potential(),
    }
    if extra:
        info.update(extra)
    print(format_kv(info, title="run summary"))
    return 0 if converged else 1


# ------------------------------------------------------------------ commands


def cmd_fdp(args) -> int:
    edges = _topology(args)
    leaving = choose_leaving(args.n, edges, fraction=args.leaving, seed=args.seed)
    oracle_cls = ORACLES[args.oracle]
    engine = build_fdp_engine(
        args.n,
        edges,
        leaving,
        seed=args.seed,
        corruption=_corruption(args.corruption),
        scheduler=SCHEDULERS[args.scheduler](args.seed),
        oracle=oracle_cls(),
        monitors=_monitors(args),
    )
    converged = engine.run(args.max_steps, until=fdp_legitimate, check_every=64)
    return _report(engine, converged, {"leaving": len(leaving)})


def cmd_fsp(args) -> int:
    edges = _topology(args)
    leaving = choose_leaving(args.n, edges, fraction=args.leaving, seed=args.seed)
    engine = build_fsp_engine(
        args.n,
        edges,
        leaving,
        seed=args.seed,
        corruption=_corruption(args.corruption),
        scheduler=SCHEDULERS[args.scheduler](args.seed),
        monitors=_monitors(args),
    )
    converged = engine.run(args.max_steps, until=fsp_legitimate, check_every=64)
    hibernating = len(engine.snapshot().hibernating())
    return _report(engine, converged, {"hibernating": hibernating})


def cmd_traffic(args) -> int:
    """Open-system service run: seeded churn + streaming search requests."""
    from repro.traffic import ArrivalConfig, RequestConfig, TrafficDriver

    edges = _topology(args)
    leaving = choose_leaving(args.n, edges, fraction=args.leaving, seed=args.seed)
    build = build_fsp_engine if args.scenario == "fsp" else build_fdp_engine
    engine = build(
        args.n,
        edges,
        leaving,
        seed=args.seed,
        scheduler=SCHEDULERS[args.scheduler](args.seed),
        monitors=_monitors(args),
        engine_mode=args.engine_mode,
    )
    driver = TrafficDriver(
        engine,
        arrivals=ArrivalConfig(
            join_rate=args.join_rate,
            session_min=args.session_min,
            flash_crowd_prob=args.flash_crowd_prob,
            mass_departure_prob=args.mass_departure_prob,
            max_population=args.max_population,
        ),
        requests=RequestConfig(rate=args.request_rate),
        seed=args.seed,
        chunk=args.chunk,
        trace_path=args.out,
    )
    report = driver.run(args.steps)
    stats = report["stats"]
    info = {
        "virtual steps": report["virtual_steps"],
        "population": stats["population"],
        "joins": stats["joins"],
        "leaves": stats["leaves"],
        "reaps": stats["reaps"],
        "requests": stats["requests_issued"],
        "drop rate": f"{stats['drop_rate']:.4f}",
        "mean latency (hops)": f"{stats['mean_latency']:.2f}",
        "searchability violations": stats["searchability_violations"],
        "bounced refs": engine.stats.bounced,
        "dropped at gone": engine.stats.dropped_gone,
    }
    if args.out:
        info["trace"] = args.out
    print(format_kv(info, title=f"open-system traffic ({args.scenario})"))
    return 0 if stats["searchability_violations"] == 0 else 1


def cmd_overlay(args) -> int:
    edges = _topology(args)
    logic = LOGICS[args.protocol]
    engine = build_overlay_engine(
        args.n,
        edges,
        logic,
        seed=args.seed,
        scheduler=SCHEDULERS[args.scheduler](args.seed),
    )
    converged = engine.run(
        args.max_steps, until=logic.target_reached, check_every=64
    )
    return _report(engine, converged, {"overlay": args.protocol})


def cmd_framework(args) -> int:
    edges = _topology(args)
    logic = LOGICS[args.protocol]
    leaving = choose_leaving(args.n, edges, fraction=args.leaving, seed=args.seed)
    engine = build_framework_engine(
        args.n,
        edges,
        leaving,
        logic,
        seed=args.seed,
        corruption=_corruption(args.corruption),
        scheduler=SCHEDULERS[args.scheduler](args.seed),
        monitors=_monitors(args),
    )

    def done(e):
        return fdp_legitimate(e) and logic.target_reached(e)

    converged = engine.run(args.max_steps, until=done, check_every=128)
    return _report(
        engine, converged, {"overlay": args.protocol, "leaving": len(leaving)}
    )


def cmd_baseline(args) -> int:
    edges = _topology(args)
    leaving = choose_leaving(args.n, edges, fraction=args.leaving, seed=args.seed)
    engine = build_baseline_engine(
        args.n,
        edges,
        leaving,
        seed=args.seed,
        scheduler=SCHEDULERS[args.scheduler](args.seed),
        belief_lie_prob=0.5 * args.corruption,
    )
    converged = engine.run(args.max_steps, until=fdp_legitimate, check_every=64)
    return _report(engine, converged, {"leaving": len(leaving)})


def cmd_transform(args) -> int:
    def make(name):
        gen = GENERATORS[name]
        try:
            return gen(args.n, seed=args.seed)  # type: ignore[call-arg]
        except TypeError:
            return gen(args.n)

    plan = plan_transformation(range(args.n), make(args.source), make(args.target))
    result = plan.replay(check_connectivity=True)
    ok = result.simple_edges() == plan.target
    print(
        format_kv(
            {
                "source": args.source,
                "target": args.target,
                "n": args.n,
                "schedule length": len(plan),
                "clique rounds": plan.clique_rounds,
                **plan.counts(),
                "verified": ok,
            },
            title="Theorem 1 transformation plan",
        )
    )
    return 0 if ok else 1


def _engine_from_trace_meta(meta: dict, tracer=None):
    """Rebuild a recorded scenario's initial state from its trace header.

    Thin alias for :func:`repro.core.scenarios.build_from_meta` — trace
    headers and failure capsules share the same metadata vocabulary, so
    both replay paths go through one reconstruction function.
    """

    return build_from_meta(meta, tracer=tracer)


def cmd_trace_record(args) -> int:
    from repro.obs.trace import JsonlTraceSink

    meta = {
        "scenario": args.scenario,
        "n": args.n,
        "topology": args.topology,
        "seed": args.seed,
        "scheduler": args.scheduler,
        "leaving": args.leaving,
        "corruption": args.corruption,
        "oracle": args.oracle,
    }
    legitimate = fsp_legitimate if args.scenario == "fsp" else fdp_legitimate
    with JsonlTraceSink(
        args.out, meta=meta, metrics_every=args.metrics_every
    ) as sink:
        engine = _engine_from_trace_meta(meta, tracer=sink)
        converged = engine.run(args.max_steps, until=legitimate, check_every=64)
        sink.finalize(engine)
    return _report(
        engine,
        converged,
        {"trace": args.out, "steps recorded": sink.steps_recorded},
    )


def cmd_trace_inspect(args) -> int:
    from repro.analysis.tables import sparkline
    from repro.obs.trace import read_trace

    data = read_trace(args.file)
    timeouts = sum(1 for e in data.events if e.kind == "timeout")
    labels: dict[str, int] = {}
    for rec in data.steps:
        label = rec.get("l")
        if label is not None:
            labels[label] = labels.get(label, 0) + 1
    info = {
        "file": args.file,
        "version": data.version,
        **{f"meta.{k}": v for k, v in sorted(data.meta.items())},
        "steps": len(data.events),
        "timeouts": timeouts,
        "deliveries": len(data.events) - timeouts,
    }
    if data.final is not None:
        info.update({f"final.{k}": v for k, v in sorted(data.final.items()) if k != "t"})
    print(format_kv(info, title="trace summary"))
    if labels:
        rows = sorted(labels.items(), key=lambda kv: (-kv[1], kv[0]))
        print()
        print(format_table(["label", "deliveries"], rows[:10]))
    phis = [rec["phi"] for rec in data.metrics if "phi" in rec]
    if phis:
        print(f"\nΦ over run:  {sparkline(phis)}  ({phis[0]} → {phis[-1]})")
    return 0


def cmd_trace_replay(args) -> int:
    from repro.obs.trace import read_trace, replay_trace

    data = read_trace(args.file)
    if not data.meta:
        print(
            f"error: {args.file} carries no scenario metadata; replay it "
            "programmatically with repro.obs.replay_trace and your own builder",
            file=sys.stderr,
        )
        return 2

    def build():
        return _engine_from_trace_meta(data.meta)

    engine = replay_trace(build, args.file, verify=not args.no_verify)
    info = {
        "file": args.file,
        "replayed steps": engine.step_count,
        "verified against final record": not args.no_verify
        and data.final is not None,
        "final Φ": engine.potential(),
        "gone": engine.gone_count,
    }
    print(format_kv(info, title="bit-identical replay"))
    return 0


def _chaos_meta(args) -> dict:
    meta = {
        "scenario": args.scenario,
        "n": args.n,
        "topology": args.topology,
        "seed": args.seed,
        "scheduler": args.scheduler,
        "leaving": args.leaving,
        "corruption": args.corruption,
    }
    if args.scenario == "framework":
        meta["protocol"] = args.protocol
    return meta


def _chaos_until(meta: dict):
    """The scenario's own notion of done (None ⇒ watchdogs decide)."""
    if meta.get("scenario") == "fsp":
        return fsp_legitimate
    if meta.get("scenario") == "framework":
        logic = LOGICS[meta["protocol"]]

        def done(e):
            return fdp_legitimate(e) and logic.target_reached(e)

        return done
    return fdp_legitimate


def cmd_chaos_run(args) -> int:
    from repro.chaos import ChaosCampaign, default_watchdogs, run_chaos

    meta = _chaos_meta(args)
    campaign = None
    if args.injections:
        campaign = ChaosCampaign(
            seed=args.seed,
            period=args.inject_every,
            max_injections=None if args.injections < 0 else args.injections,
        )
    monitors = _monitors(args)
    if meta["scenario"] == "framework":
        # Lemma 3 (Φ never rises) is an FDP/FSP statement; the Section 4
        # verify machinery legitimately copies unvalidated beliefs, so a
        # PotentialMonitor would report phantom violations here.
        monitors = tuple(
            m for m in monitors if not isinstance(m, PotentialMonitor)
        )
    result = run_chaos(
        meta,
        campaign=campaign,
        watchdogs=default_watchdogs(),
        monitors=monitors,
        max_steps=args.max_steps,
        until=_chaos_until(meta),
        capsule_dir=args.capsule_dir,
    )
    engine = result.engine
    info = {
        "outcome": result.outcome,
        "steps": engine.step_count,
        "injections": len(campaign.injections) if campaign is not None else 0,
        "final Φ": engine.potential(),
        "pending": engine.pending_count,
        "gone": engine.gone_count,
    }
    if result.error:
        info["error"] = result.error
    if result.capsule_path:
        info["capsule"] = result.capsule_path
    print(format_kv(info, title="chaos run"))
    if result.outcome == "converged":
        return 0
    return 1 if result.outcome == "budget" else 2


def cmd_chaos_soak(args) -> int:
    """Seeded campaign battery: every scenario under every scheduler.

    A cell fails on a safety violation, a watchdog trip or an engine
    error — i.e. on evidence of a protocol bug or a watchdog false
    positive. Running out of the per-cell step budget is recorded but
    not fatal (chaos slows convergence; soak is a bug hunt, not a
    performance gate).
    """
    from repro.chaos import (
        ALL_CAMPAIGN_KINDS,
        CAMPAIGN_KINDS,
        ChaosCampaign,
        RetransmitStormWatchdog,
        default_watchdogs,
        run_chaos,
    )

    schedulers = ("random",) if args.quick else tuple(sorted(SCHEDULERS))
    traffic = getattr(args, "traffic", False)
    net = getattr(args, "net", False)
    if net or traffic:
        # The open-system workload drives churn through the class-𝒫
        # admission surface; the capsule journal replays FDP/FSP admits,
        # so the traffic battery covers exactly those two scenarios. The
        # net battery matches: the end-to-end claim under an unreliable
        # underlay is about the paper's FDP/FSP guarantees.
        scenarios: list[dict] = [{"scenario": "fdp"}, {"scenario": "fsp"}]
    else:
        scenarios = [
            {"scenario": "fdp"},
            {"scenario": "fsp"},
        ] + [
            {"scenario": "framework", "protocol": name}
            for name in sorted(LOGICS)
        ]

    def traffic_workload(engine):
        from repro.traffic import ArrivalConfig, RequestConfig, TrafficDriver

        driver = TrafficDriver(
            engine,
            arrivals=ArrivalConfig(join_rate=8.0, session_min=256.0),
            requests=RequestConfig(rate=20.0),
            seed=args.seed,
            chunk=128,
        )
        driver.run(args.max_steps)
        # Convergence in the open-system regime is a safety verdict, not
        # a quiescence one: the run must stay monotonically searchable.
        return driver.stats.searchability_violations == 0

    if net:
        from repro.net import default_net_config

        # Loss/delay grid for the unreliable-underlay battery; the
        # default point is the documented fault campaign (10% loss +
        # dup + delay plus one transient partition).
        grid: list[tuple[float, float] | None] = (
            [(0.1, 0.1)] if args.quick else [(0.05, 0.05), (0.1, 0.1), (0.3, 0.2)]
        )
    else:
        grid = [None]

    rows = []
    failures = 0
    for scheduler in schedulers:
        for base in scenarios:
            for cell in grid:
                meta = {
                    **base,
                    "n": args.n,
                    "topology": "random_connected",
                    "seed": args.seed,
                    "scheduler": scheduler,
                    "leaving": 0.25,
                    "corruption": 0.5,
                }
                watchdogs = default_watchdogs()
                kinds = CAMPAIGN_KINDS
                if cell is not None:
                    loss, delay_prob = cell
                    meta["net"] = default_net_config(
                        args.seed, loss=loss, delay=delay_prob
                    )
                    watchdogs += (RetransmitStormWatchdog(),)
                    kinds = ALL_CAMPAIGN_KINDS
                campaign = ChaosCampaign(
                    seed=args.seed,
                    period=args.inject_every,
                    max_injections=3,
                    kinds=kinds,
                )
                # Lemma 2 is checked everywhere; Lemma 3's Φ-monotonicity
                # is a *closed-system* FDP/FSP statement (the Section 4
                # framework's verify machinery legitimately copies
                # unvalidated beliefs around, and an open-system admission
                # plants new beliefs out of band exactly like an
                # injection). The transport does not perturb it: faults
                # delay deliverability, never channel contents.
                cell_monitors: tuple = (ConnectivityMonitor(check_every=16),)
                if base["scenario"] in ("fdp", "fsp") and not traffic:
                    cell_monitors += (PotentialMonitor(check_every=16),)
                result = run_chaos(
                    meta,
                    campaign=campaign,
                    watchdogs=watchdogs,
                    monitors=cell_monitors,
                    max_steps=args.max_steps,
                    until=_chaos_until(meta),
                    capture_on_budget=False,
                    workload=traffic_workload if traffic else None,
                )
                outcome = result.outcome
                if traffic and outcome == "budget":
                    # Under a workload the verdict is the searchability
                    # gate, not the step budget — a False return means
                    # violations.
                    outcome = "searchability"
                if outcome not in ("converged", "budget"):
                    failures += 1
                rows.append(
                    [
                        base.get("protocol", base["scenario"]),
                        base["scenario"],
                        scheduler,
                        "-" if cell is None else f"{cell[0]}/{cell[1]}",
                        outcome,
                        result.engine.step_count,
                        len(campaign.injections),
                    ]
                )
    print(
        format_table(
            [
                "protocol",
                "scenario",
                "scheduler",
                "loss/delay",
                "outcome",
                "steps",
                "injections",
            ],
            rows,
            title=f"chaos soak (n={args.n}, seed={args.seed}, "
            f"{len(rows)} cells, {failures} failures)",
        )
    )
    return 1 if failures else 0


def cmd_chaos_shrink(args) -> int:
    from repro.chaos import Capsule, shrink_capsule

    capsule = Capsule.load(args.file)
    result = shrink_capsule(
        capsule,
        parallel=args.parallel,
        seeds_per_candidate=args.seeds,
        capsule_dir=args.out_dir,
    )
    info = {
        "kind": capsule.kind,
        "processes": f"{result.original_n} -> {result.final_n}",
        "campaign": "kept" if result.campaign is not None else "dropped",
        "max_steps": result.max_steps,
        "steps to failure": result.steps_to_failure,
        "reproducing seed": result.seed,
        "probes": result.probes,
    }
    for event in result.history:
        info[f"shrink[{event['axis']}]"] = f"{event['from']} -> {event['to']}"
    print(format_kv(info, title="capsule shrink"))
    return 0


def cmd_capsule_replay(args) -> int:
    from repro.chaos import Capsule, replay_capsule

    capsule = Capsule.load(args.file)
    engine = replay_capsule(capsule, verify=not args.no_verify)
    info = {
        "file": args.file,
        "kind": capsule.kind,
        "replayed steps": engine.step_count,
        "verified against final record": not args.no_verify,
        "final Φ": engine.potential(),
        "pending": engine.pending_count,
        "gone": engine.gone_count,
    }
    if capsule.diagnosis:
        info["diagnosis"] = capsule.diagnosis.get("detail", capsule.diagnosis)
    print(format_kv(info, title="bit-identical capsule replay"))
    return 0


def cmd_metrics(args) -> int:
    from repro.obs.metrics import REGISTRY, sample_all, top_phi

    rows = [[p.name, p.cost, p.description] for p in REGISTRY.values()]
    print(format_table(["probe", "cost", "reads"], rows, title="probe catalog"))
    if not args.sample:
        return 0
    meta = {
        "scenario": "fdp",
        "n": args.n,
        "topology": args.topology,
        "seed": args.seed,
        "scheduler": args.scheduler,
        "leaving": args.leaving,
        "corruption": args.corruption,
        "oracle": args.oracle,
    }
    engine = _engine_from_trace_meta(meta)
    engine.run(args.max_steps, until=fdp_legitimate, check_every=64)
    print()
    print(
        format_kv(
            {k: v for k, v in sample_all(engine).items()},
            title=f"probe sample after {engine.step_count} steps "
            f"(n={args.n}, corruption={args.corruption})",
        )
    )
    for by in ("subject", "holder"):
        contributors = top_phi(engine, by=by, limit=5)
        if contributors:
            print()
            print(
                format_table(
                    ["pid", "Φ contribution"],
                    contributors,
                    title=f"top Φ by {by}",
                )
            )
    return 0


def cmd_bench_monitors(args) -> int:
    from repro.analysis.profiling import observation_cost

    rows = []
    for mode in ("rebuild", "incremental"):
        r = observation_cost(args.n, mode, steps=args.steps, seed=args.seed)
        rows.append(
            [
                r["mode"],
                r["steps"],
                f"{r['wall_s']:.3f}",
                f"{r['steps_per_s']:.1f}",
                f"{r['observe_s']:.3f}",
                f"{100 * r['observe_frac']:.1f}%",
            ]
        )
    print(
        format_table(
            ["graph mode", "steps", "wall s", "steps/s", "observe s", "observe %"],
            rows,
            title=f"per-step Lemma 2/3 monitoring cost, n={args.n} "
            "(same scenario, both observation paths)",
        )
    )
    rebuild_rate = float(rows[0][3])
    if rebuild_rate > 0:
        print(f"\nincremental speedup: {float(rows[1][3]) / rebuild_rate:.1f}x")
    else:
        print("\nincremental speedup: n/a (scenario quiesced immediately)")
    return 0


def cmd_profile(args) -> int:
    from repro.analysis.profiling import profile_scenario

    r = profile_scenario(
        args.scenario,
        args.n,
        steps=args.steps,
        seed=args.seed,
        monitored=args.monitored,
        top=args.top,
        sort=args.sort,
    )
    print(
        format_kv(
            {
                "scenario": r["scenario"],
                "n": r["n"],
                "monitored": r["monitored"],
                "steps executed": r["steps"],
                "wall s (under profiler)": r["wall_s"],
                "steps/s (under profiler)": r["steps_per_s"],
                "converged": r["converged"],
            },
            title="cProfile of one standard run — rates include profiler "
            "overhead; use benchmarks/bench_step_loop.py for honest numbers",
        )
    )
    print()
    print(r["report"])
    return 0


def cmd_topologies(args) -> int:
    print(format_table(["name"], [[n] for n in sorted(GENERATORS)]))
    return 0


def cmd_overlays(args) -> int:
    rows = [
        [name, "yes" if cls.requires_order else "no"]
        for name, cls in sorted(LOGICS.items())
    ]
    print(format_table(["overlay", "needs total order"], rows))
    return 0


def cmd_oracles(args) -> int:
    print(format_table(["oracle"], [[n] for n in sorted(ORACLES)]))
    return 0


def cmd_lint(args) -> int:
    from repro.lint.runner import list_rules, run_lint

    if args.list_rules:
        return list_rules()
    return run_lint(
        args.paths,
        select=tuple(args.select.split(",")) if args.select else (),
        ignore=tuple(args.ignore.split(",")) if args.ignore else (),
        output_format=args.format,
        cache_path=args.cache,
        show_stats=args.stats,
    )


#: The experiment index (DESIGN.md) in CLI-browsable form.
EXPERIMENTS = [
    ("E1", "Figure 1", "state-graph transitions", "bench_e1_state_graph.py"),
    ("E2", "Figure 2 + Lemma 1", "the four primitives", "bench_e2_primitives.py"),
    ("E3", "Theorem 1", "universality + O(log n) clique rounds", "bench_e3_universality.py"),
    ("E4", "Theorem 2", "necessity of each primitive", "bench_e4_necessity.py"),
    ("E5", "Lemma 2", "safety under corruption/adversary", "bench_e5_safety.py"),
    ("E6", "Lemma 3", "Φ decay + convergence scaling", "bench_e6_convergence.py"),
    ("E7", "Theorem 3", "FDP end-to-end battery + closure", "bench_e7_fdp_end_to_end.py"),
    ("E8", "Theorem 4", "framework(P) per overlay + retry ablation", "bench_e8_embedding.py"),
    ("E9", "FSP", "oracle-free departure + hibernation closure", "bench_e9_fsp.py"),
    ("E10", "§1.5 vs [15]", "baseline comparison + generality", "bench_e10_baseline.py"),
    ("E11", "§1.3", "oracle ablation (SINGLE/timeout/ALWAYS/NEVER)", "bench_e11_oracle_ablation.py"),
    ("E12", "Conclusion", "safety beyond connectivity (stretch, degree)", "bench_e12_beyond_connectivity.py"),
    ("E13", "§1.1 fairness", "cost/load under every fair scheduler family", "bench_e13_scheduler_load.py"),
]


def cmd_experiments(args) -> int:
    print(
        format_table(
            ["id", "paper artifact", "what it reproduces", "bench (run with pytest)"],
            EXPERIMENTS,
            title="experiment index — pytest benchmarks/<file> --benchmark-only",
        )
    )
    return 0


# ------------------------------------------------------------------ parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-stabilizing finite departure for overlay networks "
        "(Koutsopoulos, Scheideler & Strothmann, SPAA 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fdp", help="run the Section 3 FDP protocol")
    _add_common(p)
    p.add_argument("--oracle", choices=sorted(ORACLES), default="single")
    p.set_defaults(func=cmd_fdp)

    p = sub.add_parser("fsp", help="run the oracle-free FSP variant")
    _add_common(p)
    p.set_defaults(func=cmd_fsp)

    p = sub.add_parser(
        "traffic",
        help="open-system service workload: churn + request traffic "
        "(docs/TRAFFIC.md)",
    )
    p.add_argument("--n", type=int, default=64, help="initial population")
    p.add_argument(
        "--topology",
        choices=sorted(GENERATORS),
        default="random_connected",
        help="initial topology generator",
    )
    p.add_argument("--seed", type=int, default=0, help="master seed")
    p.add_argument(
        "--scheduler", choices=sorted(SCHEDULERS), default="random"
    )
    p.add_argument(
        "--scenario", choices=("fdp", "fsp"), default="fdp",
        help="departure protocol run underneath the workload",
    )
    p.add_argument(
        "--leaving", type=float, default=0.1,
        help="fraction of the initial population that wants to leave",
    )
    p.add_argument(
        "--engine-mode",
        choices=("objects", "soa", "verify"),
        default=None,
        help="execution core (default: REPRO_ENGINE_MODE or objects)",
    )
    p.add_argument(
        "--steps", type=int, default=20_000,
        help="virtual steps of open-system operation",
    )
    p.add_argument(
        "--chunk", type=int, default=256,
        help="engine steps between churn/request boundaries",
    )
    p.add_argument(
        "--join-rate", type=float, default=2.0,
        help="mean arrivals per 1000 virtual steps",
    )
    p.add_argument(
        "--request-rate", type=float, default=50.0,
        help="mean search requests per 1000 virtual steps",
    )
    p.add_argument(
        "--session-min", type=float, default=512.0,
        help="Pareto session-length floor (virtual steps)",
    )
    p.add_argument(
        "--flash-crowd-prob", type=float, default=0.0,
        help="per-boundary probability of a correlated join burst",
    )
    p.add_argument(
        "--mass-departure-prob", type=float, default=0.0,
        help="per-boundary probability of a correlated leave burst",
    )
    p.add_argument(
        "--max-population", type=int, default=None,
        help="defer joins beyond this population cap",
    )
    p.add_argument("--monitor", action="store_true", help=argparse.SUPPRESS)
    p.add_argument("--out", default=None, help="traffic trace JSONL path")
    p.set_defaults(func=cmd_traffic)

    p = sub.add_parser("overlay", help="run a stand-alone overlay protocol")
    _add_common(p, with_leaving=False)
    p.add_argument("--protocol", choices=sorted(LOGICS), default="linearization")
    p.set_defaults(func=cmd_overlay)

    p = sub.add_parser(
        "framework", help="run overlay + departures (Section 4 / Theorem 4)"
    )
    _add_common(p)
    p.add_argument("--protocol", choices=sorted(LOGICS), default="linearization")
    p.set_defaults(func=cmd_framework)

    p = sub.add_parser(
        "baseline", help="run the Foreback-style sorted-list baseline"
    )
    _add_common(p)
    p.set_defaults(func=cmd_baseline)

    p = sub.add_parser(
        "transform", help="plan a Theorem 1 schedule between topologies"
    )
    p.add_argument("--n", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--source", choices=sorted(GENERATORS), required=True)
    p.add_argument("--target", choices=sorted(GENERATORS), required=True)
    p.set_defaults(func=cmd_transform)

    p = sub.add_parser(
        "trace", help="record/inspect/replay JSONL execution traces"
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    t = tsub.add_parser("record", help="run a scenario, stream a trace file")
    _add_common(t)
    t.add_argument("--scenario", choices=("fdp", "fsp"), default="fdp")
    t.add_argument("--oracle", choices=sorted(ORACLES), default="single")
    t.add_argument("--out", required=True, help="trace file to write (JSONL)")
    t.add_argument(
        "--metrics-every",
        type=int,
        default=0,
        metavar="K",
        help="also record Φ/gone/edges/pending every K steps (0 = off)",
    )
    t.set_defaults(func=cmd_trace_record)

    t = tsub.add_parser("inspect", help="summarize a trace file")
    t.add_argument("file", help="trace file (JSONL)")
    t.set_defaults(func=cmd_trace_inspect)

    t = tsub.add_parser(
        "replay", help="re-execute a trace bit-identically and verify it"
    )
    t.add_argument("file", help="trace file (JSONL)")
    t.add_argument(
        "--no-verify",
        action="store_true",
        help="skip checking the replay against the trace's final record",
    )
    t.set_defaults(func=cmd_trace_replay)

    p = sub.add_parser(
        "chaos",
        help="mid-run fault campaigns, stall watchdogs, capsule shrinking",
    )
    csub = p.add_subparsers(dest="chaos_command", required=True)

    c = csub.add_parser(
        "run", help="run one scenario under a campaign with watchdogs"
    )
    _add_common(c)
    c.add_argument(
        "--scenario", choices=("fdp", "fsp", "framework"), default="fdp"
    )
    c.add_argument(
        "--protocol",
        choices=sorted(LOGICS),
        default="linearization",
        help="overlay logic (framework scenario only)",
    )
    c.add_argument(
        "--inject-every",
        type=int,
        default=1_000,
        metavar="STEPS",
        help="mean steps between injections (seeded jitter applies)",
    )
    c.add_argument(
        "--injections",
        type=int,
        default=5,
        metavar="MAX",
        help="injection cap (0 = no campaign, -1 = unbounded)",
    )
    c.add_argument(
        "--capsule-dir",
        default="capsules",
        help="directory for failure capsules (written only on failure)",
    )
    c.set_defaults(func=cmd_chaos_run)

    c = csub.add_parser(
        "soak", help="campaign battery over every scenario × scheduler"
    )
    c.add_argument("--n", type=int, default=12, help="processes per cell")
    c.add_argument("--seed", type=int, default=0, help="master seed")
    c.add_argument(
        "--max-steps", type=int, default=60_000, help="step budget per cell"
    )
    c.add_argument(
        "--inject-every", type=int, default=400, metavar="STEPS",
        help="mean steps between injections",
    )
    c.add_argument(
        "--quick",
        action="store_true",
        help="random scheduler only (CI smoke)",
    )
    c.add_argument(
        "--traffic",
        action="store_true",
        help="drive each cell through the open-system churn + request "
        "workload instead of a closed run (fdp/fsp scenarios)",
    )
    c.add_argument(
        "--net",
        action="store_true",
        help="run each fdp/fsp cell over an unreliable underlay "
        "(loss/delay grid, net campaign kinds, retransmit-storm "
        "watchdog); composes with --traffic",
    )
    c.set_defaults(func=cmd_chaos_soak)

    c = csub.add_parser(
        "shrink", help="delta-debug a failure capsule to a minimal reproducer"
    )
    c.add_argument("file", help="failure capsule (JSON)")
    c.add_argument(
        "--parallel",
        action="store_true",
        help="probe candidates on a worker fabric",
    )
    c.add_argument(
        "--seeds", type=int, default=3, help="probe seeds per candidate"
    )
    c.add_argument(
        "--out-dir",
        default="capsules",
        help="directory for the minimized capsule",
    )
    c.set_defaults(func=cmd_chaos_shrink)

    p = sub.add_parser(
        "capsule", help="replay captured failure capsules bit-identically"
    )
    psub = p.add_subparsers(dest="capsule_command", required=True)
    c = psub.add_parser(
        "replay", help="re-execute a capsule and verify its final state"
    )
    c.add_argument("file", help="failure capsule (JSON)")
    c.add_argument(
        "--no-verify",
        action="store_true",
        help="skip checking the replay against the captured final counters",
    )
    c.set_defaults(func=cmd_capsule_replay)

    p = sub.add_parser(
        "metrics", help="probe catalog; --sample runs a scenario through it"
    )
    _add_common(p)
    p.add_argument("--oracle", choices=sorted(ORACLES), default="single")
    p.add_argument(
        "--sample",
        action="store_true",
        help="run an FDP scenario and print every probe + top Φ holders",
    )
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "bench-monitors",
        help="compare per-step monitoring cost: incremental vs rebuild",
    )
    p.add_argument("--n", type=int, default=128, help="number of processes")
    p.add_argument("--steps", type=int, default=2_000, help="step budget per mode")
    p.add_argument("--seed", type=int, default=7, help="master seed")
    p.set_defaults(func=cmd_bench_monitors)

    p = sub.add_parser(
        "profile",
        help="cProfile one standard run and print the hottest functions",
    )
    p.add_argument("--scenario", choices=("fdp", "fsp"), default="fdp")
    p.add_argument("--n", type=int, default=128, help="number of processes")
    p.add_argument("--steps", type=int, default=5_000, help="step budget")
    p.add_argument("--seed", type=int, default=7, help="master seed")
    p.add_argument(
        "--monitored",
        action="store_true",
        help="attach per-step connectivity+potential monitors",
    )
    p.add_argument("--top", type=int, default=20, help="report lines")
    p.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "calls"),
        help="pstats sort key",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "lint",
        help="static model-conformance/determinism analysis (docs/LINT.md)",
    )
    p.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    p.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="github = GitHub Actions ::error annotations",
    )
    p.add_argument("--select", default="", help="comma-separated rule prefixes")
    p.add_argument("--ignore", default="", help="comma-separated rule prefixes")
    p.add_argument("--list-rules", action="store_true", help="print the catalogue")
    p.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="per-file result cache (content-hash keyed, rule-salted)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print file count, elapsed time and cache hit rate",
    )
    p.set_defaults(func=cmd_lint)

    sub.add_parser("topologies", help="list topology generators").set_defaults(
        func=cmd_topologies
    )
    sub.add_parser("overlays", help="list overlay protocols").set_defaults(
        func=cmd_overlays
    )
    sub.add_parser("oracles", help="list oracles").set_defaults(func=cmd_oracles)
    sub.add_parser(
        "experiments", help="list the paper-reproduction experiments (E1–E13)"
    ).set_defaults(func=cmd_experiments)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
