"""Messages of the form ``⟨label⟩(⟨parameters⟩)`` with piggybacked mode info.

The paper's model requires every message to name the action to execute at
the receiver (*label*) plus a parameter list. Whenever a protocol sends a
reference of process *b* to a third process, it "automatically sends some
relevant information it knows about *b* along with it" — in Section 3 the
relevant information is the sender's belief about ``mode(b)``.

:class:`RefInfo` is the unit of *reference + piggybacked belief* that
travels inside parameter lists. Keeping the belief physically attached to
the reference (rather than in a side table) makes the potential function Φ
of Lemma 3 directly computable: an implicit edge ``(x, y)`` carries invalid
information exactly when some message in ``x.Ch`` contains a
``RefInfo(y, m)`` with ``m ≠ mode(y)``.

Parameters may also contain plain data (ints, strings, tuples); only
:class:`RefInfo` entries count as references for the process graph.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.sim.refs import Ref
from repro.sim.states import Mode

__all__ = ["RefInfo", "Message", "iter_refinfos", "iter_refs"]


class RefInfo:
    """A process reference bundled with the sender's belief about its mode.

    ``mode`` may be ``None`` for protocols that do not track modes (plain
    overlay maintenance without departures); the FDP/FSP protocols always
    attach a concrete belief.

    Immutable and hashable (RefInfos live in frozensets and Counter
    keys). A hand-rolled ``__slots__`` class rather than a frozen
    dataclass: RefInfo construction sits on the engine's hot send path,
    and the dataclass machinery's per-field ``object.__setattr__``
    plus ``__dict__`` storage measurably dominates it.
    """

    __slots__ = ("ref", "mode")

    def __init__(self, ref: Ref, mode: Mode | None = None) -> None:
        object.__setattr__(self, "ref", ref)
        object.__setattr__(self, "mode", mode)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RefInfo is immutable")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RefInfo):
            return self.ref == other.ref and self.mode is other.mode
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, RefInfo):
            return not (self.ref == other.ref and self.mode is other.mode)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.ref, self.mode))

    def believed(self, mode: Mode) -> bool:
        """Return whether the attached belief equals *mode*."""
        return self.mode is mode

    def with_mode(self, mode: Mode | None) -> RefInfo:
        """Return a copy of this info carrying a different belief."""
        return RefInfo(self.ref, mode)

    def __repr__(self) -> str:
        m = self.mode.value if self.mode is not None else "?"
        return f"{self.ref!r}:{m}"


class Message:
    """One entry of a channel: an action call request.

    Equality ignores ``sender`` (trace-only metadata); one Message is
    allocated per send, so this is a ``__slots__`` class for the same
    hot-path reason as :class:`RefInfo`. Treat instances as immutable —
    channels and the live graph index them by ``seq``.

    Attributes
    ----------
    label:
        Name of the action to call at the receiver.
    args:
        Positional parameters; :class:`RefInfo` entries are references (and
        form implicit process-graph edges while the message is in flight),
        anything else is opaque payload.
    seq:
        A unique, monotonically increasing sequence number assigned by the
        engine when the message enters a channel. Used for deterministic
        scheduling and tracing; **never** visible to protocol code.
    sender:
        The pid of the sending process, or ``None`` for messages planted by
        the fault injector as part of a corrupted initial state. Trace-only:
        the receiving action cannot observe it (point-to-point channels in
        the paper's model carry no sender identity unless a reference is an
        explicit parameter).
    """

    __slots__ = ("label", "args", "seq", "sender", "_pairs")

    def __init__(
        self,
        label: str,
        args: tuple[Any, ...] = (),
        seq: int = -1,
        sender: int | None = None,
    ) -> None:
        self.label = label
        self.args = args
        self.seq = seq
        self.sender = sender
        #: lazily computed (pid, belief) pairs; see :meth:`edge_pairs`.
        self._pairs: tuple[tuple[int, Mode | None], ...] | None = None

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Message):
            return (
                self.label == other.label
                and self.args == other.args
                and self.seq == other.seq
            )
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return eq
        return not eq

    def __hash__(self) -> int:
        return hash((self.label, self.args, self.seq))

    def refinfos(self) -> Iterator[RefInfo]:
        """Iterate over all :class:`RefInfo` entries in the parameters."""
        return iter_refinfos(self.args)

    def edge_pairs(self) -> tuple[tuple[int, Mode | None], ...]:
        """The message's implicit-edge deltas as ``(dst_pid, belief)`` int
        pairs, computed once and cached.

        This is the hot-path feed for the live graph: a message's edges
        are consumed at least twice (enqueue and dequeue), and walking
        the ``refinfos()`` generator re-allocates an iterator chain each
        time. Messages are immutable once posted, so the pair tuple is a
        pure function of ``args`` and safe to cache on first use. The
        pairs carry no :class:`Ref` objects — downstream consumers (the
        live graph, the struct-of-arrays core) stay in the int domain.
        """

        pairs = self._pairs
        if pairs is None:
            args = self.args
            if len(args) == 1 and type(args[0]) is RefInfo:
                info = args[0]
                pairs = ((info.ref._pid, info.mode),)  # noqa: SLF001
            else:
                pairs = tuple(
                    (info.ref._pid, info.mode)  # noqa: SLF001
                    for info in iter_refinfos(args)
                )
            self._pairs = pairs
        return pairs

    def refs(self) -> Iterator[Ref]:
        """Iterate over all references in the parameters."""
        return iter_refs(self.args)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"#{self.seq}:{self.label}({inner})"


def iter_refinfos(obj: Any) -> Iterator[RefInfo]:
    """Yield every :class:`RefInfo` nested anywhere inside *obj*.

    Containers searched: tuples, lists, frozensets and dict values. This is
    what the engine uses to enumerate implicit edges, so any parameter
    structure a protocol sends is automatically accounted for in the
    process graph.
    """

    if isinstance(obj, RefInfo):
        yield obj
    elif isinstance(obj, (tuple, list, frozenset, set)):
        for item in obj:
            yield from iter_refinfos(item)
    elif isinstance(obj, dict):
        for item in obj.values():
            yield from iter_refinfos(item)
    elif isinstance(obj, Ref):
        raise TypeError(
            "bare Ref found in message parameters; wrap references in "
            "RefInfo so mode information travels with them"
        )


def iter_refs(obj: Any) -> Iterator[Ref]:
    """Yield every reference nested anywhere inside *obj*."""
    for info in iter_refinfos(obj):
        yield info.ref
