"""The process model: actions, modes, lifecycle, and the action context.

A :class:`Process` is the unit of computation of the paper's model
(Section 1.1). It owns protocol variables, a read-only ``mode`` and a
lifecycle state (Figure 1), and defines *actions*:

* the **timeout action** — a guarded action whose guard is ``true``; the
  engine's weakly-fair schedulers execute it infinitely often for every
  process that stays awake;
* **remotely callable actions** — methods named ``on_<label>``; a message
  ``⟨label⟩(⟨params⟩)`` delivered to the process invokes
  ``on_<label>(ctx, *params)``. Messages whose label has no matching
  method are ignored, exactly as the paper specifies ("all other messages
  will be ignored by the processes").

Actions execute *atomically*: the engine runs one action to completion
before selecting the next event. All interaction with the outside world
goes through the :class:`ActionContext` handed to the action — sending
messages (``v ← label(params)``), the ``exit`` and ``sleep`` commands, and
oracle consultation. Keeping the side-effect surface on the context makes
every action a pure function of ``(local state, message, context)``, which
is what lets the test-suite drive each pseudocode branch in isolation.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING, Any

from repro.errors import StateViolation
from repro.sim.messages import RefInfo
from repro.sim.refs import KeyProvider, Ref, RefDeltaLog
from repro.sim.states import Mode, PState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["Process", "ActionContext"]


class ActionContext:
    """Capability object through which an executing action affects the world.

    One context is created per action execution. After the action returns,
    the context is *closed*: late calls (e.g. from a handler that stashed
    the context) raise :class:`~repro.errors.StateViolation`, preventing
    accidental violation of action atomicity.
    """

    __slots__ = ("_engine", "_process", "_closed", "_requested_state")

    def __init__(self, engine: Engine, process: Process) -> None:
        self._engine = engine
        self._process = process
        self._closed = False
        #: state transition requested by the action (applied on return)
        self._requested_state: PState | None = None

    # -- plumbing -------------------------------------------------------------

    def _reset(self, process: Process) -> None:
        """Re-arm this context for *process*'s next action.

        The engine keeps one pooled context per run and resets it instead
        of allocating per action; a closed context stays closed for any
        handler that stashed it, because the pool re-arms only at the
        start of the next action.
        """
        self._process = process
        self._closed = False
        self._requested_state = None

    def _check_open(self) -> None:
        if self._closed:
            raise StateViolation(
                "action context used after the action returned; actions are atomic"
            )

    def _close(self) -> PState | None:
        self._closed = True
        return self._requested_state

    # -- the model's communication primitive -----------------------------------

    @property
    def self_ref(self) -> Ref:
        """The executing process's own reference."""
        return self._process.self_ref

    def send(self, target: Ref, label: str, *args: Any) -> None:
        """Execute ``target ← label(args)``: deposit a message in target's channel.

        Reference parameters must be wrapped in
        :class:`~repro.sim.messages.RefInfo` carrying the sender's belief
        about their mode — the paper's "relevant information" piggyback.
        Information about oneself is always valid, so ``RefInfo(self_ref)``
        entries with ``mode=None`` are auto-completed with the actual mode.
        """

        self._check_open()
        proc = self._process
        if len(args) == 1:
            # Fast path: the FDP/FSP protocols always send exactly one
            # RefInfo, and it already carries the right belief unless it
            # is an under-specified self reference — reuse the caller's
            # tuple-free argument and allocate only when auto-completion
            # actually changes it.
            a = args[0]
            if (
                isinstance(a, RefInfo)
                and a.ref == proc.self_ref
                and a.mode is not proc.mode
            ):
                args = (RefInfo(a.ref, proc.mode),)
            self._engine.post(proc.pid, target, label, args)
            return
        self._engine.post(proc.pid, target, label, self._fix_args(args))

    def _fix_args(self, args: tuple[Any, ...]) -> tuple[Any, ...]:
        """Auto-complete self-RefInfo beliefs in a multi-arg parameter list."""
        proc = self._process
        # One RefInfo per under-specified self reference is the protocol
        # contract, not avoidable copying — and this slow path only runs
        # for multi-arg sends, which no shipped protocol issues.
        return tuple(
            RefInfo(a.ref, proc.mode)  # repro: noqa[PERF004]
            if isinstance(a, RefInfo) and a.ref == proc.self_ref
            else a
            for a in args
        )

    # -- the special commands ----------------------------------------------------

    def exit(self) -> None:
        """Execute the ``exit`` command: enter the designated *gone* state.

        Only available when the run's :class:`~repro.sim.states.Capability`
        includes EXIT (the FDP setting). Takes effect when the current
        action returns, matching atomic action semantics.
        """

        self._check_open()
        if not self._engine.capability.allows_exit:
            raise StateViolation(
                "exit command unavailable in this run (FSP setting: only sleep exists)"
            )
        # Exit auditors observe the pre-exit state (the process is still in
        # the graph here), which is what safety judgements need.
        self._engine.audit_exit(self._process.pid)
        self._requested_state = PState.GONE

    def sleep(self) -> None:
        """Execute the ``sleep`` command: enter the *asleep* state.

        Only available when the run's capability includes SLEEP (the FSP
        setting). The process wakes when a message addressed to it is next
        processed. Takes effect when the current action returns.
        """

        self._check_open()
        if not self._engine.capability.allows_sleep:
            raise StateViolation(
                "sleep command unavailable in this run (FDP setting: only exit exists)"
            )
        self._requested_state = PState.ASLEEP

    # -- oracle & environment ------------------------------------------------------

    def oracle(self) -> bool:
        """Consult the run's oracle for the executing process.

        Implements the paper's oracle interface ``O : PG × P → {true, false}``:
        the verdict is a function of the current process graph and the
        calling process only.
        """

        self._check_open()
        return self._engine.oracle_value(self._process.pid)

    @property
    def keys(self) -> KeyProvider:
        """Ordered keys, available only to protocols declaring ``requires_order``."""
        self._check_open()
        return self._engine.key_provider_for(self._process)

    @property
    def now(self) -> int:
        """Engine step counter — for tracing/diagnostics, not protocol logic."""
        return self._engine.step_count


class Process:
    """Base class for all protocol processes.

    Subclasses define protocol variables in ``__init__``, override
    :meth:`timeout` and add ``on_<label>`` handlers. They must also keep
    :meth:`stored_refs` accurate — it enumerates every reference held in
    local memory (the *explicit* edges of the process graph) together with
    the stored belief about each referenced process's mode. The engine
    derives connectivity, the Φ potential and the SINGLE oracle from it,
    so a protocol that under-reports its stored references would be
    cheating the model.
    """

    #: Set by protocols that need a total order on processes (see
    #: :class:`~repro.sim.refs.KeyProvider`). The paper's FDP protocol does
    #: not; the linearization overlay and the Foreback-style baseline do.
    requires_order: bool = False

    #: True when every reference this process stores lives in tracked
    #: containers (:class:`~repro.sim.refs.RefMap`/``RefCell``) wired to
    #: ``_ref_log``, so the engine can drain write-through deltas instead
    #: of fingerprint-diffing ``stored_refs()`` around each action.
    #: Protocols whose ref storage is too diffuse to track (e.g. the
    #: Section 4 framework, which spans overlay-logic internals) leave
    #: this False and keep the fingerprint path.
    ref_tracking: bool = False

    #: label → ``on_<label>`` method name, rebuilt per subclass from the
    #: class bodies along the MRO. This *is* the class's declarative
    #: action surface: :meth:`handler` dispatches through it instead of
    #: probing ``getattr`` per delivery, and static analysis reads the
    #: same ``on_<label>`` naming convention it is built from.
    _action_table: dict[str, str] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        table: dict[str, str] = {}
        for klass in reversed(cls.__mro__):
            for name, value in vars(klass).items():
                if name.startswith("on_") and callable(value):
                    table[name[3:]] = name
        cls._action_table = table

    @classmethod
    def action_labels(cls) -> tuple[str, ...]:
        """The message labels this class handles (remotely callable actions)."""
        return tuple(cls._action_table)

    def __init__(self, pid: int, mode: Mode) -> None:
        self._pid = int(pid)
        self._mode = mode
        self._state = PState.AWAKE
        self._self_ref = Ref(self._pid)
        #: net explicit-edge deltas since the last engine drain.
        self._ref_log = RefDeltaLog()

    # -- identity ---------------------------------------------------------------

    @property
    def pid(self) -> int:
        """Engine-facing identifier (protocol code should use ``self_ref``)."""
        return self._pid

    @property
    def self_ref(self) -> Ref:
        """This process's own reference."""
        return self._self_ref

    @property
    def mode(self) -> Mode:
        """The read-only ``mode(u)`` variable."""
        return self._mode

    @property
    def state(self) -> PState:
        """Current lifecycle state (managed by the engine)."""
        return self._state

    @property
    def is_leaving(self) -> bool:
        return self._mode is Mode.LEAVING

    @property
    def is_staying(self) -> bool:
        return self._mode is Mode.STAYING

    # -- protocol surface ----------------------------------------------------------

    def timeout(self, ctx: ActionContext) -> None:
        """The periodically executed timeout action. Default: do nothing."""

    def handler(self, label: str):
        """Return the bound ``on_<label>`` handler, or ``None`` if absent."""
        name = self._action_table.get(label)
        if name is None:
            return None
        return getattr(self, name)

    def stored_refs(self) -> Iterable[RefInfo]:
        """Enumerate references (with mode beliefs) held in local memory.

        Subclasses must override to report every protocol variable that
        stores a reference. Beliefs may be ``None`` for protocols that do
        not track modes.
        """

        return ()

    def describe_vars(self) -> dict[str, Any]:
        """Human-readable dump of protocol variables (tracing/debugging)."""
        return {}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(pid={self._pid}, {self._mode.value}, "
            f"{self._state.value})"
        )
