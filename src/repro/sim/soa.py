"""Struct-of-arrays execution core: the engine's int-domain fast path.

:class:`EngineCore` holds the *entire* mutable simulation state of an
eligible run in flat, int-indexed structures — no ``Ref``, ``RefInfo``,
``Message`` or per-process Python objects on the hot path:

* processes live in **slots** ``0..n-1`` (engine pid order); per-slot
  ``bytearray``/``array`` columns carry mode, lifecycle state, the FSP
  flag bits and the per-process statistics counters;
* references are **tagged ints** (:func:`~repro.sim.refs.tag_ref`): the
  low bits index the slot, the high bits a generation bumped when the
  slot's process exits, so a stale tag never equals a live one;
* neighbourhood/anchor/parked stores are per-slot dicts keyed by slot
  index with small-int belief codes, preserving the object model's
  insertion order (drain order ⇒ message seq order ⇒ bit-identity);
* channels are per-slot insertion-ordered ``{seq: record}`` maps whose
  records pack label, belief, subject slot and sender into one int;
* Φ, the edge multiset totals and the pending-message count are running
  counters updated by the same delta rules as
  :class:`~repro.graphs.livegraph.LiveGraph`.

The core runs in two roles selected by ``Engine(engine_mode=...)``:

* ``verify`` — the object engine executes every step and the core
  *mirrors* it (:meth:`mirror_step`), replaying the event through the
  int kernels and cross-checking counters after every step plus a deep
  structural comparison (:meth:`verify_full`) at run end. Divergence
  raises :class:`~repro.errors.StateViolation` — the same differential-
  oracle pattern as ``ref_mode="verify"``.
* ``soa`` — the core *drives* (:meth:`run_batch`): it selects events
  through a scheduler driver, executes kernels, and the engine exports
  the final state back into the object model
  (:meth:`export_to`) at predicate boundaries and run end.

Eligibility is checked at construction: homogeneous exact-type
FDP/FSP populations, a kernelizable oracle (``None``/SINGLE/ALWAYS/
NEVER), and encodable channel content. Anything else raises
:class:`CoreUnsupported` and the engine falls back to (or stays on)
the object path, recording the reason in ``Engine.core_status``.

The kernels below are line-for-line transcriptions of
:class:`~repro.core.fdp.FDPProcess` / :class:`~repro.core.fsp.FSPProcess`
and the engine's post/deliver/transition plumbing; every send, clock
consumption and scheduler notification happens in the exact order of
the object path so that message sequence numbers, RNG draws and dict
iteration orders stay bit-identical between the two cores.
"""

from __future__ import annotations

from array import array
from random import Random
from typing import TYPE_CHECKING, Any

from repro.errors import (
    ConfigurationError,
    SlotRecycleOverflow,
    StateViolation,
    UnknownActionError,
)
from repro.sim.messages import Message, RefInfo
from repro.sim.refs import REF_GEN_BITS, REF_SLOT_BITS, tag_ref
from repro.sim.scheduler import (
    DeliverEvent,
    RandomScheduler,
    TimeoutEvent,
)
from repro.sim.states import Mode, PState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["EngineCore", "CoreUnsupported", "SlotRefView"]

# Belief codes: raw piggybacked/stored beliefs. Normalization (the Φ
# convention: an absent belief counts as a staying claim) maps 2 → 0.
_STAYING, _LEAVING, _NONE = 0, 1, 2
# Lifecycle codes, aligned with PState ordering used throughout.
_AWAKE, _ASLEEP, _GONE = 0, 1, 2

_MODE_BY_CODE: tuple = (Mode.STAYING, Mode.LEAVING, None)
_STATE_BY_CODE: tuple = (PState.AWAKE, PState.ASLEEP, PState.GONE)

# Channel record layout: one Python int per pending message.
#   bits 0-7   label id (0=present, 1=forward, >=2 interned others)
#   bits 8-9   raw belief code of the single RefInfo parameter
#   bits 10-31 subject slot + 1 (0 = no reference parameter)
#   bits 32+   sender *pid* + 1 (0 = planted message, sender None).
#              The sender is trace-only metadata keyed by pid, not slot:
#              pids are never reused within a run, so a record survives
#              its sender's slot being reaped and recycled, while a
#              subject slot is always pinned live by the record itself.
_LABEL_MASK = 0xFF
_BEL_SHIFT = 8
_SUBJ_SHIFT = 10
_SUBJ_MASK = (1 << 22) - 1
_SENDER_SHIFT = 32


def _code(belief: Mode | None) -> int:
    if belief is Mode.STAYING:
        return _STAYING
    if belief is Mode.LEAVING:
        return _LEAVING
    if belief is None:
        return _NONE
    raise CoreUnsupported(f"unencodable belief {belief!r}")


class CoreUnsupported(Exception):
    """This run cannot execute on the struct-of-arrays core.

    Raised during :class:`EngineCore` construction; the engine catches
    it, stays on the object path and records the message in
    ``core_status["reason"]``.
    """


# ---------------------------------------------------------------------------
# Mirror registry: the declarative correspondence between the object model
# and the kernels below.
#
# Every row is a pure literal so ``repro lint`` can read the registry from
# the AST without importing the module: the SOA0xx mirror-drift rules diff
# each ``object_method`` against its ``kernel``, the ENC0xx encodability
# rules take the protocol scope and label universe from here, and the
# engine consumes the same rows at runtime for eligibility, the label
# table and delivery dispatch — one source of truth instead of name
# matching in three places.


class MirrorAction:
    """One mirrored protocol action (a timeout or a message label)."""

    __slots__ = ("name", "kind", "label_id", "object_method", "kernel")

    def __init__(
        self,
        *,
        name: str,
        kind: str,
        object_method: str,
        kernel: str,
        label_id: int = -1,
    ) -> None:
        self.name = name
        #: "timeout" or "deliver" (a remotely callable action).
        self.kind = kind
        #: packed-record label id for deliver rows (bits 0-7); -1 otherwise.
        self.label_id = label_id
        #: method name on the object-model process class.
        self.object_method = object_method
        #: method name of the int kernel on :class:`EngineCore`.
        self.kernel = kernel


class MirrorProtocol:
    """One object-model protocol class the core can execute."""

    __slots__ = ("name", "process_class", "is_fsp", "capability")

    def __init__(
        self, *, name: str, process_class: str, is_fsp: bool, capability: str
    ) -> None:
        self.name = name
        #: exact class name (subclasses are NOT core-eligible).
        self.process_class = process_class
        #: value the kernels' ``self.is_fsp`` specialization folds to.
        self.is_fsp = is_fsp
        #: engine capability the population requires ("EXIT"/"SLEEP").
        self.capability = capability


MIRROR_ACTIONS: tuple[MirrorAction, ...] = (
    MirrorAction(
        name="timeout",
        kind="timeout",
        object_method="timeout",
        kernel="_timeout_kernel",
    ),
    MirrorAction(
        name="present",
        kind="deliver",
        label_id=0,
        object_method="on_present",
        kernel="_present_kernel",
    ),
    MirrorAction(
        name="forward",
        kind="deliver",
        label_id=1,
        object_method="on_forward",
        kernel="_forward_kernel",
    ),
)

MIRROR_PROTOCOLS: tuple[MirrorProtocol, ...] = (
    MirrorProtocol(
        name="FDP", process_class="FDPProcess", is_fsp=False, capability="EXIT"
    ),
    MirrorProtocol(
        name="FSP", process_class="FSPProcess", is_fsp=True, capability="SLEEP"
    ),
)

#: Statistics counters each event runner must bump (SOA003 checks these;
#: ``_run_batch_random`` batches the scalar ones into locals instead, see
#: BATCH_FLUSH_COUNTERS).
MIRROR_EVENT_COUNTERS: dict[str, tuple[str, ...]] = {
    "_run_timeout": ("timeouts", "timeouts_by"),
    "_run_delivery": ("deliveries", "deliveries_by"),
}

#: Scalar counters ``_run_batch_*`` hoists into locals; every one of them
#: must be written back to ``self`` before the batch returns (the
#: ``finally`` flush). SOA003 checks the write-back exists.
BATCH_FLUSH_COUNTERS: tuple[str, ...] = (
    "steps",
    "stat_steps",
    "deliveries",
    "timeouts",
    "last_phi_seen",
    "last_progress",
)

#: Engine-plumbing kernels and column names the mirror-drift extractor
#: needs by name (SOA002 inlines ``_send``/helpers; SOA004 checks the
#: generation bump inside the gone branch of the transition kernel and
#: the recycle shape of the admission path: a recycled slot must keep
#: its exit-bumped generation — never zero it — and must guard against
#: the generation overflowing the packed tagged-ref layout).
MIRROR_PLUMBING: dict[str, str] = {
    "send": "_send",
    "transition": "_transition",
    "oracle": "_consult_oracle",
    "generation_column": "gen_",
    "gone_state": "_GONE",
    "recycle": "admit",
}


class SlotRefView:
    """Thin copy-store-send view over a tagged-int reference.

    The boundary object handed out when core state is surfaced without
    going through the object model (debug dumps, delta feeds): equality
    and hashing delegate to the tagged int, so two views are equal iff
    slot *and* generation agree — a reference that survived its
    process's exit never matches a live one.
    """

    __slots__ = ("_tag",)

    def __init__(self, tag: int) -> None:
        object.__setattr__(self, "_tag", tag)

    @property
    def tag(self) -> int:
        return self._tag

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SlotRefView):
            return self._tag == other._tag
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, SlotRefView):
            return self._tag != other._tag
        return NotImplemented

    def __hash__(self) -> int:
        return hash((0x50A, self._tag))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SlotRefView is immutable")

    def __repr__(self) -> str:
        slot = self._tag & ((1 << REF_SLOT_BITS) - 1)
        gen = self._tag >> REF_SLOT_BITS
        return f"SlotRef<{slot}@{gen}>"


# ---------------------------------------------------------------------------
# Scheduler drivers (soa mode): the core's event source.


class _ObjectSchedDriver:
    """Drive a real (core-drivable) scheduler object from the int loop.

    Used for :class:`OldestFirstScheduler` and
    :class:`AdversarialScheduler`: their ``select`` never reads engine
    state, so the core can feed them notifications in the engine's
    exact order and translate the returned events to slots.
    """

    __slots__ = ("_sched", "_pids", "_slot_of")

    def __init__(self, sched: Any, pids: list[int], slot_of: dict[int, int]) -> None:
        self._sched = sched
        self._pids = pids
        self._slot_of = slot_of

    def select(self) -> tuple[bool, int, int] | None:
        ev = self._sched.select(None)
        if ev is None:
            return None
        if type(ev) is TimeoutEvent:
            return (True, self._slot_of[ev.pid], -1)
        return (False, self._slot_of[ev.pid], ev.seq)

    def notify_send(self, slot: int, seq: int) -> None:
        self._sched.notify_send(self._pids[slot], seq)

    def notify_wake(self, slot: int, stamp: int) -> None:
        self._sched.notify_wake(self._pids[slot], stamp)

    def notify_sleep(self, slot: int) -> None:
        self._sched.notify_sleep(self._pids[slot])

    def notify_gone(self, slot: int, seqs: list[int]) -> None:
        self._sched.notify_gone(self._pids[slot], seqs)

    def notify_timeout_executed(self, slot: int, stamp: int) -> None:
        self._sched.notify_timeout_executed(self._pids[slot], stamp)

    def splice(self) -> None:
        """Nothing to write back: the real object was mutated in place."""


class _ReplayDriver:
    """Drive a :class:`~repro.sim.replay.ReplayScheduler` from the int loop.

    Replays need no notifications; the only engine reads in the object
    scheduler's ``select`` are the validation guards, re-expressed here
    against the core's own columns (``state_``, ``ch``) so recorded
    schedules — including chaos capsules — execute on the core without
    a per-step export. The cursor advances on the shared scheduler
    object, so the object path continues seamlessly after a batch.
    """

    __slots__ = ("_sched", "_core", "_slot_of")

    def __init__(self, sched: Any, core: EngineCore) -> None:
        self._sched = sched
        self._core = core
        self._slot_of = core.slot_of

    def select(self) -> tuple[bool, int, int] | None:
        sched = self._sched
        events = sched._events  # noqa: SLF001 - shared-cursor contract
        cursor = sched._cursor  # noqa: SLF001
        if cursor >= len(events):
            return None
        event = events[cursor]
        sched._cursor = cursor + 1  # noqa: SLF001
        core = self._core
        u = self._slot_of.get(event.pid)
        if event.kind == "timeout":
            if u is None or core.state_[u] != _AWAKE:
                raise ConfigurationError(
                    f"replay diverged at #{cursor + 1}: timeout for "
                    f"non-awake process {event.pid}"
                )
            return (True, u, -1)
        if event.kind == "deliver":
            if u is None or event.seq not in core.ch[u]:
                raise ConfigurationError(
                    f"replay diverged at #{cursor + 1}: message "
                    f"{event.seq} not pending at process {event.pid}"
                )
            return (False, u, event.seq)
        raise ConfigurationError(f"unknown recorded event kind {event.kind!r}")

    def notify_send(self, slot: int, seq: int) -> None:
        return

    def notify_wake(self, slot: int, stamp: int) -> None:
        return

    def notify_sleep(self, slot: int) -> None:
        return

    def notify_gone(self, slot: int, seqs: list[int]) -> None:
        return

    def notify_timeout_executed(self, slot: int, stamp: int) -> None:
        return

    def splice(self) -> None:
        """Nothing to write back: the cursor lives on the shared object."""


class _RandomMirror:
    """Int-entry mirror of a :class:`RandomScheduler`'s pool.

    The pool scheduler's tuple entries (``("d", pid, seq)``) dominate
    the allocation profile of an unmonitored run, so for the exact
    default scheduler type the core mirrors the pool as packed ints:
    a timeout entry is the slot itself; a delivery entry is
    ``(seq + 1) << nbits | slot``. The mirror *shares* the scheduler's
    ``Random`` instance (its state advances identically) and replicates
    the pool's swap-remove order and the arrival-clock consumption
    rules exactly, so every ``randrange`` draw sees the same pool size
    and index layout as the object path would. :meth:`splice` writes
    the pool back as tuples so the object scheduler continues
    seamlessly after the batch.
    """

    __slots__ = (
        "_sched",
        "_pids",
        "_slot_of",
        "_nbits",
        "_dbase",
        "_smask",
        "_pool",
        "_pos",
        "_stamps",
        "_arrival",
        "_rng",
    )

    def __init__(
        self, sched: RandomScheduler, pids: list[int], slot_of: dict[int, int]
    ) -> None:
        self._sched = sched
        self._pids = pids
        self._slot_of = slot_of
        nbits = max(1, len(pids).bit_length())
        self._nbits = nbits
        self._dbase = 1 << nbits
        self._smask = self._dbase - 1
        self._pool: list[int] = []
        self._pos: dict[int, int] = {}
        # Arrival stamps as a list aligned index-for-index with _pool
        # (swap-remove maintains the pairing): list append/pop beats a
        # second big dict on the hot path, and delivered entries leave
        # no dead stamps behind.
        self._stamps: list[int] = []
        self._arrival = sched._arrival  # noqa: SLF001 - mirror splice contract
        self._rng: Random = sched._rng  # noqa: SLF001 - shared state, no splice
        for entry in sched._pool:  # noqa: SLF001
            enc = self._encode(entry)
            self._pos[enc] = len(self._pool)
            self._pool.append(enc)
            self._stamps.append(sched._stamp[entry])  # noqa: SLF001

    def _encode(self, entry: tuple) -> int:
        slot = self._slot_of[entry[1]]
        if entry[0] == "t":
            return slot
        return ((entry[2] + 1) << self._nbits) | slot

    def _decode(self, enc: int) -> tuple:
        slot = enc & self._smask
        if enc < self._dbase:
            return ("t", self._pids[slot])
        return ("d", self._pids[slot], (enc >> self._nbits) - 1)

    # -- pool primitives (replicating _PoolScheduler exactly) ------------------

    def _add(self, enc: int, stamp: int) -> None:
        if enc in self._pos:
            return
        self._pos[enc] = len(self._pool)
        self._pool.append(enc)
        self._stamps.append(stamp)

    def _remove(self, enc: int) -> None:
        idx = self._pos.pop(enc, None)
        if idx is None:
            return
        last = self._pool.pop()
        st = self._stamps.pop()
        if last != enc:
            self._pool[idx] = last
            self._stamps[idx] = st
            self._pos[last] = idx

    # -- notification hooks ----------------------------------------------------

    def notify_send(self, slot: int, seq: int) -> None:
        # Call-site semantics: the arrival clock advances on every
        # notification, even when _add dedups the entry.
        value = self._arrival
        self._arrival = value + 1
        self._add(((seq + 1) << self._nbits) | slot, value)

    def notify_wake(self, slot: int, stamp: int) -> None:
        value = self._arrival
        self._arrival = value + 1
        self._add(slot, value)

    def notify_sleep(self, slot: int) -> None:
        self._remove(slot)

    def notify_gone(self, slot: int, seqs: list[int]) -> None:
        self._remove(slot)
        nbits = self._nbits
        for seq in seqs:
            self._remove(((seq + 1) << nbits) | slot)

    def notify_timeout_executed(self, slot: int, stamp: int) -> None:
        # Arrival consumed only when the entry is present (the object
        # scheduler guards the consumption inside the method body).
        idx = self._pos.get(slot)
        if idx is not None:
            value = self._arrival
            self._arrival = value + 1
            self._stamps[idx] = value

    def select(self) -> tuple[bool, int, int] | None:
        pool = self._pool
        if not pool:
            return None
        enc = pool[self._rng.randrange(len(pool))]
        if enc >= self._dbase:
            self._remove(enc)
            return (False, enc & self._smask, (enc >> self._nbits) - 1)
        return (True, enc, -1)

    def splice(self) -> None:
        """Write the mirrored pool state back into the real scheduler.

        One decode per live pool entry; the aligned stamps list gives
        each entry's arrival stamp by position.
        """
        sched = self._sched
        nbits = self._nbits
        smask = self._smask
        dbase = self._dbase
        pids = self._pids
        mstamps = self._stamps
        pool: list[tuple] = []
        stamps: dict[tuple, int] = {}
        for i, enc in enumerate(self._pool):
            slot = enc & smask
            if enc < dbase:
                entry: tuple = ("t", pids[slot])
            else:
                entry = ("d", pids[slot], (enc >> nbits) - 1)
            pool.append(entry)
            stamps[entry] = mstamps[i]
        sched._pool = pool  # noqa: SLF001 - mirror splice contract
        sched._pos = {entry: i for i, entry in enumerate(pool)}  # noqa: SLF001
        sched._stamp = stamps  # noqa: SLF001
        sched._arrival = self._arrival  # noqa: SLF001


# ---------------------------------------------------------------------------
# The core itself.


class EngineCore:
    """Flat-array replica of one engine's simulation state.

    Built from an attached :class:`~repro.sim.engine.Engine`; raises
    :class:`CoreUnsupported` when the population, oracle or channel
    content cannot be kernelized. See the module docstring for the
    layout and the two operating roles.
    """

    __slots__ = (
        "is_fsp",
        "oracle_kind",
        "pids",
        "slot_of",
        "strict",
        "mode_",
        "state_",
        "gen_",
        "anchor_",
        "abelief_",
        "N",
        "parked",
        "averified_",
        "aprobe_",
        "labels",
        "_label_of",
        "_deliver_kernels",
        "ch",
        "in_",
        "free_slots",
        "dead_pins",
        "archived_stats",
        "_mirror",
        "phi",
        "edge_total",
        "pending",
        "steps",
        "stat_steps",
        "timeouts",
        "deliveries",
        "posted",
        "dropped",
        "dropped_gone",
        "bounced",
        "exits",
        "sleeps",
        "wakes",
        "oq",
        "otrue",
        "timeouts_by",
        "deliveries_by",
        "sent_by",
        "received_by",
        "clock",
        "next_seq",
        "_seq0",
        "_posted0",
        "_pending0",
        "_del0",
        "_drop0",
        "asleep",
        "gone",
        "last_progress",
        "last_phi_seen",
        "track_phi",
        "last_acted",
        "driver",
        "cached_driver",
        "cached_driver_for",
    )

    def __init__(self, engine: Engine) -> None:
        from repro.core.fdp import FDPProcess
        from repro.core.fsp import FSPProcess
        from repro.core.oracles import AlwaysOracle, NeverOracle, SingleOracle

        if getattr(engine, "net", None) is not None:
            raise CoreUnsupported(
                "reliable transport attached; net runs on the object loop"
            )
        procs = list(engine.processes.values())
        if not procs:
            raise CoreUnsupported("empty population")
        n = len(procs)
        if n > (1 << REF_SLOT_BITS):
            raise CoreUnsupported(f"population {n} exceeds slot space")
        first = type(procs[0])
        proto_classes = {"FDPProcess": FDPProcess, "FSPProcess": FSPProcess}
        proto = None
        for row in MIRROR_PROTOCOLS:
            if proto_classes.get(row.process_class) is first:
                proto = row
                break
        if proto is None:
            raise CoreUnsupported(f"non-FDP/FSP population ({first.__name__})")
        self.is_fsp = proto.is_fsp
        allowed = (
            engine.capability.allows_sleep
            if proto.capability == "SLEEP"
            else engine.capability.allows_exit
        )
        if not allowed:
            raise CoreUnsupported(
                f"{proto.name} population without {proto.capability} capability"
            )
        if any(type(p) is not first for p in procs):
            raise CoreUnsupported("heterogeneous population")

        oracle = engine._oracle  # noqa: SLF001 - core is an engine internal
        if oracle is None:
            self.oracle_kind: str | None = None
        elif type(oracle) is SingleOracle:
            self.oracle_kind = "single"
        elif type(oracle) is AlwaysOracle:
            self.oracle_kind = "always"
        elif type(oracle) is NeverOracle:
            self.oracle_kind = "never"
        else:
            raise CoreUnsupported(f"unkernelized oracle {oracle!r}")

        self.pids: list[int] = [p.pid for p in procs]
        slot_of = {pid: i for i, pid in enumerate(self.pids)}
        self.slot_of: dict[int, int] = slot_of
        self.strict = engine.strict

        self.mode_ = bytearray(n)
        self.state_ = bytearray(n)
        self.gen_ = array("I", bytes(4 * n))
        # Plain lists for the slot columns the kernels index every step:
        # list item access reuses the stored int objects, while array()
        # re-boxes a fresh int on every read.
        self.anchor_ = [-1] * n
        self.abelief_ = bytearray([_NONE]) * n
        self.N: list[dict[int, int]] = [dict() for _ in range(n)]
        if self.is_fsp:
            self.parked: list[dict[int, int]] = [dict() for _ in range(n)]
            self.averified_ = bytearray(n)
            self.aprobe_ = bytearray(n)
        else:
            self.parked = []
            self.averified_ = bytearray(0)
            self.aprobe_ = bytearray(0)
        for i, p in enumerate(procs):
            if p.mode is Mode.LEAVING:
                self.mode_[i] = _LEAVING
            st = p.state
            self.state_[i] = (
                _GONE if st is PState.GONE else _ASLEEP if st is PState.ASLEEP else _AWAKE
            )
            nd = self.N[i]
            for ref, belief in p.N.items():
                slot = slot_of[ref._pid]  # noqa: SLF001
                if slot == i:
                    # The object path's ctx.send auto-completes beliefs on
                    # self references when draining such (corrupted) stores;
                    # the kernels do not model that corner.
                    raise CoreUnsupported(f"self-reference stored by pid {p.pid}")
                nd[slot] = _code(belief)
            anchor = p.anchor
            if anchor is not None:
                aslot = slot_of[anchor._pid]  # noqa: SLF001
                if aslot == i:
                    raise CoreUnsupported(f"self-anchor stored by pid {p.pid}")
                self.anchor_[i] = aslot
            self.abelief_[i] = _code(p.anchor_belief)
            if self.is_fsp:
                pk = self.parked[i]
                for ref, belief in p.parked.items():
                    slot = slot_of[ref._pid]  # noqa: SLF001
                    if slot == i:
                        raise CoreUnsupported(f"self-reference parked by pid {p.pid}")
                    pk[slot] = _code(belief)
                self.averified_[i] = 1 if p.anchor_verified else 0
                self.aprobe_[i] = 1 if p.anchor_probe_sent else 0

        # Channels: per-slot insertion-ordered {seq: packed record}. The
        # protocol label table and the delivery dispatch come straight
        # from the mirror registry (ids are dense by construction).
        deliver = sorted(
            (a for a in MIRROR_ACTIONS if a.kind == "deliver"),
            key=lambda a: a.label_id,
        )
        self.labels: list[str] = [a.name for a in deliver]
        label_of = {a.name: a.label_id for a in deliver}
        self._deliver_kernels = tuple(getattr(self, a.kernel) for a in deliver)
        self.ch: list[dict[int, int]] = [dict() for _ in range(n)]
        for i, pid in enumerate(self.pids):
            store = self.ch[i]
            for msg in engine.channels[pid]:
                store[msg.seq] = self._encode_msg(msg, label_of)
        self._label_of = label_of

        # Edge multiset totals + incoming adjacency, built by the LiveGraph
        # scan order (explicit stores first, then channel content; gone
        # sources contribute pending but no edges). Only the *incoming*
        # direction is indexed: the SINGLE oracle reads a process's
        # out-partners straight from its own stores at query time, so the
        # hot path pays one adjacency update per edge delta, not two.
        self.in_: list[dict[int, int]] = [dict() for _ in range(n)]
        #: open-system slot management. ``free_slots`` is the LIFO of
        #: reaped slots available for recycling; ``dead_pins[v]`` counts
        #: references to slot v physically held by *gone* slots (their
        #: stores and channels are outside the edge multiset but still
        #: pin v against reaping); ``archived_stats`` keeps the per-pid
        #: counters of reaped slots so exports stay lossless.
        self.free_slots: list[int] = []
        self.dead_pins: dict[int, int] = {}
        self.archived_stats: dict[str, dict[int, int]] = {
            "timeouts_by": {},
            "deliveries_by": {},
            "sent_by": {},
            "received_by": {},
        }
        self.phi = 0
        self.edge_total = 0
        self.pending = 0
        for i in range(n):
            self.pending += len(self.ch[i])
            if self.state_[i] == _GONE:
                self._pin_holdings(i, 1)
                continue
            for v, bel in self.N[i].items():
                self._edge(i, v, _STAYING if bel == _NONE else bel, 1)
            a = self.anchor_[i]
            if a >= 0:
                ab = self.abelief_[i]
                self._edge(i, a, _STAYING if ab == _NONE else ab, 1)
            if self.is_fsp:
                for v, bel in self.parked[i].items():
                    self._edge(i, v, _STAYING if bel == _NONE else bel, 1)
            for rec in self.ch[i].values():
                subj = ((rec >> _SUBJ_SHIFT) & _SUBJ_MASK) - 1
                if subj >= 0:
                    bel = (rec >> _BEL_SHIFT) & 3
                    self._edge(i, subj, _STAYING if bel == _NONE else bel, 1)

        # Counters, spliced from the engine's current position.
        stats = engine.stats
        self.steps = engine.step_count
        self.stat_steps = stats.steps
        self.timeouts = stats.timeouts
        self.deliveries = stats.deliveries
        self.posted = stats.messages_posted
        self.dropped = stats.dropped_unknown
        self.dropped_gone = stats.dropped_gone
        self.bounced = stats.bounced
        self.exits = stats.exits
        self.sleeps = stats.sleeps
        self.wakes = stats.wakes
        self.oq = stats.oracle_queries
        self.otrue = stats.oracle_true
        self.timeouts_by = self._by_list(stats.timeouts_by, n, "timeouts_by")
        self.deliveries_by = self._by_list(stats.deliveries_by, n, "deliveries_by")
        self.sent_by = self._by_list(stats.sent_by, n, "sent_by")
        self.received_by = self._by_list(stats.received_by, n, "received_by")
        self.clock = engine._clock  # noqa: SLF001
        self.next_seq = engine._msg_seq  # noqa: SLF001
        # posted/pending bases: both counters move in lockstep with
        # next_seq/deliveries/dropped, so the hot path skips their
        # read-modify-writes and _sync_flow recomputes them on demand.
        self._seq0 = self.next_seq
        self._posted0 = self.posted
        self._pending0 = self.pending
        self._del0 = self.deliveries
        self._drop0 = self.dropped
        self.asleep = engine.asleep_count
        self.gone = engine.gone_count
        self.last_progress = engine._last_progress_step  # noqa: SLF001
        self.last_phi_seen = engine._last_phi_seen  # noqa: SLF001
        self.track_phi = engine.graph_mode == "incremental"
        #: action cursor: the step index at which each slot last executed
        #: an action (timeout or delivery) — new SoA-only observability.
        self.last_acted = [-1] * n
        #: scheduler driver while the core drives (soa mode); None while
        #: mirroring (verify mode). ``_mirror`` caches the driver iff it
        #: is the inlinable :class:`_RandomMirror`.
        self.driver: Any | None = None
        self._mirror: _RandomMirror | None = None
        #: engine-held driver cache (one driver per core lifetime).
        self.cached_driver: Any | None = None
        self.cached_driver_for: Any | None = None

    def _by_list(self, by: dict[int, int], n: int, name: str) -> list[int]:
        arr = [0] * n
        slot_of = self.slot_of
        archive = self.archived_stats[name]
        for pid, count in by.items():
            slot = slot_of.get(pid)
            if slot is None:
                # Reaped (or otherwise departed) pids keep their history
                # in the archive; exports merge it back.
                archive[pid] = count
            else:
                arr[slot] = count
        return arr

    def _encode_msg(self, msg: Message, label_of: dict[str, int]) -> int:
        label_id = label_of.get(msg.label)
        if label_id is None:
            if len(self.labels) > _LABEL_MASK:
                raise CoreUnsupported("label table overflow")
            label_id = len(self.labels)
            self.labels.append(msg.label)
            label_of[msg.label] = label_id
        args = msg.args
        if len(args) == 1 and type(args[0]) is RefInfo:
            info = args[0]
            subj = self.slot_of.get(info.ref._pid)  # noqa: SLF001
            if subj is None:
                raise CoreUnsupported("message references unknown pid")
            bel = _code(info.mode)
        elif len(args) == 0:
            if label_id < len(self._deliver_kernels):
                raise CoreUnsupported(f"malformed zero-arg {msg.label!r} message")
            subj, bel = -1, _NONE
        else:
            raise CoreUnsupported("message with unencodable parameter list")
        # Senders pack as pids, not slots: trace-only metadata must stay
        # decodable after the sender's slot is reaped and recycled.
        sender = msg.sender if msg.sender is not None else -1
        return (
            label_id
            | (bel << _BEL_SHIFT)
            | ((subj + 1) << _SUBJ_SHIFT)
            | ((sender + 1) << _SENDER_SHIFT)
        )

    # ------------------------------------------------------------------ refs

    def tagged_ref(self, slot: int) -> int:
        """Current tagged-int reference for *slot*."""
        return tag_ref(slot, self.gen_[slot])

    def ref_view(self, slot: int) -> SlotRefView:
        """Boundary view object for *slot*'s current reference."""
        return SlotRefView(self.tagged_ref(slot))

    # ------------------------------------------------------------------ edges

    def _edge(self, src: int, dst: int, nb: int, count: int) -> None:
        """Apply an edge-multiset delta (*nb* is the normalized belief)."""
        inn = self.in_[dst]
        c = inn.get(src, 0) + count
        if c:
            inn[src] = c
        else:
            del inn[src]
        self.edge_total += count
        if nb != self.mode_[dst]:
            self.phi += count

    def _purge_out_edges(self, u: int) -> None:
        """Exit delta: the slot's out-edges (explicit and implicit) leave
        the process graph; the underlying stores stay physically intact,
        exactly like the object model's gone processes."""
        for v, bel in self.N[u].items():
            self._edge(u, v, _STAYING if bel == _NONE else bel, -1)
        a = self.anchor_[u]
        if a >= 0:
            ab = self.abelief_[u]
            self._edge(u, a, _STAYING if ab == _NONE else ab, -1)
        if self.is_fsp:
            for v, bel in self.parked[u].items():
                self._edge(u, v, _STAYING if bel == _NONE else bel, -1)
        for rec in self.ch[u].values():
            subj = ((rec >> _SUBJ_SHIFT) & _SUBJ_MASK) - 1
            if subj >= 0:
                bel = (rec >> _BEL_SHIFT) & 3
                self._edge(u, subj, _STAYING if bel == _NONE else bel, -1)

    # ------------------------------------------------------------------ plumbing

    def _send(self, src: int, dst: int, label_id: int, subj: int, bel: int) -> None:
        """Kernel of ``Engine.post`` for an in-protocol single-RefInfo send."""
        if self.state_[dst] == _GONE:
            # Kernel of ``Engine._bounce``: a protocol send to a gone
            # process never enters the dead channel. A message carrying
            # only the sender's or the target's own reference drops
            # silently; a third-party subject bounces back to the sender.
            if subj == src or subj == dst:
                self.dropped_gone += 1
            else:
                self._bounce(src, dst, subj, bel)
            return
        seq = self.next_seq
        self.next_seq = seq + 1
        self.ch[dst][seq] = (
            label_id
            | (bel << _BEL_SHIFT)
            | ((subj + 1) << _SUBJ_SHIFT)
            | ((self.pids[src] + 1) << _SENDER_SHIFT)
        )
        # posted/pending are derived from next_seq by _sync_flow.
        self.sent_by[src] += 1
        self.received_by[dst] += 1
        # _edge(dst, subj, normalized bel, +1), inlined: the enqueue
        # edge is the hottest delta in the whole simulation.
        inn = self.in_[subj]
        inn[dst] = inn.get(dst, 0) + 1
        self.edge_total += 1
        if (_STAYING if bel == _NONE else bel) != self.mode_[subj]:
            self.phi += 1
        m = self._mirror
        if m is not None:
            # inline _RandomMirror.notify_send (arrival always
            # consumed). The generic _add dedups on the entry, but a
            # freshly allocated seq can never already be pooled, so
            # the membership probe is elided here.
            value = m._arrival
            m._arrival = value + 1
            enc = ((seq + 1) << m._nbits) | dst
            pool = m._pool
            m._pos[enc] = len(pool)
            pool.append(enc)
            m._stamps.append(value)
        else:
            driver = self.driver
            if driver is not None:
                driver.notify_send(dst, seq)

    def _bounce(self, src: int, dst: int, subj: int, bel: int) -> None:
        """Kernel of ``Engine._bounce`` for the two-record reintegration:
        ``present(dst, leaving)`` hint + ``forward(subj, bel)``, both into
        the *sender's* channel with no sender metadata (packs as 0, the
        object side's ``sender=None``)."""
        seq = self.next_seq
        self.next_seq = seq + 2
        ch = self.ch[src]
        ch[seq] = (_LEAVING << _BEL_SHIFT) | ((dst + 1) << _SUBJ_SHIFT)  # present
        ch[seq + 1] = 1 | (bel << _BEL_SHIFT) | ((subj + 1) << _SUBJ_SHIFT)  # forward
        self.received_by[src] += 2
        # The hint's in-edge pins the gone slot against reaping until it
        # is consumed — exactly like the object side's channel ref.
        self._edge(src, dst, _LEAVING, 1)
        self._edge(src, subj, _STAYING if bel == _NONE else bel, 1)
        self.bounced += 1
        m = self._mirror
        if m is not None:
            value = m._arrival
            nbits = m._nbits
            pool = m._pool
            pos = m._pos
            stamps = m._stamps
            enc = ((seq + 1) << nbits) | src
            pos[enc] = len(pool)
            pool.append(enc)
            stamps.append(value)
            enc = ((seq + 2) << nbits) | src
            pos[enc] = len(pool)
            pool.append(enc)
            stamps.append(value + 1)
            m._arrival = value + 2
        else:
            driver = self.driver
            if driver is not None:
                driver.notify_send(src, seq)
                driver.notify_send(src, seq + 1)

    def _transition(self, u: int, new_state: int) -> None:
        """Kernel of ``Engine._transition`` (legality is guaranteed by the
        kernels: awake→gone, awake→asleep, asleep→awake only)."""
        old = self.state_[u]
        if old == new_state:
            return
        self.state_[u] = new_state
        self.last_progress = self.steps
        if old == _ASLEEP:
            self.asleep -= 1
        driver = self.driver
        if new_state == _GONE:
            self.exits += 1
            self.gone += 1
            self.gen_[u] += 1
            if driver is not None:
                driver.notify_gone(u, list(self.ch[u]))
            self._purge_out_edges(u)
            # The purged references stay physically present in the gone
            # slot's stores and channel — convert them to dead pins so
            # their targets cannot be reaped out from under them.
            self._pin_holdings(u, 1)
        elif new_state == _ASLEEP:
            self.sleeps += 1
            self.asleep += 1
            if driver is not None:
                driver.notify_sleep(u)
        else:
            self.wakes += 1
            stamp = self.clock
            self.clock = stamp + 1
            if driver is not None:
                driver.notify_wake(u, stamp)

    # ------------------------------------------------------------------ open-system churn

    def _pin_holdings(self, u: int, delta: int) -> None:
        """Apply ±1 dead pins for every reference slot *u* physically
        holds (neighbourhood, anchor, parked store, channel subjects).

        Called with +1 when *u* becomes gone (its holdings leave the edge
        multiset but still exist) and at construction for initially-gone
        slots; with -1 when *u* is reaped (the holdings are destroyed).
        Self-references never pin: reaping destroys them together with
        the holder.
        """

        held: list[int] = []
        held.extend(self.N[u])
        a = self.anchor_[u]
        if a >= 0:
            held.append(a)
        if self.is_fsp:
            held.extend(self.parked[u])
        for rec in self.ch[u].values():
            v = ((rec >> _SUBJ_SHIFT) & _SUBJ_MASK) - 1
            if v >= 0:
                held.append(v)
        dp = self.dead_pins
        for v in held:
            if v == u:
                continue
            c = dp.get(v, 0) + delta
            if c:
                dp[v] = c
            else:
                del dp[v]

    def set_leaving(self, u: int) -> None:
        """Mirror of ``Engine.request_leave``: flip slot *u* to leaving.

        Φ reprices in one pass over *u*'s in-holders: every in-edge whose
        normalized belief was valid (staying) turns invalid and vice
        versa. The in-index names the holders; their stores and channels
        are walked for the belief breakdown — a per-session-end cost, so
        no per-edge belief buckets burden the hot path.
        """

        if self.mode_[u] == _LEAVING:
            return
        staying = leaving = 0
        for src in self.in_[u]:
            bel = self.N[src].get(u, -1)
            if bel >= 0:
                if bel == _LEAVING:
                    leaving += 1
                else:
                    staying += 1
            if self.anchor_[src] == u:
                if self.abelief_[src] == _LEAVING:
                    leaving += 1
                else:
                    staying += 1
            if self.is_fsp:
                bel = self.parked[src].get(u, -1)
                if bel >= 0:
                    if bel == _LEAVING:
                        leaving += 1
                    else:
                        staying += 1
            for rec in self.ch[src].values():
                if ((rec >> _SUBJ_SHIFT) & _SUBJ_MASK) - 1 == u:
                    if ((rec >> _BEL_SHIFT) & 3) == _LEAVING:
                        leaving += 1
                    else:
                        staying += 1
        self.mode_[u] = _LEAVING
        # Previously-invalid in-edges believed leaving; now the staying
        # beliefs are the invalid ones.
        self.phi += staying - leaving

    def can_reap(self, u: int) -> bool:
        """Whether slot *u* is gone and completely unreferenced: no live
        in-edges and no dead pins. O(1)."""
        return (
            self.pids[u] is not None
            and self.state_[u] == _GONE
            and not self.in_[u]
            and not self.dead_pins.get(u)
        )

    def reap(self, u: int) -> None:
        """Reclaim gone, unreferenced slot *u* onto the free list.

        The slot's generation was already bumped when its process exited,
        so every tagged ref minted for the old occupant is stale the
        moment the slot is recycled. Per-slot statistics move to the
        archive under the departing pid (exports merge them back); the
        stores and channel are destroyed, unpinning whatever they held.
        """

        pid = self.pids[u]
        if pid is None or self.state_[u] != _GONE:
            raise StateViolation(f"slot {u} is not a gone process; cannot reap")
        if self.in_[u] or self.dead_pins.get(u):
            raise StateViolation(
                f"process {pid} (slot {u}) is still referenced; cannot reap"
            )
        self._pin_holdings(u, -1)
        self._pending0 -= len(self.ch[u])
        archived = self.archived_stats
        for name, arr in (
            ("timeouts_by", self.timeouts_by),
            ("deliveries_by", self.deliveries_by),
            ("sent_by", self.sent_by),
            ("received_by", self.received_by),
        ):
            c = arr[u]
            if c:
                archived[name][pid] = c
                arr[u] = 0
        self.N[u] = {}
        self.ch[u] = {}
        self.anchor_[u] = -1
        self.abelief_[u] = _NONE
        if self.is_fsp:
            self.parked[u] = {}
            self.averified_[u] = 0
            self.aprobe_[u] = 0
        self.last_acted[u] = -1
        self.pids[u] = None
        del self.slot_of[pid]
        self.free_slots.append(u)
        self.gone -= 1
        # Slot identity changed: any cached scheduler driver encodes pool
        # entries against the old slot census.
        self.cached_driver = None
        self.cached_driver_for = None

    def admit(self, pid: int, proc: Any) -> None:
        """Mirror of ``Engine.admit``: give *pid* a slot, recycling from
        the free list when possible.

        A recycled slot keeps its exit-bumped generation — zeroing it
        would let a stale tagged ref alias the new occupant. When the
        generation no longer fits the packed layout
        (:data:`~repro.sim.refs.REF_GEN_BITS`), the slot is retired and
        :class:`~repro.errors.SlotRecycleOverflow` raised instead of
        silently wrapping.
        """

        from repro.core.fdp import FDPProcess
        from repro.core.fsp import FSPProcess

        expected = FSPProcess if self.is_fsp else FDPProcess
        if type(proc) is not expected:
            raise CoreUnsupported(
                f"admitted process type {type(proc).__name__} is not mirrored"
            )
        slot_of = self.slot_of
        nd_enc: dict[int, int] = {}
        for ref, belief in proc.N.items():
            rpid = ref._pid  # noqa: SLF001
            if rpid == pid:
                raise CoreUnsupported(f"self-reference stored by pid {pid}")
            v = slot_of.get(rpid)
            if v is None:
                raise CoreUnsupported(
                    f"admitted process references unknown pid {rpid}"
                )
            nd_enc[v] = _code(belief)
        anchor = proc.anchor
        abel = _code(proc.anchor_belief)
        if anchor is None:
            aslot = -1
        else:
            apid = anchor._pid  # noqa: SLF001
            if apid == pid:
                raise CoreUnsupported(f"self-anchor stored by pid {pid}")
            aslot = slot_of.get(apid, -1)
            if aslot < 0:
                raise CoreUnsupported("admitted process anchors unknown pid")
        if self.is_fsp:
            pk_enc: dict[int, int] = {}
            for ref, belief in proc.parked.items():
                rpid = ref._pid  # noqa: SLF001
                if rpid == pid:
                    raise CoreUnsupported(f"self-reference parked by pid {pid}")
                v = slot_of.get(rpid)
                if v is None:
                    raise CoreUnsupported("admitted process parks unknown pid")
                pk_enc[v] = _code(belief)

        free = self.free_slots
        if free:
            u = free.pop()
            if self.gen_[u] >= (1 << REF_GEN_BITS):
                # Retired for good: re-admitting it can never become safe.
                raise SlotRecycleOverflow(
                    f"slot {u} exhausted its generation space "
                    f"(gen={self.gen_[u]}, cap=2^{REF_GEN_BITS})",
                    slot=u,
                    gen=self.gen_[u],
                )
            self.pids[u] = pid
        else:
            u = len(self.pids)
            if u >= (1 << REF_SLOT_BITS):
                raise CoreUnsupported(f"population {u + 1} exceeds slot space")
            self.pids.append(pid)
            self.mode_.append(_STAYING)
            self.state_.append(_AWAKE)
            self.gen_.append(0)
            self.anchor_.append(-1)
            self.abelief_.append(_NONE)
            self.N.append({})
            if self.is_fsp:
                self.parked.append({})
                self.averified_.append(0)
                self.aprobe_.append(0)
            self.ch.append({})
            self.in_.append({})
            self.last_acted.append(-1)
            self.timeouts_by.append(0)
            self.deliveries_by.append(0)
            self.sent_by.append(0)
            self.received_by.append(0)
        slot_of[pid] = u
        self.mode_[u] = _LEAVING if proc.mode is Mode.LEAVING else _STAYING
        self.state_[u] = _AWAKE
        nd = self.N[u]
        for v, bel in nd_enc.items():
            nd[v] = bel
            self._edge(u, v, _STAYING if bel == _NONE else bel, 1)
        self.anchor_[u] = aslot
        self.abelief_[u] = abel
        if aslot >= 0:
            self._edge(u, aslot, _STAYING if abel == _NONE else abel, 1)
        if self.is_fsp:
            pk = self.parked[u]
            for v, bel in pk_enc.items():
                pk[v] = bel
                self._edge(u, v, _STAYING if bel == _NONE else bel, 1)
            self.averified_[u] = 1 if proc.anchor_verified else 0
            self.aprobe_[u] = 1 if proc.anchor_probe_sent else 0
        # The engine's scheduler wake consumes one freshness stamp.
        self.clock += 1
        # Slot census changed (growth moves the _RandomMirror's bit split;
        # recycling re-keys slot_of): rebuild the driver on next use.
        self.cached_driver = None
        self.cached_driver_for = None

    # ------------------------------------------------------------------ oracle

    def _single(self, u: int) -> bool:
        """SINGLE(u): at most one distinct non-gone partner in either
        direction (sleeper-free populations only — enforced at build).

        Incoming partners come from the maintained index; outgoing ones
        are enumerated from u's own stores (N, anchor, parked, channel
        subjects) at query time — oracle queries are rare enough that
        indexing the outgoing direction on the hot path never pays off.
        """
        state_ = self.state_
        first = -1
        for q in self.in_[u]:
            if q != u and state_[q] != _GONE and q != first:
                if first >= 0:
                    return False
                first = q
        for q in self.N[u]:
            if q != u and state_[q] != _GONE and q != first:
                if first >= 0:
                    return False
                first = q
        a = self.anchor_[u]
        if a >= 0 and a != u and state_[a] != _GONE and a != first:
            if first >= 0:
                return False
            first = a
        if self.is_fsp:
            for q in self.parked[u]:
                if q != u and state_[q] != _GONE and q != first:
                    if first >= 0:
                        return False
                    first = q
        for rec in self.ch[u].values():
            q = ((rec >> _SUBJ_SHIFT) & _SUBJ_MASK) - 1
            if q >= 0 and q != u and state_[q] != _GONE and q != first:
                if first >= 0:
                    return False
                first = q
        return True

    def _consult_oracle(self, u: int) -> bool:
        if self.is_fsp:
            # FSP overrides _consult_oracle with a constant — no oracle
            # machinery, no stats.
            return True
        kind = self.oracle_kind
        if kind is None:
            raise ConfigurationError(
                "no oracle configured but the protocol consulted one"
            )
        self.oq += 1
        if kind == "always":
            verdict = True
        elif kind == "never":
            verdict = False
        else:
            verdict = self._single(u)
        if verdict:
            self.otrue += 1
        return verdict

    # ------------------------------------------------------------------ protocol kernels

    def _drop_anchor_edge(self, u: int) -> None:
        """``anchor := ⊥`` with its edge delta (raw belief key removal)."""
        a = self.anchor_[u]
        ab = self.abelief_[u]
        self._edge(u, a, _STAYING if ab == _NONE else ab, -1)
        self.anchor_[u] = -1
        self.abelief_[u] = _NONE

    def _set_anchor(self, u: int, v: int, m: int) -> None:
        """``anchor := v; anchor_belief := m`` (net edge delta)."""
        self.anchor_[u] = v
        self.abelief_[u] = m
        self._edge(u, v, m, 1)

    def _nstore(self, u: int, v: int, m: int) -> None:
        """``N[v] := m`` with RefMap write-through semantics."""
        nd = self.N[u]
        old = nd.get(v, -1)
        if old == m:
            return
        nd[v] = m
        if old >= 0:
            self._edge(u, v, _STAYING if old == _NONE else old, -1)
        self._edge(u, v, m, 1)

    def _ndrop(self, u: int, v: int) -> None:
        """``del N[v]`` with its edge delta."""
        old = self.N[u].pop(v)
        self._edge(u, v, _STAYING if old == _NONE else old, -1)

    def _timeout_kernel(self, u: int) -> int | None:
        """Algorithm 1 (+ the FSP pre-phase); returns the requested
        lifecycle code or None, applied by the caller after the action."""
        mode = self.mode_[u]
        if self.is_fsp:
            anchor = self.anchor_[u]
            trusted = anchor >= 0 and self.abelief_[u] != _LEAVING
            pk = self.parked[u]
            if trusted and pk:
                for v, bel in pk.items():
                    if v == anchor:
                        self._send(u, u, 0, v, bel)
                    else:
                        self._send(u, anchor, 1, v, bel)
                for v, bel in pk.items():
                    self._edge(u, v, _STAYING if bel == _NONE else bel, -1)
                pk.clear()
            if trusted and mode == _LEAVING and not self.averified_[u] and not self.aprobe_[u]:
                self._send(u, anchor, 0, u, mode)
                self.aprobe_[u] = 1
        # Algorithm 1 lines 1-3: purge an anchor believed to be leaving.
        if self.anchor_[u] >= 0 and self.abelief_[u] == _LEAVING:
            self._send(u, u, 0, self.anchor_[u], self.abelief_[u])
            self._drop_anchor_edge(u)
        if mode == _LEAVING:  # line 4
            nd = self.N[u]
            if not nd:  # line 5
                if self._consult_oracle(u):  # line 6
                    # line 7: exit (FDP) / sleep (FSP departure hook)
                    return _ASLEEP if self.is_fsp else _GONE
                anchor = self.anchor_[u]
                if anchor >= 0:  # lines 8-10
                    self._send(u, anchor, 0, u, mode)
            else:  # lines 11-14: drain the neighbourhood to ourselves
                for v, bel in nd.items():
                    self._send(u, u, 1, v, bel)
                for v, bel in nd.items():
                    self._edge(u, v, _STAYING if bel == _NONE else bel, -1)
                nd.clear()
        else:  # lines 15-22: staying
            if self.anchor_[u] >= 0:  # lines 16-18
                self._send(u, u, 0, self.anchor_[u], self.abelief_[u])
                self._drop_anchor_edge(u)
            # line 19: iterate the store directly; drops are deferred to
            # after the loop (the edge deltas commute with the sends —
            # neither reads N — and Φ is only observed between actions).
            drops = None
            nd = self.N[u]
            m = self._mirror
            if m is None:
                for v, bel in nd.items():
                    if bel == _LEAVING:  # lines 20-21
                        if drops is None:
                            drops = [v]
                        else:
                            drops.append(v)
                    self._send(u, v, 0, u, mode)  # line 22
            elif nd:
                # line 22 bulk-specialized for the mirror path: sender
                # and subject are both u, the belief is u's own mode
                # (staying), so the packed record is loop-constant and
                # Φ can never move (the enqueue edge always agrees with
                # mode_[u]). Everything batchable is batched.
                seq = self.next_seq
                value = m._arrival
                nbits = m._nbits
                pool = m._pool
                pos = m._pos
                stamps = m._stamps
                ch = self.ch
                state_ = self.state_
                received_by = self.received_by
                inn = self.in_[u]
                rec = (
                    (mode << _BEL_SHIFT)
                    | ((u + 1) << _SUBJ_SHIFT)
                    | ((self.pids[u] + 1) << _SENDER_SHIFT)
                )
                edges = 0
                sent = 0
                dropped = 0
                for v, bel in nd.items():
                    if bel == _LEAVING:  # lines 20-21
                        if drops is None:
                            drops = [v]
                        else:
                            drops.append(v)
                    if state_[v] != _GONE:
                        ch[v][seq] = rec
                        received_by[v] += 1
                        inn[v] = inn.get(v, 0) + 1
                        edges += 1
                        sent += 1
                        enc = ((seq + 1) << nbits) | v
                        pos[enc] = len(pool)
                        pool.append(enc)
                        stamps.append(value)
                        value += 1
                        seq += 1
                    else:
                        # Self-introduction to a gone neighbour: the
                        # bounce rule drops it silently (subject is u
                        # itself — nothing to reintegrate).
                        dropped += 1
                self.next_seq = seq
                m._arrival = value
                self.sent_by[u] += sent
                self.edge_total += edges
                self.dropped_gone += dropped
            if drops is not None:
                for v in drops:
                    self._ndrop(u, v)
        return None

    def _present_kernel(self, u: int, v: int, bel_in: int) -> None:
        """Algorithm 2 (with the FSP learning wrappers)."""
        fsp = self.is_fsp
        if fsp and v != u:
            # _note_anchor_answer on the normalized incoming belief.
            if self.anchor_[u] == v and (_STAYING if bel_in == _NONE else bel_in) == _STAYING:
                self.averified_[u] = 1
        had_anchor = self.anchor_[u]
        if v != u:  # transcription note 2: self-references are discarded
            m = _STAYING if bel_in == _NONE else bel_in
            # _drop_stale_anchor, inlined (Algorithm 2 lines 1-2).
            if m == _LEAVING and self.anchor_[u] == v:
                self._drop_anchor_edge(u)
            mode = self.mode_[u]
            if m == _LEAVING:  # line 3
                if mode == _LEAVING:  # lines 4-5: reversal (both variants)
                    self._send(u, v, 1, u, mode)
                else:  # lines 6-9
                    if v in self.N[u]:
                        self._ndrop(u, v)
                    self._send(u, v, 1, u, mode)
            else:  # line 10
                if mode == _LEAVING:  # line 11
                    if self.anchor_[u] >= 0:  # lines 12-13
                        self._send(u, v, 1, u, mode)
                    else:  # lines 14-15
                        self._set_anchor(u, v, m)
                else:  # lines 16-17: N[v] := m — _nstore inlined; this is
                    # the dominant delivery outcome, and a belief rewrite
                    # leaves the edge count untouched (only Φ can move).
                    nd = self.N[u]
                    old = nd.get(v, -1)
                    if old != m:
                        nd[v] = m
                        mv = self.mode_[v]
                        if old >= 0:
                            if (_STAYING if old == _NONE else old) != mv:
                                self.phi -= 1
                            if m != mv:
                                self.phi += 1
                        else:
                            inn = self.in_[v]
                            inn[u] = inn.get(u, 0) + 1
                            self.edge_total += 1
                            if m != mv:
                                self.phi += 1
        if fsp and self.anchor_[u] != had_anchor:
            self.averified_[u] = 0
            self.aprobe_[u] = 0

    def _forward_kernel(self, u: int, v: int, bel_in: int) -> None:
        """Algorithm 3 (with the FSP parking variant and wrappers)."""
        fsp = self.is_fsp
        if fsp and v != u:
            if self.anchor_[u] == v and (_STAYING if bel_in == _NONE else bel_in) == _STAYING:
                self.averified_[u] = 1
        had_anchor = self.anchor_[u]
        if v != u:
            m = _STAYING if bel_in == _NONE else bel_in
            # _drop_stale_anchor, inlined (Algorithm 3 lines 1-2).
            if m == _LEAVING and self.anchor_[u] == v:
                self._drop_anchor_edge(u)
            mode = self.mode_[u]
            if m == _LEAVING:  # line 3
                if mode == _LEAVING:  # line 4
                    anchor = self.anchor_[u]
                    if anchor < 0:  # lines 5-6
                        if fsp:
                            # FSP: park + one-shot self-introduction.
                            pk = self.parked[u]
                            fresh = v not in pk
                            old = pk.get(v, -1)
                            if old != m:
                                pk[v] = m
                                if old >= 0:
                                    self._edge(
                                        u, v, _STAYING if old == _NONE else old, -1
                                    )
                                self._edge(u, v, m, 1)
                            if fresh:
                                self._send(u, v, 0, u, mode)
                        else:
                            self._send(u, v, 1, u, mode)  # reversal
                    else:  # lines 7-8: delegate to the anchor
                        self._send(u, anchor, 1, v, m)
                else:  # lines 9-12: staying
                    if v in self.N[u]:
                        self._ndrop(u, v)
                    self._send(u, v, 1, u, mode)
            else:  # line 13
                if mode == _LEAVING:  # line 14
                    anchor = self.anchor_[u]
                    if anchor >= 0:  # lines 15-16
                        self._send(u, anchor, 1, v, m)
                    else:  # lines 17-18
                        self._set_anchor(u, v, m)
                else:  # lines 19-20
                    self._nstore(u, v, m)
        if fsp and self.anchor_[u] != had_anchor:
            self.averified_[u] = 0
            self.aprobe_[u] = 0

    # ------------------------------------------------------------------ events

    def _run_timeout(self, u: int) -> None:
        if self.state_[u] != _AWAKE:  # pragma: no cover - scheduler contract
            raise StateViolation(
                f"timeout selected for non-awake process {self.pids[u]}"
            )
        requested = self._timeout_kernel(u)
        if requested is not None:
            self._transition(u, requested)
        self.timeouts += 1
        self.timeouts_by[u] += 1
        self.last_acted[u] = self.steps
        if self.state_[u] == _AWAKE:
            stamp = self.clock
            self.clock = stamp + 1
            driver = self.driver
            if driver is not None:
                driver.notify_timeout_executed(u, stamp)

    def _run_delivery(self, u: int, seq: int) -> None:
        if self.state_[u] == _GONE:  # pragma: no cover - scheduler contract
            raise StateViolation(
                f"delivery selected for gone process {self.pids[u]}"
            )
        rec = self.ch[u].pop(seq)
        subj = ((rec >> _SUBJ_SHIFT) & _SUBJ_MASK) - 1
        bel = (rec >> _BEL_SHIFT) & 3
        if subj >= 0:
            # _edge(u, subj, normalized bel, -1), inlined (dequeue edge).
            inn = self.in_[subj]
            c = inn[u] - 1
            if c:
                inn[u] = c
            else:
                del inn[u]
            self.edge_total -= 1
            if (_STAYING if bel == _NONE else bel) != self.mode_[subj]:
                self.phi -= 1
        if self.state_[u] == _ASLEEP:
            self._transition(u, _AWAKE)
        label_id = rec & _LABEL_MASK
        kernels = self._deliver_kernels
        if label_id >= len(kernels):
            # "All other messages will be ignored by the processes."
            self.dropped += 1
            if self.strict:
                tname = "FSPProcess" if self.is_fsp else "FDPProcess"
                raise UnknownActionError(
                    f"process {self.pids[u]} ({tname}) has no action "
                    f"'{self.labels[label_id]}'"
                )
        else:
            kernels[label_id](u, subj, bel)
        self.deliveries += 1
        self.deliveries_by[u] += 1
        self.last_acted[u] = self.steps

    def _sync_flow(self) -> None:
        """Materialize the derived message-flow counters.

        ``posted`` advances exactly with ``next_seq`` and ``pending`` is
        posted minus delivered minus strict-dropped, so the hot path never
        updates either — callers that *read* them (export, verification)
        sync first.
        """
        d = self.next_seq - self._seq0
        self.posted = self._posted0 + d
        self.pending = (
            self._pending0
            + d
            - (self.deliveries - self._del0)
            - (self.dropped - self._drop0)
        )

    def _after_step(self) -> None:
        self.steps += 1
        self.stat_steps += 1
        if self.track_phi:
            phi = self.phi
            last = self.last_phi_seen
            if last is None or phi > last:
                self.last_phi_seen = phi
            elif phi < last:
                self.last_phi_seen = phi
                self.last_progress = self.steps

    # ------------------------------------------------------------------ driving (soa)

    def run_batch(self, budget: int) -> int:
        """Execute up to *budget* events through the scheduler driver.

        Returns the executed count; fewer than *budget* means the system
        went quiescent.
        """
        driver = self.driver
        if driver is None:
            raise ConfigurationError("run_batch requires a scheduler driver")
        if type(driver) is _RandomMirror:
            self._mirror = driver
            return self._run_batch_random(driver, budget)
        self._mirror = None
        executed = 0
        while executed < budget:
            ev = driver.select()
            if ev is None:
                break
            is_timeout, u, seq = ev
            if is_timeout:
                self._run_timeout(u)
            else:
                self._run_delivery(u, seq)
            self._after_step()
            executed += 1
        return executed

    def _run_batch_random(self, drv: _RandomMirror, budget: int) -> int:
        """:meth:`run_batch` specialized for the default scheduler.

        The mirror's select (one ``randrange`` + a swap-remove) and the
        per-step bookkeeping are inlined: at n=4096 the generic
        driver-protocol loop spends a third of its time on these four
        delegating calls alone.
        """
        pool = drv._pool
        pos = drv._pos
        stamps = drv._stamps
        # randrange(n) for a positive int upper bound is exactly
        # _randbelow(n), and _randbelow_with_getrandbits is small enough
        # to inline below: the identical random bits are consumed while
        # skipping two Python call frames per step.
        getrandbits = drv._rng.getrandbits
        dbase = drv._dbase
        smask = drv._smask
        nbits = drv._nbits
        track_phi = self.track_phi
        # the event handlers' containers, hoisted out of the loop.
        ch = self.ch
        state_ = self.state_
        in_ = self.in_
        mode_ = self.mode_
        deliveries_by = self.deliveries_by
        timeouts_by = self.timeouts_by
        last_acted = self.last_acted
        deliver_kernels = self._deliver_kernels
        n_labels = len(deliver_kernels)
        timeout_kernel = self._timeout_kernel
        strict = self.strict
        # Per-step scalar counters, batched into locals and flushed on
        # every exit path: the kernels never read them mid-batch, and
        # _transition (the one callee that reads self.steps) gets the
        # current value written just before each call site.
        steps = self.steps
        last_phi = self.last_phi_seen
        lprog = self.last_progress
        dcount = 0
        executed = 0
        try:
            while executed < budget:
                lp = len(pool)
                if not lp:
                    break
                # inline Random._randbelow_with_getrandbits(lp)
                k = lp.bit_length()
                r = getrandbits(k)
                while r >= lp:
                    r = getrandbits(k)
                enc = pool[r]
                if enc >= dbase:
                    # inline drv._remove(enc): swap-remove, order-faithful.
                    idx = pos.pop(enc)
                    last = pool.pop()
                    st = stamps.pop()
                    if last != enc:
                        pool[idx] = last
                        stamps[idx] = st
                        pos[last] = idx
                    # inline _run_delivery(u, seq). The gone-process driver
                    # contract check is elided: notify_gone strips every
                    # pending delivery of a gone slot from the mirror's pool.
                    u = enc & smask
                    rec = ch[u].pop((enc >> nbits) - 1)
                    subj = ((rec >> _SUBJ_SHIFT) & _SUBJ_MASK) - 1
                    bel = (rec >> _BEL_SHIFT) & 3
                    if subj >= 0:
                        # _edge(u, subj, normalized bel, -1) (dequeue edge).
                        inn = in_[subj]
                        c = inn[u] - 1
                        if c:
                            inn[u] = c
                        else:
                            del inn[u]
                        self.edge_total -= 1
                        if (_STAYING if bel == _NONE else bel) != mode_[subj]:
                            self.phi -= 1
                    if state_[u] == _ASLEEP:
                        self.steps = steps
                        self._transition(u, _AWAKE)
                    label_id = rec & _LABEL_MASK
                    if label_id >= n_labels:
                        # "All other messages will be ignored by the processes."
                        self.dropped += 1
                        if strict:
                            tname = "FSPProcess" if self.is_fsp else "FDPProcess"
                            raise UnknownActionError(
                                f"process {self.pids[u]} ({tname}) has no action "
                                f"'{self.labels[label_id]}'"
                            )
                    else:
                        deliver_kernels[label_id](u, subj, bel)
                    dcount += 1
                    deliveries_by[u] += 1
                    last_acted[u] = steps
                else:
                    # inline _run_timeout(enc): the mirror pool only holds
                    # timeout entries for awake slots, so the driver-contract
                    # check is elided.
                    u = enc
                    requested = timeout_kernel(u)
                    if requested is not None:
                        self.steps = steps
                        self._transition(u, requested)
                    timeouts_by[u] += 1
                    last_acted[u] = steps
                    if state_[u] == _AWAKE:
                        cstamp = self.clock
                        self.clock = cstamp + 1
                        # inline mirror notify_timeout_executed.
                        idx = pos.get(u)
                        if idx is not None:
                            value = drv._arrival
                            drv._arrival = value + 1
                            stamps[idx] = value
                # inline _after_step()
                steps += 1
                if track_phi:
                    phi = self.phi
                    if last_phi is None or phi > last_phi:
                        last_phi = phi
                    elif phi < last_phi:
                        last_phi = phi
                        lprog = steps
                executed += 1
        finally:
            self.steps = steps
            self.stat_steps += executed
            self.deliveries += dcount
            self.timeouts += executed - dcount
            self.last_phi_seen = last_phi
            if lprog > self.last_progress:
                self.last_progress = lprog
        return executed

    # ------------------------------------------------------------------ mirroring (verify)

    def mirror_step(self, engine: Engine, executed: Any) -> None:
        """Replay *executed* (the object step's record) through the int
        kernels and cross-check the cheap invariants; raises
        :class:`~repro.errors.StateViolation` on divergence."""
        u = self.slot_of[executed.pid]
        pre_state = self.state_[u]
        pre_gen = self.gen_[u]
        if executed.kind == "timeout":
            self._run_timeout(u)
        else:
            self._run_delivery(u, executed.seq)
        self._after_step()
        self._check_step(engine, executed, u)
        if (
            self.state_[u] == _GONE
            and pre_state != _GONE
            and self.gen_[u] != pre_gen + 1
        ):
            # Tagged-ref contract (slot | gen << REF_SLOT_BITS): a slot
            # whose process exits must change generation, or a stale
            # reference would compare equal to a live one.
            raise StateViolation(
                "struct-of-arrays core diverged from the object engine at "
                f"step {engine.step_count} ({executed!r}): generation of "
                f"slot {u} not bumped on exit (gen={self.gen_[u]})"
            )

    def _check_step(self, engine: Engine, executed: Any, u: int) -> None:
        self._sync_flow()
        stats = engine.stats
        mismatches = []
        state = engine.processes[executed.pid].state
        want = (
            _GONE if state is PState.GONE else _ASLEEP if state is PState.ASLEEP else _AWAKE
        )
        if self.state_[u] != want:
            mismatches.append(f"state[{executed.pid}]: core={self.state_[u]} obj={want}")
        pairs = (
            ("steps", self.steps, engine.step_count),
            ("seq", self.next_seq, engine._msg_seq),  # noqa: SLF001
            ("clock", self.clock, engine._clock),  # noqa: SLF001
            ("posted", self.posted, stats.messages_posted),
            ("timeouts", self.timeouts, stats.timeouts),
            ("deliveries", self.deliveries, stats.deliveries),
            ("dropped", self.dropped, stats.dropped_unknown),
            ("dropped_gone", self.dropped_gone, stats.dropped_gone),
            ("bounced", self.bounced, stats.bounced),
            ("exits", self.exits, stats.exits),
            ("sleeps", self.sleeps, stats.sleeps),
            ("wakes", self.wakes, stats.wakes),
            ("oracle_queries", self.oq, stats.oracle_queries),
            ("oracle_true", self.otrue, stats.oracle_true),
        )
        for name, got, want_v in pairs:
            if got != want_v:
                mismatches.append(f"{name}: core={got} obj={want_v}")
        live = engine._live  # noqa: SLF001
        if live is not None and not engine._live_stale:  # noqa: SLF001
            if self.phi != live.phi:
                mismatches.append(f"phi: core={self.phi} obj={live.phi}")
            if self.pending != live.pending_total:
                mismatches.append(
                    f"pending: core={self.pending} obj={live.pending_total}"
                )
            if self.edge_total != live.edge_total:
                mismatches.append(
                    f"edges: core={self.edge_total} obj={live.edge_total}"
                )
        if mismatches:
            raise StateViolation(
                "struct-of-arrays core diverged from the object engine at "
                f"step {engine.step_count} ({executed!r}): "
                + "; ".join(mismatches)
            )

    # ------------------------------------------------------------------ deep verify

    def verify_full(self, engine: Engine) -> None:
        """Deep structural comparison against the object model; raises
        :class:`~repro.errors.StateViolation` listing every mismatch."""
        self._sync_flow()
        mismatches: list[str] = []
        slot_of = self.slot_of
        want_pop = {p for p in self.pids if p is not None}
        if set(engine.processes) != want_pop:
            mismatches.append(
                f"population: core={sorted(want_pop)} obj={sorted(engine.processes)}"
            )
        for i, pid in enumerate(self.pids):
            if pid is None:
                continue
            proc = engine.processes[pid]
            st = proc.state
            want = (
                _GONE if st is PState.GONE else _ASLEEP if st is PState.ASLEEP else _AWAKE
            )
            if self.state_[i] != want:
                mismatches.append(f"pid {pid} state: {self.state_[i]} != {want}")
            obj_n = [
                (slot_of[r._pid], _code(b))  # noqa: SLF001
                for r, b in proc.N.items()
            ]
            if list(self.N[i].items()) != obj_n:
                mismatches.append(f"pid {pid} N: {list(self.N[i].items())} != {obj_n}")
            anchor = proc.anchor
            aslot = -1 if anchor is None else slot_of[anchor._pid]  # noqa: SLF001
            if self.anchor_[i] != aslot:
                mismatches.append(f"pid {pid} anchor: {self.anchor_[i]} != {aslot}")
            elif aslot >= 0 and self.abelief_[i] != _code(proc.anchor_belief):
                mismatches.append(
                    f"pid {pid} anchor_belief: {self.abelief_[i]} != "
                    f"{_code(proc.anchor_belief)}"
                )
            if self.is_fsp:
                obj_pk = [
                    (slot_of[r._pid], _code(b))  # noqa: SLF001
                    for r, b in proc.parked.items()
                ]
                if list(self.parked[i].items()) != obj_pk:
                    mismatches.append(f"pid {pid} parked differs")
                if bool(self.averified_[i]) != proc.anchor_verified:
                    mismatches.append(f"pid {pid} anchor_verified differs")
                if bool(self.aprobe_[i]) != proc.anchor_probe_sent:
                    mismatches.append(f"pid {pid} anchor_probe_sent differs")
            chan = engine.channels[pid]
            got = list(self.ch[i].items())
            want_ch = [(m.seq, self._encode_msg(m, self._label_of)) for m in chan]
            if got != want_ch:
                mismatches.append(f"pid {pid} channel: {got} != {want_ch}")
        stats = engine.stats
        scalar_pairs = (
            ("steps", self.steps, engine.step_count),
            ("stat_steps", self.stat_steps, stats.steps),
            ("seq", self.next_seq, engine._msg_seq),  # noqa: SLF001
            ("clock", self.clock, engine._clock),  # noqa: SLF001
            ("posted", self.posted, stats.messages_posted),
            ("timeouts", self.timeouts, stats.timeouts),
            ("deliveries", self.deliveries, stats.deliveries),
            ("dropped", self.dropped, stats.dropped_unknown),
            ("dropped_gone", self.dropped_gone, stats.dropped_gone),
            ("bounced", self.bounced, stats.bounced),
            ("exits", self.exits, stats.exits),
            ("sleeps", self.sleeps, stats.sleeps),
            ("wakes", self.wakes, stats.wakes),
            ("oracle_queries", self.oq, stats.oracle_queries),
            ("oracle_true", self.otrue, stats.oracle_true),
            ("asleep", self.asleep, engine.asleep_count),
            ("gone", self.gone, engine.gone_count),
        )
        for name, got_v, want_v in scalar_pairs:
            if got_v != want_v:
                mismatches.append(f"{name}: core={got_v} obj={want_v}")
        for name, arr, by in (
            ("timeouts_by", self.timeouts_by, stats.timeouts_by),
            ("deliveries_by", self.deliveries_by, stats.deliveries_by),
            ("sent_by", self.sent_by, stats.sent_by),
            ("received_by", self.received_by, stats.received_by),
        ):
            want_d = dict(self.archived_stats[name])
            for i, c in enumerate(arr):
                if c and self.pids[i] is not None:
                    want_d[self.pids[i]] = c
            got_d = {p: c for p, c in by.items() if c}
            if want_d != got_d:
                mismatches.append(f"{name} differs")
        # Pin-invariant oracle: recount the dead pins from first
        # principles (every reference physically held by a gone slot,
        # self-references excluded) and compare to the running counts.
        want_pins: dict[int, int] = {}
        for i, pid in enumerate(self.pids):
            if pid is None or self.state_[i] != _GONE:
                continue
            held: list[int] = []
            held.extend(self.N[i])
            a = self.anchor_[i]
            if a >= 0:
                held.append(a)
            if self.is_fsp:
                held.extend(self.parked[i])
            for rec in self.ch[i].values():
                v = ((rec >> _SUBJ_SHIFT) & _SUBJ_MASK) - 1
                if v >= 0:
                    held.append(v)
            for v in held:
                if v != i:
                    want_pins[v] = want_pins.get(v, 0) + 1
        if want_pins != self.dead_pins:
            mismatches.append(
                f"dead_pins: running={self.dead_pins} recount={want_pins}"
            )
        if engine.graph_mode == "incremental":
            live = engine.live_graph
            if self.phi != live.phi:
                mismatches.append(f"phi: core={self.phi} obj={live.phi}")
            if self.edge_total != live.edge_total:
                mismatches.append(
                    f"edges: core={self.edge_total} obj={live.edge_total}"
                )
            if self.pending != live.pending_total:
                mismatches.append(
                    f"pending: core={self.pending} obj={live.pending_total}"
                )
        if mismatches:
            raise StateViolation(
                "struct-of-arrays core state diverged from the object model: "
                + "; ".join(mismatches[:20])
                + (f" (+{len(mismatches) - 20} more)" if len(mismatches) > 20 else "")
            )

    # ------------------------------------------------------------------ export (soa)

    def export_to(self, engine: Engine) -> None:
        """Write the core's state back into the object model.

        Rebuilds processes' tracked stores, channels and counters so the
        engine continues (predicates, analysis, further object-path
        steps) as if the object loop had executed every event itself.
        """
        self._sync_flow()
        # Disarm the live view first: the rebuilt channels bypass the
        # observers, so the next read must trigger a full rebuild.
        engine._live_stale = True  # noqa: SLF001
        engine._stale = True  # noqa: SLF001
        engine._snapshot_cache = None  # noqa: SLF001
        procs = [
            engine.processes[pid] if pid is not None else None for pid in self.pids
        ]
        # Reaped slots leave a None hole; nothing live can reference one
        # (reap requires zero in-edges and zero dead pins), so refs[v] is
        # never dereferenced for a hole.
        refs = [p.self_ref if p is not None else None for p in procs]
        for i, proc in enumerate(procs):
            if proc is None:
                continue
            # Bulk state restore: the core executed the lifecycle
            # transitions itself (legality enforced by the kernels), so
            # this is the engine writing back its own bookkeeping.
            proc._state = _STATE_BY_CODE[self.state_[i]]  # noqa: SLF001  # repro: noqa[API003]
            d = proc.N._d  # noqa: SLF001
            d.clear()
            for v, bel in self.N[i].items():
                d[refs[v]] = _MODE_BY_CODE[bel]
            cell = proc._anchor_cell  # noqa: SLF001
            a = self.anchor_[i]
            cell._ref = refs[a] if a >= 0 else None  # noqa: SLF001
            cell._belief = _MODE_BY_CODE[self.abelief_[i]]  # noqa: SLF001
            if self.is_fsp:
                d = proc.parked._d  # noqa: SLF001
                d.clear()
                for v, bel in self.parked[i].items():
                    d[refs[v]] = _MODE_BY_CODE[bel]
                proc.anchor_verified = bool(self.averified_[i])
                proc.anchor_probe_sent = bool(self.aprobe_[i])
            proc._ref_log.pending.clear()  # noqa: SLF001
            chan = engine.channels[self.pids[i]]
            msgs: dict[int, Message] = {}
            labels = self.labels
            for seq, rec in self.ch[i].items():
                subj = ((rec >> _SUBJ_SHIFT) & _SUBJ_MASK) - 1
                spid = (rec >> _SENDER_SHIFT) - 1
                sender = spid if spid >= 0 else None
                if subj >= 0:
                    args: tuple = (
                        RefInfo(refs[subj], _MODE_BY_CODE[(rec >> _BEL_SHIFT) & 3]),
                    )
                else:
                    args = ()
                msgs[seq] = Message(labels[rec & _LABEL_MASK], args, seq, sender)
            chan._messages = msgs  # noqa: SLF001
        stats = engine.stats
        stats.steps = self.stat_steps
        stats.timeouts = self.timeouts
        stats.deliveries = self.deliveries
        stats.messages_posted = self.posted
        stats.dropped_unknown = self.dropped
        stats.dropped_gone = self.dropped_gone
        stats.bounced = self.bounced
        stats.exits = self.exits
        stats.sleeps = self.sleeps
        stats.wakes = self.wakes
        stats.oracle_queries = self.oq
        stats.oracle_true = self.otrue
        for name, arr in (
            ("timeouts_by", self.timeouts_by),
            ("deliveries_by", self.deliveries_by),
            ("sent_by", self.sent_by),
            ("received_by", self.received_by),
        ):
            d = dict(self.archived_stats[name])
            for i, c in enumerate(arr):
                if c and self.pids[i] is not None:
                    d[self.pids[i]] = c
            setattr(stats, name, d)
        engine.step_count = self.steps
        engine._clock = self.clock  # noqa: SLF001
        engine._msg_seq = self.next_seq  # noqa: SLF001
        engine._asleep_count = self.asleep  # noqa: SLF001
        engine._gone_count = self.gone  # noqa: SLF001
        engine._lifecycle_stale = False  # noqa: SLF001
        engine._last_progress_step = self.last_progress  # noqa: SLF001
        engine._last_phi_seen = self.last_phi_seen  # noqa: SLF001
        driver = self.driver
        if driver is not None:
            driver.splice()
        # The engine now matches the core exactly — the export itself is
        # not a reason to rebuild the core on the next run.
        engine._core_stale = False  # noqa: SLF001


def make_driver(engine: Engine, core: EngineCore) -> Any | None:
    """Build the scheduler driver for a core-driven run, or ``None`` when
    the scheduler cannot be driven from the int domain."""
    sched = engine.scheduler
    if type(sched) is RandomScheduler:
        return _RandomMirror(sched, core.pids, core.slot_of)
    if getattr(sched, "core_drivable", False):
        return _ObjectSchedDriver(sched, core.pids, core.slot_of)
    from repro.sim.replay import ReplayScheduler

    if type(sched) is ReplayScheduler:
        return _ReplayDriver(sched, core)
    return None
