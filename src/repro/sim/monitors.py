"""Invariant monitors: executable statements of the paper's lemmas.

A monitor is a callable ``(engine, executed_step) -> None`` registered on
the engine; it raises :class:`~repro.errors.SafetyViolation` the moment an
invariant breaks, pinpointing the step at which a (hypothetical) bug in a
protocol transcription violated a proof obligation.

* :class:`ConnectivityMonitor` — Lemma 2: within each *initial* weakly
  connected component, the relevant processes stay weakly connected in
  every state of the computation.
* :class:`PotentialMonitor` — Lemma 3 (first half): the potential Φ never
  increases. ("The only way Φ could increase is if invalid information is
  copied" — and the protocol never copies it.)
* :class:`TransitionMonitor` — Figure 1 / E1: records every lifecycle
  transition actually taken so the experiment can check the observed set
  equals the drawn set.
* :class:`ExitGuardMonitor` — the FDP contract that a protocol relying on
  an oracle only lets a process exit when the oracle held for it.

Monitors run once per executed step, so they are observation hot-path
code: they must read the engine's O(1)/O(Δ) surfaces (``potential()``,
``gone_count``, ``edge_count``, ``members_weakly_connected``) and never
materialize a snapshot or scan the process population — the ``repro
lint`` rule PERF003 enforces this for every ``*Monitor`` class. Richer
causal instrumentation (message lineage, streaming trace export, the
documented probe catalog) lives in :mod:`repro.obs`; an exit's causal
trigger, for example, is answered by
:meth:`repro.obs.provenance.ProvenanceTracker.exits_from_planted` rather
than by a monitor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SafetyViolation
from repro.sim.states import PState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, ExecutedStep

__all__ = [
    "ConnectivityMonitor",
    "PotentialMonitor",
    "TransitionMonitor",
    "ExitGuardMonitor",
]


class ConnectivityMonitor:
    """Checks Lemma 2's invariant every ``check_every`` steps.

    For each initial component ``C``: the currently *relevant* processes of
    ``C`` must lie in a single weakly connected component of the process
    graph. (Components never merge under copy-store-send protocols — no
    process can learn a reference nobody in its component holds — so the
    per-component check is exact.)

    The check goes through :meth:`Engine.members_weakly_connected`, which
    in incremental graph mode answers from the live union-find instead of
    rebuilding a snapshot — per-step checking (``check_every=1``) costs
    O(Δ) amortized rather than O(V+E).
    """

    def __init__(self, check_every: int = 1) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.check_every = check_every
        self.checks = 0

    def __call__(self, engine: Engine, executed: ExecutedStep) -> None:
        if engine.step_count % self.check_every != 0:
            return
        self.verify(engine)

    def verify(self, engine: Engine) -> None:
        """Run the check now, raising on violation."""
        self.checks += 1
        relevant = engine.relevant_pids()
        for comp in engine.initial_components:
            members = frozenset(comp) & relevant
            if len(members) <= 1:
                continue
            if not engine.members_weakly_connected(members):
                raise SafetyViolation(
                    f"Lemma 2 violated at step {engine.step_count}: relevant "
                    f"processes {sorted(members)} of an initial component are "
                    "no longer weakly connected"
                )


class PotentialMonitor:
    """Checks Lemma 3's monotonicity: Φ never increases.

    ``check_every`` controls sampling; with 1 the check is per-step and the
    claim verified is exactly the per-transition statement of the proof.
    The observed series is kept for analysis (`values`).
    ``engine.potential()`` is an O(1) counter read in incremental graph
    mode, so per-step sampling is essentially free.
    """

    def __init__(self, check_every: int = 1) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.check_every = check_every
        self.values: list[int] = []
        self._last: int | None = None

    def __call__(self, engine: Engine, executed: ExecutedStep) -> None:
        if engine.step_count % self.check_every != 0:
            return
        phi = engine.potential()
        self.values.append(phi)
        if self._last is not None and phi > self._last:
            raise SafetyViolation(
                f"Lemma 3 violated at step {engine.step_count}: potential rose "
                f"from {self._last} to {phi}"
            )
        self._last = phi

    def rebase(self, engine: Engine | None = None) -> None:
        """Forget the last observed Φ (keeping the recorded series).

        Lemma 3 bounds Φ under *protocol* actions only; a chaos campaign
        that injects invalid information mid-run legitimately raises Φ
        out of band. The campaign calls this right after each injection
        so the monitor restarts its monotonicity check from the new level
        instead of reporting a phantom violation.
        """
        self._last = None


class TransitionMonitor:
    """Records the set of lifecycle transitions observed in a run.

    The engine itself refuses illegal transitions; this monitor provides
    the positive direction for experiment E1 — which legal transitions a
    workload actually exercises.
    """

    def __init__(self) -> None:
        self._prev: dict[int, PState] = {}
        self.observed: set[tuple[PState, PState]] = set()

    def __call__(self, engine: Engine, executed: ExecutedStep) -> None:
        pid = executed.pid
        new = engine.processes[pid].state
        old = self._prev.get(pid, PState.AWAKE)
        if old is not new:
            self.observed.add((old, new))
        self._prev[pid] = new


class ExitGuardMonitor:
    """Records exits that happened while a reference oracle was false.

    Registered via ``engine.exit_auditors`` (not ``monitors``): the engine
    invokes it at the instant a process requests ``exit``, while the
    process is still part of the graph, so the reference oracle sees the
    pre-exit state. Used in the oracle-ablation experiment (E11) to show
    the ALWAYS oracle admits exits that the exact ``SINGLE`` forbids —
    i.e. the exits whose safety is not guaranteed.

    With ``strict=True`` an unsafe exit raises immediately instead of
    being recorded.
    """

    def __init__(self, reference_oracle, strict: bool = False) -> None:
        self.reference_oracle = reference_oracle
        self.strict = strict
        self.unsafe_exits: list[int] = []
        self.audited = 0

    def __call__(self, engine: Engine, pid: int) -> None:
        self.audited += 1
        if not self.reference_oracle(engine, pid):
            self.unsafe_exits.append(pid)
            if self.strict:
                raise SafetyViolation(
                    f"process {pid} exited at step {engine.step_count} while "
                    "the reference oracle was false"
                )
