"""The simulation substrate: the paper's computational model, executable.

Implements Section 1.1 of the paper: processes with unique opaque
references, unbounded non-FIFO channels, atomic guarded/callable actions,
the awake/asleep/gone lifecycle, weakly-fair schedulers and fair message
receipt, plus the measurement instruments (snapshots, monitors, tracing)
the rest of the library builds on.
"""

from repro.sim.channel import Channel
from repro.sim.engine import Engine, EngineStats, ExecutedStep
from repro.sim.messages import Message, RefInfo, iter_refinfos, iter_refs
from repro.sim.monitors import (
    ConnectivityMonitor,
    ExitGuardMonitor,
    PotentialMonitor,
    TransitionMonitor,
)
from repro.sim.process import ActionContext, Process
from repro.sim.replay import (
    RecordedEvent,
    ReplayScheduler,
    ScheduleRecorder,
    replay_run,
)
from repro.sim.refs import KeyProvider, Ref, RefFactory, pid_of
from repro.sim.scheduler import (
    AdversarialScheduler,
    DeliverEvent,
    OldestFirstScheduler,
    RandomScheduler,
    Scheduler,
    SynchronousScheduler,
    TimeoutEvent,
)
from repro.sim.states import Capability, Mode, PState
from repro.sim.tracing import SeriesRecorder, Tracer

__all__ = [
    "ActionContext",
    "AdversarialScheduler",
    "Capability",
    "Channel",
    "ConnectivityMonitor",
    "DeliverEvent",
    "Engine",
    "EngineStats",
    "ExecutedStep",
    "ExitGuardMonitor",
    "KeyProvider",
    "Message",
    "Mode",
    "OldestFirstScheduler",
    "PState",
    "PotentialMonitor",
    "Process",
    "RandomScheduler",
    "RecordedEvent",
    "Ref",
    "RefFactory",
    "RefInfo",
    "ReplayScheduler",
    "ScheduleRecorder",
    "Scheduler",
    "SeriesRecorder",
    "SynchronousScheduler",
    "TimeoutEvent",
    "Tracer",
    "TransitionMonitor",
    "iter_refinfos",
    "iter_refs",
    "pid_of",
    "replay_run",
]
