"""Weakly-fair schedulers: who acts next in an asynchronous computation.

A computation in the paper's model is an infinite fair sequence of states,
each obtained by executing one *enabled* action atomically. Two kinds of
events exist:

* ``TimeoutEvent(pid)`` — the timeout action of an awake process (its guard
  is ``true``, so it is enabled whenever the process is awake);
* ``DeliverEvent(pid, seq)`` — processing message ``seq`` from the channel
  of a non-gone process (delivery to an asleep process wakes it).

The model imposes two fairness conditions:

* **weakly fair action execution** — an action enabled in all but finitely
  many states (while its process is awake infinitely often) executes
  infinitely often;
* **fair message receipt** — every message in the channel of a non-gone
  process is eventually processed.

Beyond fairness the model allows *any* interleaving: no bounds on message
delay or process speed, non-FIFO delivery. Self-stabilization must hold
for every fair schedule, so the suite ships several scheduler
implementations spanning the space:

==========================  ====================================================
:class:`RandomScheduler`     uniform choice among enabled events; fair with
                             probability 1; the default for experiments
:class:`OldestFirstScheduler` deterministic, executes the longest-enabled event
                             first; fairness holds by construction; useful for
                             reproducible regression tests
:class:`AdversarialScheduler` newest-first (LIFO) delivery, which keeps stale
                             (possibly invalid) information undelivered as long
                             as the fairness bound ``patience`` permits — a
                             stress schedule for self-stabilization proofs
:class:`SynchronousScheduler` lock-step rounds (deliver everything pending,
                             then run every timeout); provides the *round*
                             complexity measure used by Theorem 1's O(log n)
                             clique-formation argument
==========================  ====================================================

Schedulers are incrementally maintained via engine notifications rather
than rescanning all channels each step — selection is O(1)/O(log m) per
event, which keeps large convergence runs (the E6 sweeps) fast.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from random import Random
from collections.abc import Iterable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = [
    "TimeoutEvent",
    "DeliverEvent",
    "Scheduler",
    "RandomScheduler",
    "OldestFirstScheduler",
    "AdversarialScheduler",
    "SynchronousScheduler",
]


@dataclass(frozen=True, slots=True)
class TimeoutEvent:
    """Execute the timeout action of process *pid*."""

    pid: int


@dataclass(frozen=True, slots=True)
class DeliverEvent:
    """Process message *seq* pending in the channel of process *pid*."""

    pid: int
    seq: int


Event = TimeoutEvent | DeliverEvent


class Scheduler:
    """Base class: event bookkeeping hooks called by the engine.

    Subclasses implement :meth:`select`. The notification methods keep the
    scheduler's view of enabled events current; the engine guarantees it
    calls them for every relevant state change (message posted, process
    woken/slept/gone, timeout executed).
    """

    #: True for schedulers whose :meth:`select` is a pure function of the
    #: notification stream (plus internal RNG) — i.e. it never reads
    #: engine state. The struct-of-arrays core (``engine_mode="soa"``)
    #: can drive such schedulers directly from its int-domain step loop;
    #: schedulers that inspect ``engine.processes``/``engine.channels``
    #: in ``select`` (synchronous rounds, replay validation) force the
    #: engine back onto the object path.
    core_drivable: bool = False

    def attach(self, engine: Engine) -> None:
        """Register the initial state: awake processes and pending messages."""
        for pid, proc in engine.processes.items():
            if proc.state.value == "awake":
                self.notify_wake(pid, engine.next_stamp())
        for pid, channel in engine.channels.items():
            if engine.processes[pid].state.value != "gone":
                for seq in channel.seqs():
                    self.notify_send(pid, seq)

    # -- hooks ------------------------------------------------------------------

    def notify_send(self, pid: int, seq: int) -> None:
        """A message with sequence *seq* entered the channel of *pid*."""
        raise NotImplementedError

    def notify_wake(self, pid: int, stamp: int) -> None:
        """Process *pid* became awake (its timeout action is now enabled)."""
        raise NotImplementedError

    def notify_sleep(self, pid: int) -> None:
        """Process *pid* went to sleep (timeout disabled; deliveries remain)."""
        raise NotImplementedError

    def notify_gone(self, pid: int, pending_seqs: Iterable[int]) -> None:
        """Process *pid* executed exit; its pending messages are dead."""
        raise NotImplementedError

    def notify_timeout_executed(self, pid: int, new_stamp: int) -> None:
        """The timeout of *pid* ran; it re-enables with freshness *new_stamp*."""
        raise NotImplementedError

    def select(self, engine: Engine) -> Event | None:
        """Pick the next enabled event, or ``None`` if nothing is enabled."""
        raise NotImplementedError


class _PoolScheduler(Scheduler):
    """Shared machinery: a flat pool of enabled events with O(1) removal.

    The pool is a list with a position index, giving O(1) insert, O(1)
    swap-remove and O(1) uniform sampling — the data structure the
    randomized and adversarial schedulers build on.
    """

    def __init__(self) -> None:
        self._pool: list[tuple] = []  # entries: ("t", pid) | ("d", pid, seq)
        self._pos: dict[tuple, int] = {}
        self._stamp: dict[tuple, int] = {}
        # Scheduler-local arrival clock. Ordering-sensitive schedulers must
        # NOT mix engine message seqs with engine scheduler stamps: the two
        # counters advance at different rates (one per post vs one per
        # executed event), which skews newest/oldest comparisons — measured
        # as an unbounded channel backlog under oldest-first scheduling.
        # A plain int (not itertools.count) so its position can be read
        # and restored — the struct-of-arrays core mirrors and splices
        # this state when it drives the run.
        self._arrival = 0

    def _next_arrival(self) -> int:
        value = self._arrival
        self._arrival = value + 1
        return value

    # -- pool primitives -----------------------------------------------------------

    def _add(self, entry: tuple, stamp: int) -> None:
        if entry in self._pos:
            return
        self._pos[entry] = len(self._pool)
        self._pool.append(entry)
        self._stamp[entry] = stamp

    def _remove(self, entry: tuple) -> None:
        idx = self._pos.pop(entry, None)
        if idx is None:
            return
        last = self._pool.pop()
        if last != entry:
            self._pool[idx] = last
            self._pos[last] = idx
        self._stamp.pop(entry, None)

    def __len__(self) -> int:
        return len(self._pool)

    # -- hooks -----------------------------------------------------------------

    def notify_send(self, pid: int, seq: int) -> None:
        self._add(("d", pid, seq), self._next_arrival())

    def notify_wake(self, pid: int, stamp: int) -> None:
        self._add(("t", pid), self._next_arrival())

    def notify_sleep(self, pid: int) -> None:
        self._remove(("t", pid))

    def notify_gone(self, pid: int, pending_seqs: Iterable[int]) -> None:
        self._remove(("t", pid))
        for seq in pending_seqs:
            self._remove(("d", pid, seq))

    def notify_timeout_executed(self, pid: int, new_stamp: int) -> None:
        entry = ("t", pid)
        if entry in self._pos:
            self._stamp[entry] = self._next_arrival()

    @staticmethod
    def _to_event(entry: tuple) -> Event:
        if entry[0] == "t":
            return TimeoutEvent(entry[1])
        return DeliverEvent(entry[1], entry[2])

    def _consume(self, entry: tuple) -> Event:
        if entry[0] == "d":
            self._remove(entry)
        return self._to_event(entry)


class RandomScheduler(_PoolScheduler):
    """Uniformly random choice among all enabled events.

    Fair with probability 1 (every enabled event is selected with
    probability ≥ 1/|pool| each step and the pool size is bounded in
    expectation). Seeded, hence reproducible.
    """

    core_drivable = True

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = Random(seed)

    def select(self, engine: Engine) -> Event | None:
        if not self._pool:
            return None
        entry = self._pool[self._rng.randrange(len(self._pool))]
        return self._consume(entry)


class OldestFirstScheduler(Scheduler):
    """Deterministic: always execute the event that has waited longest.

    Every event carries a *stamp* drawn from the engine's global counter
    (messages use their sequence number; a timeout is re-stamped each time
    it executes). Selecting the minimum stamp yields a deterministic,
    provably fair schedule: an event enabled at stamp ``s`` executes after
    at most as many steps as there are smaller stamps.
    """

    core_drivable = True

    def __init__(self) -> None:
        self._heap: list[tuple[int, tuple]] = []
        self._live: set[tuple] = set()
        self._timeout_stamp: dict[int, int] = {}
        # One scheduler-local clock for BOTH event kinds: a re-armed
        # timeout is stamped after every message already pending, so the
        # backlog drains before the timeout re-fires (mixing engine
        # message seqs with engine stamps skews this and lets channels
        # grow without bound). A plain int for the same splice-ability
        # reason as _PoolScheduler's.
        self._arrival = 0

    def _next_arrival(self) -> int:
        value = self._arrival
        self._arrival = value + 1
        return value

    def notify_send(self, pid: int, seq: int) -> None:
        entry = ("d", pid, seq)
        self._live.add(entry)
        heapq.heappush(self._heap, (self._next_arrival(), entry))

    def notify_wake(self, pid: int, stamp: int) -> None:
        entry = ("t", pid)
        if entry in self._live:
            return
        self._live.add(entry)
        stamp = self._next_arrival()
        self._timeout_stamp[pid] = stamp
        heapq.heappush(self._heap, (stamp, entry))

    def notify_sleep(self, pid: int) -> None:
        self._live.discard(("t", pid))

    def notify_gone(self, pid: int, pending_seqs: Iterable[int]) -> None:
        self._live.discard(("t", pid))
        for seq in pending_seqs:
            self._live.discard(("d", pid, seq))

    def notify_timeout_executed(self, pid: int, new_stamp: int) -> None:
        entry = ("t", pid)
        if entry in self._live:
            stamp = self._next_arrival()
            self._timeout_stamp[pid] = stamp
            heapq.heappush(self._heap, (stamp, entry))

    def select(self, engine: Engine) -> Event | None:
        while self._heap:
            stamp, entry = heapq.heappop(self._heap)
            if entry not in self._live:
                continue
            if entry[0] == "t":
                # Stale heap copies of a re-stamped timeout are skipped.
                if self._timeout_stamp.get(entry[1]) != stamp:
                    continue
                return TimeoutEvent(entry[1])
            self._live.discard(entry)
            return DeliverEvent(entry[1], entry[2])
        return None


class AdversarialScheduler(_PoolScheduler):
    """Newest-first schedule bounded by a fairness *patience*.

    Prefers the most recently enabled event (LIFO), which maximizes the
    time stale information — in particular invalid mode beliefs planted by
    the fault injector — lingers undelivered. To remain a fair schedule,
    any event older than ``patience`` executed steps is forced next. With
    probability ``jitter`` a uniformly random event is chosen instead,
    which prevents pathological livelocks while keeping the schedule
    hostile.
    """

    core_drivable = True

    def __init__(self, patience: int = 64, seed: int = 0, jitter: float = 0.1) -> None:
        super().__init__()
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self._patience = patience
        self._rng = Random(seed)
        self._jitter = jitter
        self._age_heap: list[tuple[int, tuple]] = []
        self._steps = 0

    def _add(self, entry: tuple, stamp: int) -> None:
        fresh = entry not in self._pos
        super()._add(entry, stamp)
        if fresh:
            heapq.heappush(self._age_heap, (self._steps, entry))

    def select(self, engine: Engine) -> Event | None:
        if not self._pool:
            return None
        self._steps += 1
        # Fairness bound: force the oldest event if it exceeded patience.
        while self._age_heap:
            born, entry = self._age_heap[0]
            if entry not in self._pos:
                heapq.heappop(self._age_heap)
                continue
            if self._steps - born >= self._patience:
                heapq.heappop(self._age_heap)
                if entry[0] == "t":
                    # Timeouts stay enabled: re-enter the age heap as fresh.
                    heapq.heappush(self._age_heap, (self._steps, entry))
                return self._consume(entry)
            break
        if self._rng.random() < self._jitter:
            entry = self._pool[self._rng.randrange(len(self._pool))]
        else:
            # Newest enabled event = maximum stamp.
            entry = max(self._pool, key=self._stamp.__getitem__)
        return self._consume(entry)


class SynchronousScheduler(Scheduler):
    """Lock-step rounds: deliver everything pending, then run every timeout.

    In round ``r`` the scheduler first delivers (in a seeded random order)
    every message that was pending at the start of the round, then executes
    the timeout action of every process that is awake when its turn comes.
    Messages sent during round ``r`` are delivered in round ``r+1``. The
    :attr:`round_count` is the time measure for round-complexity
    experiments (Theorem 1's O(log n) clique formation, E3).
    """

    def __init__(self, seed: int = 0, timeouts_first: bool = False) -> None:
        self._rng = Random(seed)
        self._queue: list[tuple] = []
        self._round = 0
        self._timeouts_first = timeouts_first

    @property
    def round_count(self) -> int:
        """Number of completed rounds."""
        return self._round

    # Round rebuilding makes incremental notifications unnecessary.
    def attach(self, engine: Engine) -> None:  # noqa: D102
        return

    def notify_send(self, pid: int, seq: int) -> None:  # noqa: D102
        return

    def notify_wake(self, pid: int, stamp: int) -> None:  # noqa: D102
        return

    def notify_sleep(self, pid: int) -> None:  # noqa: D102
        return

    def notify_gone(self, pid: int, pending_seqs: Iterable[int]) -> None:  # noqa: D102
        return

    def notify_timeout_executed(self, pid: int, new_stamp: int) -> None:  # noqa: D102
        return

    def _build_round(self, engine: Engine) -> None:
        deliveries: list[tuple] = []
        timeouts: list[tuple] = []
        for pid, proc in engine.processes.items():
            state = proc.state.value
            if state == "gone":
                continue
            deliveries.extend(("d", pid, seq) for seq in engine.channels[pid].seqs())
            if state == "awake":
                timeouts.append(("t", pid))
        self._rng.shuffle(deliveries)
        self._rng.shuffle(timeouts)
        phases = (timeouts, deliveries) if self._timeouts_first else (deliveries, timeouts)
        # The queue is consumed from the back; reverse so phase order holds.
        self._queue = [*phases[1], *phases[0]][::-1]
        self._round += 1

    def select(self, engine: Engine) -> Event | None:
        for _ in range(2):  # at most one rebuild per call
            while self._queue:
                entry = self._queue.pop()
                # A pid scheduled this round may have been reaped since the
                # round was built (open-system churn between computations):
                # a missing process is treated like a gone one.
                if entry[0] == "t":
                    proc = engine.processes.get(entry[1])
                    if proc is not None and proc.state.value == "awake":
                        return TimeoutEvent(entry[1])
                else:
                    _, pid, seq = entry
                    proc = engine.processes.get(pid)
                    if proc is None or proc.state.value == "gone":
                        continue
                    if seq in engine.channels[pid]:
                        return DeliverEvent(pid, seq)
            self._build_round(engine)
            if not self._queue:
                return None
        return None
