"""Generic transient-fault injection: arbitrary-but-admissible initial states.

Self-stabilization quantifies over *all* initial states satisfying the
admissibility constraints of Section 1.2:

1. all processes are relevant (none gone, none hibernating),
2. only finitely many action-triggering messages exist,
3. every reference present in the system belongs to an existing process,
4. (for the Section 3/4 solutions) each weakly connected component
   contains at least one staying process.

The helpers here sample that space *generically* — planting stale/garbage
messages, claiming wrong modes, adding spurious edges — while provably
respecting (2) and (3) by construction ((1) and (4) are validated by the
engine at attach time). Protocol-specific corruption (e.g. scrambling an
FDP process's neighbourhood beliefs and anchor) lives with the protocol,
in :mod:`repro.core.scenarios`.
"""

from __future__ import annotations

from random import Random
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.sim.messages import RefInfo
from repro.sim.states import Mode, PState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = [
    "random_mode_claim",
    "plant_ref_message",
    "scatter_garbage_messages",
    "plant_unknown_label_messages",
]


def random_mode_claim(rng: Random, actual: Mode, lie_prob: float) -> Mode:
    """Return *actual*, or its opposite with probability *lie_prob*.

    The workhorse for creating invalid information (Φ > 0 initial states).
    """

    if not 0.0 <= lie_prob <= 1.0:
        raise ValueError("lie_prob must lie in [0, 1]")
    return actual.opposite if rng.random() < lie_prob else actual


def plant_ref_message(
    engine: Engine,
    target_pid: int,
    label: str,
    ref_pid: int,
    claimed_mode: Mode | None,
) -> None:
    """Deposit ``⟨label⟩(RefInfo(ref, claimed_mode))`` into *target_pid*'s channel.

    Models a stale in-flight message from before the fault: the claimed
    mode may be arbitrary (including invalid — this is precisely how an
    adversary raises Φ in the initial state). The engine validates both
    pids exist, so constraint (3) cannot be violated.
    """

    engine.post(
        None,
        engine.ref(target_pid),
        label,
        (RefInfo(engine.ref(ref_pid), claimed_mode),),
    )


def _same_component(engine: Engine, a: int, b: int) -> bool:
    """Whether *a* and *b* (non-gone) share a weak component right now.

    The full-graph component query (paths through asleep processes
    count — raw connectivity is what leak detection is about, not
    Lemma 2's relevance-restricted invariant): the live union-find in
    incremental mode, a snapshot walk in rebuild mode.
    """
    if a == b:
        return True
    if engine.graph_mode == "incremental":
        return engine.live_graph.same_component((a, b))
    snap = engine.snapshot()
    return snap.is_weakly_connected_within(frozenset((a, b)), snap.pids)


def scatter_garbage_messages(
    engine: Engine,
    rng: Random,
    count: int,
    *,
    labels: Sequence[str] = ("present", "forward"),
    lie_prob: float = 0.5,
    targets: Iterable[int] | None = None,
    subjects: Iterable[int] | None = None,
    confine_component: bool = False,
) -> int:
    """Plant *count* random stale messages; returns how many were planted.

    Each message goes to a random target, carries a random subject
    reference, and claims the subject's mode truthfully or falsely per
    *lie_prob*. Restricting *targets*/*subjects* lets scenario builders
    keep corruption within one component (constraint: references must not
    leak across components, otherwise the injector would be *creating*
    connectivity the adversary could not have).

    ``confine_component=True`` enforces that constraint instead of
    trusting the pools: before each plant, the target and subject are
    checked to be non-gone and weakly connected in the *current* process
    graph, and a cross-component (or dead-process) pair raises
    :class:`~repro.errors.ConfigurationError` before anything is posted.
    Chaos campaigns and the scenario builders run with the check on; it
    defaults to off so callers deliberately sampling the whole population
    (single-component topologies) pay nothing.
    """

    target_pool = list(targets) if targets is not None else list(engine.processes)
    subject_pool = list(subjects) if subjects is not None else list(engine.processes)
    if not target_pool or not subject_pool:
        return 0
    planted = 0
    for _ in range(count):
        tpid = target_pool[rng.randrange(len(target_pool))]
        spid = subject_pool[rng.randrange(len(subject_pool))]
        label = labels[rng.randrange(len(labels))]
        if confine_component:
            for pid in (tpid, spid):
                if engine.processes[pid].state is PState.GONE:
                    raise ConfigurationError(
                        f"garbage injection references gone process {pid}; "
                        "an admissible adversary cannot revive departed refs"
                    )
            if not _same_component(engine, tpid, spid):
                raise ConfigurationError(
                    f"garbage message would leak a reference across weak "
                    f"components: target {tpid} and subject {spid} are not "
                    "connected, so the injection would fabricate connectivity"
                )
        claim = random_mode_claim(rng, engine.actual_mode(spid), lie_prob)
        plant_ref_message(engine, tpid, label, spid, claim)
        planted += 1
    return planted


def plant_unknown_label_messages(
    engine: Engine, rng: Random, count: int, label: str = "bogus_action"
) -> int:
    """Plant messages whose label no process implements.

    The model says such messages are ignored; planting them verifies the
    drop path (run with ``strict=False``). No references are attached so
    they add no edges. Returns the number actually planted (0 for an
    engine with no processes, mirroring :func:`scatter_garbage_messages`).
    """

    pids = list(engine.processes)
    if not pids:
        return 0
    planted = 0
    for _ in range(count):
        tpid = pids[rng.randrange(len(pids))]
        engine.post(None, engine.ref(tpid), label, ())
        planted += 1
    return planted
