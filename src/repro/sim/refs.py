"""Opaque process references enforcing the copy-store-send discipline.

The paper's model (Section 1.1) gives every process a unique reference
"like its IP address" and restricts protocols to *copy-store-send* usage:
references may be copied, stored and sent, and two references may be
compared for equality (``v = w``) — nothing else. In particular there is
no order on references, no hashing to integers, and no arithmetic.

:class:`Ref` implements exactly that contract:

* ``__eq__`` / ``__ne__`` — the ``v = w`` check the paper's protocol needs;
* ``__hash__`` — required so references can be stored in Python sets and
  dicts (this models *storing* a reference, not inspecting it: the hash is
  salted per interpreter run via Python's object hashing of the wrapper,
  so protocol code cannot recover a total order from it);
* every ordering operator raises :class:`~repro.errors.CopyStoreSendViolation`.

Engine and measurement code occasionally needs the underlying process
identifier (for building graph snapshots, tracing, oracles). That access
goes through :func:`pid_of`, which lives here so that the *single* escape
hatch is easy to audit: protocol modules must never import it. The test
suite greps protocol sources to enforce this.

Protocols that legitimately need a total order on processes (e.g. the
linearization overlay, mirroring Foreback et al.'s requirement) declare
``requires_order`` and receive keys through :class:`KeyProvider` rather
than by peeking into references.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CopyStoreSendViolation

__all__ = ["Ref", "pid_of", "KeyProvider", "RefFactory"]


class Ref:
    """An opaque, equality-comparable reference to a process.

    Instances are immutable and interned per factory, so identity checks
    coincide with equality for references produced by the same simulator.
    """

    __slots__ = ("_pid",)

    def __init__(self, pid: int) -> None:
        object.__setattr__(self, "_pid", int(pid))

    # -- the permitted operations -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ref):
            return self._pid == other._pid
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, Ref):
            return self._pid != other._pid
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("repro.Ref", self._pid))

    # -- everything else is forbidden ---------------------------------------------

    def _forbidden(self, op: str):
        raise CopyStoreSendViolation(
            f"references cannot be {op}: copy-store-send protocols may only "
            "copy, store, send and equality-compare references"
        )

    def __lt__(self, other: object):  # pragma: no cover - exercised via tests
        self._forbidden("ordered")

    def __le__(self, other: object):
        self._forbidden("ordered")

    def __gt__(self, other: object):
        self._forbidden("ordered")

    def __ge__(self, other: object):
        self._forbidden("ordered")

    def __int__(self):
        self._forbidden("converted to integers")

    def __index__(self):
        self._forbidden("used as integers")

    def __add__(self, other: object):
        self._forbidden("used in arithmetic")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Ref is immutable")

    def __repr__(self) -> str:  # debugging / trace output only
        return f"Ref<{self._pid}>"


def pid_of(ref: Ref) -> int:
    """Return the process identifier behind *ref*.

    Engine/measurement escape hatch — **never call from protocol code**.
    """

    return ref._pid  # noqa: SLF001 - this module owns Ref


class RefFactory:
    """Creates and interns :class:`Ref` objects for one simulated system.

    Interning keeps memory use flat when protocols copy references heavily
    (each process graph edge would otherwise allocate a fresh wrapper) —
    a deliberate nod to the HPC guidance of avoiding needless copies.
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: dict[int, Ref] = {}

    def ref(self, pid: int) -> Ref:
        """Return the canonical :class:`Ref` for process *pid*."""
        try:
            return self._cache[pid]
        except KeyError:
            r = self._cache[pid] = Ref(pid)
            return r

    def known_pids(self) -> Iterator[int]:
        """Iterate over the pids a reference has been created for."""
        return iter(self._cache)

    def __len__(self) -> int:
        return len(self._cache)


class KeyProvider:
    """Grants ordered keys for protocols that declare ``requires_order``.

    The paper notes that the departure protocol of [15] requires "a fixed
    total order on the nodes (e.g., their names or IP addresses do not
    change)" while the paper's own protocol only needs equality checks.
    Overlay protocols that need the order (linearization, rings, the
    Foreback-style baseline) obtain it here; the engine only hands a
    ``KeyProvider`` to protocols that declare the requirement, keeping the
    distinction between the two protocol classes machine-checked.
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: dict[int, float] | None = None) -> None:
        # Default key is the pid itself: "names do not change".
        self._keys = dict(keys) if keys is not None else None

    def key(self, ref: Ref) -> float:
        """Return the immutable, totally-ordered key of *ref*'s process."""
        pid = pid_of(ref)
        if self._keys is None:
            return float(pid)
        return self._keys[pid]

    def min(self, refs) -> Ref:
        """Return the reference with the smallest key among *refs*."""
        return min(refs, key=self.key)

    def max(self, refs) -> Ref:
        """Return the reference with the largest key among *refs*."""
        return max(refs, key=self.key)

    def sorted(self, refs) -> list[Ref]:
        """Return *refs* sorted by key, ascending."""
        return sorted(refs, key=self.key)
