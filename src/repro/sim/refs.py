"""Opaque process references enforcing the copy-store-send discipline.

The paper's model (Section 1.1) gives every process a unique reference
"like its IP address" and restricts protocols to *copy-store-send* usage:
references may be copied, stored and sent, and two references may be
compared for equality (``v = w``) — nothing else. In particular there is
no order on references, no hashing to integers, and no arithmetic.

:class:`Ref` implements exactly that contract:

* ``__eq__`` / ``__ne__`` — the ``v = w`` check the paper's protocol needs;
* ``__hash__`` — required so references can be stored in Python sets and
  dicts (this models *storing* a reference, not inspecting it: the hash is
  salted per interpreter run via Python's object hashing of the wrapper,
  so protocol code cannot recover a total order from it);
* every ordering operator raises :class:`~repro.errors.CopyStoreSendViolation`.

Engine and measurement code occasionally needs the underlying process
identifier (for building graph snapshots, tracing, oracles). That access
goes through :func:`pid_of`, which lives here so that the *single* escape
hatch is easy to audit: protocol modules must never import it. The test
suite greps protocol sources to enforce this.

Protocols that legitimately need a total order on processes (e.g. the
linearization overlay, mirroring Foreback et al.'s requirement) declare
``requires_order`` and receive keys through :class:`KeyProvider` rather
than by peeking into references.
"""

from __future__ import annotations

from collections.abc import (
    Hashable,
    Iterable,
    ItemsView,
    Iterator,
    KeysView,
    Mapping,
    ValuesView,
)
from typing import NoReturn

from repro.errors import CopyStoreSendViolation

#: What protocols may store alongside a reference: an arbitrary but
#: hashable tag (it keys the delta log's ``(dst_pid, belief)`` entries).
Belief = Hashable

__all__ = [
    "Ref",
    "pid_of",
    "KeyProvider",
    "RefFactory",
    "RefDeltaLog",
    "RefMap",
    "RefCell",
    "REF_SLOT_BITS",
    "REF_GEN_BITS",
    "tag_ref",
    "tag_slot",
    "tag_gen",
]

#: Bit width of the slot field in a tagged-int reference. 2^21 slots is
#: an order of magnitude above the ROADMAP's n=10^6 target; generations
#: live in the (unbounded) high bits.
REF_SLOT_BITS = 21
_SLOT_MASK = (1 << REF_SLOT_BITS) - 1

#: Maximum generation-counter width honoured by slot recycling. Python
#: ints are unbounded, so ``tag_ref`` itself never wraps — but a packed
#: tag must stay exact through every numeric container the core routes
#: it through (float-valued telemetry, ``array`` columns). 21 + 31 = 52
#: bits keeps every tag below 2^53, the IEEE-754 exact-integer ceiling.
#: :meth:`repro.sim.soa.EngineCore.admit` refuses to recycle a slot whose
#: bumped generation would exceed this, raising
#: :class:`repro.errors.SlotRecycleOverflow` instead of silently aliasing.
REF_GEN_BITS = 31


def tag_ref(slot: int, gen: int = 0) -> int:
    """Pack (slot, generation) into one tagged-int reference.

    The struct-of-arrays core (:mod:`repro.sim.soa`) represents process
    references as plain ints: the low :data:`REF_SLOT_BITS` bits index
    the process slot, the high bits carry a generation tag bumped when
    the slot's process exits — a dead reference therefore never compares
    equal to a live one, which is the int-domain analogue of this
    module's no-dead-refs rule. Like :func:`pid_of`, these helpers are
    an engine/measurement escape hatch, never for protocol code; the
    hash of a tagged int is the int itself, so (as with :class:`Ref`'s
    salted-int hash) iteration orders built on it are PYTHONHASHSEED-free.
    """

    return slot | (gen << REF_SLOT_BITS)


def tag_slot(tag: int) -> int:
    """Slot index of a tagged-int reference."""
    return tag & _SLOT_MASK


def tag_gen(tag: int) -> int:
    """Generation counter of a tagged-int reference."""
    return tag >> REF_SLOT_BITS


class Ref:
    """An opaque, equality-comparable reference to a process.

    Instances are immutable and interned per factory, so identity checks
    coincide with equality for references produced by the same simulator.
    """

    __slots__ = ("_pid",)

    _pid: int

    def __init__(self, pid: int) -> None:
        object.__setattr__(self, "_pid", int(pid))

    # -- the permitted operations -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ref):
            return self._pid == other._pid
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, Ref):
            return self._pid != other._pid
        return NotImplemented

    def __hash__(self) -> int:
        # Must be stable ACROSS processes: a string in the hash input
        # would pick up per-process PYTHONHASHSEED randomization, making
        # every set-of-Refs iterate in a different order per interpreter
        # — which breaks the trial fabric's serial ≡ parallel guarantee
        # for any protocol that walks such a set (the Section 4
        # framework does). Int hashing is randomization-free.
        return hash((0x5EED, self._pid))

    # -- everything else is forbidden ---------------------------------------------

    def _forbidden(self, op: str) -> NoReturn:
        raise CopyStoreSendViolation(
            f"references cannot be {op}: copy-store-send protocols may only "
            "copy, store, send and equality-compare references"
        )

    def __lt__(self, other: object) -> NoReturn:  # pragma: no cover - exercised via tests
        self._forbidden("ordered")

    def __le__(self, other: object) -> NoReturn:
        self._forbidden("ordered")

    def __gt__(self, other: object) -> NoReturn:
        self._forbidden("ordered")

    def __ge__(self, other: object) -> NoReturn:
        self._forbidden("ordered")

    def __int__(self) -> NoReturn:
        self._forbidden("converted to integers")

    def __index__(self) -> NoReturn:
        self._forbidden("used as integers")

    def __add__(self, other: object) -> NoReturn:
        self._forbidden("used in arithmetic")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Ref is immutable")

    def __repr__(self) -> str:  # debugging / trace output only
        return f"Ref<{self._pid}>"


def pid_of(ref: Ref) -> int:
    """Return the process identifier behind *ref*.

    Engine/measurement escape hatch — **never call from protocol code**.
    """

    return ref._pid  # noqa: SLF001 - this module owns Ref


class RefFactory:
    """Creates and interns :class:`Ref` objects for one simulated system.

    Interning keeps memory use flat when protocols copy references heavily
    (each process graph edge would otherwise allocate a fresh wrapper) —
    a deliberate nod to the HPC guidance of avoiding needless copies.
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: dict[int, Ref] = {}

    def ref(self, pid: int) -> Ref:
        """Return the canonical :class:`Ref` for process *pid*."""
        try:
            return self._cache[pid]
        except KeyError:
            r = self._cache[pid] = Ref(pid)
            return r

    def known_pids(self) -> Iterator[int]:
        """Iterate over the pids a reference has been created for."""
        return iter(self._cache)

    def __len__(self) -> int:
        return len(self._cache)


class RefDeltaLog:
    """Per-process accumulator of net explicit-edge deltas.

    Tracked ref containers (:class:`RefMap`, :class:`RefCell`) record
    every store/drop as ``(dst_pid, belief) → ±count`` into ``pending``
    at mutation time; the engine drains the log at atomic-action
    boundaries into the live graph. Accumulating the *net* count makes
    the intermediate mutation order irrelevant — a drop-then-restore of
    the same (dst, belief) leaves no entry at all, so unchanged-ref
    actions drain in O(1) instead of paying an O(refs) fingerprint diff.

    ``enabled`` is flipped off by the engine when no consumer exists
    (rebuild graph mode, fingerprint ref mode) so mutations cost one
    extra branch and nothing accumulates.
    """

    __slots__ = ("enabled", "pending")

    def __init__(self) -> None:
        self.enabled: bool = True
        #: (dst_pid, stored belief) → net count since the last drain.
        self.pending: dict[tuple[int, Belief], int] = {}

    def record(self, dst_pid: int, belief: Belief, count: int) -> None:
        """Accumulate ``count`` copies of the edge ``(dst_pid, belief)``."""
        key = (dst_pid, belief)
        pending = self.pending
        net = pending.get(key, 0) + count
        if net:
            pending[key] = net
        else:
            del pending[key]


_MISSING = object()


class RefMap:
    """Dict-like ``Ref → belief`` store that write-through-logs deltas.

    Drop-in for the plain dicts protocol processes keep their
    neighbourhoods in (``u.N``, ``parked``): supports the mapping surface
    the protocols and tests use, and mirrors every mutation into the
    owning process's :class:`RefDeltaLog` so the engine never has to
    fingerprint the store to learn what changed.
    """

    __slots__ = ("_log", "_d")

    def __init__(
        self,
        log: RefDeltaLog,
        items: Mapping[Ref, Belief] | Iterable[tuple[Ref, Belief]] | None = None,
    ) -> None:
        self._log = log
        self._d: dict[Ref, Belief] = {}
        if items is not None:
            self.update(items)

    # -- mutations (logged) ---------------------------------------------------

    def __setitem__(self, ref: Ref, belief: Belief) -> None:
        d = self._d
        old = d.get(ref, _MISSING)
        if old is belief:
            return
        d[ref] = belief
        log = self._log
        if log.enabled:
            pid = ref._pid  # noqa: SLF001 - this module owns Ref
            if old is not _MISSING:
                log.record(pid, old, -1)
            log.record(pid, belief, 1)

    def __delitem__(self, ref: Ref) -> None:
        old = self._d.pop(ref)  # raises KeyError like a dict
        log = self._log
        if log.enabled:
            log.record(ref._pid, old, -1)  # noqa: SLF001

    def pop(self, ref: Ref, *default: Belief) -> Belief:
        old = self._d.pop(ref, _MISSING)
        if old is _MISSING:
            if default:
                return default[0]
            raise KeyError(ref)
        log = self._log
        if log.enabled:
            log.record(ref._pid, old, -1)  # noqa: SLF001
        return old

    def clear(self) -> None:
        d = self._d
        if not d:
            return
        log = self._log
        if log.enabled:
            record = log.record
            for ref, belief in d.items():
                record(ref._pid, belief, -1)  # noqa: SLF001
        d.clear()

    def update(
        self, items: Mapping[Ref, Belief] | Iterable[tuple[Ref, Belief]]
    ) -> None:
        pairs = items.items() if isinstance(items, Mapping) else items
        for ref, belief in pairs:
            self[ref] = belief

    # -- reads (plain dict semantics) ----------------------------------------

    def __getitem__(self, ref: Ref) -> Belief:
        return self._d[ref]

    def get(self, ref: Ref, default: Belief = None) -> Belief:
        return self._d.get(ref, default)

    def __contains__(self, ref: object) -> bool:
        return ref in self._d

    def __iter__(self) -> Iterator[Ref]:
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __bool__(self) -> bool:
        return bool(self._d)

    def items(self) -> ItemsView[Ref, Belief]:
        return self._d.items()

    def keys(self) -> KeysView[Ref]:
        return self._d.keys()

    def values(self) -> ValuesView[Belief]:
        return self._d.values()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RefMap):
            return self._d == other._d
        if isinstance(other, dict):
            return self._d == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return eq
        return not eq

    def __repr__(self) -> str:
        return f"RefMap({self._d!r})"


class RefCell:
    """A single ``(ref, belief)`` slot — e.g. the FDP anchor — with
    write-through delta logging.

    Reads go through the ``ref``/``belief`` properties; writes through
    :meth:`set_ref`/:meth:`set_belief` (protocol classes expose them as
    property setters), which log the net edge transition.
    """

    __slots__ = ("_log", "_ref", "_belief")

    def __init__(
        self, log: RefDeltaLog, ref: Ref | None = None, belief: Belief = None
    ) -> None:
        self._log = log
        self._ref: Ref | None = None
        self._belief: Belief = None
        if belief is not None:
            self.set_belief(belief)
        if ref is not None:
            self.set_ref(ref)

    @property
    def ref(self) -> Ref | None:
        return self._ref

    @property
    def belief(self) -> Belief:
        return self._belief

    def set_ref(self, ref: Ref | None) -> None:
        old = self._ref
        if old is ref:
            return
        log = self._log
        if log.enabled:
            belief = self._belief
            if old is not None:
                log.record(old._pid, belief, -1)  # noqa: SLF001
            if ref is not None:
                log.record(ref._pid, belief, 1)  # noqa: SLF001
        self._ref = ref

    def set_belief(self, belief: Belief) -> None:
        old = self._belief
        if old is belief:
            return
        ref = self._ref
        log = self._log
        if ref is not None and log.enabled:
            pid = ref._pid  # noqa: SLF001
            log.record(pid, old, -1)
            log.record(pid, belief, 1)
        self._belief = belief

    def __repr__(self) -> str:
        return f"RefCell({self._ref!r}, {self._belief!r})"


class KeyProvider:
    """Grants ordered keys for protocols that declare ``requires_order``.

    The paper notes that the departure protocol of [15] requires "a fixed
    total order on the nodes (e.g., their names or IP addresses do not
    change)" while the paper's own protocol only needs equality checks.
    Overlay protocols that need the order (linearization, rings, the
    Foreback-style baseline) obtain it here; the engine only hands a
    ``KeyProvider`` to protocols that declare the requirement, keeping the
    distinction between the two protocol classes machine-checked.
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: Mapping[int, float] | None = None) -> None:
        # Default key is the pid itself: "names do not change".
        self._keys: dict[int, float] | None = (
            dict(keys) if keys is not None else None
        )

    def key(self, ref: Ref) -> float:
        """Return the immutable, totally-ordered key of *ref*'s process."""
        pid = pid_of(ref)
        if self._keys is None:
            return float(pid)
        return self._keys[pid]

    def min(self, refs: Iterable[Ref]) -> Ref:
        """Return the reference with the smallest key among *refs*."""
        return min(refs, key=self.key)

    def max(self, refs: Iterable[Ref]) -> Ref:
        """Return the reference with the largest key among *refs*."""
        return max(refs, key=self.key)

    def sorted(self, refs: Iterable[Ref]) -> list[Ref]:
        """Return *refs* sorted by key, ascending."""
        return sorted(refs, key=self.key)
