"""Execution tracing and time-series sampling.

Two instruments, both optional and cheap when unused:

* :class:`Tracer` — append-only log of executed steps (bounded ring
  buffer), used by tests to assert on event sequences and by examples to
  narrate runs;
* :class:`SeriesRecorder` — samples engine-level metrics (potential Φ,
  number of gone processes, pending messages, …) every *k* steps, feeding
  the convergence plots/series of experiments E5–E9.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, ExecutedStep

__all__ = ["Tracer", "SeriesRecorder", "STANDARD_PROBES"]


class Tracer:
    """Bounded log of executed steps."""

    def __init__(self, capacity: int | None = None) -> None:
        self.events: deque = deque(maxlen=capacity)

    def record(self, engine: Engine, executed: ExecutedStep) -> None:
        """Engine hook: store the executed step."""
        self.events.append(executed)

    def labels(self) -> list[str | None]:
        """Sequence of message labels delivered (None for timeouts)."""
        return [e.label for e in self.events]

    def by_pid(self, pid: int) -> list["ExecutedStep"]:
        """All recorded steps executed by process *pid*."""
        return [e for e in self.events if e.pid == pid]

    def __len__(self) -> int:
        return len(self.events)


#: Named metric probes a :class:`SeriesRecorder` can sample. Each maps an
#: engine to a number; recorders may mix standard and custom probes.
STANDARD_PROBES: dict[str, Callable[["Engine"], float]] = {
    "potential": lambda e: float(e.potential()),
    "gone": lambda e: float(
        sum(1 for p in e.processes.values() if p.state.value == "gone")
    ),
    "asleep": lambda e: float(
        sum(1 for p in e.processes.values() if p.state.value == "asleep")
    ),
    "pending_messages": lambda e: float(sum(len(c) for c in e.channels.values())),
    "messages_posted": lambda e: float(e.stats.messages_posted),
    "edges": lambda e: float(len(e.snapshot().edges)),
}


class SeriesRecorder:
    """Samples metric probes every ``every`` executed steps.

    Used as an engine monitor: ``Engine(..., monitors=[recorder])``. The
    collected series are exposed as ``recorder.series[name] -> list`` with
    a parallel ``recorder.steps`` axis, ready for numpy conversion in the
    analysis layer.
    """

    def __init__(
        self,
        probes: dict[str, Callable[["Engine"], float]] | None = None,
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.probes = dict(probes) if probes is not None else dict(STANDARD_PROBES)
        self.every = every
        self.steps: list[int] = []
        self.series: dict[str, list[float]] = {name: [] for name in self.probes}

    def __call__(self, engine: Engine, executed: ExecutedStep) -> None:
        if engine.step_count % self.every != 0:
            return
        self.sample(engine)

    def sample(self, engine: Engine) -> None:
        """Record one sample now (also usable before/after a run)."""
        self.steps.append(engine.step_count)
        for name, probe in self.probes.items():
            self.series[name].append(probe(engine))

    def last(self, name: str) -> float:
        """Most recent sample of probe *name*."""
        return self.series[name][-1]
