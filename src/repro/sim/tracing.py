"""Execution tracing and time-series sampling.

Two instruments, both optional and cheap when unused:

* :class:`Tracer` — bounded ring buffer of executed steps, used by tests
  to assert on event sequences and by examples to narrate runs;
* :class:`SeriesRecorder` — samples engine-level metrics (potential Φ,
  number of gone processes, pending messages, …) every *k* steps, feeding
  the convergence plots/series of experiments E5–E9.

The standard probes read the engine's O(1) lifecycle counters and live
graph totals — never ``snapshot()``, never a full process scan — so
per-sample cost is constant on the incremental observation path. The
``repro lint`` rule PERF003 guards this invariant for every probe,
monitor and tracer in the tree. The richer, documented probe registry
(descriptions, cost annotations, Φ attribution) lives in
:mod:`repro.obs.metrics`; the dict here is the engine-facing subset it
wraps.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, ExecutedStep

__all__ = [
    "DEFAULT_TRACER_CAPACITY",
    "Tracer",
    "SeriesRecorder",
    "STANDARD_PROBES",
]

#: Default ring-buffer size of :class:`Tracer`: large enough to hold the
#: interesting suffix of any run, small enough (a few MB of records) that
#: multi-million-step runs — exactly the PR 3 livelock regime — cannot
#: leak memory through a forgotten tracer.
DEFAULT_TRACER_CAPACITY = 65_536


class Tracer:
    """Bounded ring buffer of executed steps.

    Holds the most recent ``capacity`` steps (default
    :data:`DEFAULT_TRACER_CAPACITY`); older entries are evicted, so
    memory stays O(capacity) no matter how long the run. Passing
    ``capacity=None`` explicitly opts in to an unbounded log — memory
    then grows with every step, which is only safe for short runs.
    """

    def __init__(self, capacity: int | None = DEFAULT_TRACER_CAPACITY) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(
                "capacity must be >= 1 (pass capacity=None to explicitly "
                "opt in to an unbounded trace)"
            )
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)

    def record(self, engine: Engine, executed: ExecutedStep) -> None:
        """Engine hook: store the executed step."""
        self.events.append(executed)

    def labels(self) -> list[str | None]:
        """Sequence of message labels delivered (None for timeouts)."""
        return [e.label for e in self.events]

    def by_pid(self, pid: int) -> list["ExecutedStep"]:
        """All recorded steps executed by process *pid*."""
        return [e for e in self.events if e.pid == pid]

    def __len__(self) -> int:
        return len(self.events)


# -- standard probes ----------------------------------------------------------
#
# Named module-level functions (not lambdas) so the observation-path lint
# (PERF003) covers their bodies. Each reads a counter the engine already
# maintains; none may rebuild a snapshot or scan the process population.


def _probe_potential(e: "Engine") -> float:
    return float(e.potential())


def _probe_gone(e: "Engine") -> float:
    return float(e.gone_count)


def _probe_asleep(e: "Engine") -> float:
    return float(e.asleep_count)


def _probe_pending(e: "Engine") -> float:
    return float(e.pending_count)


def _probe_messages_posted(e: "Engine") -> float:
    return float(e.stats.messages_posted)


def _probe_edges(e: "Engine") -> float:
    return float(e.edge_count)


#: Named metric probes a :class:`SeriesRecorder` can sample. Each maps an
#: engine to a number; recorders may mix standard and custom probes. See
#: :data:`repro.obs.metrics.REGISTRY` for the documented catalog.
STANDARD_PROBES: dict[str, Callable[["Engine"], float]] = {
    "potential": _probe_potential,
    "gone": _probe_gone,
    "asleep": _probe_asleep,
    "pending_messages": _probe_pending,
    "messages_posted": _probe_messages_posted,
    "edges": _probe_edges,
}


class SeriesRecorder:
    """Samples metric probes every ``every`` executed steps.

    Used as an engine monitor: ``Engine(..., monitors=[recorder])``. The
    collected series are exposed as ``recorder.series[name] -> list`` with
    a parallel ``recorder.steps`` axis, ready for numpy conversion in the
    analysis layer.
    """

    def __init__(
        self,
        probes: dict[str, Callable[["Engine"], float]] | None = None,
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.probes = dict(probes) if probes is not None else dict(STANDARD_PROBES)
        self.every = every
        self.steps: list[int] = []
        self.series: dict[str, list[float]] = {name: [] for name in self.probes}

    def __call__(self, engine: Engine, executed: ExecutedStep) -> None:
        if engine.step_count % self.every != 0:
            return
        self.sample(engine)

    def sample(self, engine: Engine) -> None:
        """Record one sample now (also usable before/after a run)."""
        self.steps.append(engine.step_count)
        for name, probe in self.probes.items():
            self.series[name].append(probe(engine))

    def last(self, name: str) -> float:
        """Most recent sample of probe *name*."""
        return self.series[name][-1]
