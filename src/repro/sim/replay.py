"""Record-and-replay of executions: deterministic re-runs of any schedule.

Self-stabilization bugs are schedule-dependent: a violation found under a
randomized scheduler is worthless if it cannot be re-examined. This
module makes any execution reproducible *by value* rather than by seed:

* :class:`ScheduleRecorder` — an engine tracer hook that captures the
  executed event sequence (timeout pid / delivery pid+seq);
* :class:`ReplayScheduler` — a scheduler that re-issues exactly a
  recorded sequence against a freshly built identical initial state,
  failing loudly if the replay diverges (which would indicate
  nondeterminism in protocol code — forbidden by the model);
* :func:`replay_run` — convenience: rebuild via a builder callable and
  re-execute a recording.

Because message sequence numbers are assigned deterministically from the
engine's clock, an identical initial state plus an identical event
sequence yields a bit-identical run — asserted by the test-suite across
all protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.sim.scheduler import DeliverEvent, Scheduler, TimeoutEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, ExecutedStep

__all__ = ["RecordedEvent", "ScheduleRecorder", "ReplayScheduler", "replay_run"]


@dataclass(frozen=True)
class RecordedEvent:
    """One executed event, in replayable form."""

    kind: str  # "timeout" | "deliver"
    pid: int
    seq: int | None = None

    @classmethod
    def from_step(cls, step: ExecutedStep) -> RecordedEvent:
        return cls(kind=step.kind, pid=step.pid, seq=step.seq)


class ScheduleRecorder:
    """Engine tracer capturing the executed schedule.

    Install as ``Engine(..., tracer=recorder)`` (or chain from another
    tracer by calling :meth:`record` yourself).
    """

    def __init__(self) -> None:
        self.events: list[RecordedEvent] = []

    def record(self, engine: Engine, executed: ExecutedStep) -> None:
        self.events.append(RecordedEvent.from_step(executed))

    def __len__(self) -> int:
        return len(self.events)


class ReplayScheduler(Scheduler):
    """Re-issues a recorded event sequence verbatim.

    Every event is validated against the live engine state before being
    issued: the process must be awake (timeouts) or the message present
    (deliveries). A mismatch raises
    :class:`~repro.errors.ConfigurationError` — the initial state being
    replayed against differs from the recorded one, or protocol code is
    nondeterministic.
    """

    def __init__(self, events: Iterable[RecordedEvent]) -> None:
        self._events = list(events)
        self._cursor = 0

    @property
    def remaining(self) -> int:
        return len(self._events) - self._cursor

    # replay needs no notifications — the transcript is the truth
    def attach(self, engine: Engine) -> None:  # noqa: D102
        return

    def notify_send(self, pid: int, seq: int) -> None:  # noqa: D102
        return

    def notify_wake(self, pid: int, stamp: int) -> None:  # noqa: D102
        return

    def notify_sleep(self, pid: int) -> None:  # noqa: D102
        return

    def notify_gone(self, pid: int, pending_seqs) -> None:  # noqa: D102
        return

    def notify_timeout_executed(self, pid: int, new_stamp: int) -> None:  # noqa: D102
        return

    def select(self, engine: Engine):
        if self._cursor >= len(self._events):
            return None
        event = self._events[self._cursor]
        self._cursor += 1
        if event.kind == "timeout":
            proc = engine.processes.get(event.pid)
            if proc is None or proc.state.value != "awake":
                raise ConfigurationError(
                    f"replay diverged at #{self._cursor}: timeout for "
                    f"non-awake process {event.pid}"
                )
            return TimeoutEvent(event.pid)
        if event.kind == "deliver":
            assert event.seq is not None
            if (
                event.pid not in engine.channels
                or event.seq not in engine.channels[event.pid]
            ):
                raise ConfigurationError(
                    f"replay diverged at #{self._cursor}: message "
                    f"{event.seq} not pending at process {event.pid}"
                )
            return DeliverEvent(event.pid, event.seq)
        raise ConfigurationError(f"unknown recorded event kind {event.kind!r}")


def replay_run(
    build: Callable[[], "Engine"],
    events: Sequence[RecordedEvent],
) -> Engine:
    """Rebuild the initial state via *build* and re-execute *events*.

    *build* must reconstruct the exact initial state of the recorded run
    (same processes, same planted messages, in the same order — builders
    keyed by seed satisfy this). Returns the engine after the replay.
    """

    engine = build()
    engine.scheduler = ReplayScheduler(events)
    engine.run(len(events), until=None)
    return engine


def shortest_failing_prefix(
    build: Callable[[], "Engine"],
    events: Sequence[RecordedEvent],
    failed: Callable[["Engine"], bool],
) -> int:
    """Binary-search the shortest schedule prefix after which *failed* holds.

    The debugging workflow for schedule-dependent bugs: record a run that
    ends in a bad state, then localize the *first* step that produced it.
    Requires the failure to be monotone along this schedule (once bad,
    stays bad) — true for the usual suspects (disconnection of a given
    pair, a specific unsafe exit, Φ above a bound), since replaying a
    longer prefix only appends events. Returns the prefix length (0 if
    the initial state already fails); raises ``ValueError`` if even the
    full schedule does not fail.
    """

    if failed(replay_run(build, events[:0])):
        return 0
    if not failed(replay_run(build, events)):
        raise ValueError("the full schedule does not produce the failure")
    lo, hi = 0, len(events)  # invariant: prefix lo passes, prefix hi fails
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if failed(replay_run(build, events[:mid])):
            hi = mid
        else:
            lo = mid
    return hi
