"""Unbounded, unordered message channels (``u.Ch`` in the paper).

The model gives each process a system variable ``u.Ch`` holding a *set* of
incoming messages: capacity is unbounded, messages never get lost, and
delivery is non-FIFO (the scheduler may pick any pending message, subject
to fair receipt). We store messages in an insertion-ordered dict keyed by
their engine-assigned sequence number, which supports

* O(1) add / remove,
* deterministic iteration (oldest first) for the fairness-by-age scheduler,
* arbitrary selection for the randomized and adversarial schedulers.

A channel is a *multiset*: two distinct sends of equal content coexist
(they differ in ``seq``), matching the paper's process multi-graph where
parallel implicit edges are possible.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.sim.messages import Message

__all__ = ["Channel"]


class Channel:
    """The incoming-message buffer of one process.

    ``observer`` is an optional callback ``(message, delta) -> None``
    invoked with ``+1`` on every enqueue and ``-1`` on every dequeue
    (including :meth:`clear`). The engine installs one per channel to
    feed implicit-edge deltas to the live process graph — putting the
    hook on the channel itself means *every* mutation path (deliveries,
    fault injection, tests poking channels directly) is captured at the
    source.
    """

    __slots__ = ("_messages", "observer")

    def __init__(self) -> None:
        self._messages: dict[int, Message] = {}
        self.observer: Callable[[Message, int], None] | None = None

    def add(self, message: Message) -> None:
        """Deposit *message* into the channel.

        The engine assigns ``seq`` before calling this; duplicates by
        sequence number indicate an engine bug and raise ``ValueError``.
        """

        if message.seq in self._messages:
            raise ValueError(f"duplicate message seq {message.seq}")
        self._messages[message.seq] = message
        if self.observer is not None:
            self.observer(message, +1)

    def remove(self, seq: int) -> Message:
        """Remove and return the message with sequence number *seq*."""
        msg = self._messages.pop(seq)
        if self.observer is not None:
            self.observer(msg, -1)
        return msg

    def peek(self, seq: int) -> Message:
        """Return the message with sequence number *seq* without removing it."""
        return self._messages[seq]

    def __contains__(self, seq: int) -> bool:
        return seq in self._messages

    def __len__(self) -> int:
        return len(self._messages)

    def __bool__(self) -> bool:
        return bool(self._messages)

    def __iter__(self) -> Iterator[Message]:
        """Iterate messages oldest-first (insertion order == seq order)."""
        return iter(self._messages.values())

    def seqs(self) -> Iterator[int]:
        """Iterate pending sequence numbers oldest-first."""
        return iter(self._messages)

    def oldest_seq(self) -> int | None:
        """Return the smallest pending sequence number, or ``None`` if empty."""
        return next(iter(self._messages), None)

    def clear(self) -> list[Message]:
        """Drain the channel, returning the removed messages (oldest first)."""
        drained = list(self._messages.values())
        self._messages.clear()
        if self.observer is not None:
            for msg in drained:
                self.observer(msg, -1)
        return drained

    def __repr__(self) -> str:
        return f"Channel({list(self._messages.values())!r})"
