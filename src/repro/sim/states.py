"""Process modes and lifecycle states (Figure 1 of the paper).

Two orthogonal attributes describe a process:

* :class:`Mode` — the read-only ``mode(u) ∈ {staying, leaving}`` variable.
  It never changes during a computation; leaving processes want to be
  excluded from the overlay, staying processes remain.

* :class:`PState` — the lifecycle state drawn in the paper's Figure 1::

        msg received
      ┌───────────────┐
      ▼               │
    AWAKE ──sleep──► ASLEEP
      │
     exit
      ▼
    GONE  (absorbing)

  ``exit`` moves an awake process to :data:`PState.GONE`, a designated
  absorbing state (the process never executes again). ``sleep`` moves it
  to :data:`PState.ASLEEP`; an asleep process wakes (back to AWAKE) when a
  message addressed to it is processed. The FDP disallows ``sleep`` and
  the FSP disallows ``exit`` — the engine enforces whichever restriction
  the run is configured with (:class:`Capability`).
"""

from __future__ import annotations

import enum

__all__ = ["Mode", "PState", "Capability"]


class Mode(enum.Enum):
    """The read-only departure intent of a process."""

    STAYING = "staying"
    LEAVING = "leaving"

    def __repr__(self) -> str:
        return self.value

    @property
    def opposite(self) -> Mode:
        """Return the other mode (used by fault injectors to corrupt beliefs)."""
        return Mode.LEAVING if self is Mode.STAYING else Mode.STAYING


class PState(enum.Enum):
    """Lifecycle state of a process (Figure 1)."""

    AWAKE = "awake"
    ASLEEP = "asleep"
    GONE = "gone"

    def __repr__(self) -> str:
        return self.value


#: Legal transitions of the Figure 1 state graph. The engine validates every
#: transition against this table so that any bug reintroducing an illegal
#: move (e.g. a gone process waking) fails loudly. Experiment E1 probes that
#: exactly these transitions — and no others — are reachable.
LEGAL_TRANSITIONS: frozenset[tuple[PState, PState]] = frozenset(
    {
        (PState.AWAKE, PState.GONE),  # exit
        (PState.AWAKE, PState.ASLEEP),  # sleep
        (PState.ASLEEP, PState.AWAKE),  # message received
    }
)


class Capability(enum.Flag):
    """Which special commands a run makes available to processes.

    The FDP is defined for systems where only ``exit`` exists; the FSP for
    systems where only ``sleep`` exists. ``BOTH`` is provided for model
    exploration (e.g. the E1 state-graph experiment exercises all edges).
    """

    NONE = 0
    EXIT = enum.auto()
    SLEEP = enum.auto()
    BOTH = EXIT | SLEEP

    @property
    def allows_exit(self) -> bool:
        return bool(self & Capability.EXIT)

    @property
    def allows_sleep(self) -> bool:
        return bool(self & Capability.SLEEP)
