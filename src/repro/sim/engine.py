"""The simulation engine: atomic action execution over the paper's model.

:class:`Engine` owns the processes, their channels, the scheduler and the
oracle, and executes one enabled action per :meth:`step`, exactly as the
model of Section 1.1 prescribes:

* an enabled **timeout** runs the process's timeout action;
* an enabled **delivery** removes one message from a channel and invokes
  the action its label names, waking the receiver if it was asleep;
* actions are atomic — the next event is selected only after the current
  action (including all its sends and its requested ``exit``/``sleep``
  transition) completes;
* messages whose label matches no action of the receiver are ignored
  (dropped), per the model; *strict* mode turns this into an error so the
  test-suite catches typos.

The engine is also the measurement instrument: it evaluates oracles,
computes the potential Φ of Lemma 3, answers connectivity queries and
exposes the run statistics the experiment harness aggregates. Those
observations are served by a :class:`~repro.graphs.livegraph.LiveGraph`
fed with typed deltas at every mutation source (channel enqueue/dequeue,
per-action ref store/drop diffs, lifecycle transitions), so per-step
observation cost scales with the *change*, not the *system*:

* ``potential()`` reads a running counter (O(1));
* ``partner_pids()`` reads the live partner index (O(deg));
* connectivity checks use an epoch-based union-find (O(Δ) amortized);
* ``snapshot()`` materializes an immutable
  :class:`~repro.graphs.snapshot.ProcessGraph` on demand (cached per
  state) for analysis code that wants the full rebuild-style view.

Deltas commit at atomic-action boundaries: an oracle consulted *inside*
an action observes the pre-action explicit edges plus all sends made so
far. This is equivalent for the shipped oracles — a process's in-edges
cannot change during its own action, and the protocols' purge-to-message
idiom (dropping a stored ref by mailing it to oneself) preserves the
outgoing partner multiset mid-action.

Setting ``REPRO_GRAPH_MODE=rebuild`` (or ``graph_mode="rebuild"``)
selects the historical rebuild-on-read path — kept for differential
testing against the incremental structures.

``engine_mode`` selects the execution core the same way: ``"objects"``
(default) runs the historical object-per-process step loop above;
``"soa"`` executes eligible runs on the struct-of-arrays
:class:`~repro.sim.soa.EngineCore` (int-slotted processes, tagged-int
refs) and exports the final state back into the object model;
``"verify"`` runs both in lockstep and raises
:class:`~repro.errors.StateViolation` on any divergence — the
differential oracle mirroring the ``ref_mode="verify"`` pattern.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import partial
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    CopyStoreSendViolation,
    SlotRecycleOverflow,
    StateViolation,
    UnknownActionError,
)
from repro.graphs.livegraph import LiveGraph, explicit_fingerprint
from repro.graphs.snapshot import Edge, EdgeKind, NodeView, ProcessGraph
from repro.sim.channel import Channel
from repro.sim.messages import Message, RefInfo, iter_refs
from repro.sim.process import ActionContext, Process
from repro.sim.refs import KeyProvider, Ref, pid_of
from repro.sim.scheduler import (
    DeliverEvent,
    RandomScheduler,
    Scheduler,
    TimeoutEvent,
)
from repro.sim.states import LEGAL_TRANSITIONS, Capability, Mode, PState

__all__ = ["Engine", "ExecutedStep", "EngineStats"]

#: Oracle signature: a predicate over (engine, pid) — equivalently over the
#: current process graph and the calling process, the paper's O : PG × P.
Oracle = Callable[["Engine", int], bool]


class ExecutedStep:
    """Record of one executed event, handed to monitors and tracers.

    One is allocated per step, so this is a ``__slots__`` class (not a
    dataclass) to keep the hot loop allocation-light. Treat as immutable.
    """

    __slots__ = ("index", "kind", "pid", "label", "seq", "new_state")

    def __init__(
        self,
        index: int,
        kind: str,  # "timeout" | "deliver"
        pid: int,
        label: str | None = None,
        seq: int | None = None,
        new_state: PState | None = None,
    ) -> None:
        self.index = index
        self.kind = kind
        self.pid = pid
        self.label = label
        self.seq = seq
        self.new_state = new_state

    def _key(self) -> tuple:
        return (self.index, self.kind, self.pid, self.label, self.seq, self.new_state)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ExecutedStep):
            return self._key() == other._key()
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"ExecutedStep(index={self.index}, kind={self.kind!r}, "
            f"pid={self.pid}, label={self.label!r}, seq={self.seq}, "
            f"new_state={self.new_state})"
        )


@dataclass
class EngineStats:
    """Counters accumulated over a run.

    The ``*_by`` dicts hold per-process counts (pid → count) — the raw
    material for fairness and load-balance analysis: who executed how
    often, who sent how much, whose channel received how much.
    """

    steps: int = 0
    timeouts: int = 0
    deliveries: int = 0
    messages_posted: int = 0
    dropped_unknown: int = 0
    dropped_gone: int = 0
    bounced: int = 0
    exits: int = 0
    sleeps: int = 0
    wakes: int = 0
    oracle_queries: int = 0
    oracle_true: int = 0
    timeouts_by: dict = field(default_factory=dict)
    deliveries_by: dict = field(default_factory=dict)
    sent_by: dict = field(default_factory=dict)
    received_by: dict = field(default_factory=dict)

    @staticmethod
    def _bump(counter: dict, pid: int) -> None:
        counter[pid] = counter.get(pid, 0) + 1

    def as_dict(self) -> dict[str, int]:
        """Scalar counters only (per-pid detail via the ``*_by`` attrs)."""
        return {
            k: v for k, v in self.__dict__.items() if isinstance(v, int)
        }

    def load_imbalance(self) -> float:
        """max/mean ratio of per-process delivered messages (1.0 = even).

        Returns 1.0 for empty runs.
        """
        if not self.deliveries_by:
            return 1.0
        values = list(self.deliveries_by.values())
        mean = sum(values) / len(values)
        return (max(values) / mean) if mean else 1.0


class Engine:
    """Executes a protocol over a set of processes under a fair scheduler.

    Parameters
    ----------
    processes:
        The process population. Pids must be unique.
    scheduler:
        A :class:`~repro.sim.scheduler.Scheduler`; defaults to a seeded
        :class:`~repro.sim.scheduler.RandomScheduler`.
    capability:
        Which special commands exist: ``Capability.EXIT`` for FDP runs,
        ``Capability.SLEEP`` for FSP runs.
    oracle:
        Oracle predicate consulted via ``ctx.oracle()``; ``None`` means any
        consultation raises (protocols that never consult may omit it).
    key_provider:
        Ordered keys for protocols declaring ``requires_order``.
    strict:
        If True, messages with unknown labels raise
        :class:`~repro.errors.UnknownActionError` instead of being ignored.
    monitors:
        Callables ``(engine, executed_step) -> None`` run after every step;
        they raise :class:`~repro.errors.SafetyViolation` on invariant
        breaks.
    provenance:
        Optional :class:`~repro.obs.provenance.ProvenanceTracker`. When
        set, every posted message is assigned a lineage record whose
        parent is the message being delivered when the post happened —
        the happens-before chains the paper's proofs argue over. ``None``
        (the default) keeps the hot path at one predicted-false branch
        per post/delivery.
    require_staying_per_component:
        Validate the paper's Section 3/4 precondition that every weakly
        connected component initially contains a staying process.
    graph_mode:
        ``"incremental"`` (default) maintains the live process graph via
        deltas; ``"rebuild"`` restores the historical rebuild-on-read
        observation path. ``None`` consults the ``REPRO_GRAPH_MODE``
        environment variable (differential-testing escape hatch).
    engine_mode:
        Which execution core runs the step loop. ``"objects"`` (default)
        is the object-per-process loop. ``"soa"`` executes eligible runs
        (homogeneous FDP/FSP populations under a core-drivable
        scheduler, no monitors/tracer) on the struct-of-arrays
        :class:`~repro.sim.soa.EngineCore` and falls back to the object
        loop otherwise. ``"verify"`` executes every step on both cores
        and cross-checks them — the differential oracle. ``None``
        consults the ``REPRO_ENGINE_MODE`` environment variable.
    ref_mode:
        How the live graph learns about per-action ref store/drop deltas.
        ``"tracked"`` (default) drains the write-through
        :class:`~repro.sim.refs.RefDeltaLog` of processes that declare
        ``ref_tracking`` — O(writes) per action; untracked processes fall
        back to fingerprint diffing. ``"fingerprint"`` forces the
        historical before/after ``explicit_fingerprint`` diff for every
        process. ``"verify"`` computes both and raises
        :class:`~repro.errors.StateViolation` on divergence — the
        differential oracle the property suite runs under. ``None``
        consults the ``REPRO_REF_MODE`` environment variable.
    """

    def __init__(
        self,
        processes: Iterable[Process],
        scheduler: Scheduler | None = None,
        *,
        capability: Capability = Capability.EXIT,
        oracle: Oracle | None = None,
        key_provider: KeyProvider | None = None,
        seed: int = 0,
        strict: bool = True,
        monitors: Sequence[Callable[["Engine", ExecutedStep], None]] = (),
        tracer: Any | None = None,
        provenance: Any | None = None,
        require_staying_per_component: bool = True,
        graph_mode: str | None = None,
        ref_mode: str | None = None,
        engine_mode: str | None = None,
    ) -> None:
        self.processes: dict[int, Process] = {}
        for proc in processes:
            if proc.pid in self.processes:
                raise ConfigurationError(f"duplicate pid {proc.pid}")
            self.processes[proc.pid] = proc
        self.channels: dict[int, Channel] = {
            pid: Channel() for pid in self.processes
        }
        self.scheduler: Scheduler = (
            scheduler if scheduler is not None else RandomScheduler(seed)
        )
        self.capability = capability
        self._oracle = oracle
        self._key_provider = key_provider if key_provider is not None else KeyProvider()
        self.strict = strict
        self.monitors = list(monitors)
        self.tracer = tracer
        self.provenance = provenance
        self._require_staying = require_staying_per_component

        #: scheduler freshness stamps — deliberately SEPARATE from message
        #: sequence numbers: schedulers consume stamps at attach/bookkeeping
        #: time in scheduler-specific amounts, and message seqs must stay a
        #: pure function of the posting order so that recorded schedules
        #: replay bit-identically under a ReplayScheduler. Plain ints (not
        #: itertools.count) so the struct-of-arrays core can read the
        #: current position and hand the counters back after a batch.
        self._clock = 0
        self._msg_seq = 0
        #: Callables ``(engine, pid) -> None`` invoked at the instant a
        #: process requests exit, while it is still part of the graph.
        self.exit_auditors: list[Callable[["Engine", int], None]] = []
        self.stats = EngineStats()
        self.step_count = 0
        self._attached = False
        self._stale = True
        self._live_stale = False
        self._snapshot_cache: ProcessGraph | None = None
        self._initial_components: tuple[frozenset[int], ...] | None = None
        self._initial_pid_union: frozenset[int] | None = None
        if graph_mode is None:
            graph_mode = os.environ.get("REPRO_GRAPH_MODE", "incremental")
        if graph_mode not in ("incremental", "rebuild"):
            raise ConfigurationError(
                f"unknown graph_mode {graph_mode!r} (incremental|rebuild)"
            )
        self._graph_mode = graph_mode
        if ref_mode is None:
            ref_mode = os.environ.get("REPRO_REF_MODE", "tracked")
        if ref_mode not in ("tracked", "fingerprint", "verify"):
            raise ConfigurationError(
                f"unknown ref_mode {ref_mode!r} (tracked|fingerprint|verify)"
            )
        self._ref_mode = ref_mode
        if engine_mode is None:
            engine_mode = os.environ.get("REPRO_ENGINE_MODE", "objects")
        if engine_mode not in ("objects", "soa", "verify"):
            raise ConfigurationError(
                f"unknown engine_mode {engine_mode!r} (objects|soa|verify)"
            )
        self._engine_mode = engine_mode
        #: the struct-of-arrays execution core (``engine_mode`` soa/verify);
        #: ``None`` when the population/config is core-ineligible, with the
        #: reason kept for ``core_status``.
        self._core: Any | None = None
        self._core_stale = False
        self._core_reason: str | None = (
            None if engine_mode != "objects" else "engine_mode=objects"
        )
        #: True while :meth:`step` is executing — distinguishes in-step
        #: mutations (which the verify core replays itself) from
        #: out-of-band ones (fault injection, tests poking state), which
        #: mark the core stale for a rebuild.
        self._stepping = False
        #: resolved per-run fast-path flags (set at attach, when the
        #: graph mode is known): _track → drain write-through logs,
        #: _ref_verify → additionally cross-check against fingerprints.
        self._track = False
        self._ref_verify = ref_mode == "verify"
        #: pooled action context, reset per action instead of allocated.
        self._ctx = ActionContext(self, None)  # type: ignore[arg-type]
        self._live: LiveGraph | None = None
        #: lifecycle counters maintained at the same transition points
        #: that feed the live graph (recounted at attach); they replace
        #: the O(n) sleeper/gone scans on the observation hot paths.
        #: ``_lifecycle_stale`` defers the recount after out-of-band
        #: mutations until a counter is actually read — step and describe
        #: paths never pay the O(n) scan.
        self._asleep_count = 0
        self._gone_count = 0
        self._lifecycle_stale = False
        #: open-system churn tallies: processes admitted mid-run and gone
        #: processes reclaimed. ``_retired_pids`` remembers reaped pids so
        #: a pid can never be reused — references must stay unambiguous
        #: for the lifetime of a run (the object-model analogue of the
        #: core's generation-tagged slots).
        self.admitted_count = 0
        self.reaped_count = 0
        self._retired_pids: set[int] = set()
        #: journal of open-system mutations (admit/leave/reap) with the
        #: step index each was applied at — everything a failure capsule
        #: needs to replay a churn run bit-identically.
        self.churn_journal: list[dict] = []
        #: open-system workload counters; set by
        #: :class:`repro.traffic.TrafficDriver`, read by the O(1) traffic
        #: probes in :mod:`repro.obs.metrics` (None = no traffic attached).
        self.traffic_stats = None
        #: reliable-delivery transport over an unreliable underlay; set
        #: by :meth:`repro.net.ReliableTransport.install` (None = the
        #: paper's perfect channels). ``net_stats`` mirrors its O(1)
        #: counters for the ``net_*`` probes in :mod:`repro.obs.metrics`.
        self.net = None
        self.net_stats = None
        #: step index of the last observed progress event: a lifecycle
        #: transition (both graph modes), or a strict Φ decrease
        #: (incremental mode only — rebuild mode would pay a snapshot per
        #: step to watch Φ, so there only transitions count).
        self._last_progress_step = 0
        self._last_phi_seen: int | None = None

    # ------------------------------------------------------------------ plumbing

    def next_stamp(self) -> int:
        """Advance and return the global freshness clock."""
        value = self._clock
        self._clock = value + 1
        return value

    @property
    def _dirty(self) -> bool:
        return self._stale

    @_dirty.setter
    def _dirty(self, value: bool) -> None:
        # Out-of-band mutation hook. Tests and tools that edit process or
        # channel state directly (rather than through actions) signal it by
        # setting ``engine._dirty = True``; the live graph cannot have seen
        # those edits, so schedule a full lazy rebuild and mark the
        # lifecycle counters stale (recounted on next read, never on the
        # step path). Engine-internal code paths — whose mutations the
        # live graph *does* observe as deltas — set ``_stale`` instead.
        self._stale = bool(value)
        if value:
            self._lifecycle_stale = True
            if self._live is not None:
                self._live_stale = True
            if self._core is not None:
                self._core_stale = True

    @property
    def graph_mode(self) -> str:
        """Active observation path: ``"incremental"`` or ``"rebuild"``."""
        return self._graph_mode

    @property
    def ref_mode(self) -> str:
        """Active ref-delta path: ``"tracked"``, ``"fingerprint"`` or
        ``"verify"``."""
        return self._ref_mode

    @property
    def engine_mode(self) -> str:
        """Active execution core: ``"objects"``, ``"soa"`` or ``"verify"``."""
        return self._engine_mode

    @property
    def core_status(self) -> dict[str, Any]:
        """Whether the struct-of-arrays core is active, and why not if not.

        O(1); safe for probes. ``active`` is True when a core instance is
        mirroring (verify) or eligible to drive (soa) this engine.
        ``protocols`` and ``actions`` come from the mirror registry — the
        declarative statement of what the int core can execute.
        """
        from repro.sim.soa import MIRROR_ACTIONS, MIRROR_PROTOCOLS

        return {
            "engine_mode": self._engine_mode,
            "active": self._core is not None,
            "reason": self._core_reason,
            "protocols": tuple(p.process_class for p in MIRROR_PROTOCOLS),
            "actions": tuple(a.name for a in MIRROR_ACTIONS),
        }

    @property
    def asleep_count(self) -> int:
        """Number of currently asleep processes (O(1) counter; recounted
        lazily after out-of-band mutations)."""
        if self._lifecycle_stale:
            self._recount_lifecycle()
        return self._asleep_count

    @property
    def gone_count(self) -> int:
        """Number of gone processes (O(1) counter; recounted lazily after
        out-of-band mutations)."""
        if self._lifecycle_stale:
            self._recount_lifecycle()
        return self._gone_count

    @property
    def last_progress_step(self) -> int:
        """Step index of the most recent progress event.

        Progress means a lifecycle transition (exit/sleep/wake) or — in
        incremental graph mode, where Φ is an O(1) read — a strict Φ
        decrease. Watchdogs and the budget-exhaustion diagnostics use it
        to say *when* a stuck run last did anything useful.
        """
        return self._last_progress_step

    def progress_diagnostics(self) -> dict[str, int]:
        """Where the run stands right now, as a plain dict.

        The payload :meth:`run` attaches to a budget-exhaustion
        :class:`~repro.errors.ConvergenceError`: current Φ, pending
        messages, gone/asleep counts and the last-progress step. All O(1)
        reads in incremental mode (one snapshot in rebuild mode).
        """
        return {
            "step": self.step_count,
            "phi": self.potential(),
            "pending": self.pending_count,
            "edges": self.edge_count,
            "gone": self.gone_count,
            "asleep": self.asleep_count,
            "last_progress_step": self._last_progress_step,
        }

    @property
    def edge_count(self) -> int:
        """Number of edges in PG (parallel copies and self-loops counted).

        O(1) in incremental mode — a live-counter read; rebuild mode
        falls back to the (cached) snapshot. This is the sanctioned way
        for probes and monitors to observe the edge count: reading it
        never materializes a snapshot on the incremental path.
        """
        if self._graph_mode == "incremental":
            return self._ensure_live().edge_total
        return len(self.snapshot().edges)

    @property
    def pending_count(self) -> int:
        """Messages pending across all channels (gone pids included).

        O(1) in incremental mode; an O(n) channel-length sum in rebuild
        mode (no snapshot is built either way).
        """
        if self._graph_mode == "incremental":
            return self._ensure_live().pending_total
        return sum(len(c) for c in self.channels.values())

    def _recount_lifecycle(self) -> None:
        """Recount the lifecycle tallies in one pass over the population.

        Called only on explicit rebuilds (attach, live-graph rebuild) and
        lazily from the counter properties after an out-of-band mutation
        — never from the step or describe paths, which read the
        incrementally maintained counters.
        """
        asleep = gone = 0
        for p in self.processes.values():
            state = p.state
            if state is PState.ASLEEP:
                asleep += 1
            elif state is PState.GONE:
                gone += 1
        self._asleep_count = asleep
        self._gone_count = gone
        self._lifecycle_stale = False

    def _build_live(self) -> LiveGraph:
        """(Re)build the live graph from a full scan and hook the
        channel observers so all later mutations arrive as deltas."""
        self._recount_lifecycle()
        self._live_stale = False
        self._live = LiveGraph(self)
        for pid, channel in self.channels.items():
            channel.observer = partial(self._observe_channel, pid)
        return self._live

    def _observe_channel(self, pid: int, msg: Message, delta: int) -> None:
        if self._core is not None and not self._stepping:
            # Direct channel surgery outside an action (fault injectors
            # dropping/duplicating messages) invalidates the mirror core.
            self._core_stale = True
        live = self._live
        if live is None or self._live_stale:
            return
        if delta > 0:
            live.on_enqueue(pid, msg)
        else:
            live.on_dequeue(pid, msg)

    def _ensure_live(self) -> LiveGraph:
        live = self._live
        if live is None or self._live_stale:
            live = self._build_live()
        return live

    @property
    def live_graph(self) -> LiveGraph:
        """The incrementally maintained graph view (incremental mode)."""
        if self._graph_mode != "incremental":
            raise ConfigurationError(
                "live graph unavailable in rebuild graph_mode"
            )
        return self._ensure_live()

    def audit_exit(self, pid: int) -> None:
        """Invoke exit auditors for *pid* (pre-transition; see exit_auditors)."""
        for auditor in self.exit_auditors:
            auditor(self, pid)

    def actual_mode(self, pid: int) -> Mode:
        """The true (read-only) mode of process *pid*."""
        return self.processes[pid].mode

    def ref(self, pid: int) -> Ref:
        """Reference for process *pid* (raises if unknown — no dead refs)."""
        if pid not in self.processes:
            raise ConfigurationError(f"no process with pid {pid}")
        return self.processes[pid].self_ref

    def key_provider_for(self, process: Process) -> KeyProvider:
        """Hand ordered keys to a protocol, iff it declared the requirement."""
        if not process.requires_order:
            raise CopyStoreSendViolation(
                f"{type(process).__name__} did not declare requires_order; "
                "copy-store-send protocols may not observe an order on references"
            )
        return self._key_provider

    # ------------------------------------------------------------------ messaging

    def post(
        self,
        sender: int | None,
        target: Ref,
        label: str,
        args: tuple[Any, ...] = (),
    ) -> Message | None:
        """Deposit ``target ← label(args)`` into the target's channel.

        Validates that every reference in *args* (and the target itself)
        denotes an existing process — the model admits no references that
        do not belong to a process in the system (Section 1.2).

        A protocol send (``sender`` is a pid) addressed to a *gone*
        process is undeliverable and takes the bounce path instead of
        entering the dead channel: see :meth:`_bounce`, which returns
        ``None``. Out-of-band posts (``sender=None`` — fault injection,
        tests planting messages) keep the historical park-in-channel
        semantics, so planted initial states are expressible unchanged.
        """

        tpid = pid_of(target)
        if tpid not in self.processes:
            raise ConfigurationError(f"message targets unknown process {tpid}")
        for ref in iter_refs(args):
            if pid_of(ref) not in self.processes:
                raise ConfigurationError(
                    f"message parameter references unknown process {pid_of(ref)}"
                )
        if sender is not None and self.processes[tpid].state is PState.GONE:
            return self._bounce(sender, tpid, args)
        seq = self._msg_seq
        self._msg_seq = seq + 1
        msg = Message(label, tuple(args), seq, sender)
        self.channels[tpid].add(msg)
        if self.provenance is not None:
            self.provenance.on_post(msg, tpid, self.step_count)
        stats = self.stats
        stats.messages_posted += 1
        if sender is not None:
            by = stats.sent_by
            try:
                by[sender] += 1
            except KeyError:
                by[sender] = 1
        by = stats.received_by
        try:
            by[tpid] += 1
        except KeyError:
            by[tpid] = 1
        self._stale = True
        if self._core is not None and not self._stepping:
            # Out-of-band post (fault injection, tests planting messages
            # mid-run): the mirror core did not see it — rebuild lazily.
            self._core_stale = True
        if self._attached and self.processes[tpid].state is not PState.GONE:
            if self.net is not None and sender is not None:
                # Protocol send over the unreliable underlay: the message
                # is already parked in the channel (refs conserved); the
                # transport decides when the scheduler learns it is
                # deliverable. Out-of-band posts keep perfect channels.
                self.net.on_post(sender, tpid, msg)
            else:
                self.scheduler.notify_send(tpid, msg.seq)
        return msg

    def _bounce(self, sender: int, tpid: int, args: tuple[Any, ...]) -> None:
        """Open-system semantics for a send to a *gone* process.

        A message addressed to a gone process can never be delivered;
        parking it in the dead channel would silently remove the
        references it carries from the process graph — a staying
        process's connectivity could hinge on exactly those references
        (e.g. a leaving process delegating its neighbourhood to an
        anchor that has since exited). The paper's Section 4 postprocess
        sanctions the repair: references *extracted from messages that
        could not be delivered* are reintegrated.

        Concretely, the references in *args* split into two classes:

        * references to third parties (neither the sender's own nor the
          dead target's) bounce back into the **sender's** channel as
          fresh ``forward`` messages, prefixed by one truthful
          ``present(target, leaving)`` hint so a stale anchor pointing
          at the dead process is purged on receipt (Algorithm 2/3
          lines 1–2) instead of black-holing every future delegation;
        * messages carrying only the sender's or the target's own
          reference (self-introductions, reversals) are dropped
          silently and counted — the edge they would have created died
          with the target, and bouncing them back would keep reversal
          ping-pong alive forever, preventing quiescence.

        The hint's ``leaving`` belief is truthful: only leaving
        processes exit. Re-delegations racing ahead of the hint simply
        bounce again; a fair scheduler eventually delivers a hint, the
        stale anchor is purged, and the refs come to rest. Mirrored
        bit-exactly by ``EngineCore._bounce``.
        """
        third = [
            info
            for info in args
            if type(info) is RefInfo and pid_of(info.ref) not in (sender, tpid)
        ]
        if not third:
            self.stats.dropped_gone += 1
            return None
        sref = self.processes[sender].self_ref
        tref = self.processes[tpid].self_ref
        self.post(None, sref, "present", (RefInfo(tref, Mode.LEAVING),))
        for info in third:
            self.post(None, sref, "forward", (RefInfo(info.ref, info.mode),))
        self.stats.bounced += len(third)
        return None

    # ------------------------------------------------------------------ lifecycle

    def _transition(self, proc: Process, new_state: PState) -> None:
        old = proc.state
        if old is new_state:
            return
        if (old, new_state) not in LEGAL_TRANSITIONS:
            raise StateViolation(f"illegal transition {old.value} → {new_state.value}")
        proc._state = new_state  # noqa: SLF001 - engine owns lifecycle
        self._stale = True
        self._last_progress_step = self.step_count
        if old is PState.ASLEEP:
            self._asleep_count -= 1
        if new_state is PState.GONE:
            self.stats.exits += 1
            self._gone_count += 1
            if self.provenance is not None:
                self.provenance.on_exit(proc.pid, self.step_count)
            if self._attached:
                self.scheduler.notify_gone(
                    proc.pid, list(self.channels[proc.pid].seqs())
                )
            if self.net is not None:
                # Frames in flight to a departed process will never be
                # delivered; stop retransmitting them (their messages
                # stay parked in the gone channel, exactly as on
                # perfect channels).
                self.net.on_gone(proc.pid)
        elif new_state is PState.ASLEEP:
            self.stats.sleeps += 1
            self._asleep_count += 1
            if self._attached:
                self.scheduler.notify_sleep(proc.pid)
        elif new_state is PState.AWAKE:
            self.stats.wakes += 1
            if self._attached:
                self.scheduler.notify_wake(proc.pid, self.next_stamp())
        if self._live is not None:
            self._live.on_state(proc.pid, new_state)

    # ------------------------------------------------------------------ open-system churn

    def admit(self, proc: Process) -> None:
        """Admit *proc* into a running system (an open-system join).

        The paper's admissible initial states extend one node at a time:
        a newcomer attaches *by edge* to a contact already in the system.
        We enforce exactly that — *proc* must be awake, its pid fresh for
        the whole run (reaped pids are retired forever), and every
        reference it stores must denote an existing process. All engine
        structures update incrementally: the channel map grows, the live
        graph learns the node and its explicit edges, the scheduler sees
        the newcomer as a wake, and the struct-of-arrays core allocates
        (or recycles) a slot.
        """

        if not self._attached:
            raise ConfigurationError(
                "admit() is for mid-run joins; pass initial processes to Engine()"
            )
        pid = proc.pid
        if pid in self.processes or pid in self._retired_pids:
            raise ConfigurationError(
                f"pid {pid} already used this run; pids are never reused"
            )
        if proc.state is not PState.AWAKE:
            raise ConfigurationError("admitted processes must be awake")
        for info in proc.stored_refs():
            if pid_of(info.ref) not in self.processes:
                raise ConfigurationError(
                    "admitted process references unknown process "
                    f"{pid_of(info.ref)}"
                )
        self.processes[pid] = proc
        channel = Channel()
        self.channels[pid] = channel
        incremental = self._graph_mode == "incremental"
        log = proc._ref_log  # noqa: SLF001 - engine owns the drain
        log.enabled = (
            incremental and self._ref_mode != "fingerprint" and proc.ref_tracking
        )
        log.pending.clear()
        live = self._live
        if live is not None:
            channel.observer = partial(self._observe_channel, pid)
            if not self._live_stale:
                live.on_admit(pid, proc)
        self._stale = True
        self._last_progress_step = self.step_count
        self.admitted_count += 1
        anchor = getattr(proc, "anchor", None)
        anchor_belief = getattr(proc, "anchor_belief", None)
        self.churn_journal.append(
            {
                "at": self.step_count,
                "op": "admit",
                "pid": pid,
                "proto": type(proc).__name__,
                "mode": proc.mode.value,
                "neighbors": [
                    [pid_of(r), None if b is None else b.value]
                    for r, b in getattr(proc, "N", {}).items()
                ],
                "anchor": None
                if anchor is None
                else [
                    pid_of(anchor),
                    None if anchor_belief is None else anchor_belief.value,
                ],
            }
        )
        if self._core is not None and not self._core_stale:
            from repro.sim.soa import CoreUnsupported

            try:
                self._core.admit(pid, proc)
            except CoreUnsupported as exc:
                self._core = None
                self._core_reason = str(exc)
            except SlotRecycleOverflow:
                # The structured overflow is the caller's problem, but a
                # half-admitted core must not keep executing: drop it so
                # the run (if the caller survives) falls back to objects.
                self._core = None
                self._core_reason = "slot generation space exhausted"
                raise
        self.scheduler.notify_wake(pid, self.next_stamp())

    def request_leave(self, pid: int) -> None:
        """Flip process *pid* to leaving mode (open-system departure intent).

        Within one computation the paper's ``mode`` is read-only; in the
        open-system regime a session ends by the process *deciding* to
        leave, which starts a new computation whose initial state differs
        only in ``mode(pid)``. This is the engine's sanctioned way to make
        that flip: Φ is repriced (in-flight beliefs about *pid* may have
        just become invalid), and the struct-of-arrays mirror follows.
        Idempotent for already-leaving processes.
        """

        proc = self.processes.get(pid)
        if proc is None:
            raise ConfigurationError(f"no process with pid {pid}")
        if proc.state is PState.GONE:
            raise StateViolation("gone processes cannot request departure")
        if proc.mode is Mode.LEAVING:
            return
        proc._mode = Mode.LEAVING  # noqa: SLF001 - engine owns lifecycle
        live = self._live
        if live is not None and not self._live_stale:
            live.reprice(pid, Mode.LEAVING)
        self._stale = True
        self.churn_journal.append(
            {"at": self.step_count, "op": "leave", "pid": pid}
        )
        if self._core is not None and not self._core_stale:
            self._core.set_leaving(self._core.slot_of[pid])

    def _object_side_referenced(self, pid: int) -> bool:
        """Whether any *other* process physically holds a reference to
        *pid* — in a neighbourhood variable or in a channel message.

        Gone holders count: their stores and channels still physically
        contain references, and reclaiming a referenced slot is exactly
        the aliasing bug the generation tags exist to prevent. O(system);
        only the core-less fallback path pays it.
        """

        for opid, proc in self.processes.items():
            if opid == pid:
                continue
            for info in proc.stored_refs():
                if pid_of(info.ref) == pid:
                    return True
        for opid, channel in self.channels.items():
            if opid == pid:
                continue
            for msg in channel:
                for dpid, _bel in msg.edge_pairs():
                    if dpid == pid:
                        return True
        return False

    def can_reap(self, pid: int) -> bool:
        """Whether *pid* is gone and completely unreferenced, i.e. safe to
        reclaim. O(1) when the struct-of-arrays core is fresh (it keeps
        per-slot reference pins); an O(system) scan otherwise.
        """

        proc = self.processes.get(pid)
        if proc is None or proc.state is not PState.GONE:
            return False
        core = self._core
        if core is not None and not self._core_stale:
            return core.can_reap(core.slot_of[pid])
        return not self._object_side_referenced(pid)

    def reap(self, pid: int) -> None:
        """Remove a gone, unreferenced process from the system entirely.

        Gone is absorbing but not free: a gone process still occupies its
        slot in every engine structure. Once nothing in the system holds
        its reference any more (see :meth:`can_reap`), the process can be
        reclaimed — its pid is retired for the rest of the run, and the
        core's slot returns to the free list with a generation already
        bumped at exit, so any stale tagged ref can never alias the
        slot's next occupant.
        """

        proc = self.processes.get(pid)
        if proc is None:
            raise ConfigurationError(f"no process with pid {pid}")
        if proc.state is not PState.GONE:
            raise StateViolation("only gone processes can be reaped")
        core = self._core
        if core is not None and not self._core_stale:
            core.reap(core.slot_of[pid])  # raises if still referenced
        elif self._object_side_referenced(pid):
            raise StateViolation(f"process {pid} is still referenced; cannot reap")
        channel = self.channels.pop(pid)
        channel.observer = None
        del self.processes[pid]
        self._retired_pids.add(pid)
        if not self._lifecycle_stale:
            self._gone_count -= 1
        live = self._live
        if live is not None and not self._live_stale:
            live.on_reap(pid)
        self._stale = True
        self.reaped_count += 1
        self.churn_journal.append(
            {"at": self.step_count, "op": "reap", "pid": pid}
        )

    # ------------------------------------------------------------------ execution

    def attach(self) -> None:
        """Bind the scheduler and validate/record the initial state.

        Called automatically by the first :meth:`step`/:meth:`run`; all
        initial-state construction (planting messages, corrupting process
        variables) must happen before.
        """

        if self._attached:
            return
        incremental = self._graph_mode == "incremental"
        self._track = incremental and self._ref_mode == "tracked"
        log_consumers = incremental and self._ref_mode != "fingerprint"
        for proc in self.processes.values():
            # Arm the write-through logs only where a drain will consume
            # them; everywhere else mutations cost a single dead branch.
            log = proc._ref_log  # noqa: SLF001 - engine owns the drain
            log.enabled = log_consumers and proc.ref_tracking
            log.pending.clear()
        if incremental:
            # Initial-state construction (planting messages, corrupting
            # process variables) is over: scan once, stream deltas after.
            self._build_live()
            self._stale = True
        else:
            self._recount_lifecycle()
        snap = self.snapshot()
        comps = snap.weakly_connected_components()
        self._initial_components = tuple(comps)
        self._initial_pid_union = None
        if self._require_staying:
            staying = snap.staying()
            for comp in comps:
                if not comp & staying:
                    raise ConfigurationError(
                        "initial component without a staying process "
                        f"(pids {sorted(comp)}); Sections 3-4 require at least "
                        "one staying process per connected component"
                    )
        self._attached = True
        self.scheduler.attach(self)
        if self._engine_mode != "objects":
            self._rebuild_core()

    def _rebuild_core(self) -> None:
        """(Re)build the struct-of-arrays mirror from the object state.

        Ineligible populations (heterogeneous process types, kernel-unknown
        oracles, unencodable channel content, …) leave ``_core`` as ``None``
        with the reason recorded — verify/soa modes then fall back to the
        object loop rather than failing the run.
        """
        from repro.sim.soa import CoreUnsupported, EngineCore

        self._core_stale = False
        try:
            self._core = EngineCore(self)
            self._core_reason = None
        except CoreUnsupported as exc:
            self._core = None
            self._core_reason = str(exc)

    @property
    def initial_components(self) -> tuple[frozenset[int], ...]:
        """Weakly connected components of the initial process graph."""
        if self._initial_components is None:
            raise ConfigurationError("engine not attached yet; call attach() or run()")
        return self._initial_components

    @property
    def initial_pids(self) -> frozenset[int]:
        """Union of the initial components — the seed population.

        Mid-run admissions are exactly ``processes.keys() - initial_pids``
        (reaped pids belong to neither). Open-system invariants need the
        split: a joiner attaches by edge to one component, so paths
        through it are legitimate for that component's connectivity
        claims, yet it is a member of no *initial* component.
        """
        if self._initial_pid_union is None:
            self._initial_pid_union = frozenset().union(
                frozenset(), *self.initial_components
            )
        return self._initial_pid_union

    def step(self) -> ExecutedStep | None:
        """Execute one enabled action; return its record, or ``None`` if
        no action is enabled (the system is quiescent)."""

        if not self._attached:
            self.attach()
        if self._engine_mode == "verify":
            return self._step_verified()
        if self._core is not None:
            # soa mode stepped one-at-a-time runs on the object loop;
            # the core re-syncs from the object state at the next run().
            self._core_stale = True
        return self._step_objects()

    def _step_verified(self) -> ExecutedStep | None:
        """One object-loop step, mirrored and cross-checked on the core.

        The differential oracle of ``engine_mode="verify"``: the core
        replays the same event on its int-slotted state and
        :meth:`~repro.sim.soa.EngineCore.mirror_step` raises
        :class:`~repro.errors.StateViolation` if any counter, Φ value or
        lifecycle outcome disagrees.
        """
        if self._core_stale:
            self._rebuild_core()
        core = self._core
        if core is None:
            return self._step_objects()
        self._stepping = True
        try:
            executed = self._step_objects()
        except BaseException:
            # The object step may have half-applied effects (e.g. a strict
            # unknown-label raise mid-delivery); resync before reuse.
            self._core_stale = True
            raise
        finally:
            self._stepping = False
        if executed is not None and not self._core_stale:
            # A monitor that mutated state out-of-band (a chaos campaign
            # injecting faults) marked the core stale mid-step; the
            # mutation is not an event the mirror can replay, so skip the
            # cross-check here — the next step's entry rebuild resyncs.
            core.mirror_step(self, executed)
        return executed

    def _step_objects(self) -> ExecutedStep | None:
        net = self.net
        if net is not None:
            net.flush(self.step_count)
        event = self.scheduler.select(self)
        if event is None and net is not None:
            # Starved scheduler with transport events still in flight
            # (e.g. every awake-able message is being retransmitted):
            # fast-forward the transport clock to the next due arrivals
            # so the run cannot falsely quiesce. Bounded retries — with
            # a permanently lossy underlay run_dry gives up and the run
            # ends non-converged, which the chaos outcome classifies.
            for _ in range(32):
                if not net.run_dry():
                    break
                event = self.scheduler.select(self)
                if event is not None:
                    break
        if event is None:
            return None

        kind = type(event)
        if kind is TimeoutEvent:
            executed = self._run_timeout(event.pid)
        elif kind is DeliverEvent:
            executed = self._run_delivery(event.pid, event.seq)
        else:  # pragma: no cover - scheduler contract
            raise ConfigurationError(f"unknown event {event!r}")

        self.step_count += 1
        self.stats.steps += 1
        self._stale = True
        live = self._live
        if live is not None and not self._live_stale:
            phi = live.phi
            last = self._last_phi_seen
            if last is None or phi > last:
                # First sample, or an out-of-band injection raised Φ:
                # rebase so only decreases from the new level count.
                self._last_phi_seen = phi
            elif phi < last:
                self._last_phi_seen = phi
                self._last_progress_step = self.step_count
        if self.tracer is not None:
            self.tracer.record(self, executed)
        monitors = self.monitors
        if monitors:
            # Anything a monitor mutates (a chaos campaign injecting
            # faults) is out-of-band even though it runs inside the step:
            # the mirror-core staleness checks in post() and
            # _observe_channel key off _stepping, so it must be False
            # here or verify mode would cross-check against a mirror
            # that never saw the injection.
            self._stepping = False
            for monitor in monitors:
                monitor(self, executed)
        return executed

    # -- per-action ref-delta plumbing ------------------------------------

    def _pre_action(self, proc: Process):
        """Pre-action ref bookkeeping for *proc*.

        Returns the fingerprint *before* image for the diff fallback, or
        ``None`` when the process's write-through log will supply the
        deltas (the O(1)-for-unchanged-refs fast path).
        """
        if self._live is None:
            return None
        if self._live_stale:
            # An out-of-band mutation (``_dirty``) scheduled a rebuild.
            # Do it now, before the action body runs: deferred any
            # further, the rebuild can fire mid-action (an oracle
            # connectivity query calls ``_ensure_live``), scan the
            # half-applied action and then double-count its deltas in
            # ``_post_action``.
            self._build_live()
        if proc.ref_tracking:
            pending = proc._ref_log.pending  # noqa: SLF001
            if pending:
                # Out-of-band mutations since the last drain (tests/tools
                # poking process state) are reconciled via the ``_dirty``
                # hook or a manual apply_explicit_diff; either way the
                # action starts from a clean log.
                pending.clear()
            if self._track:
                return None
        return explicit_fingerprint(proc)

    def _post_action(self, pid: int, proc: Process, before) -> None:
        """Commit the action's ref store/drop deltas to the live graph.

        Runs before the requested lifecycle ``_transition`` so an exit
        purges exactly the edges the action left behind.
        """
        live = self._live
        if live is None:
            return
        if self._live_stale:
            # An out-of-band mutation (``_dirty``) scheduled a full
            # rebuild that will re-scan this action's effects; applying
            # deltas now would hit pre-mutation edge keys.
            if proc.ref_tracking:
                proc._ref_log.pending.clear()  # noqa: SLF001
            return
        if before is None:
            pending = proc._ref_log.pending  # noqa: SLF001
            if pending:
                live.apply_ref_deltas(pid, pending)
                pending.clear()
            return
        if self._ref_verify and proc.ref_tracking:
            self._verify_ref_log(pid, proc, before)
        live.apply_explicit_diff(pid, before, proc)

    def _verify_ref_log(self, pid: int, proc: Process, before) -> None:
        """Differential oracle: the write-through log must equal the
        before/after fingerprint diff, key for key (``ref_mode="verify"``)."""
        after = explicit_fingerprint(proc)
        net: dict = {}
        for key, count in after.items():
            diff = count - before.get(key, 0)
            if diff:
                net[key] = diff
        for key, count in before.items():
            if key not in after:
                net[key] = -count
        log = proc._ref_log  # noqa: SLF001
        if net != log.pending:
            raise StateViolation(
                f"write-through ref log diverged from fingerprint diff for "
                f"pid {pid}: logged={log.pending!r} fingerprint={net!r}"
            )
        log.pending.clear()

    def _run_timeout(self, pid: int) -> ExecutedStep:
        proc = self.processes[pid]
        if proc.state is not PState.AWAKE:  # pragma: no cover - scheduler contract
            raise StateViolation(f"timeout selected for non-awake process {pid}")
        before = self._pre_action(proc)
        ctx = self._ctx
        ctx._reset(proc)  # noqa: SLF001 - engine owns context lifecycle
        proc.timeout(ctx)
        requested = ctx._close()  # noqa: SLF001
        # Ref store/drop deltas commit before the lifecycle change so
        # an exit purges exactly the edges the action left behind.
        self._post_action(pid, proc, before)
        if requested is not None:
            self._transition(proc, requested)
        stats = self.stats
        stats.timeouts += 1
        by = stats.timeouts_by
        try:
            by[pid] += 1
        except KeyError:
            by[pid] = 1
        if proc.state is PState.AWAKE:
            self.scheduler.notify_timeout_executed(pid, self.next_stamp())
        return ExecutedStep(self.step_count, "timeout", pid, None, None, proc.state)

    def _run_delivery(self, pid: int, seq: int) -> ExecutedStep:
        proc = self.processes[pid]
        if proc.state is PState.GONE:  # pragma: no cover - scheduler contract
            raise StateViolation(f"delivery selected for gone process {pid}")
        msg = self.channels[pid].remove(seq)
        self._stale = True
        prov = self.provenance
        if prov is not None:
            prov.begin_deliver(msg, pid, self.step_count)
        if proc.state is PState.ASLEEP:
            # Processing a message wakes an asleep process (Figure 1).
            self._transition(proc, PState.AWAKE)
        handler = proc.handler(msg.label)
        if handler is None:
            # "All other messages will be ignored by the processes."
            self.stats.dropped_unknown += 1
            if self.strict:
                raise UnknownActionError(
                    f"process {pid} ({type(proc).__name__}) has no action "
                    f"'{msg.label}'"
                )
        else:
            before = self._pre_action(proc)
            ctx = self._ctx
            ctx._reset(proc)  # noqa: SLF001
            handler(ctx, *msg.args)
            requested = ctx._close()  # noqa: SLF001
            self._post_action(pid, proc, before)
            if requested is not None:
                self._transition(proc, requested)
        if prov is not None:
            prov.end_action()
        stats = self.stats
        stats.deliveries += 1
        by = stats.deliveries_by
        try:
            by[pid] += 1
        except KeyError:
            by[pid] = 1
        return ExecutedStep(
            self.step_count, "deliver", pid, msg.label, seq, proc.state
        )

    def run(
        self,
        max_steps: int,
        *,
        until: Callable[["Engine"], bool] | None = None,
        check_every: int = 1,
        raise_on_budget: bool = False,
    ) -> bool:
        """Execute steps until *until* holds, quiescence, or the budget ends.

        Returns True iff *until* was satisfied (vacuously False when no
        predicate is given and the budget ran out). ``check_every`` spaces
        out predicate evaluation — legitimacy checks walk the whole graph,
        so evaluating every step would dominate large runs.

        In ``engine_mode="soa"`` eligible runs (no monitors/tracer/
        provenance/auditors, core-drivable scheduler) execute in batches
        on the struct-of-arrays core, exporting back into the object
        model at every predicate boundary and at the end; anything else
        falls back to the object loop. In ``"verify"`` mode the whole
        run additionally ends with a deep state cross-check.
        """

        if not self._attached:
            self.attach()
        if self._engine_mode == "soa":
            driver = self._soa_driver()
            if driver is not None:
                return self._run_soa(
                    max_steps,
                    driver,
                    until=until,
                    check_every=check_every,
                    raise_on_budget=raise_on_budget,
                )
        result = self._run_objects(
            max_steps,
            until=until,
            check_every=check_every,
            raise_on_budget=raise_on_budget,
        )
        if (
            self._engine_mode == "verify"
            and self._core is not None
            and not self._core_stale
        ):
            self._core.verify_full(self)
        return result

    def _run_objects(
        self,
        max_steps: int,
        *,
        until: Callable[["Engine"], bool] | None = None,
        check_every: int = 1,
        raise_on_budget: bool = False,
    ) -> bool:
        if until is not None and until(self):
            return True
        for i in range(max_steps):
            executed = self.step()
            if executed is None:  # quiescent: state can no longer change
                return until(self) if until is not None else False
            if until is not None and (i + 1) % check_every == 0 and until(self):
                return True
        # Final check only when the last loop iteration did not just
        # evaluate the predicate (max_steps == 0 was covered pre-loop,
        # and 0 % check_every == 0 skips it here too).
        if until is not None and max_steps % check_every != 0 and until(self):
            return True
        if raise_on_budget:
            raise ConvergenceError(
                f"predicate not reached within {max_steps} steps",
                stats=self.stats.as_dict(),
                diagnostics=self.progress_diagnostics(),
            )
        return False

    def _soa_driver(self) -> Any | None:
        """Scheduler driver for a batched soa run, or ``None`` to fall back.

        Observers (monitors, tracer, provenance, exit auditors) need the
        object model per step, so their presence forces the object loop.
        """
        if (
            self.monitors
            or self.tracer is not None
            or self.provenance is not None
            or self.exit_auditors
        ):
            return None
        if self._core_stale:
            self._rebuild_core()
        core = self._core
        if core is None:
            return None
        driver = core.cached_driver
        if driver is None or core.cached_driver_for is not self.scheduler:
            # One driver per core lifetime: after a run, splice() leaves
            # the scheduler and the mirror in agreement, and every path
            # that desynchronizes them marks the core stale (rebuilding
            # both). Rebuilding the mirror per run would rescan the pool.
            # A swapped-in scheduler (replay installs one post-build)
            # invalidates the cache by identity.
            from repro.sim.soa import make_driver

            driver = make_driver(self, core)
            core.cached_driver = driver
            core.cached_driver_for = self.scheduler
        return driver

    def _run_soa(
        self,
        max_steps: int,
        driver: Any,
        *,
        until: Callable[["Engine"], bool] | None = None,
        check_every: int = 1,
        raise_on_budget: bool = False,
    ) -> bool:
        """Batched run on the struct-of-arrays core.

        The core executes up to ``check_every`` steps per batch without
        touching the object model; at each predicate boundary (and at
        quiescence / budget end) :meth:`~repro.sim.soa.EngineCore.export_to`
        copies the full state back so *until* and all observation APIs see
        exactly what the object loop would have produced. A predicate that
        mutates engine state out-of-band marks the core stale, and the
        remainder of the budget finishes on the object loop.
        """
        core = self._core
        core.driver = driver
        try:
            if until is not None:
                if until(self):
                    return True
                if self._core_stale:
                    return self._run_objects(
                        max_steps,
                        until=until,
                        check_every=check_every,
                        raise_on_budget=raise_on_budget,
                    )
            i = 0
            while i < max_steps:
                if until is not None:
                    batch = min(check_every - (i % check_every), max_steps - i)
                else:
                    batch = max_steps - i
                executed = core.run_batch(batch)
                i += executed
                if executed < batch:  # quiescent: state can no longer change
                    core.export_to(self)
                    return until(self) if until is not None else False
                if until is not None and i % check_every == 0:
                    core.export_to(self)
                    if until(self):
                        return True
                    if self._core_stale:
                        # The predicate poked engine state; the core no
                        # longer mirrors it. Finish on the object loop.
                        return self._run_objects(
                            max_steps - i,
                            until=until,
                            check_every=check_every,
                            raise_on_budget=raise_on_budget,
                        )
            core.export_to(self)
            if until is not None and max_steps % check_every != 0 and until(self):
                return True
            if raise_on_budget:
                raise ConvergenceError(
                    f"predicate not reached within {max_steps} steps",
                    stats=self.stats.as_dict(),
                    diagnostics=self.progress_diagnostics(),
                )
            return False
        finally:
            core.driver = None

    def verify_core_state(self) -> bool:
        """Deep cross-check of the struct-of-arrays core against the
        object state (per-slot lifecycle, neighbor stores, anchors,
        channels, counters, Φ).

        Returns ``False`` when no core is active (``engine_mode=objects``
        or an ineligible population); raises
        :class:`~repro.errors.StateViolation` on any divergence.
        """
        if self._engine_mode == "objects":
            return False
        if not self._attached:
            self.attach()
        if self._core_stale:
            self._rebuild_core()
        if self._core is None:
            return False
        self._core.verify_full(self)
        return True

    # ------------------------------------------------------------------ snapshots

    def snapshot(self) -> ProcessGraph:
        """Snapshot of the current process multigraph (cached until the
        state next changes). Gone processes and their edges are excluded —
        exit removes a process and its incident edges from PG.

        In incremental mode the snapshot is materialized from the live
        counters on demand; in rebuild mode it is built by a full scan.
        Either way the result is the same immutable analysis view.
        """

        if not self._stale and self._snapshot_cache is not None:
            return self._snapshot_cache
        if self._graph_mode == "incremental":
            graph = self._ensure_live().materialize()
        else:
            graph = self.rebuild_snapshot()
        self._snapshot_cache = graph
        self._stale = False
        return graph

    def rebuild_snapshot(self) -> ProcessGraph:
        """Always build the snapshot by a from-scratch scan of processes
        and channels — the differential-testing oracle for the live
        graph, and the rebuild-mode implementation of :meth:`snapshot`."""

        nodes: list[NodeView] = []
        edges: list[Edge] = []
        for pid, proc in self.processes.items():
            if proc.state is PState.GONE:
                continue
            nodes.append(
                NodeView(
                    pid=pid,
                    mode=proc.mode,
                    state=proc.state,
                    channel_len=len(self.channels[pid]),
                )
            )
            for info in proc.stored_refs():
                edges.append(
                    Edge(pid, pid_of(info.ref), EdgeKind.EXPLICIT, info.mode)
                )
            for msg in self.channels[pid]:
                for info in msg.refinfos():
                    edges.append(
                        Edge(pid, pid_of(info.ref), EdgeKind.IMPLICIT, info.mode)
                    )
        return ProcessGraph(nodes, edges)

    # ------------------------------------------------------------------ oracles & Φ

    def partner_pids(self, pid: int, limit: int | None = None) -> set[int]:
        """Relevant processes (≠ *pid*) having an edge with *pid*, in either
        direction — the quantity the SINGLE oracle is defined over.

        Fast path: when no process is asleep (always true in FDP runs,
        where the sleep command does not exist), *relevant* equals
        *non-gone* and the partner set can be computed by a focused scan
        with early exits, avoiding full snapshot construction — profiling
        showed snapshot building dominating oracle-heavy runs. With
        sleepers present, hibernation analysis is required and the exact
        snapshot path is used instead.

        ``limit``: stop scanning once more than *limit* distinct partners
        are known and return the partial set. SINGLE only needs to know
        whether the count exceeds one, so it passes ``limit=1`` — under
        message backlogs this turns a full-system scan into a handful of
        lookups (profiled: the dominant cost of oracle-heavy runs).

        In incremental mode both arms read the live partner index
        instead of scanning: O(deg) always, and the sleeper test is an
        O(1) counter rather than an O(n) state scan.
        """

        if self._graph_mode == "incremental":
            if self.processes[pid].state is PState.GONE:
                return set()
            live = self._ensure_live()
            partners = live.partners(pid)
            if self.asleep_count:
                # Hibernation-aware path: SINGLE quantifies over the
                # relevant processes only.
                partners &= live.relevant()
            return partners
        if self.asleep_count:
            snap = self.snapshot()
            if pid not in snap:
                return set()
            return snap.partners(pid, within=snap.relevant() - {pid})
        me = self.processes[pid]
        if me.state is PState.GONE:
            return set()
        target = me.self_ref
        gone = {
            qpid
            for qpid, q in self.processes.items()
            if q.state is PState.GONE
        }
        partners: set[int] = set()

        def over_limit() -> bool:
            return limit is not None and len(partners - gone - {pid}) > limit

        # Outgoing edges: everything we store or that sits in our channel.
        for info in me.stored_refs():
            partners.add(pid_of(info.ref))
            if over_limit():
                return partners - gone - {pid}
        for msg in self.channels[pid]:
            for info in msg.refinfos():
                partners.add(pid_of(info.ref))
            if over_limit():
                return partners - gone - {pid}
        # Incoming edges: who stores/carries our reference (early exit per
        # process — one hit is enough).
        for qpid, q in self.processes.items():
            if qpid == pid or qpid in partners or qpid in gone:
                continue
            found = any(info.ref == target for info in q.stored_refs())
            if not found:
                for msg in self.channels[qpid]:
                    if any(info.ref == target for info in msg.refinfos()):
                        found = True
                        break
            if found:
                partners.add(qpid)
                if over_limit():
                    break
        return partners - gone - {pid}

    def oracle_value(self, pid: int) -> bool:
        """Evaluate the configured oracle for process *pid*."""
        if self._oracle is None:
            raise ConfigurationError(
                "no oracle configured but the protocol consulted one"
            )
        self.stats.oracle_queries += 1
        verdict = self._oracle(self, pid)
        if verdict:
            self.stats.oracle_true += 1
        return verdict

    def potential(self) -> int:
        """The potential Φ of Lemma 3: number of (explicit or implicit)
        edges ``(x, y)`` whose attached belief differs from ``mode(y)``.

        O(1) in incremental mode (a running counter bucketed by target
        pid); a full snapshot scan in rebuild mode.
        """

        if self._graph_mode == "incremental":
            return self._ensure_live().phi
        snap = self.snapshot()
        return sum(1 for _ in snap.iter_invalid_edges(self.actual_mode))

    def relevant_pids(self) -> frozenset[int]:
        """Pids of relevant (non-gone, non-hibernating) processes."""
        if self._graph_mode == "incremental":
            return self._ensure_live().relevant()
        return self.snapshot().relevant()

    def members_weakly_connected(self, members: frozenset[int]) -> bool:
        """Whether *members* (all relevant) lie in one weakly connected
        component of the relevant process graph — the per-initial-
        component invariant of Lemma 2, served without a snapshot.

        Sleeper-free incremental runs answer via the epoch union-find
        (exact: components never merge under copy-store-send protocols,
        so every path between members stays inside their component).
        With sleepers present the induced check runs directly on the
        live adjacency, excluding hibernating processes but allowing
        paths through relevant mid-run admissions — a joiner attaches
        by edge to one component, so it can legitimately become the
        joint holding two seed members' references together (the
        closed-system members-only reading would flag that as a
        phantom Lemma 2 violation).
        """

        if len(members) <= 1:
            return True
        admitted = frozenset(self.processes) - self.initial_pids
        if self._graph_mode == "incremental":
            live = self._ensure_live()
            if self.asleep_count == 0:
                return live.same_component(members)
            via = (live.relevant() & admitted) if admitted else frozenset()
            return live.induced_connected(members, via=via)
        snap = self.snapshot()
        return snap.is_weakly_connected_within(
            members, members | (snap.relevant() & admitted)
        )

    # ------------------------------------------------------------------ reporting

    def states(self) -> dict[int, PState]:
        """Map pid → lifecycle state for all processes (including gone)."""
        return {pid: proc.state for pid, proc in self.processes.items()}

    def alive_pids(self) -> list[int]:
        """Pids of non-gone processes."""
        return [p for p, proc in self.processes.items() if proc.state is not PState.GONE]

    def describe(self) -> dict[str, Any]:
        """Diagnostic summary of the current system state.

        Cheap enough for hot loops in incremental mode: ``edges``,
        ``pending_messages`` and ``potential`` come straight from the
        live counters and the lifecycle tallies are O(1), so no snapshot
        is built.
        """

        if self._graph_mode == "incremental":
            live = self._ensure_live()
            edges = live.edge_total
            pending = live.pending_total
            phi = live.phi
        else:
            snap = self.snapshot()
            edges = len(snap.edges)
            pending = sum(len(ch) for ch in self.channels.values())
            phi = self.potential()
        # Lifecycle tallies come from the maintained counters in both
        # graph modes — describe() never scans the population.
        gone = self.gone_count
        asleep = self.asleep_count
        return {
            "step": self.step_count,
            # Current population — under open-system churn this is not a
            # constant: admissions grow it and reaps shrink it.
            "processes": len(self.processes),
            "admitted": self.admitted_count,
            "reaped": self.reaped_count,
            "gone": gone,
            "asleep": asleep,
            "edges": edges,
            "pending_messages": pending,
            "potential": phi,
            "stats": self.stats.as_dict(),
        }
