"""Parameter sweeps: grids of scenario configurations for experiments.

A sweep crosses named parameter axes, runs a seed series per grid point
(via :mod:`repro.analysis.runner`) and collects rows ready for
:func:`repro.analysis.tables.format_table`. Deterministic: the seeds of a
grid point are derived from the point's position and the base seed.

Parallel sweeps share **one** :class:`~repro.analysis.runner.TrialFabric`
across the whole grid: the worker pool is spawned and warmed once, then
every grid point's seed chunks are fed to the same resident workers.
Before the fabric, each grid point paid a fresh pool spawn — for E6-style
grids that cost dominated the actual simulation time.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.analysis.runner import SeriesResult, TrialFabric, run_series
from repro.sim.engine import Engine

__all__ = ["SweepPoint", "sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's configuration and aggregated result."""

    params: dict[str, Any]
    result: SeriesResult

    def row(self, metrics: Sequence[str] = ("rate", "steps", "messages")) -> list:
        """Flatten into a table row: parameter values then chosen metrics."""
        out: list[Any] = list(self.params.values())
        if "rate" in metrics:
            out.append(self.result.convergence_rate)
        if "steps" in metrics:
            out.append(self.result.steps_summary()["median"])
        if "messages" in metrics:
            out.append(self.result.messages_summary()["median"])
        return out


def sweep(
    axes: Mapping[str, Sequence[Any]],
    make_builder: Callable[..., Callable[[int], Engine]],
    *,
    until: Callable[[Engine], bool],
    max_steps: int,
    seeds_per_point: int = 5,
    base_seed: int = 0,
    check_every: int = 64,
    collect: Callable[[Engine], dict[str, Any]] | None = None,
    parallel: bool | None = None,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    on_error: str = "raise",
) -> list[SweepPoint]:
    """Cross the axes and run a seed series at every grid point.

    ``make_builder(**params)`` must return a picklable ``seed -> Engine``
    callable (for the multiprocessing path use module-level functions or
    ``functools.partial`` over module-level functions).

    When the parallel path is taken, a single warm :class:`TrialFabric`
    serves every grid point; it is closed when the sweep finishes (or
    aborts). ``on_error`` is forwarded to :func:`run_series`.
    """

    names = list(axes.keys())
    grid = [
        dict(zip(names, combo, strict=True))
        for combo in itertools.product(*(axes[n] for n in names))
    ]
    if parallel is None:
        total = len(grid) * seeds_per_point
        parallel = (os.cpu_count() or 1) > 1 and total > 3
    fabric = TrialFabric(max_workers, chunk_size) if parallel else None
    points: list[SweepPoint] = []
    try:
        for idx, params in enumerate(grid):
            builder = make_builder(**params)
            seeds = [base_seed + idx * 10_000 + i for i in range(seeds_per_point)]
            result = run_series(
                builder,
                seeds,
                until=until,
                max_steps=max_steps,
                check_every=check_every,
                collect=collect,
                parallel=parallel,
                fabric=fabric,
                on_error=on_error,
            )
            points.append(SweepPoint(params=params, result=result))
    finally:
        if fabric is not None:
            fabric.close()
    return points
