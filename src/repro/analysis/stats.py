"""Statistics helpers for experiment reporting.

Thin, numpy-vectorized utilities: bootstrap confidence intervals for
medians (convergence-time distributions are skewed, so medians + CIs are
the honest summary), simple log-log slope fits for scaling experiments
(is convergence ~n, ~n log n, ~n²?), and monotonicity checks for the
potential-function series.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "bootstrap_median_ci",
    "loglog_slope",
    "is_nonincreasing",
    "normalized_area_under",
]


def bootstrap_median_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """(median, lo, hi) bootstrap confidence interval of the median."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return (float("nan"),) * 3
    rng = np.random.default_rng(seed)
    # Vectorized resampling: one (n_boot, n) index matrix, no Python loop.
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    medians = np.median(arr[idx], axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(medians, [alpha, 1.0 - alpha])
    return float(np.median(arr)), float(lo), float(hi)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    Used by scaling experiments: slope ≈ 1 means linear growth, ≈ 2
    quadratic, etc. Requires positive data; non-positive pairs are
    dropped.
    """

    x = np.asarray(list(xs), dtype=np.float64)
    y = np.asarray(list(ys), dtype=np.float64)
    mask = (x > 0) & (y > 0) & np.isfinite(x) & np.isfinite(y)
    x, y = x[mask], y[mask]
    if x.size < 2:
        return float("nan")
    lx, ly = np.log(x), np.log(y)
    slope, _intercept = np.polyfit(lx, ly, 1)
    return float(slope)


def is_nonincreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """Whether the series never rises by more than *tolerance*.

    The executable form of Lemma 3's Φ-monotonicity claim, applied to
    sampled series from :class:`~repro.sim.tracing.SeriesRecorder`.
    """

    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size < 2:
        return True
    return bool(np.all(np.diff(arr) <= tolerance))


def normalized_area_under(steps: Sequence[float], values: Sequence[float]) -> float:
    """Trapezoidal area under a series, normalized by its span.

    A scalar "how long did invalid information persist" summary for Φ
    decay curves; comparable across runs of different lengths.
    """

    x = np.asarray(list(steps), dtype=np.float64)
    y = np.asarray(list(values), dtype=np.float64)
    if x.size < 2 or x[-1] == x[0]:
        return float(y.mean()) if y.size else float("nan")
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy<2 compat
    return float(trapezoid(y, x) / (x[-1] - x[0]))
