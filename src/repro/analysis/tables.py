"""ASCII tables and series rendering for experiment reports.

The benchmark harness prints paper-style tables and series to stdout (the
environment is headless, so "figures" are rendered as aligned numeric
series plus a coarse unicode sparkline). Everything here is pure string
formatting — no I/O — so tests can assert on the output.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["format_table", "format_series", "sparkline", "format_kv"]

_BARS = "▁▂▃▄▅▆▇█"


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "—"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    if isinstance(value, bool):
        return "✓" if value else "✗"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=False))
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Coarse unicode sparkline of a numeric series (empty-safe)."""
    vals = [v for v in values if v == v]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _BARS[0] * len(vals)
    out = []
    for v in values:
        if v != v:
            out.append(" ")
            continue
        idx = int((v - lo) / (hi - lo) * (len(_BARS) - 1))
        out.append(_BARS[idx])
    return "".join(out)


def format_series(
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render one or more y-series against a shared x-axis, plus sparklines.

    This is the textual stand-in for a paper figure: the numeric rows give
    the exact values, the sparkline gives the shape at a glance.
    """

    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(s[i] if i < len(s) else float("nan") for s in series.values())])
    table = format_table(headers, rows, title=title)
    shapes = "\n".join(
        f"  {name:<20} {sparkline(list(vals))}" for name, vals in series.items()
    )
    return f"{table}\n\nshape:\n{shapes}"


def format_kv(pairs: dict[str, Any], title: str | None = None) -> str:
    """Render a key/value block (run summaries, config echoes)."""
    width = max((len(k) for k in pairs), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {_fmt_cell(v)}")
    return "\n".join(lines)
