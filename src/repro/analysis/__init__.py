"""Experiment harness: trial runner, sweeps, statistics, table and graph
rendering, churn simulation."""

from repro.analysis.churn import ChurnSimulation, EpochResult
from repro.analysis.render import render_adjacency_list, render_matrix, render_modes
from repro.analysis.runner import SeriesResult, TrialResult, run_series, run_trial
from repro.analysis.stats import (
    bootstrap_median_ci,
    is_nonincreasing,
    loglog_slope,
    normalized_area_under,
)
from repro.analysis.sweep import SweepPoint, sweep
from repro.analysis.tables import format_kv, format_series, format_table, sparkline

__all__ = [
    "ChurnSimulation",
    "EpochResult",
    "SeriesResult",
    "SweepPoint",
    "TrialResult",
    "bootstrap_median_ci",
    "format_kv",
    "format_series",
    "format_table",
    "is_nonincreasing",
    "loglog_slope",
    "normalized_area_under",
    "render_adjacency_list",
    "render_matrix",
    "render_modes",
    "run_series",
    "run_trial",
    "sparkline",
    "sweep",
]
