"""Epoch-based churn simulation over the departure framework.

The paper's model fixes each process's mode for the whole computation, so
continuous churn is modelled as a sequence of *epochs*: each epoch marks
a fresh subset of the current survivors as leaving, re-wires the
survivors with the overlay the previous epoch converged to, optionally
re-injects transient faults, and runs P′ = framework(P) until Theorem 4's
obligations hold again (all leavers gone ∧ P's topology re-established).

This is the library form of ``examples/churn_p2p_network.py`` and the
workload generator behind long-horizon robustness studies: how many
epochs of x%-churn can an overlay absorb, and at what per-epoch cost?
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from collections.abc import Sequence

from repro.core.potential import fdp_legitimate
from repro.core.scenarios import CLEAN, Corruption, build_framework_engine
from repro.errors import ConvergenceError
from repro.graphs.snapshot import EdgeKind
from repro.sim.engine import Engine

__all__ = ["EpochResult", "ChurnSimulation"]


@dataclass(frozen=True)
class EpochResult:
    """Outcome of one churn epoch."""

    epoch: int
    population: int
    leavers: int
    converged: bool
    steps: int
    messages: int
    survivors: tuple[int, ...]  # original pids that remain


class ChurnSimulation:
    """Drives an overlay population through leave-waves.

    Parameters
    ----------
    logic_cls:
        The overlay protocol P (an :class:`~repro.overlays.base.OverlayLogic`
        subclass) to keep maintaining between and during departures.
    n, edges:
        Initial population size and topology.
    churn_rate:
        Per-epoch probability that a surviving process requests to leave.
    corruption:
        Transient-fault level re-injected at each epoch boundary.
    seed:
        Master seed; everything downstream is derived deterministically.
    """

    def __init__(
        self,
        logic_cls,
        n: int,
        edges: Sequence[tuple[int, int]],
        *,
        churn_rate: float = 0.2,
        corruption: Corruption = CLEAN,
        seed: int = 0,
        max_steps_per_epoch: int = 2_000_000,
    ) -> None:
        if not 0.0 <= churn_rate < 1.0:
            raise ValueError("churn_rate must lie in [0, 1)")
        self.logic_cls = logic_cls
        self.churn_rate = churn_rate
        self.corruption = corruption
        self.max_steps_per_epoch = max_steps_per_epoch
        self._rng = Random(seed)
        self._seed = seed
        #: original pids still alive, and the current topology over them
        self.pids: list[int] = list(range(n))
        self.edges: list[tuple[int, int]] = [
            (a, b) for a, b in edges if a != b
        ]
        self.results: list[EpochResult] = []

    # ------------------------------------------------------------------ steps

    def _pick_leavers(self, k: int) -> set[int]:
        leavers = {i for i in range(k) if self._rng.random() < self.churn_rate}
        if len(leavers) >= k:  # keep at least one stayer
            leavers.discard(min(leavers))
        return leavers

    def run_epoch(self) -> EpochResult:
        """Run one leave-wave; returns (and records) its result.

        Raises :class:`~repro.errors.ConvergenceError` if the epoch's step
        budget is exhausted — churn simulations should fail loudly, since
        every later epoch builds on this one's converged overlay.
        """

        epoch = len(self.results)
        remap = {pid: i for i, pid in enumerate(self.pids)}
        edges = [
            (remap[a], remap[b])
            for a, b in self.edges
            if a in remap and b in remap
        ]
        k = len(self.pids)
        leavers = self._pick_leavers(k)
        engine = build_framework_engine(
            k,
            edges,
            leavers,
            self.logic_cls,
            seed=self._seed + 7919 * epoch,
            corruption=self.corruption,
        )

        def done(e: Engine) -> bool:
            return fdp_legitimate(e) and self.logic_cls.target_reached(e)

        converged = engine.run(
            self.max_steps_per_epoch, until=done, check_every=256
        )
        if not converged:
            raise ConvergenceError(
                f"churn epoch {epoch} failed to converge",
                stats=engine.stats.as_dict(),
            )
        snap = engine.snapshot()
        staying_local = snap.staying()
        inverse = {i: pid for pid, i in remap.items()}
        survivors = tuple(
            sorted(inverse[i] for i in staying_local)
        )
        self.edges = [
            (inverse[e.src], inverse[e.dst])
            for e in snap.edges
            if e.kind is EdgeKind.EXPLICIT
            and e.src in staying_local
            and e.dst in staying_local
        ]
        self.pids = list(survivors)
        result = EpochResult(
            epoch=epoch,
            population=k,
            leavers=len(leavers),
            converged=converged,
            steps=engine.step_count,
            messages=engine.stats.messages_posted,
            survivors=survivors,
        )
        self.results.append(result)
        return result

    def run(self, epochs: int, *, min_population: int = 4) -> list[EpochResult]:
        """Run up to *epochs* epochs, stopping early below *min_population*."""
        for _ in range(epochs):
            if len(self.pids) < min_population:
                break
            self.run_epoch()
        return self.results

    # ------------------------------------------------------------------ report

    def rows(self) -> list[list]:
        """Table rows for :func:`repro.analysis.tables.format_table`."""
        return [
            [r.epoch, r.population, r.leavers, r.converged, r.steps, r.messages,
             len(r.survivors)]
            for r in self.results
        ]
