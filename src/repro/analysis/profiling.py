"""Profiling hooks: measure before optimizing (per the HPC guides).

Small wrappers around :mod:`cProfile` and :mod:`time` so experiments can
answer "where does simulation time go?" without ceremony. The headline
insight already baked into the engine — snapshot construction dominating
naive per-step monitoring — came from exactly these hooks; they stay in
the library so future changes can be re-measured instead of guessed at.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable

__all__ = [
    "profile_call",
    "profile_scenario",
    "Stopwatch",
    "time_block",
    "TimedMonitor",
    "observation_cost",
]


def profile_call(
    fn: Callable, *args, top: int = 15, sort: str = "cumulative", **kwargs
) -> tuple[object, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where *report* is the top-``top`` lines
    sorted by *sort* — ready to print or log.
    """

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return result, buf.getvalue()


def profile_scenario(
    scenario: str = "fdp",
    n: int = 128,
    *,
    steps: int = 5_000,
    seed: int = 7,
    leaving_fraction: float = 0.3,
    monitored: bool = False,
    top: int = 20,
    sort: str = "cumulative",
) -> dict:
    """cProfile one standard scenario run (the ``repro profile`` command).

    Builds the same heavily corrupted random-connected scenario the
    throughput benchmarks use — FDP or FSP — optionally with the per-step
    Lemma 2/3 monitors attached, runs it for up to *steps* steps under
    cProfile, and returns the run facts plus the formatted ``report``.
    This is the first stop when a change regresses ``BENCH_step_loop``:
    the top of the report names the function that grew.
    """
    from repro.core.potential import fdp_legitimate, fsp_legitimate
    from repro.core.scenarios import (
        HEAVY_CORRUPTION,
        build_fdp_engine,
        build_fsp_engine,
        choose_leaving,
    )
    from repro.graphs import generators as gen
    from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor

    if scenario not in ("fdp", "fsp"):
        raise ValueError(f"scenario must be 'fdp' or 'fsp', not {scenario!r}")
    build = build_fdp_engine if scenario == "fdp" else build_fsp_engine
    until = fdp_legitimate if scenario == "fdp" else fsp_legitimate
    edges = gen.random_connected(n, extra_edges=n // 2, seed=seed)
    leaving = choose_leaving(n, edges, fraction=leaving_fraction, seed=seed)
    monitors = (
        [ConnectivityMonitor(check_every=1), PotentialMonitor(check_every=1)]
        if monitored
        else []
    )
    engine = build(
        n,
        edges,
        leaving,
        seed=seed,
        corruption=HEAVY_CORRUPTION,
        monitors=monitors,
    )
    engine.attach()
    start = time.perf_counter()
    converged, report = profile_call(
        engine.run, steps, until=until, check_every=256, top=top, sort=sort
    )
    wall = time.perf_counter() - start
    executed = engine.step_count
    return {
        "scenario": scenario,
        "n": n,
        "monitored": monitored,
        "steps": executed,
        "wall_s": round(wall, 4),
        "steps_per_s": round(executed / wall, 1) if wall > 0 else 0.0,
        "converged": converged,
        "report": report,
    }


@dataclass
class Stopwatch:
    """Accumulates named wall-clock timings across repeated sections."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def report(self) -> str:
        lines = ["section                    total_s     calls   per_call_ms"]
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            total = self.totals[name]
            count = self.counts[name]
            lines.append(
                f"{name:<25} {total:>9.3f} {count:>9d} {1000 * total / count:>12.3f}"
            )
        return "\n".join(lines)


@contextmanager
def time_block(label: str, sink: Callable[[str], None] = print):
    """Time one block and hand ``'label: 12.3 ms'`` to *sink*."""
    start = time.perf_counter()
    try:
        yield
    finally:
        sink(f"{label}: {(time.perf_counter() - start) * 1000:.1f} ms")


@dataclass
class TimedMonitor:
    """Wraps an engine monitor, accumulating its wall-clock cost.

    Attach ``TimedMonitor(ConnectivityMonitor(1))`` instead of the bare
    monitor and afterwards read ``elapsed``/``calls`` to know how much of
    a run went into *observation* (invariant checking) as opposed to
    simulation proper. This is the instrument behind the engine's
    rebuild-vs-incremental comparison: same protocol work, different
    observation cost.
    """

    inner: Callable
    elapsed: float = 0.0
    calls: int = 0

    def __call__(self, engine, executed) -> None:
        start = time.perf_counter()
        try:
            self.inner(engine, executed)
        finally:
            self.elapsed += time.perf_counter() - start
            self.calls += 1


def observation_cost(
    n: int,
    graph_mode: str,
    *,
    steps: int = 2_000,
    seed: int = 7,
    leaving_fraction: float = 0.3,
) -> dict:
    """Measure the observation-time split of one monitored FDP run.

    Builds a heavily corrupted FDP scenario with per-step
    ``ConnectivityMonitor`` + ``PotentialMonitor`` (``check_every=1`` —
    the worst case the incremental graph path exists for), runs up to
    *steps* steps under the requested ``graph_mode``, and reports wall
    time, steps/second, and the seconds spent inside the monitors.

    Identical seed and scenario across modes, so two calls differing only
    in ``graph_mode`` isolate the cost of rebuild-on-read observation.
    """
    from repro.core.potential import fdp_legitimate
    from repro.core.scenarios import (
        HEAVY_CORRUPTION,
        build_fdp_engine,
        choose_leaving,
    )
    from repro.graphs import generators as gen
    from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor

    edges = gen.random_connected(n, extra_edges=n // 2, seed=seed)
    leaving = choose_leaving(n, edges, fraction=leaving_fraction, seed=seed)
    monitors = [
        TimedMonitor(ConnectivityMonitor(check_every=1)),
        TimedMonitor(PotentialMonitor(check_every=1)),
    ]
    engine = build_fdp_engine(
        n,
        edges,
        leaving,
        seed=seed,
        corruption=HEAVY_CORRUPTION,
        monitors=monitors,
        graph_mode=graph_mode,
    )
    engine.attach()
    start = time.perf_counter()
    converged = engine.run(steps, until=fdp_legitimate, check_every=256)
    wall = time.perf_counter() - start
    observe = sum(m.elapsed for m in monitors)
    executed = engine.step_count
    return {
        "mode": graph_mode,
        "n": n,
        "steps": executed,
        "wall_s": round(wall, 4),
        "steps_per_s": round(executed / wall, 1) if wall > 0 else 0.0,
        "observe_s": round(observe, 4),
        "observe_frac": round(observe / wall, 4) if wall > 0 else 0.0,
        "monitor_calls": sum(m.calls for m in monitors),
        "converged": converged,
        "phi": engine.potential(),
    }
