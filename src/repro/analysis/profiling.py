"""Profiling hooks: measure before optimizing (per the HPC guides).

Small wrappers around :mod:`cProfile` and :mod:`time` so experiments can
answer "where does simulation time go?" without ceremony. The headline
insight already baked into the engine — snapshot construction dominating
naive per-step monitoring — came from exactly these hooks; they stay in
the library so future changes can be re-measured instead of guessed at.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["profile_call", "Stopwatch", "time_block"]


def profile_call(
    fn: Callable, *args, top: int = 15, sort: str = "cumulative", **kwargs
) -> tuple[object, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where *report* is the top-``top`` lines
    sorted by *sort* — ready to print or log.
    """

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return result, buf.getvalue()


@dataclass
class Stopwatch:
    """Accumulates named wall-clock timings across repeated sections."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def report(self) -> str:
        lines = ["section                    total_s     calls   per_call_ms"]
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            total = self.totals[name]
            count = self.counts[name]
            lines.append(
                f"{name:<25} {total:>9.3f} {count:>9d} {1000 * total / count:>12.3f}"
            )
        return "\n".join(lines)


@contextmanager
def time_block(label: str, sink: Callable[[str], None] = print):
    """Time one block and hand ``'label: 12.3 ms'`` to *sink*."""
    start = time.perf_counter()
    try:
        yield
    finally:
        sink(f"{label}: {(time.perf_counter() - start) * 1000:.1f} ms")
