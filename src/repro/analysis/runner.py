"""Trial runner: execute scenario replicas and collect convergence metrics.

A *trial* is one fully-specified run (scenario builder + seed + budget); a
*series* is many trials differing only in seed. The runner is the
experiment harness's engine room: deterministic, budget-bounded, and —
following the HPC guides — embarrassingly parallel across trials via
``multiprocessing`` when the host has cores to spare (trial functions and
their arguments must then be picklable: use module-level scenario
functions, as the benchmark suite does).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.sim.engine import Engine

__all__ = ["TrialResult", "SeriesResult", "run_trial", "run_series"]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one run."""

    converged: bool
    steps: int
    stats: dict[str, int]
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def messages(self) -> int:
        return self.stats.get("messages_posted", 0)

    @property
    def exits(self) -> int:
        return self.stats.get("exits", 0)


@dataclass
class SeriesResult:
    """Aggregated outcomes of a seed series (vectorized with numpy)."""

    trials: list[TrialResult]

    @property
    def n(self) -> int:
        return len(self.trials)

    @property
    def convergence_rate(self) -> float:
        if not self.trials:
            return 0.0
        return float(np.mean([t.converged for t in self.trials]))

    def _converged_values(self, getter: Callable[[TrialResult], float]) -> np.ndarray:
        vals = [getter(t) for t in self.trials if t.converged]
        return np.asarray(vals, dtype=np.float64)

    def steps_summary(self) -> dict[str, float]:
        """min/median/mean/p90/max steps among converged trials."""
        return _summary(self._converged_values(lambda t: t.steps))

    def messages_summary(self) -> dict[str, float]:
        """min/median/mean/p90/max messages among converged trials."""
        return _summary(self._converged_values(lambda t: t.messages))

    def extra_summary(self, key: str) -> dict[str, float]:
        """Summary over a numeric ``extra`` field of converged trials."""
        return _summary(
            self._converged_values(lambda t: float(t.extra.get(key, float("nan"))))
        )


def _summary(values: np.ndarray) -> dict[str, float]:
    if values.size == 0:
        return {k: float("nan") for k in ("min", "median", "mean", "p90", "max")}
    return {
        "min": float(values.min()),
        "median": float(np.median(values)),
        "mean": float(values.mean()),
        "p90": float(np.percentile(values, 90)),
        "max": float(values.max()),
    }


def run_trial(
    build: Callable[[int], Engine],
    seed: int,
    *,
    until: Callable[[Engine], bool],
    max_steps: int,
    check_every: int = 64,
    collect: Callable[[Engine], dict[str, Any]] | None = None,
) -> TrialResult:
    """Build the engine for *seed*, run it to *until* or the budget."""
    engine = build(seed)
    converged = engine.run(max_steps, until=until, check_every=check_every)
    return TrialResult(
        converged=converged,
        steps=engine.step_count,
        stats=engine.stats.as_dict(),
        extra=collect(engine) if collect is not None else {},
    )


def _trial_star(args: tuple) -> TrialResult:  # helper for ProcessPoolExecutor
    build, seed, until, max_steps, check_every, collect = args
    return run_trial(
        build,
        seed,
        until=until,
        max_steps=max_steps,
        check_every=check_every,
        collect=collect,
    )


def run_series(
    build: Callable[[int], Engine],
    seeds: Iterable[int],
    *,
    until: Callable[[Engine], bool],
    max_steps: int,
    check_every: int = 64,
    collect: Callable[[Engine], dict[str, Any]] | None = None,
    parallel: bool | None = None,
) -> SeriesResult:
    """Run one trial per seed; optionally fan out over processes.

    ``parallel=None`` auto-enables multiprocessing when >1 CPU is
    available and more than 3 seeds are requested (the pool's spawn cost
    isn't worth it below that — measured, not guessed, per the guides).
    """

    seeds = list(seeds)
    if parallel is None:
        parallel = (os.cpu_count() or 1) > 1 and len(seeds) > 3
    if not parallel:
        trials = [
            run_trial(
                build,
                s,
                until=until,
                max_steps=max_steps,
                check_every=check_every,
                collect=collect,
            )
            for s in seeds
        ]
        return SeriesResult(trials)
    payload = [(build, s, until, max_steps, check_every, collect) for s in seeds]
    with ProcessPoolExecutor() as pool:
        trials = list(pool.map(_trial_star, payload))
    return SeriesResult(trials)
