"""Trial runner: execute scenario replicas and collect convergence metrics.

A *trial* is one fully-specified run (scenario builder + seed + budget); a
*series* is many trials differing only in seed. The runner is the
experiment harness's engine room: deterministic, budget-bounded, and —
following the HPC guides — embarrassingly parallel across trials.

Parallel execution runs on a :class:`TrialFabric`: a *persistent* worker
pool whose workers are warmed once (the scenario registry is imported by
the pool initializer, not re-imported per task) and fed *seed-chunked*
batches instead of one pickled task per trial. Chunk assignment is a pure
function of the seed list and the chunk size, results are reassembled in
chunk order, and failures inside a worker come back as structured
:class:`TrialResult` errors rather than killing the pool — which is what
makes ``parallel=True`` and ``parallel=False`` produce identical result
sequences for the same seeds (tested property, not an aspiration).

Builders and predicates crossing the process boundary must be picklable:
use module-level scenario functions, as the benchmark suite does.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable
from typing import Any

import numpy as np

from repro.errors import TrialTimeout
from repro.sim.engine import Engine

__all__ = [
    "TrialResult",
    "SeriesResult",
    "TrialFabric",
    "run_trial",
    "run_series",
]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one run.

    ``error`` is ``None`` for clean trials; a worker that hit an
    exception (safety violation, builder bug) reports it here as
    ``"ExcType: message"`` instead of tearing down the pool — a failed
    trial is data, not a crash. Budget exhaustion is *not* an error:
    it comes back as ``converged=False`` with ``error=None``.
    """

    converged: bool
    steps: int
    stats: dict[str, int]
    extra: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    error: str | None = None

    @property
    def messages(self) -> int:
        return self.stats.get("messages_posted", 0)

    @property
    def exits(self) -> int:
        return self.stats.get("exits", 0)

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class SeriesResult:
    """Aggregated outcomes of a seed series (vectorized with numpy)."""

    trials: list[TrialResult]

    @property
    def n(self) -> int:
        return len(self.trials)

    @property
    def failures(self) -> list[TrialResult]:
        """Trials that errored inside a worker (structured failures)."""
        return [t for t in self.trials if t.error is not None]

    @property
    def convergence_rate(self) -> float:
        if not self.trials:
            return 0.0
        return float(np.mean([t.converged for t in self.trials]))

    def _converged_values(self, getter: Callable[[TrialResult], float]) -> np.ndarray:
        vals = [getter(t) for t in self.trials if t.converged]
        return np.asarray(vals, dtype=np.float64)

    def steps_summary(self) -> dict[str, float]:
        """min/median/mean/p90/max steps among converged trials."""
        return _summary(self._converged_values(lambda t: t.steps))

    def messages_summary(self) -> dict[str, float]:
        """min/median/mean/p90/max messages among converged trials."""
        return _summary(self._converged_values(lambda t: t.messages))

    def extra_summary(self, key: str) -> dict[str, float]:
        """Summary over a numeric ``extra`` field of converged trials."""
        return _summary(
            self._converged_values(lambda t: float(t.extra.get(key, float("nan"))))
        )


def _summary(values: np.ndarray) -> dict[str, float]:
    if values.size == 0:
        return {k: float("nan") for k in ("min", "median", "mean", "p90", "max")}
    return {
        "min": float(values.min()),
        "median": float(np.median(values)),
        "mean": float(values.mean()),
        "p90": float(np.percentile(values, 90)),
        "max": float(values.max()),
    }


def _deadline_until(
    until: Callable[[Engine], bool] | None,
    deadline: float,
    budget: float,
) -> Callable[[Engine], bool]:
    """Wrap *until* with a wall-clock check (resolution: ``check_every``)."""

    def wrapped(engine: Engine) -> bool:
        if time.monotonic() > deadline:
            raise TrialTimeout(
                f"trial exceeded its {budget:g}s wall-clock budget at step "
                f"{engine.step_count}"
            )
        return until(engine) if until is not None else False

    return wrapped


def run_trial(
    build: Callable[[int], Engine],
    seed: int,
    *,
    until: Callable[[Engine], bool],
    max_steps: int,
    check_every: int = 64,
    collect: Callable[[Engine], dict[str, Any]] | None = None,
    capture_errors: bool = False,
    timeout: float | None = None,
) -> TrialResult:
    """Build the engine for *seed*, run it to *until* or the budget.

    With ``capture_errors=True`` any exception becomes a structured
    :class:`TrialResult` (``error`` set, ``converged=False``, the step
    count and stats preserved as far as the run got) — the form fabric
    workers use so one bad trial cannot kill the pool.

    *timeout* bounds the trial in wall-clock seconds, checked alongside
    the predicate every ``check_every`` steps (a step budget alone does
    not protect a sweep from one pathological scenario whose *steps* are
    slow). Exceeding it raises :class:`~repro.errors.TrialTimeout` —
    captured like any structured failure under ``capture_errors``. Note
    that timeouts are wall-clock facts: unlike every other field, their
    presence may differ between machines (never between the serial and
    parallel paths *given* the same timings, but bit-identity guarantees
    only hold for ``timeout=None``).
    """
    engine: Engine | None = None
    try:
        engine = build(seed)
        run_until = until
        if timeout is not None:
            run_until = _deadline_until(
                until, time.monotonic() + timeout, timeout
            )
        converged = engine.run(
            max_steps, until=run_until, check_every=check_every
        )
        return TrialResult(
            converged=converged,
            steps=engine.step_count,
            stats=engine.stats.as_dict(),
            extra=collect(engine) if collect is not None else {},
            seed=seed,
        )
    except Exception as exc:  # noqa: BLE001 - structured failure surface
        if not capture_errors:
            raise
        return TrialResult(
            converged=False,
            steps=engine.step_count if engine is not None else 0,
            stats=engine.stats.as_dict() if engine is not None else {},
            extra={},
            seed=seed,
            error=f"{type(exc).__name__}: {exc}",
        )


# ---------------------------------------------------------------------------
# the persistent-worker execution fabric


@dataclass(frozen=True)
class _TrialSpec:
    """Everything a worker needs to run one series' trials.

    Pickled once per *chunk* (not per trial); the heavyweight imports the
    callables drag in are already resident from the pool initializer.
    """

    build: Callable[[int], Engine]
    until: Callable[[Engine], bool]
    max_steps: int
    check_every: int
    collect: Callable[[Engine], dict[str, Any]] | None
    timeout: float | None = None


def _fabric_warm() -> None:
    """Pool initializer: import the heavy registries once per worker.

    Workers persist across series (and across a whole sweep grid), so
    this cost is paid ``max_workers`` times total, not per trial.
    """
    import repro.core.scenarios  # noqa: F401
    import repro.graphs.generators  # noqa: F401


def _run_chunk(payload: tuple[int, _TrialSpec, list[int]]) -> tuple[int, list[TrialResult]]:
    """Worker entry: run one seed chunk serially, in seed order."""
    index, spec, seeds = payload
    results = [
        run_trial(
            spec.build,
            seed,
            until=spec.until,
            max_steps=spec.max_steps,
            check_every=spec.check_every,
            collect=spec.collect,
            capture_errors=True,
            timeout=spec.timeout,
        )
        for seed in seeds
    ]
    return index, results


class TrialFabric:
    """Persistent worker pool executing seed-chunked trial batches.

    One fabric outlives many :meth:`run` calls — ``sweep`` reuses a
    single fabric across every grid point, so workers are spawned and
    warmed exactly once per sweep instead of once per point.

    Determinism: chunking is a pure function of ``(seeds, chunk_size)``,
    every chunk runs its seeds in order, and results are reassembled in
    chunk-index order regardless of completion order — the returned
    sequence is bit-identical to the serial path for the same seeds.

    Worker death (OOM-killed child, segfault in native code, an
    ``os._exit`` escaping a trial) breaks a ``ProcessPoolExecutor``
    permanently: every outstanding and future submission raises
    ``BrokenProcessPool``. The fabric absorbs that instead of losing the
    batch — completed chunks are kept, the pool is rebuilt, and only the
    *missing* chunks are resubmitted, up to ``max_pool_retries`` times;
    past the budget the stragglers run serially in-process. Either way
    every chunk executes the same ``_run_chunk`` code on the same seed
    list, so recovered results stay bit-identical to an undisturbed run.
    Recoveries are logged in :attr:`recovery_log` (one dict per rebuild
    or fallback), never silent.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        max_pool_retries: int = 2,
    ) -> None:
        self.max_workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        self.chunk_size = chunk_size
        if max_pool_retries < 0:
            raise ValueError("max_pool_retries must be >= 0")
        self.max_pool_retries = max_pool_retries
        self._pool: ProcessPoolExecutor | None = None
        #: structured recovery events: {"event": "pool_rebuilt" |
        #: "serial_fallback", "chunks": [indices], "attempt": k}
        self.recovery_log: list[dict[str, Any]] = []

    # -- lifecycle ------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, initializer=_fabric_warm
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _discard_pool(self) -> None:
        """Drop a broken pool without waiting on its corpse."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> TrialFabric:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ------------------------------------------------------------

    def _chunks(self, seeds: list[int]) -> list[list[int]]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker: granular enough to balance load,
            # coarse enough to amortize the per-task pickle of the spec.
            size = max(1, math.ceil(len(seeds) / (self.max_workers * 4)))
        return [seeds[lo : lo + size] for lo in range(0, len(seeds), size)]

    def run(
        self,
        build: Callable[[int], Engine],
        seeds: Iterable[int],
        *,
        until: Callable[[Engine], bool],
        max_steps: int,
        check_every: int = 64,
        collect: Callable[[Engine], dict[str, Any]] | None = None,
        progress: Callable[[TrialResult], None] | None = None,
        timeout: float | None = None,
    ) -> list[TrialResult]:
        """Run one trial per seed on the pool; results in seed order.

        ``progress`` (if given) streams each chunk's results as it
        lands — completion order, not seed order — for live reporting
        while the fabric keeps working. ``timeout`` is the per-trial
        wall-clock budget forwarded to :func:`run_trial` (captured as a
        structured ``TrialTimeout`` failure, never a crash).
        """
        seeds = list(seeds)
        if not seeds:
            return []
        spec = _TrialSpec(build, until, max_steps, check_every, collect, timeout)
        chunks = self._chunks(seeds)
        buckets: list[list[TrialResult] | None] = [None] * len(chunks)
        pending: dict[int, list[int]] = dict(enumerate(chunks))
        attempt = 0
        while pending:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_run_chunk, (index, spec, chunk))
                for index, chunk in sorted(pending.items())
            ]
            broken = False
            for fut in as_completed(futures):
                try:
                    index, results = fut.result()
                except BrokenProcessPool:
                    broken = True
                    continue
                buckets[index] = results
                del pending[index]
                if progress is not None:
                    for trial in results:
                        progress(trial)
            if not pending:
                break
            if not broken:  # pragma: no cover - as_completed covers all futures
                raise RuntimeError("fabric lost chunks without pool breakage")
            self._discard_pool()
            attempt += 1
            if attempt <= self.max_pool_retries:
                self.recovery_log.append(
                    {
                        "event": "pool_rebuilt",
                        "chunks": sorted(pending),
                        "attempt": attempt,
                    }
                )
                continue
            # retry budget spent: run the stragglers serially in-process —
            # same _run_chunk, same seed lists, so results are identical.
            self.recovery_log.append(
                {
                    "event": "serial_fallback",
                    "chunks": sorted(pending),
                    "attempt": attempt,
                }
            )
            for index, chunk in sorted(pending.items()):
                _, results = _run_chunk((index, spec, chunk))
                buckets[index] = results
                if progress is not None:
                    for trial in results:
                        progress(trial)
            pending.clear()
        return [trial for bucket in buckets for trial in bucket or []]


def run_series(
    build: Callable[[int], Engine],
    seeds: Iterable[int],
    *,
    until: Callable[[Engine], bool],
    max_steps: int,
    check_every: int = 64,
    collect: Callable[[Engine], dict[str, Any]] | None = None,
    parallel: bool | None = None,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    fabric: TrialFabric | None = None,
    progress: Callable[[TrialResult], None] | None = None,
    on_error: str = "raise",
    timeout: float | None = None,
) -> SeriesResult:
    """Run one trial per seed; optionally fan out over a worker fabric.

    ``parallel=None`` auto-enables multiprocessing when >1 CPU is
    available and more than 3 seeds are requested (the pool's spawn cost
    isn't worth it below that — measured, not guessed, per the guides).
    Passing an external *fabric* reuses its warm pool (and implies
    ``parallel=True``); otherwise a transient fabric is created and torn
    down around the call.

    ``on_error="raise"`` re-raises the first trial failure (serial path:
    at the failing trial; fabric path: after the batch, as a
    ``RuntimeError`` carrying the structured message). ``"capture"``
    keeps failures as :class:`TrialResult` entries with ``error`` set —
    identical between serial and parallel execution.

    ``timeout`` bounds each trial in wall-clock seconds (see
    :func:`run_trial`); a timed-out trial surfaces as a structured
    ``TrialTimeout`` failure under ``on_error="capture"`` and re-raises
    under ``"raise"``.
    """

    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture', not {on_error!r}")
    seeds = list(seeds)
    if parallel is None:
        parallel = fabric is not None or (
            (os.cpu_count() or 1) > 1 and len(seeds) > 3
        )
    if not parallel:
        trials = [
            run_trial(
                build,
                s,
                until=until,
                max_steps=max_steps,
                check_every=check_every,
                collect=collect,
                capture_errors=(on_error == "capture"),
                timeout=timeout,
            )
            for s in seeds
        ]
        return SeriesResult(trials)
    own_fabric = fabric is None
    fab = fabric if fabric is not None else TrialFabric(max_workers, chunk_size)
    try:
        trials = fab.run(
            build,
            seeds,
            until=until,
            max_steps=max_steps,
            check_every=check_every,
            collect=collect,
            progress=progress,
            timeout=timeout,
        )
    finally:
        if own_fabric:
            fab.close()
    if on_error == "raise":
        for t in trials:
            if t.error is not None:
                raise RuntimeError(f"trial seed={t.seed} failed: {t.error}")
    return SeriesResult(trials)
