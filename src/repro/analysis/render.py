"""ASCII rendering of process graphs — headless 'figures' for examples.

Three views over a live engine or a snapshot:

* :func:`render_adjacency_list` — one line per process with its explicit
  out-neighbours, mode and lifecycle markers;
* :func:`render_matrix` — a compact adjacency matrix (explicit ``#``,
  implicit ``·``, both ``@``) for small systems;
* :func:`render_modes` — a one-line population strip (``S``taying /
  ``L``eaving, lowercase when asleep, ``✝`` when gone).

Pure string builders — no I/O — so tests assert on the output and
examples print it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graphs.snapshot import EdgeKind
from repro.sim.states import Mode, PState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["render_adjacency_list", "render_matrix", "render_modes"]


def _marker(proc) -> str:
    if proc.state is PState.GONE:
        return "✝ gone"
    tag = "leaving" if proc.mode is Mode.LEAVING else "staying"
    if proc.state is PState.ASLEEP:
        tag += ", asleep"
    return tag


def render_adjacency_list(engine: Engine, title: str | None = None) -> str:
    """One line per non-gone process: explicit out-neighbours + status."""
    snap = engine.snapshot()
    lines = [title] if title else []
    for pid in sorted(engine.processes):
        proc = engine.processes[pid]
        if proc.state is PState.GONE:
            lines.append(f"{pid:>4} ✝ gone")
            continue
        outs = sorted(
            {e.dst for e in snap.out_edges(pid) if e.kind is EdgeKind.EXPLICIT}
        )
        lines.append(f"{pid:>4} → {outs}  ({_marker(proc)})")
    return "\n".join(lines)


def render_matrix(engine: Engine, title: str | None = None) -> str:
    """Adjacency matrix: ``#`` explicit, ``·`` implicit, ``@`` both.

    Gone processes render as a struck-out row/column (``x``). Intended
    for n ≲ 40.
    """

    snap = engine.snapshot()
    pids = sorted(engine.processes)
    explicit: set[tuple[int, int]] = set()
    implicit: set[tuple[int, int]] = set()
    for e in snap.edges:
        (explicit if e.kind is EdgeKind.EXPLICIT else implicit).add((e.src, e.dst))
    width = max((len(str(p)) for p in pids), default=1)
    header = " " * (width + 1) + " ".join(str(p).rjust(width) for p in pids)
    lines = [title] if title else []
    lines.append(header)
    for a in pids:
        row = [str(a).rjust(width)]
        gone_a = engine.processes[a].state is PState.GONE
        for b in pids:
            if gone_a or engine.processes[b].state is PState.GONE:
                cell = "x" if a == b else " "
            elif (a, b) in explicit and (a, b) in implicit:
                cell = "@"
            elif (a, b) in explicit:
                cell = "#"
            elif (a, b) in implicit:
                cell = "·"
            else:
                cell = "."
                cell = " " if a != b else "\\"
            row.append(cell.rjust(width))
        lines.append(" ".join(row))
    lines.append(f"legend: # explicit  · implicit  @ both  \\ self  x gone")
    return "\n".join(lines)


def render_modes(engine: Engine) -> str:
    """Population strip: S/L (lowercase = asleep), ✝ = gone, pid order."""
    out = []
    for pid in sorted(engine.processes):
        proc = engine.processes[pid]
        if proc.state is PState.GONE:
            out.append("✝")
            continue
        ch = "L" if proc.mode is Mode.LEAVING else "S"
        if proc.state is PState.ASLEEP:
            ch = ch.lower()
        out.append(ch)
    return "".join(out)
