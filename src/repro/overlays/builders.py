"""Builders for stand-alone overlay populations and the [15]-style baseline."""

from __future__ import annotations

from random import Random
from collections.abc import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.overlays.base import OverlayLogic, OverlayProcess
from repro.sim.engine import Engine
from repro.sim.scheduler import RandomScheduler, Scheduler
from repro.sim.states import Capability, Mode

__all__ = ["build_overlay_engine", "build_baseline_engine"]


def build_overlay_engine(
    n: int,
    edges: Sequence[tuple[int, int]],
    logic_cls: type[OverlayLogic],
    *,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    monitors: Sequence[Callable] = (),
    strict: bool = True,
) -> Engine:
    """An all-staying population of *logic_cls* processes wired as *edges*.

    The initial neighbourhoods are the out-edges of the edge list, fed to
    the logic through its ``integrate`` hook (so side-classification — for
    keyed overlays — happens exactly as it would at runtime).
    """

    if n < 1:
        raise ConfigurationError("need at least one process")
    procs = {
        pid: OverlayProcess(pid, Mode.STAYING, logic_cls) for pid in range(n)
    }
    engine = Engine(
        procs.values(),
        scheduler if scheduler is not None else RandomScheduler(seed),
        capability=Capability.NONE,
        seed=seed,
        strict=strict,
        monitors=monitors,
    )

    def _noop_send(*args, **kwargs) -> None:  # integration at t=0 sends nothing
        raise ConfigurationError("initial integration must not send messages")

    for a, b in edges:
        if not (0 <= a < n and 0 <= b < n):
            raise ConfigurationError(f"edge ({a}, {b}) outside 0..{n - 1}")
        if a == b:
            continue
        logic = procs[a].logic
        if hasattr(logic, "integrate_with_keys"):
            from repro.sim.refs import KeyProvider

            logic.integrate_with_keys(KeyProvider(), procs[b].self_ref)
        else:
            logic.integrate(_noop_send, procs[b].self_ref)
    return engine


def build_baseline_engine(
    n: int,
    edges: Sequence[tuple[int, int]],
    leaving: Iterable[int],
    *,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    belief_lie_prob: float = 0.0,
    monitors: Sequence[Callable] = (),
    strict: bool = True,
) -> Engine:
    """A population of the Foreback-style sorted-list departure baseline.

    Uses the NIDEC-style :class:`~repro.core.oracles.NoIncomingOracle`
    (the baseline's oracle, not SINGLE) and ``exit`` capability. Belief
    corruption flips initial mode beliefs with the given probability.
    """

    from repro.core.oracles import NoIncomingOracle
    from repro.overlays.baseline_foreback import BaselineListProcess
    from repro.sim.faults import random_mode_claim

    if n < 1:
        raise ConfigurationError("need at least one process")
    leaving_set = frozenset(leaving)
    rng = Random(seed ^ 0x0BA5E11E)

    def actual(pid: int) -> Mode:
        return Mode.LEAVING if pid in leaving_set else Mode.STAYING

    procs = {
        pid: BaselineListProcess(pid, actual(pid)) for pid in range(n)
    }
    for a, b in edges:
        if not (0 <= a < n and 0 <= b < n):
            raise ConfigurationError(f"edge ({a}, {b}) outside 0..{n - 1}")
        if a == b:
            continue
        procs[a].candidates[procs[b].self_ref] = random_mode_claim(
            rng, actual(b), belief_lie_prob
        )
    return Engine(
        procs.values(),
        scheduler if scheduler is not None else RandomScheduler(seed),
        capability=Capability.EXIT,
        oracle=NoIncomingOracle(),
        seed=seed,
        strict=strict,
        monitors=monitors,
    )
