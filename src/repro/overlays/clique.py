"""The transitive-closure overlay: converge to the complete digraph.

The simplest member of 𝒫, after Berns et al.'s transitive closure
framework: every timeout, each process *introduces* (♦) every stored
neighbour to every other (and itself to all of them); received references
are simply stored (♠ via set semantics). Edges are only ever added, so
from any weakly connected start the population reaches the clique — in
O(log n) synchronous rounds, since pairwise distances halve per round
(the same argument as Phase A of Theorem 1, which experiment E3
measures on the primitive calculus directly).

Needs no order on references — like the departure protocol itself, it is
a pure copy-store-send protocol.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.overlays.base import OverlayLogic, SendFn
from repro.sim.refs import KeyProvider, Ref

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["CliqueLogic"]


class CliqueLogic(OverlayLogic):
    """Pure logic of the transitive-closure protocol."""

    requires_order = False
    message_labels = ("p_insert",)

    def __init__(self, self_ref: Ref) -> None:
        super().__init__(self_ref)
        self.known: set[Ref] = set()

    # ------------------------------------------------------------------ state

    def neighbor_refs(self) -> Iterator[Ref]:
        yield from self.known

    def integrate(self, send: SendFn, ref: Ref) -> None:
        if ref != self.self_ref:
            self.known.add(ref)  #                                        ♠

    def drop_neighbor(self, ref: Ref) -> bool:
        if ref in self.known:
            self.known.discard(ref)
            return True
        return False

    # ------------------------------------------------------------------ behaviour

    def p_timeout(self, send: SendFn, keys: KeyProvider | None) -> None:
        # The clique is key-free (keys may be None) and every neighbour
        # receives the same introductions, so send order cannot change
        # protocol state; Ref.__hash__ is seed-free (ints only), so the
        # order is also identical across interpreters given one history.
        for v in self.known:  # repro: noqa[DET004] — order-insensitive, key-free
            send(v, "p_insert", self.self_ref)  # self-introduction       ♦
            for w in self.known:  # repro: noqa[DET004] — order-insensitive, key-free
                if v != w:
                    send(v, "p_insert", w)  # introduction                ♦

    def handle(
        self, send: SendFn, keys: KeyProvider | None, label: str, *args
    ) -> None:
        if label == "p_insert":
            (ref,) = args
            self.integrate(send, ref)

    # ------------------------------------------------------------------ target

    @classmethod
    def target_reached(cls, engine: Engine) -> bool:
        """Every staying process stores every other staying process."""
        from repro.sim.refs import pid_of
        from repro.sim.states import Mode, PState

        staying = {
            pid
            for pid, p in engine.processes.items()
            if p.mode is Mode.STAYING and p.state is not PState.GONE
        }
        for pid in staying:
            proc = engine.processes[pid]
            stored = {pid_of(info.ref) for info in proc.stored_refs()}
            if not (staying - {pid}) <= stored:
                return False
        return True
