"""Overlay maintenance protocols: the class 𝒫 the framework embeds into.

Four self-stabilizing overlays (linearization/sorted list, sorted ring,
transitive-closure clique, min-key star), each factored into a pure
:class:`~repro.overlays.base.OverlayLogic` hostable stand-alone
(:class:`~repro.overlays.base.OverlayProcess`) or inside the Section 4
departure framework (:class:`~repro.core.framework.FrameworkProcess`);
plus the order-based sorted-list departure baseline of Foreback et al.
"""

from repro.overlays.base import OverlayLogic, OverlayProcess
from repro.overlays.baseline_foreback import BaselineListProcess
from repro.overlays.builders import build_baseline_engine, build_overlay_engine
from repro.overlays.clique import CliqueLogic
from repro.overlays.linearization import LinearizationLogic
from repro.overlays.ring import RingLogic
from repro.overlays.robust_ring import RobustRingLogic
from repro.overlays.star import StarLogic

#: Registry for experiment sweeps (name -> logic class).
LOGICS = {
    "linearization": LinearizationLogic,
    "ring": RingLogic,
    "robust_ring": RobustRingLogic,
    "clique": CliqueLogic,
    "star": StarLogic,
}

__all__ = [
    "BaselineListProcess",
    "CliqueLogic",
    "LOGICS",
    "LinearizationLogic",
    "OverlayLogic",
    "OverlayProcess",
    "RingLogic",
    "RobustRingLogic",
    "StarLogic",
    "build_baseline_engine",
    "build_overlay_engine",
]
