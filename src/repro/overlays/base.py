"""The overlay-protocol interface: the class 𝒫 of Section 2/4.

𝒫 is the class of distributed protocols whose inter-process interactions
decompose into the four primitives — hence (Lemma 1) they can never
disconnect the overlay themselves. Section 4 additionally requires, for a
protocol P to be combinable with the departure protocol:

1. **periodic self-introduction** — P's timeout introduces the executing
   process to every neighbour;
2. a **postprocess** action able to reintegrate references extracted from
   messages that could not (or should not) be delivered.

:class:`OverlayProcess` is the base class for stand-alone members of 𝒫
(populations that are all staying — e.g. for studying P's own
self-stabilization). The Section 4 embedding is provided separately by
:class:`repro.core.framework.FrameworkProcess`, which *hosts* an
:class:`OverlayLogic` — the protocol's pure logic factored out of the
process shell so that exactly the same code runs stand-alone and embedded.

Design contract for :class:`OverlayLogic` implementations:

* all state mutation goes through ``integrate`` / ``drop_neighbor`` /
  ``neighbor_refs`` so the host can audit explicit edges;
* every message send uses the host-supplied ``send`` callable (the
  stand-alone host sends directly; the framework host verifies modes
  first per Section 4);
* messages may only realize the four primitives — the test-suite runs
  every overlay under connectivity monitors to enforce this dynamically.
"""

from __future__ import annotations

from functools import partial
from collections.abc import Callable, Iterable, Iterator
from typing import TYPE_CHECKING

from repro.errors import StateViolation
from repro.sim.messages import RefInfo
from repro.sim.process import ActionContext, Process
from repro.sim.refs import KeyProvider, Ref
from repro.sim.states import Mode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["OverlayLogic", "OverlayProcess", "SendFn"]

#: host-supplied send: (target, label, refs...) — refs are bare Refs, the
#: host wraps them in RefInfo with its current beliefs.
SendFn = Callable[..., None]


def _reject_send_at_join(*_args: object) -> None:
    raise StateViolation(
        "join() runs outside an atomic action; overlay logics must defer "
        "introductions to their first timeout"
    )


class OverlayLogic:
    """Pure per-process logic of an overlay maintenance protocol P ∈ 𝒫.

    Subclasses keep their own reference variables and implement the hooks
    below. The *host* (stand-alone process or the Section 4 framework
    wrapper) owns communication and lifecycle.
    """

    #: whether this protocol needs a total order on processes (e.g.
    #: linearization); the paper's departure protocol itself never does.
    requires_order: bool = False

    #: message labels this logic handles, mapped to method names.
    message_labels: tuple[str, ...] = ()

    def __init__(self, self_ref: Ref) -> None:
        self.self_ref = self_ref

    # -- state surface ----------------------------------------------------------

    def neighbor_refs(self) -> Iterator[Ref]:
        """Every reference currently stored by this protocol instance."""
        raise NotImplementedError

    def integrate(self, send: SendFn, ref: Ref) -> None:
        """Store/route a (staying) reference handed to the protocol.

        Replaces the departure protocol's plain ``N := N ∪ {v}`` when P
        is embedded: P decides where the reference belongs (Section 4's
        modified ``present``/``forward`` for staying-from-staying).
        """
        raise NotImplementedError

    def drop_neighbor(self, ref: Ref) -> bool:
        """Remove *ref* from all protocol variables; True if it was stored."""
        raise NotImplementedError

    def join(self, contact: Ref) -> None:
        """Bootstrap a *fresh* logic instance into an existing overlay.

        Called once, before the hosting process is admitted to a running
        system: store the bootstrap *contact* so the newcomer attaches
        to the overlay **by edge** — the one-node admissible-state
        extension :meth:`repro.sim.engine.Engine.admit` enforces.
        Joining happens outside any atomic action, so the default hands
        ``integrate`` a send that refuses to be called; introductions go
        out on the newcomer's first timeout. Logics whose ``integrate``
        needs an order (keys exist only inside actions) override this.
        """
        self.integrate(_reject_send_at_join, contact)

    # -- behaviour -----------------------------------------------------------------

    def p_timeout(self, send: SendFn, keys: KeyProvider | None) -> None:
        """P's periodic maintenance. Must self-introduce to all neighbours."""
        raise NotImplementedError

    def handle(
        self, send: SendFn, keys: KeyProvider | None, label: str, *args
    ) -> None:
        """Dispatch one P message (label ∈ :attr:`message_labels`)."""
        raise NotImplementedError

    def postprocess_extra(self, ctx, payload: tuple) -> None:
        """Reintegrate the non-reference part of a withheld P message.

        Called by the Section 4 framework when a message is postprocessed
        instead of sent; *payload* is the tuple of non-reference
        parameters. The default drops it — overlays whose messages carry
        meaningful data (sequence counters, application payloads) override
        this to requeue or merge the information, mirroring the paper's
        "this additional information in parameters is not lost by
        preprocess and postprocess".
        """

    # -- verification hooks -----------------------------------------------------------

    def describe_vars(self) -> dict:
        """Human-readable variable dump."""
        return {"neighbors": [repr(r) for r in self.neighbor_refs()]}

    @classmethod
    def target_reached(cls, engine: Engine) -> bool:
        """Whether the engine's staying population forms P's target topology.

        Class-level because the target is a *global* predicate; used by
        tests and by experiment E8's convergence detection.
        """
        raise NotImplementedError


class OverlayProcess(Process):
    """Stand-alone host: runs an :class:`OverlayLogic` with direct sends.

    Used for studying P by itself (topological self-stabilization without
    departures). All processes are expected to be staying; mode beliefs
    on the wire are the host's actual modes.
    """

    @classmethod
    def join(cls, pid: int, logic_factory, contact: Ref) -> "OverlayProcess":
        """A newcomer pre-wired to attach by edge to *contact* — hand the
        result straight to :meth:`repro.sim.engine.Engine.admit`."""
        proc = cls(pid, Mode.STAYING, logic_factory)
        proc.logic.join(contact)
        return proc

    def __init__(self, pid: int, mode: Mode, logic_factory) -> None:
        super().__init__(pid, mode)
        self.logic: OverlayLogic = logic_factory(self.self_ref)
        self.requires_order = self.logic.requires_order
        #: context threaded to P's send function for the current atomic
        #: action (set by _send_fn, consumed synchronously by _send —
        #: avoids allocating a closure per action).
        self._ctx: ActionContext | None = None
        #: per-label dispatchers, built once (handler() must not allocate).
        self._p_handlers = {
            label: partial(self._dispatch_p, label)
            for label in self.logic.message_labels
        }

    # -- plumbing ---------------------------------------------------------------

    def _send_fn(self, ctx: ActionContext) -> SendFn:
        self._ctx = ctx
        return self._send

    def _send(self, target: Ref, label: str, *refs: Ref) -> None:
        ctx = self._ctx
        assert ctx is not None, "overlay send outside an atomic action"
        ctx.send(target, label, *(RefInfo(r, self._belief_for(r)) for r in refs))

    def _belief_for(self, ref: Ref) -> Mode:
        # Stand-alone overlay populations are all staying; believing
        # staying about everyone is then always valid.
        if ref == self.self_ref:
            return self.mode
        return Mode.STAYING

    def stored_refs(self) -> Iterable[RefInfo]:
        for ref in self.logic.neighbor_refs():
            yield RefInfo(ref, Mode.STAYING)

    def describe_vars(self) -> dict:
        return self.logic.describe_vars()

    # -- actions -----------------------------------------------------------------

    def timeout(self, ctx: ActionContext) -> None:
        keys = ctx.keys if self.requires_order else None
        self.logic.p_timeout(self._send_fn(ctx), keys)

    def handler(self, label: str):
        fn = self._p_handlers.get(label)
        if fn is not None:
            return fn
        return super().handler(label)

    def _dispatch_p(self, label: str, ctx: ActionContext, *args) -> None:
        keys = ctx.keys if self.requires_order else None
        refs = tuple(a.ref if isinstance(a, RefInfo) else a for a in args)
        self.logic.handle(self._send_fn(ctx), keys, label, *refs)
