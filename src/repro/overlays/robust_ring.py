"""Robust sorted ring: the base cycle plus a successor-of-successor shortcut.

Chord-style systems keep, besides the immediate successor, a *successor
list* so the ring survives node failures between stabilization rounds.
This overlay extends :class:`~repro.overlays.ring.RingLogic` with the
first entry of such a list: every process also maintains ``succ2``, a
reference to its successor's successor, refreshed by gossip — each
timeout a process *introduces its successor to its predecessor* via a
dedicated ``p_succ2`` message ("your second successor is my successor").

All moves remain decomposed into the primitives: the gossip is an
introduction (♦, the sender keeps its copy), and a replaced ``succ2`` is
*delegated* to the successor (♥) rather than dropped, so no edge ever
vanishes. The legitimate family: correct succ/pred pointers (the ring)
plus ``succ2`` equal to the second cyclic successor; the pool and
in-flight gossip are transient.

Inside the Section 4 framework this overlay exercises a *multi-label* P:
both ``p_insert`` and ``p_succ2`` sends are intercepted, verified and
postprocessed independently.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.overlays.ring import RingLogic
from repro.sim.refs import KeyProvider, Ref

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["RobustRingLogic"]


class RobustRingLogic(RingLogic):
    """Sorted ring + succ² shortcut (first entry of a successor list)."""

    message_labels = ("p_insert", "p_succ2")

    def __init__(self, self_ref: Ref) -> None:
        super().__init__(self_ref)
        self.succ2: Ref | None = None

    # ------------------------------------------------------------------ state

    def neighbor_refs(self) -> Iterator[Ref]:
        yield from super().neighbor_refs()
        if self.succ2 is not None:
            yield self.succ2

    def drop_neighbor(self, ref: Ref) -> bool:
        found = super().drop_neighbor(ref)
        if self.succ2 == ref:
            self.succ2 = None
            found = True
        return found

    def describe_vars(self) -> dict:
        out = super().describe_vars()
        out["succ2"] = repr(self.succ2) if self.succ2 else None
        return out

    # ------------------------------------------------------------------ behaviour

    def p_timeout(self, send, keys: KeyProvider | None) -> None:
        super().p_timeout(send, keys)
        if self.succ is not None and self.pred is not None:
            if self.pred != self.succ:
                # Gossip: introduce our successor to our predecessor as
                # its second successor.                                   ♦
                send(self.pred, "p_succ2", self.succ)
        if (
            self.succ2 is not None
            and self.succ is not None
            and self.succ2 != self.succ
        ):
            # Keep the shortcut's holder introduced to it periodically
            # (Section 4: self-introduce to the whole neighbourhood).    ♦
            send(self.succ2, "p_insert", self.self_ref)

    def handle(self, send, keys: KeyProvider | None, label: str, *args) -> None:
        if label == "p_succ2":
            (ref,) = args
            self._set_succ2(send, ref)
            return
        super().handle(send, keys, label, *args)

    def _set_succ2(self, send, ref: Ref) -> None:
        if ref == self.self_ref:
            return  # n = 2: our second successor is ourselves — no edge
        old = self.succ2
        self.succ2 = ref  # fusion if identical                           ♠
        if old is not None and old != ref:
            if self.succ is not None and old != self.succ:
                # Delegate the replaced shortcut away, never drop it.    ♥
                send(self.succ, "p_insert", old)
            else:
                self.pool.add(old)

    # ------------------------------------------------------------------ target

    @classmethod
    def target_reached(cls, engine: Engine) -> bool:
        """Ring pointers correct AND every succ2 is the second cyclic
        successor (n ≥ 3; smaller rings have no meaningful shortcut)."""
        from repro.sim.refs import pid_of
        from repro.sim.states import Mode, PState

        if not super().target_reached(engine):
            return False
        staying = sorted(
            pid
            for pid, p in engine.processes.items()
            if p.mode is Mode.STAYING and p.state is not PState.GONE
        )
        if len(staying) < 3:
            return True
        order = staying
        second = {
            a: order[(i + 2) % len(order)] for i, a in enumerate(order)
        }
        for pid in staying:
            logic = engine.processes[pid].logic
            if logic.succ2 is None or pid_of(logic.succ2) != second[pid]:
                return False
        return True
