"""Self-stabilizing linearization: the sorted-list overlay.

The classic topological-self-stabilization benchmark (Gall et al. [16];
also the topology the departure protocol of Foreback et al. [15] is tied
to). Every process has an immutable key from a total order (this protocol
declares ``requires_order``, unlike the departure protocol). The target
topology is the doubly linked list sorted by key: each process stores
exactly its closest left and closest right neighbour.

Per-process rule (all interactions decompose into the primitives):

* **timeout** — order the stored left candidates ``l₁ < l₂ < … < l_k``
  (all smaller than the own key). Keep the closest, ``l_k``; *delegate*
  every other ``l_i`` to ``l_{i+1}`` (♥ — the reference travels toward
  its eventual position, the "linearize" move). Mirror for right
  candidates. Finally *self-introduce* (♦) to the closest neighbour on
  each side so links become bidirectional.
* **p_insert(v)** — integrate a received reference on the correct side
  (♠ fuses duplicates via set semantics).

Starting from any weakly connected graph, the population converges to the
sorted list: delegations strictly shrink the total key-distance spanned
by non-list edges while self-introduction makes surviving links mutual.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.overlays.base import OverlayLogic, SendFn
from repro.sim.refs import KeyProvider, Ref

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["LinearizationLogic"]


class LinearizationLogic(OverlayLogic):
    """Pure logic of the linearization protocol (hostable stand-alone or
    inside the Section 4 departure framework)."""

    requires_order = True
    message_labels = ("p_insert",)

    def __init__(self, self_ref: Ref) -> None:
        super().__init__(self_ref)
        #: candidates smaller / larger than our own key (beliefs live in
        #: the host; the logic stores bare references).
        self.left: set[Ref] = set()
        self.right: set[Ref] = set()
        #: join contacts parked keylessly (♠) until the first timeout,
        #: where keys become available and sort them onto a side.
        self.pending: set[Ref] = set()

    # ------------------------------------------------------------------ state

    def neighbor_refs(self) -> Iterator[Ref]:
        yield from self.left
        yield from self.right
        yield from self.pending

    def integrate(self, send: SendFn, ref: Ref) -> None:
        # side depends on keys; the host calls us only with an order.
        raise NotImplementedError("use integrate_with_keys")

    def integrate_with_keys(self, keys: KeyProvider, ref: Ref) -> None:
        """Store *ref* on the side its key dictates (♠ via set semantics)."""
        if ref == self.self_ref:
            return
        if keys.key(ref) < keys.key(self.self_ref):
            self.left.add(ref)
            self.right.discard(ref)
        else:
            self.right.add(ref)
            self.left.discard(ref)

    def drop_neighbor(self, ref: Ref) -> bool:
        found = ref in self.left or ref in self.right or ref in self.pending
        self.left.discard(ref)
        self.right.discard(ref)
        self.pending.discard(ref)
        return found

    def join(self, contact: Ref) -> None:
        # Side placement needs keys, which exist only inside actions:
        # park the contact and sort it on the first timeout.
        if contact != self.self_ref:
            self.pending.add(contact)

    # ------------------------------------------------------------------ behaviour

    def p_timeout(self, send: SendFn, keys: KeyProvider | None) -> None:
        assert keys is not None, "linearization requires ordered keys"
        if self.pending:
            for ref in keys.sorted(self.pending):
                self.integrate_with_keys(keys, ref)
            self.pending.clear()
        if self.left:
            ordered = keys.sorted(self.left)  # l1 < l2 < … < lk (closest last)
            for nearer, farther in zip(ordered[1:], ordered[:-1], strict=True):
                # Delegate l_i toward its position via l_{i+1}.          ♥
                send(nearer, "p_insert", farther)
                self.left.discard(farther)
            closest_left = ordered[-1]
            send(closest_left, "p_insert", self.self_ref)  #             ♦
        if self.right:
            ordered = keys.sorted(self.right)  # r1 < r2 < … (closest first)
            for nearer, farther in zip(ordered[:-1], ordered[1:], strict=True):
                send(nearer, "p_insert", farther)  #                     ♥
                self.right.discard(farther)
            closest_right = ordered[0]
            send(closest_right, "p_insert", self.self_ref)  #            ♦

    def handle(
        self, send: SendFn, keys: KeyProvider | None, label: str, *args
    ) -> None:
        assert keys is not None
        if label == "p_insert":
            (ref,) = args
            self.integrate_with_keys(keys, ref)

    def describe_vars(self) -> dict:
        return {
            "left": [repr(r) for r in sorted(self.left, key=repr)],
            "right": [repr(r) for r in sorted(self.right, key=repr)],
            "pending": [repr(r) for r in sorted(self.pending, key=repr)],
        }

    # ------------------------------------------------------------------ target

    @classmethod
    def target_reached(cls, engine: Engine) -> bool:
        """Explicit staying↔staying edges form exactly the sorted doubly
        linked list over the staying population, and no stray references
        to staying processes remain in flight."""
        from repro.graphs.metrics import is_sorted_line
        from repro.graphs.snapshot import EdgeKind
        from repro.sim.states import Mode, PState

        staying = {
            pid
            for pid, p in engine.processes.items()
            if p.mode is Mode.STAYING and p.state is not PState.GONE
        }
        snap = engine.snapshot()
        explicit = set()
        for e in snap.edges:
            if e.kind is EdgeKind.EXPLICIT and e.src in staying and e.dst in staying:
                explicit.add((e.src, e.dst))
        keys = {pid: float(pid) for pid in staying}
        return is_sorted_line(frozenset(explicit), keys)
