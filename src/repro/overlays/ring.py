"""Self-stabilizing sorted ring (a Re-Chord-style base cycle).

Target topology: the successor cycle of the key order — every staying
process points at its cyclic successor (the next larger key, wrapping
from the maximum to the minimum) and at its cyclic predecessor, i.e. the
bidirected ring.

Cyclic comparisons are done without modular arithmetic on keys: among
candidates, the cyclic successor of u is the smallest key larger than
u's, or — if none exists — the globally smallest candidate (the wrap).
Symmetrically for the predecessor. Each timeout the process keeps its
best successor/predecessor candidates, *delegates* (♥) every other
candidate to the successor (references travel around the ring until some
process adopts them), and *self-introduces* (♦) to the successor (which
integrates us as its predecessor, making the cycle bidirected).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.overlays.base import OverlayLogic, SendFn
from repro.sim.refs import KeyProvider, Ref

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["RingLogic"]


class RingLogic(OverlayLogic):
    """Pure logic of the sorted-ring protocol."""

    requires_order = True
    message_labels = ("p_insert",)

    def __init__(self, self_ref: Ref) -> None:
        super().__init__(self_ref)
        self.succ: Ref | None = None
        self.pred: Ref | None = None
        #: not-yet-placed candidates awaiting the next timeout.
        self.pool: set[Ref] = set()

    # ------------------------------------------------------------------ state

    def neighbor_refs(self) -> Iterator[Ref]:
        if self.succ is not None:
            yield self.succ
        if self.pred is not None:
            yield self.pred
        yield from self.pool

    def integrate(self, send: SendFn, ref: Ref) -> None:
        if ref != self.self_ref:
            self.pool.add(ref)

    def drop_neighbor(self, ref: Ref) -> bool:
        found = False
        if self.succ == ref:
            self.succ, found = None, True
        if self.pred == ref:
            self.pred, found = None, True
        if ref in self.pool:
            self.pool.discard(ref)
            found = True
        return found

    # ------------------------------------------------------------------ behaviour

    def p_timeout(self, send: SendFn, keys: KeyProvider | None) -> None:
        assert keys is not None, "the ring requires ordered keys"
        candidates = set(self.pool)
        if self.succ is not None:
            candidates.add(self.succ)
        if self.pred is not None:
            candidates.add(self.pred)
        candidates.discard(self.self_ref)
        self.pool.clear()
        if not candidates:
            return
        # Candidates in key order; cyclic successor = smallest key larger
        # than ours (wrapping to the global minimum), predecessor
        # symmetrically. Deterministic and lambda-free by construction.
        ordered = keys.sorted(candidates)
        mine = keys.key(self.self_ref)
        larger = [r for r in ordered if keys.key(r) > mine]
        smaller = [r for r in ordered if keys.key(r) < mine]
        best_succ = larger[0] if larger else ordered[0]
        best_pred = smaller[-1] if smaller else ordered[-1]
        self.succ = best_succ
        self.pred = best_pred
        for ref in ordered:
            if ref == best_succ or ref == best_pred:
                continue
            # Send spare candidates travelling around the cycle.         ♥
            send(best_succ, "p_insert", ref)
        # Self-introduce to *every* kept neighbour (Section 4 requires
        # periodic self-introduction to the whole neighbourhood — a
        # silently-kept predecessor would never learn our mode).         ♦
        send(best_succ, "p_insert", self.self_ref)
        if best_pred != best_succ:
            send(best_pred, "p_insert", self.self_ref)
        # Ring gossip: introduce the predecessor to the successor. The
        # reference travels succ-wise around the cycle until it reaches a
        # node for which it is pointer-optimal and is absorbed — this is
        # what closes the wrap edge (the maximum-key node can only learn
        # the minimum through a reference that circulated past it).      ♦
        if best_pred != best_succ:
            send(best_succ, "p_insert", best_pred)

    def handle(
        self, send: SendFn, keys: KeyProvider | None, label: str, *args
    ) -> None:
        if label == "p_insert":
            (ref,) = args
            self.integrate(send, ref)

    def describe_vars(self) -> dict:
        return {
            "succ": repr(self.succ) if self.succ else None,
            "pred": repr(self.pred) if self.pred else None,
            "pool": [repr(r) for r in sorted(self.pool, key=repr)],
        }

    # ------------------------------------------------------------------ target

    @classmethod
    def target_reached(cls, engine: Engine) -> bool:
        """Every staying process's succ/pred pointers are cyclically
        correct over the staying key order.

        The pointer pair defines the ring; transient pool contents and
        in-flight gossip are part of the legitimate *family* of states
        (the paper: "a legitimate state may then include … a family of
        graph topologies") — the gossip that keeps the ring self-checking
        never quiesces, so an exact-edge-set criterion would be unsound.
        """
        from repro.sim.refs import pid_of
        from repro.sim.states import Mode, PState

        staying = sorted(
            pid
            for pid, p in engine.processes.items()
            if p.mode is Mode.STAYING and p.state is not PState.GONE
        )
        if len(staying) <= 1:
            return True
        succ_of = {
            a: b for a, b in zip(staying, staying[1:] + staying[:1], strict=True)
        }
        for pid in staying:
            logic = getattr(engine.processes[pid], "logic", None)
            if logic is None or not isinstance(logic, cls):
                return False
            if logic.succ is None or pid_of(logic.succ) != succ_of[pid]:
                return False
            want_pred = next(a for a, b in succ_of.items() if b == pid)
            if logic.pred is None or pid_of(logic.pred) != want_pred:
                return False
        return True
